"""Tests for the remaining infrastructure: pcap, hosts, RNG, pausing."""

import io
import struct

import pytest

from repro.hosts.server import Host, MemoryServer
from repro.net.link import connect
from repro.net.pcap import PcapWriter
from repro.rdma.memory import AccessFlags
from repro.sim.rng import SeedSequence
from repro.sim.simulator import Simulator
from repro.sim.units import gbps, gib
from tests.test_net_packet import make_udp_packet


class TestPcapWriter:
    def test_global_header(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        header = buffer.getvalue()
        assert len(header) == 24
        magic, major, minor = struct.unpack("!IHH", header[:8])
        assert magic == 0xA1B2C3D4
        assert (major, minor) == (2, 4)
        (linktype,) = struct.unpack("!I", header[20:24])
        assert linktype == 1  # Ethernet

    def test_record_framing(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        packet = make_udp_packet(payload=b"pcap!")
        writer.write(packet, time_ns=1_500_000_000.0)  # 1.5 s
        raw = buffer.getvalue()[24:]
        seconds, micros, caplen, origlen = struct.unpack("!IIII", raw[:16])
        assert seconds == 1
        assert micros == 500_000
        assert caplen == origlen == len(packet.pack())
        assert raw[16:] == packet.pack()
        assert writer.packets_written == 1

    def test_tap_uses_sim_clock(self):
        sim = Simulator()
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, sim=sim)
        packet = make_udp_packet()
        sim.schedule(2_000.0, writer.tap, packet)
        sim.run()
        raw = buffer.getvalue()[24:]
        seconds, micros, _, _ = struct.unpack("!IIII", raw[:16])
        assert seconds == 0
        assert micros == 2  # 2000 ns


class TestSeedSequence:
    def test_streams_memoised(self):
        seeds = SeedSequence(1)
        assert seeds.stream("a") is seeds.stream("a")

    def test_streams_independent(self):
        seeds = SeedSequence(1)
        a = [seeds.stream("a").random() for _ in range(5)]
        b = [seeds.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_instances(self):
        x = SeedSequence(42).stream("w").random()
        y = SeedSequence(42).stream("w").random()
        assert x == y

    def test_different_roots_differ(self):
        assert (
            SeedSequence(1).derive_seed("x") != SeedSequence(2).derive_seed("x")
        )

    def test_spawn_children_stable(self):
        child_a = SeedSequence(7).spawn("child")
        child_b = SeedSequence(7).spawn("child")
        assert child_a.root_seed == child_b.root_seed


class TestHosts:
    def make_pair(self):
        sim = Simulator()
        a = Host(sim, "a", "02:00:00:00:00:01", "10.0.0.1")
        b = MemoryServer(sim, "b", "02:00:00:00:00:02", "10.0.0.2")
        connect(sim, a.eth, b.eth, gbps(40))
        return sim, a, b

    def test_non_roce_traffic_reaches_handlers(self):
        sim, a, b = self.make_pair()
        seen = []
        b.packet_handlers.append(lambda p, i: seen.append(p))
        packet = make_udp_packet()
        packet.headers[0].dst = b.eth.mac
        a.send(packet)
        sim.run()
        assert len(seen) == 1
        assert b.cpu_packets == 1  # MemoryServer counts CPU deliveries

    def test_lend_memory_tracks_regions(self):
        sim, a, b = self.make_pair()
        region = b.lend_memory(4096, access=AccessFlags.REMOTE_READ)
        assert region in b.lent_regions
        assert region.access == AccessFlags.REMOTE_READ

    def test_default_dram_matches_testbed_servers(self):
        sim, a, b = self.make_pair()
        assert b.dram.capacity_bytes == gib(64)

    def test_rx_counters(self):
        sim, a, b = self.make_pair()
        packet = make_udp_packet()
        packet.headers[0].dst = b.eth.mac
        a.send(packet)
        sim.run()
        assert b.rx_packets == 1
        assert b.rx_bytes == packet.buffer_len


class TestInterfacePause:
    def test_pause_holds_queue(self):
        from repro.net.node import Node

        class Sink(Node):
            def __init__(self, sim, name):
                super().__init__(sim, name)
                self.eth = self.add_interface("eth0", "02:00:00:00:00:0a")
                self.got = []

            def receive(self, packet, interface):
                self.got.append(packet)

        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        connect(sim, a.eth, b.eth, gbps(40))
        a.eth.set_paused(True)
        a.eth.send(make_udp_packet())
        sim.run()
        assert b.got == []
        a.eth.set_paused(False)
        sim.run()
        assert len(b.got) == 1

    def test_in_flight_packet_completes_despite_pause(self):
        from repro.net.node import Node

        class Sink(Node):
            def __init__(self, sim, name):
                super().__init__(sim, name)
                self.eth = self.add_interface("eth0", "02:00:00:00:00:0b")
                self.got = []

            def receive(self, packet, interface):
                self.got.append(packet)

        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        connect(sim, a.eth, b.eth, gbps(40))
        a.eth.send(make_udp_packet())  # serialization starts immediately
        a.eth.set_paused(True)
        sim.run()
        assert len(b.got) == 1  # the wire finishes what it started
