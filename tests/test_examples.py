"""Every example script must run clean end to end (reduced scales)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", []),
    ("incast_rescue.py", ["--scale", "0.02"]),
    ("baremetal_gateway.py", ["--vips", "800", "--packets", "600"]),
    ("telemetry_sketches.py", ["--flows", "1500", "--packets", "1500"]),
    ("kv_cache_netcache.py", ["--keys", "800", "--queries", "500"]),
    ("reliable_counters.py", []),
    ("cluster_scaleout.py", []),
    ("server_failure.py", []),
    ("chaos_recovery.py", []),
    ("link_protection.py", []),
    ("l4_migration.py", ["--connections", "1500", "--packets", "3000"]),
    ("sequencer_netchain.py", []),
    ("persistent_congestion_ecn.py", ["--duration-ms", "1.5"]),
]


@pytest.mark.parametrize(
    "script,args", CASES, ids=[case[0] for case in CASES]
)
def test_example_runs_clean(script, args):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"
