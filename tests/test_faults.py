"""Fault injection and recovery: models, plans, ICRC, go-back-N, chaos.

The contract under test is DESIGN.md §10's: every injected fault is
seeded and replayable (same plan + same seed = byte-identical wire
trace), and with ``enable_retransmit`` the reliable paths lose nothing —
not to i.i.d. loss, not to bursts, not to a mid-run blackout.
"""

import pytest

from repro.cluster.health import HealthMonitor
from repro.faults import (
    AtomicEngineStall,
    Blackout,
    Corrupt,
    Duplicate,
    FaultPlan,
    GilbertElliottLoss,
    IidLoss,
    Jitter,
    LinkFaultInjector,
    Reorder,
    RnicBlackout,
    RnicDropBurst,
)
from repro.hosts.server import Host, MemoryServer
from repro.net.link import connect
from repro.net.node import Node
from repro.obs import Observability, WireTrace
from repro.obs.trace import KIND_FAULT, KIND_RETX
from repro.rdma.packets import (
    build_write_request,
    integrity_protected,
    verify_icrc,
)
from repro.rdma.rnic import RnicConfig
from repro.rdma.verbs import RdmaClient, connect_qps
from repro.sim.simulator import Simulator
from repro.sim.units import gbps, usec
from tests.test_net_packet import make_udp_packet


# -- plumbing -----------------------------------------------------------------


class SinkNode(Node):
    """Records every delivered packet with its arrival time."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, interface):
        self.received.append((self.sim.now, packet))


def make_wire(sim, **injector_kwargs):
    """A raw a<->b link with a fault injector installed."""
    a, b = SinkNode(sim, "a"), SinkNode(sim, "b")
    ia = a.add_interface("eth0", "02:00:00:00:00:0a")
    ib = b.add_interface("eth0", "02:00:00:00:00:0b")
    link = connect(sim, ia, ib, gbps(40), propagation_ns=250.0)
    injector = LinkFaultInjector(link, name="wire", **injector_kwargs)
    return a, b, ia, ib, link, injector


def make_rdma_pair(sim, client_config=None):
    """Client host + memory server over one link, QPs connected."""
    client = Host(
        sim, "c", "02:00:00:00:00:01", "10.0.0.1", rnic_config=client_config
    )
    server = MemoryServer(sim, "s", "02:00:00:00:00:02", "10.0.0.2")
    link = connect(sim, client.eth, server.eth, gbps(40))
    qp_c = client.rnic.create_qp()
    qp_s = server.rnic.create_qp()
    connect_qps(qp_c, qp_s)
    region = server.lend_memory(1 << 16)
    return client, server, link, RdmaClient(client.rnic, qp_c), region


RETX_CONFIG = dict(enable_retransmit=True, retransmit_timeout_ns=usec(20))


# -- link fault models --------------------------------------------------------


class TestLinkModels:
    def test_injector_without_models_is_pass_through(self, sim):
        _, b, ia, _, _, injector = make_wire(sim)
        packet = make_udp_packet()
        ia.send(packet)
        sim.run()
        (arrival, received), = b.received
        assert received is packet
        expected = packet.wire_len * 8 / 40e9 * 1e9 + 250.0
        assert arrival == pytest.approx(expected)
        assert injector.effects == {}

    def test_iid_loss_one_drops_everything(self, sim):
        _, b, ia, _, _, injector = make_wire(sim)
        injector.arm(IidLoss(1.0))
        for _ in range(10):
            ia.send(make_udp_packet())
        sim.run()
        assert b.received == []
        assert injector.effects["dropped"] == 10
        assert injector.dropped == 10

    def test_iid_loss_zero_delivers_everything(self, sim):
        _, b, ia, _, _, injector = make_wire(sim)
        injector.arm(IidLoss(0.0))
        for _ in range(10):
            ia.send(make_udp_packet())
        sim.run()
        assert len(b.received) == 10
        assert injector.dropped == 0

    def test_gilbert_elliott_loses_in_bursts(self, sim):
        _, b, ia, _, _, injector = make_wire(sim)
        # Deterministic worst case: first packet flips good->bad and the
        # channel never recovers, so everything after packet 1 is a burst.
        injector.arm(
            GilbertElliottLoss(p_good_bad=1.0, p_bad_good=0.0, loss_bad=1.0)
        )
        for _ in range(10):
            ia.send(make_udp_packet())
        sim.run()
        assert len(b.received) == 1
        assert injector.effects["burst_dropped"] == 9
        assert injector.dropped == 9

    def test_blackout_drops_all(self, sim):
        _, b, ia, _, _, injector = make_wire(sim)
        injector.arm(Blackout())
        for _ in range(5):
            ia.send(make_udp_packet())
        sim.run()
        assert b.received == []
        assert injector.effects["blackout_dropped"] == 5

    def test_duplicate_delivers_independent_clones(self, sim):
        _, b, ia, _, _, injector = make_wire(sim)
        injector.arm(Duplicate(1.0, copies=2))
        original = make_udp_packet(payload=b"dup-me")
        ia.send(original)
        sim.run()
        assert len(b.received) == 3
        packets = [p for _, p in b.received]
        assert original in packets
        clones = [p for p in packets if p is not original]
        assert len(clones) == 2
        assert all(p.payload == b"dup-me" for p in clones)
        assert injector.effects["duplicated"] == 2

    def test_jitter_delays_within_bounds(self, sim):
        _, b, ia, _, _, injector = make_wire(sim)
        injector.arm(Jitter(max_ns=100.0, min_ns=10.0))
        packet = make_udp_packet()
        ia.send(packet)
        sim.run()
        (arrival, _), = b.received
        base = packet.wire_len * 8 / 40e9 * 1e9 + 250.0
        assert base + 10.0 <= arrival <= base + 100.0
        assert injector.effects["jittered"] == 1

    def test_reorder_via_packet_trigger_swaps_arrival_order(self, sim):
        _, b, ia, _, _, injector = make_wire(sim)
        # Hold exactly the first packet long enough to land after the
        # second — when_packet arms on packet 1 and disarms before 2.
        injector.when_packet(1, Reorder(1.0, hold_ns=5_000.0), count=1)
        first, second = make_udp_packet(), make_udp_packet()
        ia.send(first)
        ia.send(second)
        sim.run()
        assert [p for _, p in b.received] == [second, first]
        assert injector.effects["reordered"] == 1

    def test_corrupt_delivers_a_damaged_clone(self, sim):
        _, b, ia, _, _, injector = make_wire(sim)
        injector.arm(Corrupt(1.0))
        original = make_udp_packet(payload=b"\x00" * 32)
        ia.send(original)
        sim.run()
        (_, received), = b.received
        assert received is not original  # sender's copy stays intact
        assert original.payload == b"\x00" * 32
        assert received.payload != original.payload
        assert len(received.payload) == 32
        assert injector.effects["corrupted"] == 1

    def test_direction_scoping_spares_the_reverse_path(self, sim):
        a, b, ia, ib, _, injector = make_wire(sim, direction="a2b")
        injector.arm(IidLoss(1.0))
        ia.send(make_udp_packet())
        ib.send(make_udp_packet())
        sim.run()
        assert b.received == []  # a->b impaired
        assert len(a.received) == 1  # b->a untouched
        assert injector.dropped == 1

    def test_bad_direction_rejected(self, sim):
        with pytest.raises(ValueError):
            make_wire(sim, direction="sideways")


# -- the plan -----------------------------------------------------------------


class TestFaultPlan:
    def test_at_with_duration_arms_and_disarms(self, sim):
        _, b, ia, _, link, _ = make_wire(sim)
        plan = FaultPlan(seed=3)
        wire = plan.on_link(link, name="wire")
        plan.at(usec(1), wire, Blackout(), duration_ns=usec(2))
        plan.install(sim)
        for at_ns in (0.0, usec(2), usec(5)):  # before / during / after
            sim.schedule_at(at_ns, ia.send, make_udp_packet())
        sim.run()
        assert len(b.received) == 2
        assert wire.effects["blackout_dropped"] == 1

    def test_on_link_memoizes_per_link(self, sim):
        _, _, _, _, link, _ = make_wire(sim)
        plan = FaultPlan(seed=1)
        assert plan.on_link(link) is plan.on_link(link)

    def test_on_packet_rejects_rnic_injectors(self, sim):
        client, *_ = make_rdma_pair(sim)
        plan = FaultPlan(seed=1)
        nic = plan.on_rnic(client.rnic)
        with pytest.raises(TypeError):
            plan.on_packet(nic, IidLoss(1.0), nth=1)

    def test_double_install_raises(self, sim):
        plan = FaultPlan(seed=1)
        plan.install(sim)
        with pytest.raises(RuntimeError):
            plan.install(sim)

    def _traced_lossy_run(self, seed):
        """40 writes over a 10%-lossy link; returns (trace jsonl, done)."""
        obs = Observability(trace=WireTrace())
        with obs.activate():
            sim = Simulator()
            client, server, link, rdma, region = make_rdma_pair(
                sim, client_config=RnicConfig(**RETX_CONFIG)
            )
            plan = FaultPlan(seed=seed)
            plan.at(0.0, plan.on_link(link, name="wire"), IidLoss(0.1))
            plan.install(sim)
            done = []
            for i in range(40):
                rdma.write(
                    region.base_address + i * 8,
                    region.rkey,
                    i.to_bytes(8, "big"),
                    done.append,
                )
            sim.run()
        return obs.trace.to_jsonl(), done

    def test_same_seed_replays_a_byte_identical_wire_trace(self):
        trace_a, done_a = self._traced_lossy_run(seed=7)
        trace_b, done_b = self._traced_lossy_run(seed=7)
        assert trace_a == trace_b
        assert len(done_a) == len(done_b) == 40
        assert all(c.success for c in done_a)
        # The run actually exercised the fault path.
        assert any('"FAULT"' in line for line in trace_a.splitlines())

    def test_different_seed_injects_differently(self):
        trace_a, _ = self._traced_lossy_run(seed=7)
        trace_b, _ = self._traced_lossy_run(seed=8)
        assert trace_a != trace_b


# -- ICRC ---------------------------------------------------------------------


class TestIcrc:
    def _write_packet(self, sim, compute_icrc):
        _, _, _, rdma, region = make_rdma_pair(sim)
        return build_write_request(
            rdma.qp,
            region.base_address,
            region.rkey,
            b"guarded-payload",
            compute_icrc=compute_icrc,
        )

    def test_unprotected_packets_always_verify(self, sim):
        packet = self._write_packet(sim, compute_icrc=False)
        assert verify_icrc(packet)
        packet.payload = b"tampered!-------"
        assert verify_icrc(packet)  # value 0 = integrity off (fast path)

    def test_protected_packet_rejects_payload_tampering(self, sim):
        packet = self._write_packet(sim, compute_icrc=True)
        assert verify_icrc(packet)
        packet.payload = b"tampered-payload"
        assert not verify_icrc(packet)

    def test_corruption_is_detected_and_repaired_end_to_end(self, sim):
        with integrity_protected():
            client, server, link, rdma, region = make_rdma_pair(
                sim, client_config=RnicConfig(**RETX_CONFIG)
            )
            plan = FaultPlan(seed=5)
            wire = plan.on_link(link, name="wire")
            # Corrupt exactly the first request on the wire; the ICRC
            # check at the responder must catch it, and go-back-N must
            # deliver the clean copy.
            plan.on_packet(wire, Corrupt(1.0), nth=1, count=1)
            plan.install(sim)
            done = []
            rdma.write(
                region.base_address, region.rkey, b"exact!!!", done.append
            )
            sim.run()
        assert done and done[0].success
        assert region.read(region.base_address, 8) == b"exact!!!"
        assert wire.effects["corrupted"] == 1
        assert (
            server.rnic.stats.icrc_drops + client.rnic.stats.icrc_drops >= 1
        )


# -- go-back-N ----------------------------------------------------------------


class TestGoBackN:
    def test_single_request_loss_recovers_all_writes(self, sim):
        client, server, link, rdma, region = make_rdma_pair(
            sim, client_config=RnicConfig(**RETX_CONFIG)
        )
        plan = FaultPlan(seed=2)
        wire = plan.on_link(link, name="wire")
        plan.on_packet(wire, IidLoss(1.0), nth=4, count=1)  # one mid-stream
        plan.install(sim)
        done = []
        for i in range(10):
            rdma.write(
                region.base_address + i * 8,
                region.rkey,
                i.to_bytes(8, "big"),
                done.append,
            )
        sim.run()
        assert len(done) == 10 and all(c.success for c in done)
        for i in range(10):
            stored = region.read(region.base_address + i * 8, 8)
            assert int.from_bytes(stored, "big") == i
        assert wire.dropped == 1
        assert client.rnic.stats.retransmissions >= 1

    def test_timeouts_back_off_exponentially(self):
        obs = Observability(trace=WireTrace())
        with obs.activate():
            sim = Simulator()
            config = RnicConfig(
                enable_retransmit=True,
                retransmit_timeout_ns=usec(20),
                retransmit_backoff=2.0,
                max_retries=3,
            )
            client, server, link, rdma, region = make_rdma_pair(
                sim, client_config=config
            )
            plan = FaultPlan(seed=1)
            plan.at(0.0, plan.on_link(link, name="wire"), Blackout())
            plan.install(sim)
            done = []
            rdma.write(region.base_address, region.rkey, b"x", done.append)
            sim.run()
        retx_times = [
            e.t_ns for e in obs.trace.events if e.kind == KIND_RETX
        ]
        assert len(retx_times) == 3  # one per retry round
        gaps = [b - a for a, b in zip(retx_times, retx_times[1:])]
        # Each round waits retransmit_backoff x longer than the last.
        assert all(later > earlier for earlier, later in zip(gaps, gaps[1:]))
        assert gaps[1] == pytest.approx(2 * usec(20) * 2, rel=0.5)

    def test_exhaustion_completes_with_error_and_fires_hook(self, sim):
        config = RnicConfig(
            enable_retransmit=True,
            retransmit_timeout_ns=usec(10),
            max_retries=2,
        )
        client, server, link, rdma, region = make_rdma_pair(
            sim, client_config=config
        )
        plan = FaultPlan(seed=1)
        plan.at(0.0, plan.on_link(link, name="wire"), Blackout())
        plan.install(sim)
        exhausted = []
        client.rnic.on_retry_exhausted = exhausted.append
        done = []
        rdma.write(region.base_address, region.rkey, b"x", done.append)
        sim.run()
        assert done and not done[0].success
        assert client.rnic.stats.retries_exhausted == 1
        assert len(exhausted) == 1  # the QP whose window died

    def test_exhaustion_escalates_into_health_monitor(self, sim):
        config = RnicConfig(
            enable_retransmit=True,
            retransmit_timeout_ns=usec(10),
            max_retries=1,
        )
        client, server, link, rdma, region = make_rdma_pair(
            sim, client_config=config
        )
        monitor = HealthMonitor(fail_after=1)
        monitor.watch_requester("s0", client.rnic)
        plan = FaultPlan(seed=1)
        plan.at(0.0, plan.on_link(link, name="wire"), Blackout())
        plan.install(sim)
        rdma.write(region.base_address, region.rkey, b"x")
        sim.run()
        assert monitor.members["s0"].timeouts == 1
        assert not monitor.is_alive("s0")

    def test_disabled_retransmit_still_fails_fast(self, sim):
        client, server, link, rdma, region = make_rdma_pair(sim)
        plan = FaultPlan(seed=1)
        plan.at(0.0, plan.on_link(link, name="wire"), Blackout())
        plan.install(sim)
        done = []
        rdma.write(region.base_address, region.rkey, b"x", done.append)
        sim.run()
        assert done == []  # no recovery machinery, no completion
        assert client.rnic.stats.retransmissions == 0


# -- RNIC-side faults ---------------------------------------------------------


class TestRnicFaults:
    def test_drop_burst_is_absorbed_by_retransmit(self, sim):
        client, server, link, rdma, region = make_rdma_pair(
            sim, client_config=RnicConfig(**RETX_CONFIG)
        )
        plan = FaultPlan(seed=1)
        nic = plan.on_rnic(server.rnic, name="server")
        plan.at(0.0, nic, RnicDropBurst(3))
        plan.install(sim)
        done = []
        for i in range(8):
            rdma.write(
                region.base_address + i * 8,
                region.rkey,
                i.to_bytes(8, "big"),
                done.append,
            )
        sim.run()
        assert len(done) == 8 and all(c.success for c in done)
        assert nic.effects["burst_drops"] == 3
        for i in range(8):
            stored = region.read(region.base_address + i * 8, 8)
            assert int.from_bytes(stored, "big") == i

    def test_blackout_window_recovers_after_healing(self, sim):
        client, server, link, rdma, region = make_rdma_pair(
            sim, client_config=RnicConfig(**RETX_CONFIG)
        )
        plan = FaultPlan(seed=1)
        nic = plan.on_rnic(server.rnic, name="server")
        plan.at(0.0, nic, RnicBlackout(), duration_ns=usec(30))
        plan.install(sim)
        done = []
        for i in range(6):
            rdma.write(
                region.base_address + i * 8, region.rkey, b"z", done.append
            )
        sim.run()
        assert len(done) == 6 and all(c.success for c in done)
        assert nic.effects["blackouts"] == 1
        assert nic.effects["blackout_drops"] >= 1
        assert not nic.blackout  # healed

    def test_atomic_stall_delays_fetch_add_completion(self, sim):
        client, server, link, rdma, region = make_rdma_pair(sim)
        plan = FaultPlan(seed=1)
        nic = plan.on_rnic(server.rnic, name="server")
        plan.at(0.0, nic, AtomicEngineStall(usec(50)))
        plan.install(sim)
        done = []
        rdma.fetch_add(region.base_address, region.rkey, 1, done.append)
        sim.run()
        assert done and done[0].success
        assert done[0].completion_time_ns >= usec(50)
        assert nic.effects["atomic_stalls"] == 1


# -- the chaos experiment -----------------------------------------------------


class TestChaosExperiment:
    def test_same_seed_runs_are_identical(self):
        from repro.experiments.chaos import run_chaos_point

        a = run_chaos_point(0.02, packets=400, seed=11)
        b = run_chaos_point(0.02, packets=400, seed=11)
        assert a.__dict__ == b.__dict__
        assert a.link_drops > 0
        assert a.lost_updates == 0

    def test_unreliable_mode_actually_loses_updates(self):
        from repro.experiments.chaos import run_chaos_point

        row = run_chaos_point(0.05, packets=500, seed=11, reliable=False)
        assert row.link_drops > 0
        assert row.lost_updates > 0  # the ablation the paper's §5 implies

    def test_mid_run_blackout_loses_zero_state_store_updates(self):
        """Satellite acceptance: a dead link mid-count costs nothing."""
        from repro.api import (
            CountingProgram,
            FiveTuple,
            RemoteStateStore,
            StateStoreConfig,
            build_testbed,
        )
        from repro.net.headers import UdpHeader
        from repro.rdma.constants import ATOMIC_OPERAND_BYTES
        from repro.workloads.perftest import RawEthernetBw

        counters = 1 << 10
        packets = 800
        tb = build_testbed(n_hosts=2)
        program = CountingProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, counters * ATOMIC_OPERAND_BYTES
        )
        store = RemoteStateStore(
            tb.switch,
            channel,
            config=StateStoreConfig(
                counters=counters, reliable=True, retry_timeout_ns=50_000.0
            ),
        )
        program.use_state_store(store)

        plan = FaultPlan(seed=9)
        wire = plan.on_link(tb.server_link, name="server-link")
        plan.at(usec(300), wire, Blackout(), duration_ns=usec(80))
        plan.install(tb.sim)

        src, dst = tb.hosts
        expected = {}
        for seq in range(packets):
            flow = FiveTuple(
                src_ip=src.eth.ip.value,
                dst_ip=dst.eth.ip.value,
                protocol=17,
                src_port=10_000 + (seq % 16),
                dst_port=20_000,
            )
            index = flow.hash() % counters
            expected[index] = expected.get(index, 0) + 1

        def stamp(packet, seq):
            packet.require(UdpHeader).src_port = 10_000 + (seq % 16)

        RawEthernetBw(
            tb.sim, src, dst,
            packet_size=128, rate_bps=1e9, count=packets,
            dst_port=20_000, stamp=stamp,
        ).start()
        tb.sim.run()
        for _ in range(64):
            if store.pending_value == 0 and store.outstanding == 0:
                break
            store.flush_all()
            tb.sim.run()

        recovered = {
            i: store.read_counter_via_control_plane(i) for i in expected
        }
        assert wire.effects["blackout_dropped"] > 0  # the blackout bit
        assert recovered == expected  # ...and cost zero updates
