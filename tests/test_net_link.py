"""Tests for interfaces, queues and links: timing, drops, counters."""

import pytest

from repro.net.link import connect
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.queues import TxQueue
from repro.sim.simulator import Simulator
from repro.sim.units import gbps
from tests.test_net_packet import make_udp_packet


class SinkNode(Node):
    """Records every delivered packet with its arrival time."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, interface):
        self.received.append((self.sim.now, packet))


def make_pair(sim, rate_bps=gbps(40), propagation_ns=250.0, **link_kwargs):
    a = SinkNode(sim, "a")
    b = SinkNode(sim, "b")
    ia = a.add_interface("eth0", "02:00:00:00:00:0a")
    ib = b.add_interface("eth0", "02:00:00:00:00:0b")
    link = connect(sim, ia, ib, rate_bps, propagation_ns=propagation_ns, **link_kwargs)
    return a, b, ia, ib, link


def test_delivery_time_is_serialization_plus_propagation():
    sim = Simulator()
    _, b, ia, _, _ = make_pair(sim)
    packet = make_udp_packet(payload=b"p" * 1458)  # 1500 B frame, 1520 B wire
    ia.send(packet)
    sim.run()
    (arrival, received), = b.received
    assert received is packet
    expected = packet.wire_len * 8 / 40e9 * 1e9 + 250.0
    assert arrival == pytest.approx(expected)


def test_back_to_back_packets_serialize_sequentially():
    sim = Simulator()
    _, b, ia, _, _ = make_pair(sim, propagation_ns=0.0)
    p1, p2 = make_udp_packet(), make_udp_packet()
    ia.send(p1)
    ia.send(p2)
    sim.run()
    t1, t2 = (t for t, _ in b.received)
    assert t2 == pytest.approx(2 * t1)


def test_duplex_directions_are_independent():
    sim = Simulator()
    a, b, ia, ib, _ = make_pair(sim)
    ia.send(make_udp_packet())
    ib.send(make_udp_packet())
    sim.run()
    assert len(a.received) == 1
    assert len(b.received) == 1


def test_tx_rx_counters():
    sim = Simulator()
    _, _, ia, ib, _ = make_pair(sim)
    packet = make_udp_packet()
    ia.send(packet)
    sim.run()
    assert ia.tx_packets == 1
    assert ia.tx_bytes == packet.wire_len
    assert ib.rx_packets == 1
    assert ib.rx_bytes == packet.wire_len


def test_drop_tail_queue_drops_when_full():
    sim = Simulator()
    a = SinkNode(sim, "a")
    b = SinkNode(sim, "b")
    queue = TxQueue(capacity_bytes=3000)
    ia = a.add_interface("eth0", "02:00:00:00:00:0a", queue=queue)
    ib = b.add_interface("eth0", "02:00:00:00:00:0b")
    connect(sim, ia, ib, gbps(1))
    packets = [make_udp_packet(payload=b"x" * 1458) for _ in range(5)]
    admitted = [ia.send(p) for p in packets]
    # First goes straight to the serializer; queue then holds 2 x 1500 B.
    assert admitted == [True, True, True, False, False]
    assert queue.dropped_packets == 2
    sim.run()
    assert len(b.received) == 3


def test_link_loss_probability_drops_packets():
    sim = Simulator()
    _, b, ia, _, link = make_pair(sim, loss_probability=1.0)
    ia.send(make_udp_packet())
    sim.run()
    assert b.received == []
    assert link.lost_packets == 1


def test_link_taps_observe_traffic():
    sim = Simulator()
    _, _, ia, _, link = make_pair(sim)
    seen = []
    link.taps.append(lambda src, pkt: seen.append((src, pkt)))
    packet = make_udp_packet()
    ia.send(packet)
    sim.run()
    assert seen == [(ia, packet)]


def test_queue_admits_checks_without_side_effects():
    queue = TxQueue(capacity_packets=1)
    p = make_udp_packet()
    assert queue.admits(p)
    assert queue.offer(p)
    assert not queue.admits(p)
    assert queue.dropped_packets == 0  # admits() never counts drops


class TestFastPath:
    """The precomputed ``_fast`` flag must track taps/loss/injector exactly
    and never change observable behaviour — only which branch runs."""

    def test_idle_link_starts_fast(self):
        sim = Simulator()
        *_, link = make_pair(sim)
        assert link._fast

    def test_lossy_link_starts_slow(self):
        sim = Simulator()
        *_, link = make_pair(sim, loss_probability=0.5)
        assert not link._fast
        link.loss_probability = 0.0
        assert link._fast

    def test_tap_mutations_toggle_flag(self):
        sim = Simulator()
        *_, link = make_pair(sim)
        tap = lambda src, pkt: None
        link.taps.append(tap)
        assert not link._fast
        link.taps.remove(tap)
        assert link._fast
        link.taps.extend([tap, tap])
        assert not link._fast
        link.taps.pop()
        assert not link._fast  # one tap left
        link.taps.clear()
        assert link._fast
        link.taps += [tap]
        assert not link._fast
        del link.taps[0]
        assert link._fast

    def test_loss_probability_setter_toggles_flag_and_validates(self):
        sim = Simulator()
        *_, link = make_pair(sim)
        link.loss_probability = 0.25
        assert not link._fast
        link.loss_probability = 0.0
        assert link._fast
        with pytest.raises(ValueError):
            link.loss_probability = 1.5
        with pytest.raises(ValueError):
            link.loss_probability = -0.1
        assert link._fast  # rejected assignment leaves the flag alone

    def test_fault_injector_setter_toggles_flag(self):
        sim = Simulator()
        *_, link = make_pair(sim)

        class _Injector:
            def carry(self, link, src, packet):
                link.sim.post_delivery(link.propagation_ns, link.peer_of(src), packet)

        link.fault_injector = _Injector()
        assert not link._fast
        link.fault_injector = None
        assert link._fast

    def test_slow_path_delivers_identically(self):
        """With a no-op tap forcing the slow path, arrival times and
        packets match the fast path exactly."""

        def run(slow):
            sim = Simulator()
            _, b, ia, _, link = make_pair(sim)
            if slow:
                link.taps.append(lambda src, pkt: None)
            assert link._fast is (not slow)
            for _ in range(3):
                ia.send(make_udp_packet())
            sim.run()
            return [(t, p.pack()) for t, p in b.received]

        assert run(slow=False) == run(slow=True)

    def test_foreign_interface_rejected_on_both_paths(self):
        sim = Simulator()
        *_, link = make_pair(sim)
        stranger = SinkNode(sim, "s").add_interface("eth0", "02:00:00:00:00:ff")
        with pytest.raises(ValueError):
            link.carry(stranger, make_udp_packet())
        link.taps.append(lambda src, pkt: None)  # force slow path
        with pytest.raises(ValueError):
            link.carry(stranger, make_udp_packet())


def test_interface_without_link_raises():
    sim = Simulator()
    node = SinkNode(sim, "lonely")
    iface = node.add_interface("eth0", "02:00:00:00:00:01")
    with pytest.raises(RuntimeError):
        iface.send(make_udp_packet())


def test_duplicate_interface_name_rejected():
    sim = Simulator()
    node = SinkNode(sim, "n")
    node.add_interface("eth0", "02:00:00:00:00:01")
    with pytest.raises(ValueError):
        node.add_interface("eth0", "02:00:00:00:00:02")
