"""Pack-cache correctness for the header codecs.

Every header caches its serialized bytes (see
:class:`repro.net.headers.CachedPackMixin`).  These tests pin the contract
that makes the cache safe to rely on everywhere:

* ``pack()`` after any field mutation reflects the new value — the cache
  is invalidated by assignment, including assignment on a header that was
  built by ``unpack()`` (whose cache is pre-seeded with the wire bytes);
* re-assigning the *same* value keeps the cached bytes valid;
* ``pack``/``unpack`` round-trips stay exact under both regimes.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.headers import EthernetHeader, Ipv4Header, UdpHeader
from repro.rdma.headers import (
    AethHeader,
    AtomicAckEthHeader,
    AtomicEthHeader,
    BthHeader,
    IcrcTrailer,
    RethHeader,
)

macs = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MacAddress)
ips = st.integers(min_value=0, max_value=(1 << 32) - 1).map(Ipv4Address)


class TestCacheInvalidation:
    def test_mutate_after_pack_repacks(self):
        ip = Ipv4Header(src=Ipv4Address("10.0.0.1"), dst=Ipv4Address("10.0.0.2"))
        before = ip.pack()
        ip.ttl = 7
        after = ip.pack()
        assert after != before
        assert Ipv4Header.unpack(after).ttl == 7

    def test_same_value_assignment_keeps_cache(self):
        ip = Ipv4Header(src=Ipv4Address("10.0.0.1"), dst=Ipv4Address("10.0.0.2"))
        first = ip.pack()
        ip.ttl = ip.ttl  # a no-op rewrite, e.g. fixup_lengths re-stamping
        assert ip.pack() is first

    def test_repeated_pack_is_cached(self):
        bth = BthHeader(opcode=0x0A, dest_qp=5, psn=9)
        assert bth.pack() is bth.pack()

    def test_mutate_after_unpack_repacks(self):
        raw = BthHeader(opcode=0x0A, dest_qp=5, psn=9).pack()
        bth = BthHeader.unpack(raw)
        assert bth.pack() == raw  # pre-seeded from the wire bytes
        bth.psn = 10
        assert bth.pack() != raw
        assert BthHeader.unpack(bth.pack()).psn == 10

    def test_every_ipv4_field_invalidates(self):
        mutations = {
            "ttl": 9,
            "protocol": 6,
            "total_length": 99,
            "dscp": 11,
            "ecn": 1,
            "identification": 0x1234,
            "flags": 0,
            "fragment_offset": 100,
            "src": Ipv4Address("192.168.0.1"),
            "dst": Ipv4Address("192.168.0.2"),
        }
        for field, value in mutations.items():
            ip = Ipv4Header(
                src=Ipv4Address("10.0.0.1"), dst=Ipv4Address("10.0.0.2")
            )
            before = ip.pack()
            setattr(ip, field, value)
            after = ip.pack()
            assert after != before, f"mutating {field} did not invalidate"
            assert getattr(Ipv4Header.unpack(after), field) == value

    def test_checksum_tracks_mutation(self):
        ip = Ipv4Header(src=Ipv4Address("10.0.0.1"), dst=Ipv4Address("10.0.0.2"))
        ip.pack()
        ip.identification = 0xBEEF
        # unpack verifies the checksum, so a stale checksum would raise.
        assert Ipv4Header.unpack(ip.pack()).identification == 0xBEEF

    def test_udp_length_stamp(self):
        udp = UdpHeader(src_port=1, dst_port=2)
        udp.pack()
        udp.length = 42
        assert UdpHeader.unpack(udp.pack()).length == 42

    def test_icrc_compute_memoized_and_correct(self):
        import zlib

        payload = b"payload" * 11
        a = IcrcTrailer.compute(payload)
        b = IcrcTrailer.compute(payload)
        assert a.value == b.value == zlib.crc32(payload) & 0xFFFFFFFF
        assert IcrcTrailer.compute(payload + b"x").value != a.value


class TestRoundTripProperties:
    @given(dst=macs, src=macs, ethertype=st.integers(0, 0xFFFF))
    def test_ethernet(self, dst, src, ethertype):
        eth = EthernetHeader(dst=dst, src=src, ethertype=ethertype)
        again = EthernetHeader.unpack(eth.pack())
        assert again == eth
        assert again.pack() == eth.pack()

    @given(
        src=ips,
        dst=ips,
        ttl=st.integers(0, 255),
        total_length=st.integers(20, 0xFFFF),
        identification=st.integers(0, 0xFFFF),
        dscp=st.integers(0, 0x3F),
        ecn=st.integers(0, 3),
    )
    def test_ipv4(self, src, dst, ttl, total_length, identification, dscp, ecn):
        ip = Ipv4Header(
            src=src,
            dst=dst,
            ttl=ttl,
            total_length=total_length,
            identification=identification,
            dscp=dscp,
            ecn=ecn,
        )
        again = Ipv4Header.unpack(ip.pack())
        assert again == ip
        assert again.pack() == ip.pack()

    @given(
        src_port=st.integers(0, 0xFFFF),
        dst_port=st.integers(0, 0xFFFF),
        length=st.integers(0, 0xFFFF),
    )
    def test_udp(self, src_port, dst_port, length):
        udp = UdpHeader(src_port=src_port, dst_port=dst_port, length=length)
        assert UdpHeader.unpack(udp.pack()) == udp

    @given(
        opcode=st.integers(0, 0xFF),
        dest_qp=st.integers(0, (1 << 24) - 1),
        psn=st.integers(0, (1 << 24) - 1),
        ack_request=st.booleans(),
        pad_count=st.integers(0, 3),
    )
    def test_bth(self, opcode, dest_qp, psn, ack_request, pad_count):
        bth = BthHeader(
            opcode=opcode,
            dest_qp=dest_qp,
            psn=psn,
            ack_request=ack_request,
            pad_count=pad_count,
        )
        assert BthHeader.unpack(bth.pack()) == bth

    @given(
        va=st.integers(0, (1 << 64) - 1),
        rkey=st.integers(0, (1 << 32) - 1),
        dma_length=st.integers(0, (1 << 32) - 1),
    )
    def test_reth(self, va, rkey, dma_length):
        reth = RethHeader(virtual_address=va, rkey=rkey, dma_length=dma_length)
        assert RethHeader.unpack(reth.pack()) == reth

    @given(
        va=st.integers(0, (1 << 64) - 1),
        rkey=st.integers(0, (1 << 32) - 1),
        swap_add=st.integers(0, (1 << 64) - 1),
        compare=st.integers(0, (1 << 64) - 1),
    )
    def test_atomic_eth(self, va, rkey, swap_add, compare):
        ath = AtomicEthHeader(
            virtual_address=va, rkey=rkey, swap_add=swap_add, compare=compare
        )
        assert AtomicEthHeader.unpack(ath.pack()) == ath

    @given(syndrome=st.integers(0, 0xFF), msn=st.integers(0, (1 << 24) - 1))
    def test_aeth(self, syndrome, msn):
        aeth = AethHeader(syndrome=syndrome, msn=msn)
        assert AethHeader.unpack(aeth.pack()) == aeth

    @given(value=st.integers(0, (1 << 64) - 1))
    def test_atomic_ack(self, value):
        ack = AtomicAckEthHeader(original_data=value)
        assert AtomicAckEthHeader.unpack(ack.pack()) == ack

    @given(
        psn=st.integers(0, (1 << 24) - 1),
        new_psn=st.integers(0, (1 << 24) - 1),
    )
    def test_mutate_after_pack_round_trips(self, psn, new_psn):
        """The invalidation property, for arbitrary values."""
        bth = BthHeader(opcode=0x0A, dest_qp=1, psn=psn)
        bth.pack()
        bth.psn = new_psn
        assert BthHeader.unpack(bth.pack()).psn == new_psn


def _roce_packet(psn: int, payload: bytes, dscp: int = 0):
    from repro.net.packet import Packet

    return Packet(
        headers=[
            EthernetHeader(dst=MacAddress(2), src=MacAddress(1)),
            Ipv4Header(
                src=Ipv4Address("10.0.0.1"), dst=Ipv4Address("10.0.0.2"),
                dscp=dscp,
            ),
            UdpHeader(src_port=1000, dst_port=4791),
            BthHeader(opcode=0x0A, dest_qp=0x11, psn=psn),
            RethHeader(virtual_address=0x1000, rkey=0x42, dma_length=len(payload)),
        ],
        payload=payload,
        trailers=[IcrcTrailer()],
    )


class TestPacketPool:
    """The free-list pool must be invisible to correctness: a recycled
    packet can never alias a live one, and pooled clones keep every
    cached-pack invalidation guarantee of a constructor-built clone."""

    @given(
        psns=st.lists(st.integers(0, (1 << 24) - 1), min_size=1, max_size=8),
        payload=st.binary(min_size=0, max_size=64),
        other_payload=st.binary(min_size=0, max_size=64),
    )
    def test_release_then_reacquire_never_aliases_live_packet(
        self, psns, payload, other_payload
    ):
        from repro.net.packet import PacketPool

        pool = PacketPool()
        live = []
        for psn in psns:
            # Clone a packet, keep the clone alive, release the *source*:
            # the recycled shell must never share headers/payload/stacks
            # with the clone that outlives it.
            source = _roce_packet(psn, payload)
            keep = pool.clone(source)
            source.release(pool)
            live.append((keep, keep.pack()))
            reacquired = pool.clone(_roce_packet(psn ^ 0xFFFF, other_payload))
            assert reacquired is not keep
            assert reacquired._headers is not keep._headers
            for h_new in reacquired.headers:
                for live_packet, _ in live:
                    assert all(h_new is not h for h in live_packet.headers)
        # Every live clone still packs to the bytes it packed originally.
        for keep, packed in live:
            assert keep.pack() == packed

    def test_double_release_is_single_entry(self):
        from repro.net.packet import PacketPool

        pool = PacketPool()
        packet = _roce_packet(1, b"x")
        packet.release(pool)
        packet.release(pool)
        assert len(pool) == 1
        a = pool.acquire(payload=b"a")
        b = pool.acquire(payload=b"b")
        assert a is not b
        assert a.payload == b"a" and b.payload == b"b"

    def test_acquired_shell_is_fresh(self):
        from repro.net.packet import PacketPool

        pool = PacketPool()
        packet = _roce_packet(5, b"hello")
        packet.meta["flow"] = 7
        old_id = packet.packet_id
        packet.release(pool)
        again = pool.acquire(payload=b"other")
        assert again.packet_id != old_id
        assert again.headers == [] and again.trailers == []
        assert again.meta == {}
        assert again.payload == b"other"
        assert again.frame_len  # size caches rebuilt, no stale totals

    @given(
        psn=st.integers(0, (1 << 24) - 1),
        new_psn=st.integers(0, (1 << 24) - 1),
        dscp=st.integers(0, 0x3F),
    )
    def test_pooled_clone_keeps_cached_pack_invalidation(self, psn, new_psn, dscp):
        from repro.net.packet import PacketPool

        pool = PacketPool()
        # Warm the free list so the clone under test reuses header scratch.
        pool.clone(_roce_packet(0, b"warm")).release(pool)

        source = _roce_packet(psn, b"payload", dscp=dscp)
        source_raw = source.pack()
        clone = pool.clone(source)
        assert clone.pack() == source_raw
        # Mutating the clone's header invalidates its cached bytes...
        clone.require(BthHeader).psn = new_psn
        assert BthHeader.unpack(clone.pack()[42:54]).psn == new_psn
        # ...and never touches the source's headers or cached bytes.
        assert source.require(BthHeader).psn == psn
        assert source.pack() == source_raw

    def test_pooled_clone_matches_constructor_clone(self):
        from repro.net.packet import PacketPool

        pool = PacketPool()
        pool.clone(_roce_packet(9, b"warm")).release(pool)
        source = _roce_packet(123, b"data" * 8)
        source.meta["tags"] = [1, 2]
        plain = source.clone()
        pooled = pool.clone(source)
        assert pooled.headers == plain.headers
        assert pooled.trailers == plain.trailers
        assert pooled.payload == plain.payload
        assert pooled.meta == plain.meta
        assert pooled.meta["tags"] is not source.meta["tags"]  # deep-copied
        assert pool.hits == 1 and pool.misses == 1  # warm-up missed, reuse hit
