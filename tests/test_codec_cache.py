"""Pack-cache correctness for the header codecs.

Every header caches its serialized bytes (see
:class:`repro.net.headers.CachedPackMixin`).  These tests pin the contract
that makes the cache safe to rely on everywhere:

* ``pack()`` after any field mutation reflects the new value — the cache
  is invalidated by assignment, including assignment on a header that was
  built by ``unpack()`` (whose cache is pre-seeded with the wire bytes);
* re-assigning the *same* value keeps the cached bytes valid;
* ``pack``/``unpack`` round-trips stay exact under both regimes.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.headers import EthernetHeader, Ipv4Header, UdpHeader
from repro.rdma.headers import (
    AethHeader,
    AtomicAckEthHeader,
    AtomicEthHeader,
    BthHeader,
    IcrcTrailer,
    RethHeader,
)

macs = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MacAddress)
ips = st.integers(min_value=0, max_value=(1 << 32) - 1).map(Ipv4Address)


class TestCacheInvalidation:
    def test_mutate_after_pack_repacks(self):
        ip = Ipv4Header(src=Ipv4Address("10.0.0.1"), dst=Ipv4Address("10.0.0.2"))
        before = ip.pack()
        ip.ttl = 7
        after = ip.pack()
        assert after != before
        assert Ipv4Header.unpack(after).ttl == 7

    def test_same_value_assignment_keeps_cache(self):
        ip = Ipv4Header(src=Ipv4Address("10.0.0.1"), dst=Ipv4Address("10.0.0.2"))
        first = ip.pack()
        ip.ttl = ip.ttl  # a no-op rewrite, e.g. fixup_lengths re-stamping
        assert ip.pack() is first

    def test_repeated_pack_is_cached(self):
        bth = BthHeader(opcode=0x0A, dest_qp=5, psn=9)
        assert bth.pack() is bth.pack()

    def test_mutate_after_unpack_repacks(self):
        raw = BthHeader(opcode=0x0A, dest_qp=5, psn=9).pack()
        bth = BthHeader.unpack(raw)
        assert bth.pack() == raw  # pre-seeded from the wire bytes
        bth.psn = 10
        assert bth.pack() != raw
        assert BthHeader.unpack(bth.pack()).psn == 10

    def test_every_ipv4_field_invalidates(self):
        mutations = {
            "ttl": 9,
            "protocol": 6,
            "total_length": 99,
            "dscp": 11,
            "ecn": 1,
            "identification": 0x1234,
            "flags": 0,
            "fragment_offset": 100,
            "src": Ipv4Address("192.168.0.1"),
            "dst": Ipv4Address("192.168.0.2"),
        }
        for field, value in mutations.items():
            ip = Ipv4Header(
                src=Ipv4Address("10.0.0.1"), dst=Ipv4Address("10.0.0.2")
            )
            before = ip.pack()
            setattr(ip, field, value)
            after = ip.pack()
            assert after != before, f"mutating {field} did not invalidate"
            assert getattr(Ipv4Header.unpack(after), field) == value

    def test_checksum_tracks_mutation(self):
        ip = Ipv4Header(src=Ipv4Address("10.0.0.1"), dst=Ipv4Address("10.0.0.2"))
        ip.pack()
        ip.identification = 0xBEEF
        # unpack verifies the checksum, so a stale checksum would raise.
        assert Ipv4Header.unpack(ip.pack()).identification == 0xBEEF

    def test_udp_length_stamp(self):
        udp = UdpHeader(src_port=1, dst_port=2)
        udp.pack()
        udp.length = 42
        assert UdpHeader.unpack(udp.pack()).length == 42

    def test_icrc_compute_memoized_and_correct(self):
        import zlib

        payload = b"payload" * 11
        a = IcrcTrailer.compute(payload)
        b = IcrcTrailer.compute(payload)
        assert a.value == b.value == zlib.crc32(payload) & 0xFFFFFFFF
        assert IcrcTrailer.compute(payload + b"x").value != a.value


class TestRoundTripProperties:
    @given(dst=macs, src=macs, ethertype=st.integers(0, 0xFFFF))
    def test_ethernet(self, dst, src, ethertype):
        eth = EthernetHeader(dst=dst, src=src, ethertype=ethertype)
        again = EthernetHeader.unpack(eth.pack())
        assert again == eth
        assert again.pack() == eth.pack()

    @given(
        src=ips,
        dst=ips,
        ttl=st.integers(0, 255),
        total_length=st.integers(20, 0xFFFF),
        identification=st.integers(0, 0xFFFF),
        dscp=st.integers(0, 0x3F),
        ecn=st.integers(0, 3),
    )
    def test_ipv4(self, src, dst, ttl, total_length, identification, dscp, ecn):
        ip = Ipv4Header(
            src=src,
            dst=dst,
            ttl=ttl,
            total_length=total_length,
            identification=identification,
            dscp=dscp,
            ecn=ecn,
        )
        again = Ipv4Header.unpack(ip.pack())
        assert again == ip
        assert again.pack() == ip.pack()

    @given(
        src_port=st.integers(0, 0xFFFF),
        dst_port=st.integers(0, 0xFFFF),
        length=st.integers(0, 0xFFFF),
    )
    def test_udp(self, src_port, dst_port, length):
        udp = UdpHeader(src_port=src_port, dst_port=dst_port, length=length)
        assert UdpHeader.unpack(udp.pack()) == udp

    @given(
        opcode=st.integers(0, 0xFF),
        dest_qp=st.integers(0, (1 << 24) - 1),
        psn=st.integers(0, (1 << 24) - 1),
        ack_request=st.booleans(),
        pad_count=st.integers(0, 3),
    )
    def test_bth(self, opcode, dest_qp, psn, ack_request, pad_count):
        bth = BthHeader(
            opcode=opcode,
            dest_qp=dest_qp,
            psn=psn,
            ack_request=ack_request,
            pad_count=pad_count,
        )
        assert BthHeader.unpack(bth.pack()) == bth

    @given(
        va=st.integers(0, (1 << 64) - 1),
        rkey=st.integers(0, (1 << 32) - 1),
        dma_length=st.integers(0, (1 << 32) - 1),
    )
    def test_reth(self, va, rkey, dma_length):
        reth = RethHeader(virtual_address=va, rkey=rkey, dma_length=dma_length)
        assert RethHeader.unpack(reth.pack()) == reth

    @given(
        va=st.integers(0, (1 << 64) - 1),
        rkey=st.integers(0, (1 << 32) - 1),
        swap_add=st.integers(0, (1 << 64) - 1),
        compare=st.integers(0, (1 << 64) - 1),
    )
    def test_atomic_eth(self, va, rkey, swap_add, compare):
        ath = AtomicEthHeader(
            virtual_address=va, rkey=rkey, swap_add=swap_add, compare=compare
        )
        assert AtomicEthHeader.unpack(ath.pack()) == ath

    @given(syndrome=st.integers(0, 0xFF), msn=st.integers(0, (1 << 24) - 1))
    def test_aeth(self, syndrome, msn):
        aeth = AethHeader(syndrome=syndrome, msn=msn)
        assert AethHeader.unpack(aeth.pack()) == aeth

    @given(value=st.integers(0, (1 << 64) - 1))
    def test_atomic_ack(self, value):
        ack = AtomicAckEthHeader(original_data=value)
        assert AtomicAckEthHeader.unpack(ack.pack()) == ack

    @given(
        psn=st.integers(0, (1 << 24) - 1),
        new_psn=st.integers(0, (1 << 24) - 1),
    )
    def test_mutate_after_pack_round_trips(self, psn, new_psn):
        """The invalidation property, for arbitrary values."""
        bth = BthHeader(opcode=0x0A, dest_qp=1, psn=psn)
        bth.pack()
        bth.psn = new_psn
        assert BthHeader.unpack(bth.pack()).psn == new_psn
