"""Unit tests for the pluggable SRAM cache policies (repro.policies.cache)."""

import pytest

from repro.policies import (
    CACHE_POLICIES,
    FifoCachePolicy,
    LfuCachePolicy,
    LruCachePolicy,
    PinningCachePolicy,
    make_cache_policy,
)
from repro.core.lookup_table import RemoteAction
from repro.switches.hashing import FiveTuple


def _flow(i: int) -> FiveTuple:
    return FiveTuple(
        src_ip=0x0A000001,
        dst_ip=0x0A000002,
        protocol=17,
        src_port=1000 + i,
        dst_port=2000,
    )


def _action(i: int) -> RemoteAction:
    return RemoteAction(1, i)


class TestFactory:
    def test_all_policies_constructible(self):
        for name in CACHE_POLICIES:
            policy = make_cache_policy(name, 8)
            policy.admit(_flow(1), _action(1))
            assert policy.lookup(_flow(1)) == _action(1)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            make_cache_policy("arc", 8)

    def test_classes_match_names(self):
        assert isinstance(make_cache_policy("fifo", 4), FifoCachePolicy)
        assert isinstance(make_cache_policy("lru", 4), LruCachePolicy)
        assert isinstance(make_cache_policy("lfu", 4), LfuCachePolicy)
        assert isinstance(make_cache_policy("pin", 4), PinningCachePolicy)


class TestFifo:
    def test_evicts_in_insertion_order(self):
        policy = make_cache_policy("fifo", 2)
        policy.admit(_flow(1), _action(1))
        policy.admit(_flow(2), _action(2))
        # Touching flow 1 does NOT protect it: FIFO ignores recency.
        assert policy.lookup(_flow(1)) == _action(1)
        inserted, evicted = policy.admit(_flow(3), _action(3))
        assert inserted == 1 and evicted == 1
        assert policy.lookup(_flow(1)) is None
        assert policy.lookup(_flow(2)) == _action(2)


class TestLru:
    def test_evicts_least_recently_used(self):
        policy = make_cache_policy("lru", 2)
        policy.admit(_flow(1), _action(1))
        policy.admit(_flow(2), _action(2))
        assert policy.lookup(_flow(1)) == _action(1)  # 1 is now most recent
        policy.admit(_flow(3), _action(3))
        assert policy.lookup(_flow(2)) is None
        assert policy.lookup(_flow(1)) == _action(1)

    def test_readmit_updates_value(self):
        policy = make_cache_policy("lru", 2)
        policy.admit(_flow(1), _action(1))
        policy.admit(_flow(1), _action(9))
        assert policy.lookup(_flow(1)) == _action(9)


class TestLfu:
    def test_evicts_least_frequently_used(self):
        policy = make_cache_policy("lfu", 2)
        policy.admit(_flow(1), _action(1))
        policy.admit(_flow(2), _action(2))
        for _ in range(3):
            assert policy.lookup(_flow(1)) == _action(1)
        policy.admit(_flow(3), _action(3))
        assert policy.lookup(_flow(2)) is None  # freq 1 < freq 4
        assert policy.lookup(_flow(1)) == _action(1)

    def test_frequency_ties_break_by_age(self):
        policy = make_cache_policy("lfu", 2)
        policy.admit(_flow(1), _action(1))
        policy.admit(_flow(2), _action(2))
        policy.admit(_flow(3), _action(3))  # both at freq 1: evict oldest
        assert policy.lookup(_flow(1)) is None
        assert policy.lookup(_flow(2)) == _action(2)


class TestPinning:
    def test_hot_flow_gets_pinned_and_survives_pressure(self):
        policy = make_cache_policy("pin", 4, seed=0, pin_threshold=2)
        policy.admit(_flow(0), _action(0))
        # Reference it past its promotion threshold (threshold + jitter<3).
        for _ in range(8):
            policy.lookup(_flow(0))
        # The next admit (the re-fetch after a miss, in table terms)
        # promotes the flow into the pinned region...
        policy.admit(_flow(0), _action(0))
        assert policy.pinned_flows >= 1
        # ...where a flood of one-hit wonders cannot displace it.
        for i in range(1, 20):
            policy.admit(_flow(i), _action(i))
        assert policy.lookup(_flow(0)) == _action(0)

    def test_pin_cap_leaves_lru_room(self):
        policy = make_cache_policy(
            "pin", 4, seed=0, pin_threshold=1, pin_fraction=0.75
        )
        for i in range(8):
            for _ in range(8):
                policy.lookup(_flow(i))
            policy.admit(_flow(i), _action(i))
        assert policy.pinned_flows <= 3  # cap = 0.75 * 4

    def test_threshold_jitter_is_seed_deterministic(self):
        a = make_cache_policy("pin", 8, seed=42, pin_threshold=4)
        b = make_cache_policy("pin", 8, seed=42, pin_threshold=4)
        thresholds_a = [a.flow_threshold(_flow(i)) for i in range(32)]
        thresholds_b = [b.flow_threshold(_flow(i)) for i in range(32)]
        assert thresholds_a == thresholds_b
        assert all(4 <= t <= 6 for t in thresholds_a)
        assert len(set(thresholds_a)) > 1  # jitter actually varies


class TestMetrics:
    def test_counters_emitted_under_scope(self):
        from repro.obs import MetricRegistry

        registry = MetricRegistry()
        scope = registry.scope("lookup.cache")
        policy = make_cache_policy("lru", 2, metrics_scope=scope)
        policy.lookup(_flow(1))  # miss
        policy.admit(_flow(1), _action(1))
        policy.lookup(_flow(1))  # hit
        policy.admit(_flow(2), _action(2))
        policy.admit(_flow(3), _action(3))  # evicts
        snap = registry.snapshot()
        assert snap["lookup.cache.hits"] == 1
        assert snap["lookup.cache.misses"] == 1
        assert snap["lookup.cache.inserts"] == 3
        assert snap["lookup.cache.evictions"] == 1
        assert snap["lookup.cache.size"] == 2
        assert snap["lookup.cache.hit_rate"] == pytest.approx(0.5)

    def test_standalone_counters_without_scope(self):
        policy = make_cache_policy("fifo", 2)
        policy.lookup(_flow(1))
        policy.admit(_flow(1), _action(1))
        policy.lookup(_flow(1))
        assert policy.hit_rate == pytest.approx(0.5)
