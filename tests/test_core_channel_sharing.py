"""Tests for region-shared channels (separate QPs, one memory region)."""

import pytest

from repro.apps.programs import StaticL2Program
from repro.core.channel import ChannelError
from repro.core.rocegen import RoceRequestGenerator
from repro.experiments.topology import build_testbed
from repro.sim.units import mib


def make_shared_testbed(n_memory_servers=1):
    tb = build_testbed(n_hosts=1, n_memory_servers=n_memory_servers)
    program = StaticL2Program()
    program.install(tb.hosts[0].eth.mac, tb.host_ports[0])
    for server, port in zip(tb.memory_servers, tb.server_ports):
        program.install(server.eth.mac, port)
    tb.switch.bind_program(program)
    return tb


class TestSharedRegionChannels:
    def test_shared_channel_uses_same_region(self):
        tb = make_shared_testbed()
        primary = tb.controller.open_channel(
            tb.memory_server, tb.server_port, mib(1)
        )
        shared = tb.controller.open_channel(
            tb.memory_server, tb.server_port, share_region_with=primary
        )
        assert shared.region is primary.region
        assert shared.rkey == primary.rkey
        assert shared.base_address == primary.base_address
        # But the QPs are distinct (that is the point).
        assert shared.switch_qp.qpn != primary.switch_qp.qpn
        assert shared.server_qp.qpn != primary.server_qp.qpn

    def test_sharing_does_not_consume_more_dram(self):
        tb = make_shared_testbed()
        primary = tb.controller.open_channel(
            tb.memory_server, tb.server_port, mib(1)
        )
        before = tb.memory_server.dram.registered_bytes
        tb.controller.open_channel(
            tb.memory_server, tb.server_port, share_region_with=primary
        )
        assert tb.memory_server.dram.registered_bytes == before

    def test_both_qps_reach_the_same_memory(self):
        tb = make_shared_testbed()
        primary = tb.controller.open_channel(
            tb.memory_server, tb.server_port, mib(1)
        )
        shared = tb.controller.open_channel(
            tb.memory_server, tb.server_port, share_region_with=primary
        )
        writer = RoceRequestGenerator(tb.switch, primary)
        reader = RoceRequestGenerator(tb.switch, shared)
        writer.write(primary.base_address, b"via-qp-A")
        tb.sim.run()
        reader.read(shared.base_address, 8)
        tb.sim.run()
        assert primary.region.read(primary.base_address, 8) == b"via-qp-A"
        # Independent PSN streams: each QP advanced on its own.
        assert primary.switch_qp.next_psn == 1
        assert shared.switch_qp.next_psn == 1

    def test_cross_server_sharing_rejected(self):
        tb = make_shared_testbed(n_memory_servers=2)
        primary = tb.controller.open_channel(
            tb.memory_servers[0], tb.server_ports[0], mib(1)
        )
        with pytest.raises(ChannelError):
            tb.controller.open_channel(
                tb.memory_servers[1],
                tb.server_ports[1],
                share_region_with=primary,
            )
