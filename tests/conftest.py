"""Shared fixtures: simulators, connected host pairs, small topologies."""

from __future__ import annotations

import pytest

from repro.net.link import connect
from repro.hosts.server import Host, MemoryServer
from repro.sim.simulator import Simulator
from repro.sim.units import gbps


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def host_pair(sim):
    """Two hosts joined by a 40 GbE link (client, server, link)."""
    client = Host(sim, "client", "02:00:00:00:00:01", "10.0.0.1")
    server = MemoryServer(sim, "server", "02:00:00:00:00:02", "10.0.0.2")
    link = connect(sim, client.eth, server.eth, rate_bps=gbps(40))
    return client, server, link
