"""Tests for the remote packet buffer primitive."""

import pytest

from repro.apps.programs import RemoteBufferProgram
from repro.core.packet_buffer import (
    ENTRY_SEQ_BYTES,
    PacketBufferConfig,
    RemotePacketBuffer,
)
from repro.experiments.topology import build_testbed
from repro.sim.units import kib, mib, usec
from repro.switches.traffic_manager import TrafficManagerConfig
from repro.workloads.perftest import PacketSink, RawEthernetBw

RECEIVER = 1  # hosts[1] is always the receiver behind the protected port


def build(
    buffer_bytes=kib(256),
    high=kib(64),
    low=kib(8),
    ring_entries=2048,
    entry_bytes=1600 + ENTRY_SEQ_BYTES,
    n_hosts=3,
    read_timeout_ns=None,
):
    """Hosts + memory server; the remote buffer protects the receiver port."""
    tb = build_testbed(
        n_hosts=n_hosts,
        tm_config=TrafficManagerConfig(buffer_bytes=buffer_bytes),
    )
    program = RemoteBufferProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, ring_entries * entry_bytes
    )
    primitive = RemotePacketBuffer(
        tb.switch,
        channel,
        protected_port=tb.host_ports[RECEIVER],
        config=PacketBufferConfig(
            entry_bytes=entry_bytes,
            high_watermark_bytes=high,
            low_watermark_bytes=low,
            read_timeout_ns=read_timeout_ns,
        ),
    )
    program.use_packet_buffer(primitive)
    return tb, program, primitive, channel


def blast(tb, count, packet_size=1500, rate=40e9, senders=(0, 2)):
    """Overload the receiver: each listed sender blasts `count` packets."""
    sink = PacketSink(tb.hosts[RECEIVER], dst_port=20_000)
    generators = []
    for s in senders:
        gen = RawEthernetBw(
            tb.sim,
            tb.hosts[s],
            tb.hosts[RECEIVER],
            packet_size=packet_size,
            rate_bps=rate,
            count=count,
            src_port=10_000 + s,
        )
        gen.start()
        generators.append(gen)
    return sink, generators


class TestNormalOperation:
    def test_below_watermark_no_remote_traffic(self):
        tb, program, primitive, channel = build()
        sink, _ = blast(tb, count=5, senders=(0,))
        tb.sim.run()
        assert sink.packets == 5
        assert primitive.stats.stored_packets == 0
        assert tb.memory_server.rnic.stats.requests_received == 0

    def test_overload_diverts_instead_of_dropping(self):
        tb, program, primitive, channel = build()
        sink, gens = blast(tb, count=100)
        tb.sim.run()
        assert primitive.stats.stored_packets > 0
        assert primitive.stats.loaded_packets == primitive.stats.stored_packets
        assert sink.packets == 200  # every packet eventually delivered
        assert tb.switch.tm.total_dropped_packets == 0

    def test_no_reordering_across_store_load(self):
        tb, program, primitive, channel = build()
        sink, _ = blast(tb, count=150)
        tb.sim.run()
        assert primitive.stats.stored_packets > 0
        assert sink.packets == 300
        assert sink.out_of_order == 0

    def test_ring_drains_and_mode_resets(self):
        tb, program, primitive, channel = build()
        blast(tb, count=100)
        tb.sim.run()
        assert primitive.stored_entries == 0
        assert not primitive.is_buffering
        assert primitive.stats.buffering_episodes >= 1

    def test_zero_cpu_on_memory_server(self):
        tb, program, primitive, channel = build()
        blast(tb, count=100)
        tb.sim.run()
        assert tb.memory_server.cpu_packets == 0

    def test_packet_contents_survive_round_trip(self):
        tb, program, primitive, channel = build()
        received = []
        tb.hosts[RECEIVER].packet_handlers.append(
            lambda p, i: received.append(p)
        )
        sink, _ = blast(tb, count=250, packet_size=700)
        tb.sim.run()
        assert primitive.stats.stored_packets > 0
        assert all(p.ipv4.dst == tb.hosts[RECEIVER].eth.ip for p in received)
        assert {p.buffer_len for p in received} == {700}

    def test_remote_ring_actually_holds_frames(self):
        tb, program, primitive, channel = build()
        blast(tb, count=100)
        tb.sim.run()
        # The server region saw one WRITE and one READ per diverted packet.
        assert channel.region.writes == primitive.stats.stored_packets
        assert channel.region.reads == primitive.stats.stored_packets


class TestEdgeCases:
    def test_ring_full_drops_counted(self):
        tb, program, primitive, channel = build(ring_entries=4)
        assert primitive.capacity_entries == 4
        sink, _ = blast(tb, count=200)
        tb.sim.run()
        assert primitive.stats.ring_full_drops > 0
        assert sink.packets < 400

    def test_oversize_packet_dropped_not_corrupted(self):
        tb, program, primitive, channel = build(entry_bytes=256)
        sink, _ = blast(tb, count=60, packet_size=1500)
        tb.sim.run()
        assert primitive.stats.oversize_drops > 0
        # Nothing undersized was ever loaded back corrupted.
        assert primitive.stats.loaded_packets == primitive.stats.stored_packets

    def test_protected_port_cannot_be_server_port(self):
        tb = build_testbed()
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, mib(1)
        )
        with pytest.raises(ValueError):
            RemotePacketBuffer(
                tb.switch, channel, protected_port=tb.server_port
            )

    def test_channel_smaller_than_entry_rejected(self):
        tb = build_testbed()
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, 100
        )
        with pytest.raises(ValueError):
            RemotePacketBuffer(tb.switch, channel, protected_port=0)

    def test_second_hook_rejected(self):
        tb, program, primitive, channel = build()
        channel2 = tb.controller.open_channel(
            tb.memory_server, tb.server_port, mib(1)
        )
        with pytest.raises(RuntimeError):
            RemotePacketBuffer(tb.switch, channel2, protected_port=0)

    def test_ring_wraps_correctly(self):
        tb, program, primitive, channel = build(ring_entries=8)
        sink, _ = blast(tb, count=100)
        tb.sim.run()
        assert primitive.stats.stored_packets > 8  # wrapped at least once
        assert sink.out_of_order == 0
        assert (
            sink.packets
            + primitive.stats.ring_full_drops
            + tb.switch.tm.total_dropped_packets
            == 200
        )


class TestLossRecovery:
    def test_lost_write_becomes_lost_packet_not_duplicate(self):
        tb, program, primitive, channel = build(read_timeout_ns=usec(100))
        # Lose a slice of traffic on the server link mid-burst.
        sink, _ = blast(tb, count=150)
        tb.sim.schedule(
            usec(10), lambda: setattr(tb.server_link, "loss_probability", 0.2)
        )
        tb.sim.schedule(
            usec(25), lambda: setattr(tb.server_link, "loss_probability", 0.0)
        )
        tb.sim.run(max_events=2_000_000)
        total_accounted = (
            sink.packets
            + primitive.stats.lost_in_transit
            + primitive.stats.ring_full_drops
            + tb.switch.tm.total_dropped_packets
        )
        # Every sent packet is either delivered or accounted as a loss —
        # never delivered twice.
        assert sink.packets < 300
        assert total_accounted == 300
        assert sink.out_of_order == 0

    def test_watchdog_recovers_read_chain(self):
        tb, program, primitive, channel = build(read_timeout_ns=usec(50))
        sink, _ = blast(tb, count=100)
        # Kill the server link entirely for a while: reads stall.
        tb.sim.schedule(
            usec(8), lambda: setattr(tb.server_link, "loss_probability", 1.0)
        )
        tb.sim.schedule(
            usec(60), lambda: setattr(tb.server_link, "loss_probability", 0.0)
        )
        tb.sim.run(max_events=2_000_000)
        assert primitive.stats.read_recoveries >= 1
        # After healing, the ring drains completely.
        assert primitive.stored_entries == 0
        assert not primitive.is_buffering
