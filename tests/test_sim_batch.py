"""Batch-kernel specifics: dispatch, cohort draining, delivery coalescing.

The generic kernel contract runs over both kernels in
``test_sim_simulator.py``; this module covers what only the batch kernel
does — the ``Simulator()`` dispatch machinery, fire-and-forget ``post``
entries, adjacency-based delivery coalescing, and the columnar calendar's
introspection — plus randomized cross-kernel equivalence.
"""

import random

import pytest

from repro.sim.batch import BatchSimulator
from repro.sim.simulator import (
    KERNELS,
    SimulationError,
    Simulator,
    default_kernel,
    kernel_mode,
    set_default_kernel,
)


# -- kernel selection ---------------------------------------------------------


def test_default_kernel_is_scalar():
    assert default_kernel() == "scalar"
    assert type(Simulator()) is Simulator
    assert Simulator().kernel == "scalar"


def test_explicit_kernel_argument():
    assert type(Simulator(kernel="batch")) is BatchSimulator
    assert Simulator(kernel="batch").kernel == "batch"
    assert type(Simulator(kernel="scalar")) is Simulator


def test_kernel_mode_scopes_the_default():
    with kernel_mode("batch"):
        assert default_kernel() == "batch"
        assert type(Simulator()) is BatchSimulator
        # An explicit choice still beats the ambient default.
        assert type(Simulator(kernel="scalar")) is Simulator
    assert default_kernel() == "scalar"
    assert type(Simulator()) is Simulator


def test_kernel_mode_restores_on_error():
    with pytest.raises(RuntimeError, match="boom"):
        with kernel_mode("batch"):
            raise RuntimeError("boom")
    assert default_kernel() == "scalar"


def test_unknown_kernel_rejected():
    with pytest.raises(SimulationError):
        set_default_kernel("vectorized")
    with pytest.raises(SimulationError):
        Simulator(kernel="vectorized")
    assert "scalar" in KERNELS and "batch" in KERNELS


def test_direct_subclass_construction_ignores_default():
    # Constructing the subclass directly never consults the default.
    assert type(BatchSimulator()) is BatchSimulator
    with kernel_mode("batch"):
        assert type(BatchSimulator()) is BatchSimulator


# -- post / post_delivery ------------------------------------------------------


@pytest.fixture(params=["scalar", "batch"])
def sim(request):
    return Simulator(kernel=request.param)


def test_post_orders_with_scheduled_events(sim):
    out = []
    sim.schedule(5.0, out.append, "sched-1")
    sim.post(5.0, out.append, "post")
    sim.schedule(5.0, out.append, "sched-2")
    sim.post(5.0, lambda: out.append("post-noargs"))
    sim.run()
    assert out == ["sched-1", "post", "sched-2", "post-noargs"]


def test_post_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.post(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.post_delivery(-1.0, None, None)


def test_posted_events_count_as_active(sim):
    sim.post(5.0, lambda: None)
    sim.post(5.0, lambda _arg: None, "arg")
    assert sim.active_events == 2
    sim.run()
    assert sim.active_events == 0
    assert sim.events_processed == 2


class _FakeInterface:
    """Records every deliver/deliver_batch call, preserving call shape."""

    def __init__(self, name="if0"):
        self.name = name
        self.calls = []

    def deliver(self, packet):
        self.calls.append(("deliver", packet))

    def deliver_batch(self, packets):
        self.calls.append(("deliver_batch", list(packets)))


def test_post_delivery_fires_deliver(sim):
    iface = _FakeInterface()
    sim.post_delivery(10.0, iface, "pkt")
    sim.run()
    assert iface.calls == [("deliver", "pkt")]
    assert sim.events_processed == 1


def test_adjacent_same_interface_deliveries_coalesce():
    sim = BatchSimulator()
    iface = _FakeInterface()
    for n in range(3):
        sim.post_delivery(10.0, iface, f"pkt{n}")
    sim.run()
    assert iface.calls == [("deliver_batch", ["pkt0", "pkt1", "pkt2"])]
    # Each packet still counts as one fired event.
    assert sim.events_processed == 3


def test_interleaved_event_breaks_the_coalescing_run():
    sim = BatchSimulator()
    iface = _FakeInterface()
    out = []
    sim.post_delivery(10.0, iface, "a")
    sim.post_delivery(10.0, iface, "b")
    sim.post(10.0, out.append, "between")
    sim.post_delivery(10.0, iface, "c")
    sim.run()
    # a+b coalesce; the posted callback fires between them and c, exactly
    # as scheduling order dictates; the lone c arrives via deliver().
    assert iface.calls == [("deliver_batch", ["a", "b"]), ("deliver", "c")]
    assert out == ["between"]


def test_different_interfaces_do_not_coalesce():
    sim = BatchSimulator()
    left, right = _FakeInterface("left"), _FakeInterface("right")
    sim.post_delivery(10.0, left, "L1")
    sim.post_delivery(10.0, right, "R1")
    sim.post_delivery(10.0, left, "L2")
    sim.run()
    assert left.calls == [("deliver", "L1"), ("deliver", "L2")]
    assert right.calls == [("deliver", "R1")]


def test_different_timestamps_never_coalesce():
    sim = BatchSimulator()
    iface = _FakeInterface()
    sim.post_delivery(10.0, iface, "t10")
    sim.post_delivery(20.0, iface, "t20")
    sim.run()
    assert iface.calls == [("deliver", "t10"), ("deliver", "t20")]


def test_bounded_run_does_not_coalesce():
    # The deadline/budget path must stay per-event so slice-by-slice runs
    # match a straight run event for event.
    sim = BatchSimulator()
    iface = _FakeInterface()
    for n in range(4):
        sim.post_delivery(10.0, iface, n)
    sim.run(max_events=2)
    assert iface.calls == [("deliver", 0), ("deliver", 1)]
    sim.run()
    # The unbounded drain of the remainder coalesces again — same
    # packets, same order, one callback.
    assert iface.calls[2:] == [("deliver_batch", [2, 3])]


def test_zero_delay_post_lands_after_current_cohort():
    sim = BatchSimulator()
    out = []

    def first():
        out.append("first")
        sim.post(0.0, out.append, "reposted")

    sim.post(5.0, first)
    sim.post(5.0, out.append, "second")
    sim.run()
    assert out == ["first", "second", "reposted"]


# -- columnar introspection ----------------------------------------------------


def test_times_lane_is_typed_and_sorted():
    sim = BatchSimulator()
    for t in (30.0, 10.0, 20.0, 10.0):
        sim.post(t, lambda: None)
    lane = sim.times_lane()
    assert lane.typecode == "d"
    assert list(lane) == [10.0, 20.0, 30.0]  # distinct timestamps only
    sim.run()
    assert list(sim.times_lane()) == []


def test_active_events_excludes_cancelled_in_buckets():
    sim = BatchSimulator()
    live = sim.schedule(5.0, lambda: None)
    doomed = [sim.schedule(5.0, lambda: None) for _ in range(4)]
    sim.post(5.0, lambda: None)
    for event in doomed:
        event.cancel()
    assert sim.active_events == 2
    assert sim.pending_events == 2
    live.cancel()
    assert sim.active_events == 1


def test_step_drains_cohorts_one_event_at_a_time():
    sim = BatchSimulator()
    out = []
    for n in range(3):
        sim.post(5.0, out.append, n)
    assert sim.step() is True
    assert out == [0]
    assert sim.active_events == 2
    while sim.step():
        pass
    assert out == [0, 1, 2]
    assert sim.step() is False


# -- cross-kernel equivalence --------------------------------------------------


def _mixed_workload(sim, seed):
    """Random mix of schedule/post/cancel/nesting; returns the firing log."""
    rng = random.Random(seed)
    out = []
    handles = []

    def fire(tag):
        out.append((sim.now, tag))
        if rng.random() < 0.3:
            sim.post(rng.choice([0.0, 1.0, 5.0]), fire, f"{tag}/p")
        if rng.random() < 0.2:
            handles.append(sim.schedule(rng.choice([0.0, 2.0]), fire, f"{tag}/s"))
        if handles and rng.random() < 0.25:
            handles.pop(rng.randrange(len(handles))).cancel()

    for n in range(40):
        delay = rng.choice([0.0, 1.0, 1.0, 5.0, 7.5])
        if rng.random() < 0.5:
            sim.post(delay, fire, f"root{n}")
        else:
            handles.append(sim.schedule(delay, fire, f"root{n}"))
    sim.run(max_events=2000)
    sim.run()
    return out


@pytest.mark.parametrize("seed", [42, 7, 1234])
def test_kernels_fire_identically_on_random_workloads(seed):
    scalar = _mixed_workload(Simulator(), seed)
    batch = _mixed_workload(BatchSimulator(), seed)
    assert scalar == batch
    assert len(scalar) > 40


@pytest.mark.parametrize("seed", [3, 99])
def test_kernels_agree_under_sliced_runs(seed):
    def sliced(sim):
        log = _prime(sim, seed)
        while sim.active_events:
            sim.run(until_ns=sim.now + 2.0)
        return log

    def straight(sim):
        log = _prime(sim, seed)
        sim.run()
        return log

    def _prime(sim, seed):
        rng = random.Random(seed)
        out = []

        def fire(tag):
            out.append((sim.now, tag))
            if rng.random() < 0.4:
                sim.post(rng.choice([0.0, 1.5, 3.0]), fire, tag + "'")

        for n in range(30):
            sim.post(rng.choice([0.0, 1.0, 4.0]), fire, str(n))
        return out

    assert sliced(Simulator()) == sliced(BatchSimulator())
    assert straight(Simulator()) == straight(BatchSimulator())
    assert sliced(Simulator()) == straight(Simulator())
