"""Self-healing channels (DESIGN.md §11): breaker, reconnect, degraded modes.

The contract under test: a channel outage that outlives the go-back-N
budget is a managed episode, not a hang — the breaker opens on stall
evidence, the primitive degrades without losing state, half-open
reconnects the QP pair and probes, and recovery reconciles to exact
totals at a fixed seed.
"""

from types import SimpleNamespace

import pytest

from repro.apps.programs import CountingProgram, RemoteLookupProgram
from repro.cluster.health import HealthMonitor
from repro.cluster.pool import MemoryPool
from repro.core.channel import ChannelError
from repro.core.lookup_table import (
    ACTION_SET_DSCP,
    LookupTableConfig,
    RemoteAction,
    RemoteLookupTable,
)
from repro.core.state_store import RemoteStateStore, StateStoreConfig
from repro.experiments.chaos import run_chaos_recovery
from repro.experiments.topology import build_testbed
from repro.faults import Blackout, FaultPlan, GilbertElliottLoss, IidLoss
from repro.net.headers import UdpHeader
from repro.obs import Observability, WireTrace
from repro.obs.trace import KIND_BREAKER, KIND_RECONNECT
from repro.rdma.constants import ATOMIC_OPERAND_BYTES
from repro.policies import BreakerPolicy
from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    CircuitBreakerConfig,
    SelfHealingChannel,
)
from repro.sim.rng import SeedSequence
from repro.sim.units import usec
from repro.switches.hashing import FiveTuple
from repro.workloads.factory import udp_between
from repro.workloads.perftest import RawEthernetBw

COUNTERS = 1 << 10
SRC_PORT, DST_PORT = 10_000, 20_000


def quick_config(**overrides):
    """Breaker pacing matched to the tests' 50 µs retry watchdogs."""
    kwargs = dict(
        fail_threshold=3,
        close_threshold=1,
        open_timeout_ns=usec(100),
        probe_timeout_ns=usec(60),
        probe_jitter_ns=usec(10),
        backoff=2.0,
    )
    kwargs.update(overrides)
    return CircuitBreakerConfig(**kwargs)


# -- breaker state machine (unit) ---------------------------------------------


class TestCircuitBreaker:
    def make(self, sim, **overrides):
        return CircuitBreaker(
            sim,
            "ch",
            config=quick_config(probe_jitter_ns=0.0, **overrides),
        )

    def test_trips_after_consecutive_failures(self, sim):
        breaker = self.make(sim)
        breaker.record("strike")
        breaker.record("timeout")
        assert breaker.is_closed
        breaker.record("retries_exhausted")
        assert breaker.is_open
        assert breaker.opens == 1

    def test_progress_resets_the_failure_count(self, sim):
        breaker = self.make(sim)
        for _ in range(10):
            breaker.record("strike")
            breaker.record("strike")
            breaker.record("progress")
        assert breaker.is_closed
        assert breaker.opens == 0

    def test_nak_alone_is_not_stall_evidence(self, sim):
        breaker = self.make(sim, fail_threshold=1)
        for _ in range(50):
            breaker.record("nak")
        assert breaker.is_closed

    def test_unknown_event_raises(self, sim):
        breaker = self.make(sim)
        with pytest.raises(ValueError):
            breaker.record("melted")

    def test_half_open_probe_success_closes(self, sim):
        breaker = self.make(sim)
        transitions = []
        breaker.on_half_open.append(
            lambda b: (transitions.append(sim.now), b.record("progress"))
        )
        for _ in range(3):
            breaker.record("timeout")
        sim.run()
        assert breaker.is_closed
        assert breaker.closes == 1
        assert transitions == [usec(100)]  # open_timeout, zero jitter
        assert breaker.degraded_ns == usec(100)

    def test_probe_timeout_reopens_with_backoff(self, sim):
        breaker = self.make(sim)
        half_opens = []

        def on_half_open(b):
            half_opens.append(sim.now)
            if len(half_opens) == 2:  # second probe succeeds
                b.record("progress")

        breaker.on_half_open.append(on_half_open)
        for _ in range(3):
            breaker.record("strike")
        sim.run()
        # trip at 0 -> half-open at 100us; silent probe fails at 160us;
        # backed-off reopen waits 200us -> half-open again at 360us.
        assert half_opens == [usec(100), usec(360)]
        assert breaker.probe_failures == 1
        assert breaker.opens == 2
        assert breaker.is_closed

    def test_failure_during_half_open_counts_as_probe_failure(self, sim):
        breaker = self.make(sim)
        breaker.on_half_open.append(lambda b: b.record("strike"))
        for _ in range(3):
            breaker.record("strike")
        sim.run(until_ns=usec(150))
        assert breaker.probe_failures >= 1
        assert breaker.is_open

    def test_events_while_open_are_suppressed_not_counted(self, sim):
        breaker = self.make(sim)
        for _ in range(3):
            breaker.record("strike")
        assert breaker.is_open
        breaker.record("strike")
        breaker.record("progress")  # a late pre-trip response
        assert breaker.is_open
        assert breaker.metrics.counter("events_while_open").value == 1
        assert breaker.opens == 1

    def test_disarm_cancels_pending_half_open(self, sim):
        breaker = self.make(sim)
        probes = []
        breaker.on_half_open.append(lambda b: probes.append(sim.now))
        for _ in range(3):
            breaker.record("strike")
        assert breaker.is_open
        breaker.disarm()
        sim.run()
        # The scheduled half-open never fires and the state is frozen
        # for post-mortem inspection.
        assert probes == []
        assert breaker.is_open
        assert breaker.disarmed
        assert breaker.degraded_ns == 0  # tripped and disarmed at t=0

    def test_disarmed_breaker_ignores_every_event(self, sim):
        breaker = self.make(sim)
        breaker.disarm()
        for _ in range(10):
            breaker.record("retries_exhausted")
        breaker.trip()
        assert breaker.is_closed
        assert breaker.opens == 0
        breaker.disarm()  # idempotent

    def test_disarm_inside_on_open_ends_the_episode(self, sim):
        # The escalation path disarms from within the trip's own on_open
        # callbacks (on_open -> fail_server -> member leave -> stop).
        # The trip schedules its half-open timer *after* the callbacks
        # run, under a fresh epoch — the disarm must still cancel it.
        breaker = self.make(sim)
        breaker.on_open.append(lambda b: b.disarm())
        probes = []
        breaker.on_half_open.append(lambda b: probes.append(sim.now))
        for _ in range(3):
            breaker.record("strike")
        sim.run()
        assert probes == []
        assert breaker.disarmed
        assert breaker.probe_failures == 0

    def test_probe_jitter_is_seeded(self, sim):
        def episode(seed, name):
            breaker = CircuitBreaker(
                sim,
                name,
                config=quick_config(),
                rng=SeedSequence(seed).stream("jitter"),
            )
            opened_at = sim.now
            waits = []
            breaker.on_half_open.append(
                lambda b: (waits.append(sim.now - opened_at),
                           b.record("progress"))
            )
            for _ in range(3):
                breaker.record("strike")
            sim.run()
            return waits

        first = episode(3, "a")
        # Jitter actually applied: the wait exceeds the bare open_timeout.
        assert usec(100) < first[0] <= usec(110)
        # Identical streams draw identical jitter.
        assert episode(3, "b") == first
        assert episode(4, "c") != first

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CircuitBreakerConfig(fail_threshold=0).validate()
        with pytest.raises(ValueError):
            CircuitBreakerConfig(open_timeout_ns=0.0).validate()
        with pytest.raises(ValueError):
            CircuitBreakerConfig(backoff=0.5).validate()
        with pytest.raises(ValueError):
            CircuitBreakerConfig(probe_jitter_ns=-1.0).validate()

    def test_watch_chains_the_existing_listener(self, sim):
        seen = []
        gen = SimpleNamespace(
            health_listener=lambda g, e: seen.append(e), channel=None
        )
        breaker = self.make(sim)
        breaker.watch(gen)
        for _ in range(3):
            gen.health_listener(gen, "strike")
        assert seen == ["strike"] * 3  # the original listener still fires
        assert breaker.is_open

    def test_watch_requester_feeds_retries_exhausted(self, sim):
        seen = []
        rnic = SimpleNamespace(on_retry_exhausted=seen.append)
        breaker = self.make(sim, fail_threshold=1)
        breaker.watch_requester(rnic)
        rnic.on_retry_exhausted("qp")
        assert seen == ["qp"]
        assert breaker.is_open


# -- full scenario under every link fault model (satellite) -------------------


def build_store_scenario(seed=42, fault_factory=None, packets=1000,
                         outage_start=usec(300), outage_ns=usec(400)):
    tb = build_testbed(n_hosts=2, with_memory_server=True)
    program = CountingProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, COUNTERS * ATOMIC_OPERAND_BYTES
    )
    store = RemoteStateStore(
        tb.switch,
        channel,
        config=StateStoreConfig(
            counters=COUNTERS, reliable=True, retry_timeout_ns=usec(50)
        ),
    )
    program.use_state_store(store)
    guard = SelfHealingChannel(
        tb.controller,
        channel,
        store,
        policy=BreakerPolicy(
            config=quick_config(),
            rng=SeedSequence(seed).stream("breaker"),
        ),
    )
    if fault_factory is not None:
        plan = FaultPlan(seed=seed)
        plan.at(
            outage_start,
            plan.on_link(tb.server_link, name="server-link"),
            fault_factory(),
            duration_ns=outage_ns,
        )
        plan.install(tb.sim)

    src, dst = tb.hosts
    expected = {}
    for seq in range(packets):
        flow = FiveTuple(
            src_ip=src.eth.ip.value,
            dst_ip=dst.eth.ip.value,
            protocol=17,
            src_port=SRC_PORT + (seq % 16),
            dst_port=DST_PORT,
        )
        index = flow.hash() % COUNTERS
        expected[index] = expected.get(index, 0) + 1

    def stamp(packet, seq):
        packet.require(UdpHeader).src_port = SRC_PORT + (seq % 16)

    RawEthernetBw(
        tb.sim, src, dst,
        packet_size=128, rate_bps=1e9, count=packets,
        dst_port=DST_PORT, stamp=stamp,
    ).start()
    return tb, store, guard, expected


def drain(tb, store):
    tb.sim.run()
    for _ in range(64):
        if store.pending_value == 0 and store.outstanding == 0:
            break
        store.flush_all()
        tb.sim.run()


class TestBreakerUnderFaultModels:
    """Every total-outage link model must drive the full breaker cycle."""

    @pytest.mark.parametrize(
        "fault_factory",
        [
            lambda: IidLoss(1.0),
            lambda: GilbertElliottLoss(p_good_bad=1.0, p_bad_good=0.0),
            Blackout,
        ],
        ids=["iid-loss", "gilbert-elliott", "blackout"],
    )
    def test_outage_trips_probes_and_recovers_exactly(self, fault_factory):
        tb, store, guard, expected = build_store_scenario(
            fault_factory=fault_factory
        )
        drain(tb, store)
        breaker = guard.breaker
        assert breaker.opens >= 1, "the outage must trip the breaker"
        # The outage outlives the first half-open window, so at least one
        # probe dies and re-opens the breaker (the backoff path).
        assert breaker.probe_failures >= 1
        assert breaker.opens >= 2
        assert breaker.closes >= 1 and breaker.is_closed
        assert guard.reconnects >= 1
        recovered = {
            i: store.read_counter_via_control_plane(i) for i in expected
        }
        assert recovered == expected, "reconcile must land on exact totals"

    def test_healthy_run_never_trips(self):
        tb, store, guard, expected = build_store_scenario(
            fault_factory=None, packets=400
        )
        drain(tb, store)
        assert guard.breaker.opens == 0
        assert guard.breaker.is_closed
        recovered = {
            i: store.read_counter_via_control_plane(i) for i in expected
        }
        assert recovered == expected


# -- teardown unsubscribes listeners (satellite: close/reopen bugfix) ---------


class TestTeardownUnsubscribes:
    def build(self):
        tb = build_testbed(n_hosts=2, with_memory_server=True)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, COUNTERS * ATOMIC_OPERAND_BYTES
        )
        store = RemoteStateStore(
            tb.switch, channel, config=StateStoreConfig(counters=COUNTERS)
        )
        return tb, channel, store

    def test_close_channel_detaches_monitor_watch(self):
        tb, channel, store = self.build()
        monitor = HealthMonitor(fail_after=3)
        monitor.watch("s0", store.rocegen)
        assert monitor.members["s0"].watched == 1
        listener = store.rocegen.health_listener
        tb.controller.close_channel(channel)
        assert monitor.members["s0"].watched == 0
        # The chain head was ours, so teardown restored it outright...
        assert store.rocegen.health_listener is None
        # ...and even a stale reference to the old chain counts nothing.
        for _ in range(5):
            listener(store.rocegen, "strike")
        assert monitor.members["s0"].strikes == 0
        assert monitor.is_alive("s0")

    def test_close_then_reopen_does_not_double_count_strikes(self):
        tb, channel, store = self.build()
        monitor = HealthMonitor(fail_after=3)
        monitor.watch("s0", store.rocegen)
        old_listener_chain = store.rocegen.health_listener
        tb.controller.close_channel(channel)

        channel2 = tb.controller.open_channel(
            tb.memory_server, tb.server_port, COUNTERS * ATOMIC_OPERAND_BYTES
        )
        store2 = RemoteStateStore(
            tb.switch, channel2, config=StateStoreConfig(counters=COUNTERS)
        )
        monitor.watch("s0", store2.rocegen)
        assert monitor.members["s0"].watched == 1
        # The regression: two strikes on the new channel plus one stale
        # event from the old generation used to cross the fail_after=3
        # threshold; with teardown unsubscription the member stays up.
        old_listener_chain(store.rocegen, "strike")
        store2.rocegen.health_listener(store2.rocegen, "strike")
        store2.rocegen.health_listener(store2.rocegen, "strike")
        assert monitor.members["s0"].strikes == 2
        assert monitor.is_alive("s0")

    def test_unwatch_is_idempotent(self):
        tb, channel, store = self.build()
        monitor = HealthMonitor(fail_after=3)
        unwatch = monitor.watch("s0", store.rocegen)
        unwatch()
        unwatch()
        tb.controller.close_channel(channel)  # fires the stored unwatch too
        assert monitor.members["s0"].watched == 0

    def test_guard_goes_inert_after_teardown(self):
        tb, channel, store = self.build()
        guard = SelfHealingChannel(
            tb.controller, channel, store,
            policy=BreakerPolicy(config=quick_config()),
        )
        tb.controller.close_channel(channel)
        guard.breaker.trip()  # must not degrade or reconnect anything
        assert not store._degraded
        assert guard.reconnects == 0


class TestTierTagSurvivesReconnect:
    """Regression: reconnect on a tiered pool must keep the fast tag.

    A fast-tier region gets the fast RNIC service profile *through its
    tier tag*.  Recovery paths that rebuilt region state used to come
    back tier-less, silently downgrading the region to DRAM service
    until the next full reopen — the channel's own tag is authoritative
    and ``reconnect_channel`` must restamp it.
    """

    def build_fast_channel(self):
        from repro.rdma.memory import TIER_FAST
        from repro.sim.units import kib
        from repro.tiering import TieredMemoryPool

        tb = build_testbed(n_hosts=2, with_memory_server=True)
        pool = TieredMemoryPool(
            tb.controller, fast_capacity_bytes=kib(1), seed=1
        )
        pool.add_server(tb.memory_server, tb.server_port)
        channel = pool.place_channel("ring", 512, tier=TIER_FAST)
        return tb, pool, channel

    def test_reconnect_restamps_region_tier_on_fresh_qps(self):
        from repro.rdma.memory import TIER_FAST

        tb, pool, channel = self.build_fast_channel()
        assert channel.region.tier == TIER_FAST
        old_qpn = channel.switch_qp.qpn
        # The historical bug: a recovery path rebuilt region state without
        # the tier tag.  Reconnect must restore it from the channel.
        channel.region.tier = None
        tb.controller.reconnect_channel(channel)
        assert channel.switch_qp.qpn != old_qpn
        assert channel.tier == TIER_FAST
        assert channel.region.tier == TIER_FAST

    def test_close_then_reopen_keeps_budget_and_retags_fresh_rkey(self):
        from repro.rdma.memory import TIER_FAST
        from repro.sim.units import kib

        tb, pool, channel = self.build_fast_channel()
        old_rkey = channel.region.rkey
        tb.controller.close_channel(channel)
        assert pool.fast_free_bytes == kib(1)  # pin released
        again = pool.place_channel("ring2", 512, tier=TIER_FAST)
        assert again.region.rkey != old_rkey
        assert again.tier == TIER_FAST and again.region.tier == TIER_FAST


# -- pool failover on retry exhaustion (satellite) -----------------------------


class TestPoolRetryExhaustion:
    def build(self):
        tb = build_testbed(n_hosts=2, with_memory_server=True)
        pool = MemoryPool(tb.controller, fail_after=50)
        member = pool.add_server(tb.memory_server, tb.server_port)
        return tb, pool, member

    def test_exhaustion_drains_the_member_immediately(self):
        tb, pool, member = self.build()
        rnic = tb.hosts[0].rnic
        pool.watch_requester(member, rnic)
        qp = rnic.create_qp()
        # The RNIC's go-back-N machinery gives up on the QP: despite the
        # sky-high fail_after, the member must be drained at once.
        rnic.on_retry_exhausted(qp)
        assert not pool.health.is_alive(member.name)
        assert not member.alive
        assert member.name not in pool.ring
        # The evidence still flowed through the monitor's counters.
        assert pool.health.members[member.name].timeouts == 1

    def test_unwatch_restores_the_hook(self):
        tb, pool, member = self.build()
        rnic = tb.hosts[0].rnic
        assert rnic.on_retry_exhausted is None
        unwatch = pool.watch_requester(member, rnic)
        assert rnic.on_retry_exhausted is not None
        unwatch()
        assert rnic.on_retry_exhausted is None
        assert pool.health.is_alive(member.name)


# -- QP reconnect ---------------------------------------------------------------


class TestReconnect:
    def build(self):
        tb = build_testbed(n_hosts=2, with_memory_server=True)
        program = CountingProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, COUNTERS * ATOMIC_OPERAND_BYTES
        )
        return tb, program, channel

    def test_fresh_qps_same_region(self):
        tb, program, channel = self.build()
        old_switch_qpn = channel.switch_qp.qpn
        old_server_qpn = channel.server_qp.qpn
        old_rkey, old_base = channel.rkey, channel.base_address
        region = channel.region
        tb.controller.reconnect_channel(channel)
        assert channel.switch_qp.qpn != old_switch_qpn
        assert channel.server_qp.qpn != old_server_qpn
        assert channel.rkey == old_rkey
        assert channel.base_address == old_base
        assert channel.region is region
        # The old server QP is gone from the RNIC; the new one is live.
        assert old_server_qpn not in tb.memory_server.rnic.qps
        assert channel.server_qp.qpn in tb.memory_server.rnic.qps

    def test_traffic_flows_after_reconnect(self):
        tb, program, channel = self.build()
        store = RemoteStateStore(
            tb.switch, channel, config=StateStoreConfig(counters=COUNTERS)
        )
        program.use_state_store(store)
        store.update(3, 5)
        tb.sim.run()
        tb.controller.reconnect_channel(channel)
        store.update(4, 7)
        tb.sim.run()
        assert store.read_counter_via_control_plane(3) == 5
        assert store.read_counter_via_control_plane(4) == 7

    def test_reconnect_does_not_fire_teardown_callbacks(self):
        tb, program, channel = self.build()
        fired = []
        channel.teardown_callbacks.append(lambda: fired.append("torn"))
        tb.controller.reconnect_channel(channel)
        assert fired == []  # same logical channel, listeners stay attached
        tb.controller.close_channel(channel)
        assert fired == ["torn"]

    def test_reconnect_closed_channel_raises(self):
        tb, program, channel = self.build()
        tb.controller.close_channel(channel)
        with pytest.raises(ChannelError):
            tb.controller.reconnect_channel(channel)

    def test_reconnect_emits_trace_event(self):
        obs = Observability(trace=WireTrace())
        with obs.activate():
            tb, program, channel = self.build()
            tb.controller.reconnect_channel(channel)
        kinds = obs.trace.kinds()
        assert kinds.get(KIND_RECONNECT) == 1


# -- degraded modes per primitive ----------------------------------------------


class TestStoreDegradedMode:
    def build(self, **config_overrides):
        tb = build_testbed(n_hosts=2, with_memory_server=True)
        program = CountingProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, COUNTERS * ATOMIC_OPERAND_BYTES
        )
        store = RemoteStateStore(
            tb.switch,
            channel,
            config=StateStoreConfig(counters=COUNTERS, **config_overrides),
        )
        program.use_state_store(store)
        return tb, store

    def test_degrade_accumulates_and_recover_reconciles_exactly(self):
        tb, store = self.build(reliable=True, retry_timeout_ns=usec(50))
        store.update(0, 3)  # in flight when the breaker opens
        store.degrade()
        store.update(1, 4)
        store.update(1, 2)
        assert store.metrics.counter("degraded_updates").value == 2
        assert store.pending_value == 6
        assert store.outstanding == 0  # watchdog stood down
        store.recover()
        tb.sim.run()
        for _ in range(64):
            if store.pending_value == 0 and store.outstanding == 0:
                break
            store.flush_all()
            tb.sim.run()
        assert store.read_counter_via_control_plane(0) == 3
        assert store.read_counter_via_control_plane(1) == 6
        # Exactly-once: whatever part of the suspended op the reconcile
        # READ found already applied is credited, the rest re-issued —
        # together they account for the full suspended value, once.
        assert store.metrics.counter("reconcile_reads").value == 1
        applied = store.metrics.counter("reconciled_applied").value
        reissued = store.metrics.counter("reconciled_reissued").value
        assert applied + reissued == 3

    def test_updates_while_degraded_never_drive_the_wire(self):
        tb, store = self.build()
        store.degrade()
        writes_before = tb.memory_server.rnic.stats.atomics_executed
        for i in range(20):
            store.update(i, 1)
        store.flush_all()  # must be a no-op while degraded
        tb.sim.run()
        assert (
            tb.memory_server.rnic.stats.atomics_executed == writes_before
        )
        assert store.pending_value == 20


class TestLookupDegradedMode:
    def build(self):
        tb = build_testbed(n_hosts=2)
        program = RemoteLookupProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        config = LookupTableConfig(entries=1 << 10, cache_entries=64)
        channel = tb.controller.open_channel(
            tb.memory_server,
            tb.server_port,
            config.entries * config.entry_bytes,
        )
        table = RemoteLookupTable(tb.switch, channel, config=config)
        program.use_lookup_table(table)
        received = []
        tb.hosts[1].packet_handlers.append(lambda p, i: received.append(p))
        return tb, table, received

    def send(self, tb, sport):
        tb.hosts[0].send(
            udp_between(
                tb.hosts[0], tb.hosts[1], 256, src_port=sport, dst_port=6000
            )
        )

    def flow(self, tb, sport):
        return FiveTuple(
            src_ip=tb.hosts[0].eth.ip.value,
            dst_ip=tb.hosts[1].eth.ip.value,
            protocol=17,
            src_port=sport,
            dst_port=6000,
        )

    def test_degraded_serves_cache_hits_and_default_action(self):
        tb, table, received = self.build()
        table.install(self.flow(tb, 5000), RemoteAction(ACTION_SET_DSCP, 46))
        self.send(tb, 5000)  # miss -> remote fetch -> cache fill
        tb.sim.run()
        assert len(received) == 1

        table.degrade()
        self.send(tb, 5000)  # SRAM cache hit: exact action, no wire
        self.send(tb, 5001)  # miss: default action, no wire
        tb.sim.run()
        assert len(received) == 3
        assert received[1].ipv4.dscp == 46
        assert received[2].ipv4.dscp == 0  # default is a NOP, still forwarded
        assert table.metrics.counter("degraded_hits").value == 1
        assert table.metrics.counter("degraded_defaults").value == 1
        # Degraded mode never touched the wire.
        assert table.stats.remote_lookups == 1

        table.recover()
        table.install(self.flow(tb, 5002), RemoteAction(ACTION_SET_DSCP, 9))
        self.send(tb, 5002)
        tb.sim.run()
        assert received[-1].ipv4.dscp == 9  # remote lookups bounce again
        assert table.stats.remote_lookups == 2

    def test_degrade_writes_off_inflight_bounces(self):
        tb, table, received = self.build()
        table.install(self.flow(tb, 5000), RemoteAction(ACTION_SET_DSCP, 46))
        tb.server_link.loss_probability = 1.0  # responses never return
        self.send(tb, 5000)
        tb.sim.run(until_ns=usec(50))
        assert len(table._pending) >= 1
        table.degrade()
        assert len(table._pending) == 0
        assert table.metrics.counter("lookups_lost").value >= 1


# -- full-scenario determinism ---------------------------------------------------


class TestRecoveryDeterminism:
    def test_recovery_report_replays_exactly(self):
        first = run_chaos_recovery(packets=600)
        second = run_chaos_recovery(packets=600)
        assert first == second

    def test_recovery_trace_is_byte_identical(self):
        traces = []
        for _ in range(2):
            obs = Observability(trace=WireTrace())
            with obs.activate():
                run_chaos_recovery(packets=600)
            traces.append(obs.trace)
        assert traces[0].to_jsonl() == traces[1].to_jsonl()
        kinds = traces[0].kinds()
        assert kinds.get(KIND_BREAKER, 0) >= 4  # opens + closes, 2 channels
        assert kinds.get(KIND_RECONNECT, 0) >= 2

    def test_breaker_cycle_and_metrics_scope(self):
        report = run_chaos_recovery(packets=600)
        assert report.lost_updates == 0
        assert report.counters_wrong == 0
        assert report.lost_buffered == 0
        assert report.out_of_order == 0
        assert report.store_breaker_opens >= 2  # probe failure re-opened it
        assert report.store_probe_failures >= 1
        assert report.store_breaker_closes >= 1
        assert report.buffer_breaker_opens >= 1
        assert report.buffer_breaker_closes >= 1
        assert report.degraded_ms > 0
        assert report.degraded_goodput_per_ms > 0


# -- guard construction ------------------------------------------------------------


class TestSelfHealingChannelWiring:
    def test_rejects_primitives_without_the_protocol(self):
        tb = build_testbed(n_hosts=2, with_memory_server=True)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, 4096
        )
        with pytest.raises(TypeError):
            SelfHealingChannel(tb.controller, channel, object())

    def test_rejects_foreign_channels(self):
        tb = build_testbed(n_hosts=2, with_memory_server=True)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, COUNTERS * ATOMIC_OPERAND_BYTES
        )
        store = RemoteStateStore(
            tb.switch, channel, config=StateStoreConfig(counters=COUNTERS)
        )
        tb.controller.close_channel(channel)
        with pytest.raises(ValueError):
            SelfHealingChannel(tb.controller, channel, store)

    def test_breaker_states_are_exported_constants(self):
        assert {BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN} == {
            "closed",
            "open",
            "half-open",
        }
