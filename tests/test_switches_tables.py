"""Tests for match-action tables."""

import pytest

from repro.switches.tables import (
    ActionEntry,
    ExactMatchTable,
    LpmTable,
    TableFullError,
    TernaryTable,
)


class TestExactMatch:
    def test_insert_lookup(self):
        table = ExactMatchTable("t", capacity=4)
        table.insert("key", ActionEntry("fwd", {"port": 3}))
        entry = table.lookup("key")
        assert entry.action == "fwd"
        assert entry.params["port"] == 3

    def test_miss_returns_default(self):
        table = ExactMatchTable("t", capacity=4)
        table.default_action = ActionEntry("to_cpu")
        assert table.lookup("absent").action == "to_cpu"

    def test_miss_without_default_is_none(self):
        table = ExactMatchTable("t", capacity=4)
        assert table.lookup("absent") is None

    def test_capacity_enforced(self):
        table = ExactMatchTable("t", capacity=2)
        table.insert(1, ActionEntry("a"))
        table.insert(2, ActionEntry("b"))
        with pytest.raises(TableFullError):
            table.insert(3, ActionEntry("c"))

    def test_update_existing_when_full_allowed(self):
        table = ExactMatchTable("t", capacity=1)
        table.insert(1, ActionEntry("a"))
        table.insert(1, ActionEntry("b"))  # update, not a new entry
        assert table.lookup(1).action == "b"

    def test_delete(self):
        table = ExactMatchTable("t", capacity=2)
        table.insert(1, ActionEntry("a"))
        assert table.delete(1)
        assert not table.delete(1)
        assert table.lookup(1) is None

    def test_stats(self):
        table = ExactMatchTable("t", capacity=4)
        table.insert(1, ActionEntry("a"))
        table.lookup(1)
        table.lookup(2)
        assert table.stats.hits == 1
        assert table.stats.misses == 1
        assert table.stats.hit_rate == 0.5

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ExactMatchTable("t", capacity=0)


class TestLpm:
    def make_table(self):
        table = LpmTable("routes", capacity=10)
        table.insert(0x0A000000, 8, ActionEntry("short"))    # 10.0.0.0/8
        table.insert(0x0A010000, 16, ActionEntry("longer"))  # 10.1.0.0/16
        return table

    def test_longest_prefix_wins(self):
        table = self.make_table()
        assert table.lookup(0x0A010203).action == "longer"
        assert table.lookup(0x0A990203).action == "short"

    def test_no_match_default(self):
        table = self.make_table()
        table.default_action = ActionEntry("drop")
        assert table.lookup(0x0B000000).action == "drop"

    def test_zero_length_prefix_matches_all(self):
        table = LpmTable("t", capacity=2)
        table.insert(0, 0, ActionEntry("any"))
        assert table.lookup(0xFFFFFFFF).action == "any"

    def test_capacity(self):
        table = LpmTable("t", capacity=1)
        table.insert(1, 32, ActionEntry("a"))
        with pytest.raises(TableFullError):
            table.insert(2, 32, ActionEntry("b"))

    def test_prefix_length_range(self):
        table = LpmTable("t", capacity=1)
        with pytest.raises(ValueError):
            table.insert(0, 33, ActionEntry("x"))


class TestTernary:
    def test_priority_order(self):
        table = TernaryTable("acl", capacity=4)
        table.insert(0b1010, 0b1111, ActionEntry("exact"), priority=0)
        table.insert(0b1000, 0b1000, ActionEntry("coarse"), priority=5)
        assert table.lookup(0b1010).action == "exact"
        assert table.lookup(0b1001).action == "coarse"

    def test_mask_semantics(self):
        table = TernaryTable("acl", capacity=4)
        table.insert(0xAB00, 0xFF00, ActionEntry("upper"))
        assert table.lookup(0xABCD).action == "upper"
        assert table.lookup(0xACCD) is None

    def test_capacity(self):
        table = TernaryTable("acl", capacity=1)
        table.insert(0, 0, ActionEntry("a"))
        with pytest.raises(TableFullError):
            table.insert(1, 1, ActionEntry("b"))

    def test_default_action_on_miss(self):
        table = TernaryTable("acl", capacity=1)
        table.default_action = ActionEntry("permit")
        assert table.lookup(123).action == "permit"
