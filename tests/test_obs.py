"""Tests for the unified observability layer (registry + wire trace)."""

import dataclasses
import json

import pytest

from repro.analysis.reporting import (
    METRICS_SCHEMA,
    format_metrics,
    metrics_to_dict,
    write_metrics_json,
)
from repro.apps.programs import CountingProgram, RemoteLookupProgram
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Observability,
    WireTrace,
)
from repro.rdma.constants import ATOMIC_OPERAND_BYTES
from repro.sim.simulator import Simulator, kernel_mode
from repro.testbed import build_testbed
from repro.workloads.perftest import RawEthernetBw


# -- registry ----------------------------------------------------------------


def test_counter_and_gauge_basics():
    reg = MetricRegistry()
    c = reg.counter("a.hits")
    c.inc()
    c.inc(4)
    assert reg.value("a.hits") == 5
    g = reg.gauge("a.depth")
    g.set(7)
    g.add(-2)
    assert reg.value("a.depth") == 5
    assert reg.value("a.missing", default=-1) == -1
    assert "a.hits" in reg and len(reg) == 2


def test_counter_get_or_create_returns_same_object():
    reg = MetricRegistry()
    assert reg.counter("x") is reg.counter("x")


def test_kind_mismatch_raises():
    reg = MetricRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_function_gauge_samples_live_state():
    reg = MetricRegistry()
    backing = [1, 2, 3]
    g = reg.gauge("queue.depth", fn=lambda: len(backing))
    assert g.value == 3
    backing.append(4)
    assert g.value == 4
    with pytest.raises(TypeError):
        g.set(0)


def test_histogram_summary_and_percentile():
    h = Histogram("lat")
    for v in (1, 2, 4, 8, 1000):
        h.observe(v)
    assert h.count == 5
    assert h.min == 1 and h.max == 1000
    assert h.mean == pytest.approx(203.0)
    assert h.percentile(0.5) <= h.percentile(0.99)
    payload = h.to_dict()
    assert payload["kind"] == "histogram"
    assert payload["value"]["count"] == 5


def test_unique_scope_never_aliases():
    reg = MetricRegistry()
    a = reg.unique_scope("lookup")
    b = reg.unique_scope("lookup")
    assert a.name == "lookup" and b.name == "lookup#2"
    a.counter("hits").inc()
    assert reg.value("lookup.hits") == 1
    assert reg.value("lookup#2.hits") is None


def test_scope_children_and_prefix_snapshot():
    reg = MetricRegistry()
    rnic = reg.scope("rnic[r0]")
    qp = rnic.child("qp[7]")
    qp.counter("requests_received").inc(3)
    rnic.counter("acks_sent").inc()
    snap = reg.snapshot("rnic[r0]")
    assert snap == {
        "rnic[r0].acks_sent": 1,
        "rnic[r0].qp[7].requests_received": 3,
    }
    assert list(snap) == sorted(snap)  # deterministic order


def test_remove_scope_drops_metrics_and_releases_name():
    reg = MetricRegistry()
    scope = reg.unique_scope("pktbuf[3]")
    scope.counter("diverted").inc()
    reg.remove_scope("pktbuf[3]")
    assert "pktbuf[3].diverted" not in reg
    assert reg.unique_scope("pktbuf[3]").name == "pktbuf[3]"


def test_total_sums_by_suffix():
    reg = MetricRegistry()
    reg.counter("roce[a].naks_received").inc(2)
    reg.counter("roce[b].naks_received").inc(3)
    reg.histogram("x.naks_received").observe(99)  # histograms excluded
    assert reg.total("naks_received") == 5


# -- observability handle ----------------------------------------------------


def test_simulator_gets_private_registry_by_default():
    a, b = Simulator(), Simulator()
    assert a.obs.registry is not b.obs.registry


def test_activate_installs_session_handle():
    obs = Observability(trace=WireTrace())
    with obs.activate():
        sim = Simulator()
        assert sim.obs is obs
        assert Observability.active() is obs
    assert Observability.active() is None
    assert Simulator().obs is not obs


# -- wire trace --------------------------------------------------------------


def test_trace_limit_drops_new_events():
    trace = WireTrace(limit=2)
    for i in range(5):
        trace.emit(t_ns=float(i), node="n", qpn=1, kind="WRITE", psn=i)
    assert len(trace) == 2 and trace.dropped == 3
    lines = trace.to_jsonl().strip().splitlines()
    assert json.loads(lines[-1]) == {"meta": "truncated", "dropped": 3}


def test_trace_per_qp_and_kinds():
    trace = WireTrace()
    trace.emit(1.0, "switch:t", 3, "WRITE", psn=0)
    trace.emit(2.0, "switch:t", 4, "READ", psn=0)
    trace.emit(3.0, "switch:t", 3, "ACK", psn=0)
    assert sorted(trace.per_qp()) == [3, 4]
    assert [e.kind for e in trace.per_qp()[3]] == ["WRITE", "ACK"]
    assert trace.kinds() == {"WRITE": 1, "READ": 1, "ACK": 1}


def test_end_to_end_trace_records_qp_timeline(tmp_path):
    """A real simulated run produces a parseable per-QP JSONL timeline."""
    from repro.core.rocegen import RoceRequestGenerator

    obs = Observability(trace=WireTrace())
    with obs.activate():
        tb = build_testbed(n_hosts=1)
        from repro.apps.programs import StaticL2Program

        class P(StaticL2Program):
            roce = None

            def on_ingress(self, ctx, packet):
                if self.roce is not None and self.roce.owns_response(packet):
                    self.roce.classify_response(packet)
                    ctx.drop()
                    return
                super().on_ingress(ctx, packet)

        program = P()
        program.install(tb.hosts[0].eth.mac, tb.host_ports[0])
        program.install(tb.memory_server.eth.mac, tb.server_port)
        tb.switch.bind_program(program)
        channel = tb.controller.open_channel(tb.memory_server, tb.server_port, 4096)
        gen = RoceRequestGenerator(tb.switch, channel)
        program.roce = gen
        gen.write(channel.base_address, b"hello")
        gen.read(channel.base_address, 5)
        gen.fetch_add(channel.base_address + 1024, 1)
        tb.sim.run()

    kinds = obs.trace.kinds()
    assert kinds.get("WRITE") == 1
    assert kinds.get("READ") == 1
    assert kinds.get("ATOMIC") == 1
    assert kinds.get("READ_RESP") == 1
    assert kinds.get("ATOMIC_ACK") == 1

    path = tmp_path / "trace.jsonl"
    obs.trace.write_jsonl(str(path))
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(events) == len(obs.trace)
    for event in events:
        assert {"t_ns", "node", "qpn", "kind", "psn", "wire_bytes"} <= set(event)
    # Requester events carry the channel name; times never regress per QP.
    requester = [e for e in events if e["node"].startswith("switch:")]
    assert requester and all("channel" in e for e in requester)
    for timeline in obs.trace.per_qp().values():
        times = [e.t_ns for e in timeline]
        assert times == sorted(times)

    report = obs.trace.to_perf_record()
    assert report["schema"] == "repro-perf-record/v1"
    assert report["trace_events"] == len(obs.trace)
    assert any(label.startswith("qp[") for label in report["results"])


# -- metrics parity with legacy stats ---------------------------------------


def _run_fixed_seed_lookup(mode="scalar"):
    """A small fixed-seed fig3a-style run; returns (table, registry)."""
    with kernel_mode(mode):
        return _run_fixed_seed_lookup_inner()


def _run_fixed_seed_lookup_inner():
    from repro.core.lookup_table import (
        ACTION_SET_DSCP,
        LookupTableConfig,
        RemoteAction,
        RemoteLookupTable,
    )
    from repro.workloads.netpipe import PROBE_PORT, PingPong

    tb = build_testbed(n_hosts=2, seed=7)
    program = RemoteLookupProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    config = LookupTableConfig(entries=1 << 10, cache_entries=0)
    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, config.entries * config.entry_bytes
    )
    table = RemoteLookupTable(tb.switch, channel, config=config)
    program.use_lookup_table(table)
    client, server = tb.hosts
    from repro.switches.hashing import FiveTuple

    forward = FiveTuple(
        src_ip=client.eth.ip.value, dst_ip=server.eth.ip.value,
        protocol=17, src_port=PROBE_PORT + 1, dst_port=PROBE_PORT,
    )
    reverse = FiveTuple(
        src_ip=server.eth.ip.value, dst_ip=client.eth.ip.value,
        protocol=17, src_port=PROBE_PORT, dst_port=PROBE_PORT + 1,
    )
    table.install(forward, RemoteAction(ACTION_SET_DSCP, 46))
    table.install(reverse, RemoteAction(ACTION_SET_DSCP, 46))
    pingpong = PingPong(tb.sim, client, server, packet_size=256, probes=10)
    pingpong.start()
    tb.sim.run()
    return table, tb.sim.obs.registry


@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_registry_matches_legacy_stats_on_fixed_seed_run(mode):
    table, registry = _run_fixed_seed_lookup(mode)
    stats = dataclasses.asdict(table.stats)
    assert stats["remote_lookups"] > 0
    scope = table.metrics.name
    for field, value in stats.items():
        assert registry.value(f"{scope}.{field}") == value, field
    # hit_rate is a derived property mirrored by a function gauge, not a
    # summable field — assert it separately.
    assert registry.value(f"{scope}.hit_rate") == table.stats.hit_rate


@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_registry_is_deterministic_across_runs(mode):
    # QP numbers come from a process-global allocator, so mask the per-QP
    # gauge names; everything else must be byte-identical run to run.
    import re

    def normalized(reg):
        doc = metrics_to_dict(reg)
        doc["metrics"] = {
            re.sub(r"qp\[\d+\]", "qp[N]", name): value
            for name, value in doc["metrics"].items()
        }
        return json.dumps(doc, sort_keys=True)

    _, reg_a = _run_fixed_seed_lookup(mode)
    _, reg_b = _run_fixed_seed_lookup(mode)
    assert normalized(reg_a) == normalized(reg_b)


def test_statestore_registry_counts_packets():
    tb = build_testbed(n_hosts=2, seed=3)
    program = CountingProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    from repro.core.state_store import RemoteStateStore, StateStoreConfig

    config = StateStoreConfig(counters=1 << 10)
    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, config.counters * ATOMIC_OPERAND_BYTES
    )
    store = RemoteStateStore(tb.switch, channel, config=config)
    program.use_state_store(store)
    gen = RawEthernetBw(
        tb.sim, tb.hosts[0], tb.hosts[1],
        packet_size=256, rate_bps=40e9, count=50,
    )
    gen.start()
    tb.sim.run()
    stats = dataclasses.asdict(store.stats)
    assert stats["sampled_packets"] == 50
    scope = store.metrics.name
    for field, value in stats.items():
        assert tb.sim.obs.registry.value(f"{scope}.{field}") == value, field


# -- renderers ---------------------------------------------------------------


def test_metrics_to_dict_schema_and_determinism():
    reg = MetricRegistry()
    reg.counter("a.hits").inc(2)
    reg.gauge("a.depth").set(1.5)
    reg.histogram("a.lat").observe(10)
    doc = metrics_to_dict(reg, label="unit")
    assert doc["schema"] == METRICS_SCHEMA
    assert doc["label"] == "unit"
    assert doc["metrics"]["a.hits"] == {"kind": "counter", "value": 2}
    assert doc["metrics"]["a.lat"]["kind"] == "histogram"


def test_write_metrics_json_round_trip(tmp_path):
    reg = MetricRegistry()
    reg.counter("x.y").inc()
    path = tmp_path / "metrics.json"
    write_metrics_json(str(path), reg, label="t")
    doc = json.loads(path.read_text())
    assert doc["schema"] == METRICS_SCHEMA
    assert doc["metrics"]["x.y"]["value"] == 1


def test_format_metrics_renders_table_with_prefix_filter():
    reg = MetricRegistry()
    reg.counter("lookup.hits").inc(3)
    reg.counter("other.misses").inc(1)
    reg.histogram("lookup.lat").observe(100)
    text = format_metrics(reg, prefix="lookup")
    assert "lookup.hits" in text and "other.misses" not in text
    assert "n=1" in text  # histogram summary cell
    assert "(no metrics under prefix" in format_metrics(reg, prefix="nope")
