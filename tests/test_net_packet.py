"""Tests for the structured Packet model."""

import pytest

from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.headers import (
    ETHERNET_MIN_FRAME,
    EthernetHeader,
    HeaderError,
    Ipv4Header,
    UdpHeader,
)
from repro.net.packet import Packet


def make_udp_packet(payload=b"x" * 100):
    return Packet(
        headers=[
            EthernetHeader(dst=MacAddress(2), src=MacAddress(1)),
            Ipv4Header(src=Ipv4Address("10.0.0.1"), dst=Ipv4Address("10.0.0.2")),
            UdpHeader(src_port=1234, dst_port=5678),
        ],
        payload=payload,
    )


def test_header_access_properties():
    packet = make_udp_packet()
    assert packet.eth.src == MacAddress(1)
    assert packet.ipv4.dst == Ipv4Address("10.0.0.2")
    assert packet.udp.dst_port == 5678


def test_require_missing_header_raises():
    packet = Packet(payload=b"raw")
    with pytest.raises(HeaderError):
        packet.require(EthernetHeader)
    assert packet.find(EthernetHeader) is None


def test_push_pop_header_order():
    packet = Packet(payload=b"")
    inner = UdpHeader(src_port=1, dst_port=2)
    outer = EthernetHeader(dst=MacAddress(1), src=MacAddress(2))
    packet.push(inner)
    packet.push(outer)
    assert packet.headers == [outer, inner]
    assert packet.pop() is outer


def test_lengths():
    packet = make_udp_packet(payload=b"y" * 1458)
    assert packet.header_len == 14 + 20 + 8
    # frame = headers + payload + FCS
    assert packet.frame_len == 42 + 1458 + 4
    assert packet.wire_len == packet.frame_len + 20
    assert packet.buffer_len == 42 + 1458


def test_minimum_frame_padding():
    tiny = make_udp_packet(payload=b"")
    assert tiny.frame_len == ETHERNET_MIN_FRAME


def test_fixup_lengths_makes_ip_and_udp_consistent():
    packet = make_udp_packet(payload=b"z" * 10)
    packet.fixup_lengths()
    assert packet.ipv4.total_length == 20 + 8 + 10
    assert packet.udp.length == 8 + 10


def test_pack_parse_round_trip():
    packet = make_udp_packet(payload=b"hello world!")
    parsed = Packet.parse(packet.pack())
    assert parsed.eth == packet.eth
    assert parsed.ipv4 == packet.ipv4
    assert parsed.udp == packet.udp
    assert parsed.payload == b"hello world!"


def test_parse_non_ip_keeps_payload_opaque():
    packet = Packet(
        headers=[EthernetHeader(dst=MacAddress(1), src=MacAddress(2), ethertype=0x88CC)],
        payload=b"lldp-ish",
    )
    parsed = Packet.parse(packet.pack())
    assert len(parsed.headers) == 1
    assert parsed.payload == b"lldp-ish"


def test_clone_is_deep_and_gets_new_id():
    packet = make_udp_packet()
    packet.meta["flow"] = 7
    twin = packet.clone()
    assert twin.packet_id != packet.packet_id
    assert twin.meta == packet.meta
    twin.ipv4.ttl = 1
    assert packet.ipv4.ttl != 1


def test_meta_does_not_affect_sizes():
    a = make_udp_packet()
    b = make_udp_packet()
    b.meta["annotation"] = "x" * 10_000
    assert a.frame_len == b.frame_len


def test_packet_ids_unique():
    ids = {make_udp_packet().packet_id for _ in range(100)}
    assert len(ids) == 100
