"""Loss behaviour of the lookup-table primitive (§7 drop discussion)."""

import pytest

from repro.apps.programs import RemoteLookupProgram
from repro.core.lookup_table import (
    ACTION_SET_DSCP,
    LookupTableConfig,
    RemoteAction,
    RemoteLookupTable,
)
from repro.experiments.topology import build_testbed
from repro.sim.units import gbps, usec
from repro.switches.hashing import FiveTuple
from repro.workloads.perftest import PacketSink, RawEthernetBw


def build(mode="bounce", cache_entries=0):
    tb = build_testbed(n_hosts=2)
    program = RemoteLookupProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    config = LookupTableConfig(
        entries=1 << 10, cache_entries=cache_entries, mode=mode
    )
    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, config.entries * config.entry_bytes
    )
    table = RemoteLookupTable(tb.switch, channel, config=config)
    program.use_lookup_table(table)
    flow = FiveTuple(
        src_ip=tb.hosts[0].eth.ip.value,
        dst_ip=tb.hosts[1].eth.ip.value,
        protocol=17,
        src_port=10_000,
        dst_port=20_000,
    )
    table.install(flow, RemoteAction(ACTION_SET_DSCP, 7))
    return tb, program, table


def run_lossy(tb, count=200, loss_start=usec(5), loss_end=usec(30), loss=0.3):
    sink = PacketSink(tb.hosts[1], dst_port=20_000)
    gen = RawEthernetBw(
        tb.sim, tb.hosts[0], tb.hosts[1],
        packet_size=512, rate_bps=gbps(10), count=count, src_port=10_000,
    )
    gen.start()
    tb.sim.schedule(
        loss_start, lambda: setattr(tb.server_link, "loss_probability", loss)
    )
    tb.sim.schedule(
        loss_end, lambda: setattr(tb.server_link, "loss_probability", 0.0)
    )
    tb.sim.run(max_events=4_000_000)
    return sink


class TestBounceUnderLoss:
    def test_lost_bounce_means_lost_packet_never_duplicate(self):
        """§7: 'an RDMA packet drop would lead to dropping the original
        packet' — and the system recovers instead of wedging."""
        tb, program, table = build()
        sink = run_lossy(tb)
        # Some packets were lost with their bounces...
        assert sink.packets < 200
        assert table.rocegen.stats.naks_received > 0
        # ...but the stream recovered after the lossy window: later
        # packets resolve and arrive (more than the pre-loss handful).
        assert sink.packets > 20
        # Nothing was delivered twice and nothing is left pending.
        assert sink.out_of_order == 0
        assert len(table._pending) == 0
        # Accounting: every lookup either hit remotely or was lost.
        assert (
            table.stats.remote_hits
            + table.stats.remote_invalid
            + table.stats.fingerprint_mismatches
            <= table.stats.remote_lookups
        )

    def test_psn_resync_lets_later_lookups_succeed(self):
        tb, program, table = build()
        run_lossy(tb, count=100, loss_start=usec(2), loss_end=usec(10), loss=1.0)
        # After total loss and healing, the QP resynced and lookups resumed.
        assert table.stats.remote_hits > 0
        assert table.rocegen.stats.naks_received > 0

    def test_cache_softens_loss(self):
        """With a warm cache, packets survive server-link loss entirely."""
        tb, program, table = build(cache_entries=64)
        # Warm the cache with one packet.
        sink = PacketSink(tb.hosts[1], dst_port=20_000)
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=512, rate_bps=gbps(1), count=1, src_port=10_000,
        )
        gen.start()
        tb.sim.run()
        assert table.stats.cache_inserts == 1
        # Kill the server link entirely; cached flow keeps flowing.
        tb.server_link.loss_probability = 1.0
        gen2 = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=512, rate_bps=gbps(1), count=50, src_port=10_000,
        )
        gen2.start()
        tb.sim.run()
        assert sink.packets == 51
        assert table.stats.local_hits == 50
