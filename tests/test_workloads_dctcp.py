"""Tests for the DCTCP-style ECN loop and TM marking."""

import pytest

from repro.apps.programs import StaticL2Program
from repro.experiments.topology import build_testbed
from repro.net.headers import Ipv4Header
from repro.sim.units import gbps, kib, msec, usec
from repro.switches.traffic_manager import TrafficManagerConfig
from repro.workloads.dctcp import DctcpConfig, DctcpReceiver, DctcpSender
from repro.workloads.perftest import RawEthernetBw


def forwarding_testbed(n_hosts=3, tm_config=None):
    tb = build_testbed(n_hosts=n_hosts, with_memory_server=False, tm_config=tm_config)
    program = StaticL2Program()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    return tb


class TestEcnMarking:
    def test_hot_queue_marks_ect_packets(self):
        tb = forwarding_testbed(
            tm_config=TrafficManagerConfig(ecn_threshold_bytes=kib(16))
        )
        receiver = DctcpReceiver(tb.hosts[2], dst_port=42_001)
        for i in (0, 1):
            DctcpSender(
                tb.sim, tb.hosts[i], tb.hosts[2],
                rate_bps=gbps(40), count=200, src_port=42_000 + 2 * i,
                config=DctcpConfig(gain=0.0, additive_increase_bps=0.0,
                                   min_rate_bps=gbps(40)),
            ).start()
        tb.sim.run()
        marked = sum(q.ecn_marked for q in tb.switch.tm.queues.values())
        assert marked > 0
        assert receiver.ce_packets == marked

    def test_cool_queue_marks_nothing(self):
        tb = forwarding_testbed(
            tm_config=TrafficManagerConfig(ecn_threshold_bytes=kib(16))
        )
        DctcpReceiver(tb.hosts[2], dst_port=42_001)
        DctcpSender(
            tb.sim, tb.hosts[0], tb.hosts[2],
            rate_bps=gbps(5), count=100, src_port=42_000,
        ).start()
        tb.sim.run()
        assert sum(q.ecn_marked for q in tb.switch.tm.queues.values()) == 0

    def test_non_ect_packets_never_marked(self):
        tb = forwarding_testbed(
            tm_config=TrafficManagerConfig(ecn_threshold_bytes=1)
        )
        received = []
        tb.hosts[2].packet_handlers.append(lambda p, i: received.append(p))
        for i in (0, 1):
            RawEthernetBw(
                tb.sim, tb.hosts[i], tb.hosts[2],
                packet_size=1500, rate_bps=gbps(40), count=50,
                src_port=10_000 + i,
            ).start()
        tb.sim.run()
        assert received
        assert all(p.ipv4.ecn == 0 for p in received)


class TestDctcpLoop:
    def test_senders_slow_under_persistent_overload(self):
        tb = forwarding_testbed(
            tm_config=TrafficManagerConfig(ecn_threshold_bytes=kib(32))
        )
        DctcpReceiver(tb.hosts[2], dst_port=42_001)
        senders = []
        for i in (0, 1):
            sender = DctcpSender(
                tb.sim, tb.hosts[i], tb.hosts[2],
                rate_bps=gbps(40), duration_ns=msec(2),
                src_port=42_000 + 2 * i,
                config=DctcpConfig(gain=0.4),
            )
            sender.start()
            senders.append(sender)
        tb.sim.run()
        # Aggregate must come down toward the 40 Gbps bottleneck.
        aggregate = sum(s.rate_bps for s in senders)
        assert aggregate < gbps(60)
        assert all(s.feedback_windows > 0 for s in senders)
        assert all(s.alpha > 0 for s in senders)

    def test_uncongested_sender_stays_fast(self):
        tb = forwarding_testbed(
            tm_config=TrafficManagerConfig(ecn_threshold_bytes=kib(32))
        )
        DctcpReceiver(tb.hosts[2], dst_port=42_001)
        sender = DctcpSender(
            tb.sim, tb.hosts[0], tb.hosts[2],
            rate_bps=gbps(20), duration_ns=msec(1), src_port=42_000,
        )
        sender.start()
        tb.sim.run()
        assert sender.rate_bps >= gbps(20)  # additive increase only

    def test_requires_duration_or_count(self):
        tb = forwarding_testbed()
        with pytest.raises(ValueError):
            DctcpSender(tb.sim, tb.hosts[0], tb.hosts[2])

    def test_data_packets_carry_ect(self):
        tb = forwarding_testbed()
        received = []
        tb.hosts[2].packet_handlers.append(lambda p, i: received.append(p))
        DctcpSender(
            tb.sim, tb.hosts[0], tb.hosts[2], count=5, src_port=42_000
        ).start()
        tb.sim.run()
        data = [p for p in received if p.find(Ipv4Header) is not None]
        assert len(data) == 5
        assert all(p.ipv4.ecn == 2 for p in data)  # ECT(0)


class TestPersistentCongestionExperiment:
    def test_modes_reject_unknown(self):
        from repro.experiments.persistent_congestion import run_persistent_congestion

        with pytest.raises(ValueError):
            run_persistent_congestion("magic")

    def test_ecn_beats_buffer_only(self):
        from repro.experiments.persistent_congestion import (
            run_persistent_congestion_comparison,
        )

        buffer_only, with_ecn = run_persistent_congestion_comparison(
            duration_ms=2.0, ring_entries_per_server=1200
        )
        # Without congestion control the ring fills and drops.
        assert buffer_only.ring_full_drops > 0
        assert buffer_only.aggregate_final_rate_gbps == pytest.approx(80.0)
        # With the co-designed ECN signal the senders back off...
        assert with_ecn.ce_marked > 0
        assert with_ecn.aggregate_final_rate_gbps < 60.0
        # ...and the system loses (far) less.
        assert with_ecn.loss_rate < buffer_only.loss_rate


class TestFairness:
    def test_three_senders_converge_fairly(self):
        """Jain's index near 1 for N ECN-reactive senders sharing a port."""
        from repro.analysis.stats import jain_fairness

        tb = forwarding_testbed(
            n_hosts=4,
            tm_config=TrafficManagerConfig(ecn_threshold_bytes=kib(32)),
        )
        DctcpReceiver(tb.hosts[3], dst_port=42_001)
        senders = []
        for i in range(3):
            sender = DctcpSender(
                tb.sim, tb.hosts[i], tb.hosts[3],
                rate_bps=gbps(40), duration_ns=msec(3),
                src_port=42_000 + 2 * i,
                config=DctcpConfig(gain=0.4),
            )
            sender.start()
            senders.append(sender)
        tb.sim.run()
        rates = [s.rate_bps for s in senders]
        assert jain_fairness(rates) > 0.85
        assert sum(rates) < gbps(70)  # well below the uncontrolled 120
