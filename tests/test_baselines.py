"""Tests for the baseline systems: PFC, native RDMA streaming, L2 switch."""

import pytest

from repro.apps.programs import StaticL2Program
from repro.baselines.native_rdma import NativeRdmaStreamer
from repro.baselines.pfc import PfcConfig, PfcManager
from repro.experiments.topology import build_testbed
from repro.rdma.constants import Opcode
from repro.sim.units import gbps, kib
from repro.switches.traffic_manager import TrafficManagerConfig
from repro.workloads.perftest import PacketSink, RawEthernetBw


def pfc_testbed(buffer_bytes=kib(64), pause_frac=0.5, resume_frac=0.25):
    tb = build_testbed(
        n_hosts=3,
        with_memory_server=False,
        tm_config=TrafficManagerConfig(buffer_bytes=buffer_bytes),
    )
    program = StaticL2Program()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    pfc = PfcManager(
        tb.switch,
        upstream_ports=tb.host_ports[:2],
        config=PfcConfig(
            pause_threshold_bytes=int(buffer_bytes * pause_frac),
            resume_threshold_bytes=int(buffer_bytes * resume_frac),
        ),
    )
    return tb, pfc


class TestPfc:
    def test_incast_with_pfc_is_lossless(self):
        tb, pfc = pfc_testbed()
        sink = PacketSink(tb.hosts[2], dst_port=20_000)
        for i in (0, 1):
            gen = RawEthernetBw(
                tb.sim, tb.hosts[i], tb.hosts[2],
                packet_size=1500, rate_bps=gbps(40), count=200,
                src_port=10_000 + i,
            )
            gen.start()
        tb.sim.run()
        assert sink.packets == 400
        assert tb.switch.tm.total_dropped_packets == 0
        assert pfc.stats.pause_events >= 1
        assert pfc.stats.resume_events >= 1

    def test_pause_resume_cycle_leaves_links_unpaused(self):
        tb, pfc = pfc_testbed()
        for i in (0, 1):
            gen = RawEthernetBw(
                tb.sim, tb.hosts[i], tb.hosts[2],
                packet_size=1500, rate_bps=gbps(40), count=100,
                src_port=10_000 + i,
            )
            gen.start()
        tb.sim.run()
        assert not pfc.paused
        for host in tb.hosts[:2]:
            assert not host.eth.paused

    def test_invalid_thresholds_rejected(self):
        tb = build_testbed(n_hosts=2, with_memory_server=False)
        tb.switch.bind_program(StaticL2Program())
        with pytest.raises(ValueError):
            PfcManager(
                tb.switch,
                upstream_ports=[0],
                config=PfcConfig(
                    pause_threshold_bytes=100, resume_threshold_bytes=100
                ),
            )

    def test_hol_blocking_hurts_victim(self):
        """A victim flow from a paused sender stalls (the §2.1 argument)."""

        def victim_completion(with_pfc):
            tb = build_testbed(
                n_hosts=4,
                with_memory_server=False,
                tm_config=TrafficManagerConfig(buffer_bytes=kib(64)),
            )
            program = StaticL2Program()
            for host, port in zip(tb.hosts, tb.host_ports):
                program.install(host.eth.mac, port)
            tb.switch.bind_program(program)
            if with_pfc:
                PfcManager(
                    tb.switch,
                    upstream_ports=tb.host_ports[:2],
                    config=PfcConfig(
                        pause_threshold_bytes=kib(32),
                        resume_threshold_bytes=kib(16),
                    ),
                )
            # Incast: hosts 0 and 1 blast host 2.
            for i in (0, 1):
                RawEthernetBw(
                    tb.sim, tb.hosts[i], tb.hosts[2],
                    packet_size=1500, rate_bps=gbps(40), count=300,
                    src_port=10_000 + i,
                ).start()
            # Victim: host 0 also sends a little to (uncongested) host 3.
            victim_sink = PacketSink(tb.hosts[3], dst_port=30_000)
            RawEthernetBw(
                tb.sim, tb.hosts[0], tb.hosts[3],
                packet_size=1500, rate_bps=gbps(5), count=50,
                src_port=30_001, dst_port=30_000,
            ).start()
            tb.sim.run()
            assert victim_sink.packets == 50
            return victim_sink.last_arrival_ns

        assert victim_completion(True) > victim_completion(False)


class TestNativeRdmaStreamer:
    def make(self, opcode, operations=100, window=16):
        tb = build_testbed(n_hosts=1)
        program = StaticL2Program()
        program.install(tb.hosts[0].eth.mac, tb.host_ports[0])
        program.install(tb.memory_server.eth.mac, tb.server_port)
        tb.switch.bind_program(program)
        region = tb.memory_server.lend_memory(1500 * (operations + 1))
        streamer = NativeRdmaStreamer(
            tb.sim, tb.hosts[0], tb.memory_server, region,
            opcode=opcode, message_bytes=1500,
            operations=operations, window=window,
        )
        return tb, streamer, region

    def test_write_stream_completes(self):
        tb, streamer, region = self.make(Opcode.RDMA_WRITE_ONLY)
        streamer.start()
        tb.sim.run()
        assert streamer.done
        report = streamer.report()
        assert report.failures == 0
        assert report.operations == 100
        assert region.writes == 100

    def test_read_stream_completes(self):
        tb, streamer, region = self.make(Opcode.RDMA_READ_REQUEST)
        streamer.start()
        tb.sim.run()
        assert streamer.done
        assert region.reads == 100

    def test_goodput_below_line_rate(self):
        tb, streamer, _ = self.make(Opcode.RDMA_WRITE_ONLY, operations=500)
        streamer.start()
        tb.sim.run()
        goodput = streamer.report().goodput_bps
        assert gbps(20) < goodput < gbps(40)

    def test_unsupported_opcode_rejected(self):
        tb = build_testbed(n_hosts=1)
        region = tb.memory_server.lend_memory(4096)
        with pytest.raises(ValueError):
            NativeRdmaStreamer(
                tb.sim, tb.hosts[0], tb.memory_server, region,
                opcode=Opcode.FETCH_ADD,
            )

    def test_zero_cpu(self):
        tb, streamer, _ = self.make(Opcode.RDMA_WRITE_ONLY)
        streamer.start()
        tb.sim.run()
        assert tb.memory_server.cpu_packets == 0
