"""Tests for the §7 RDMA prioritization / bandwidth-cap TM features.

Contention scenario: the remote lookup table *bounces* data packets
through server DRAM, so its RDMA WRITEs are full packet size.  Two hosts
blasting the memory-server port at 2:1 oversubscription peg the egress
queue; without protection, bounced packets drop in the TM and are lost.
Strict priority plus reserved headroom (§7: prioritize RDMA "so that they
are less likely to be dropped") protects them at the background traffic's
expense.  A token-bucket cap (§7: "a bandwidth cap to prevent RDMA packets
taking too much bandwidth") polices the other direction.

(A note on small RDMA packets: an 86 B Fetch-and-Add essentially never
drops in a byte-based drop-tail queue pegged by 1500 B packets — the
residual headroom always fits it.  That is real behaviour, so these tests
exercise the packet-sized RDMA of the bounce path instead.)
"""

import pytest

from repro.apps.programs import CountingProgram, RemoteLookupProgram
from repro.core.lookup_table import (
    ACTION_SET_DSCP,
    LookupTableConfig,
    RemoteAction,
    RemoteLookupTable,
)
from repro.core.state_store import RemoteStateStore, StateStoreConfig
from repro.experiments.topology import build_testbed
from repro.rdma.headers import BthHeader
from repro.sim.units import gbps, kib
from repro.switches.hashing import FiveTuple
from repro.switches.traffic_manager import TrafficManagerConfig
from repro.workloads.factory import udp_between
from repro.workloads.perftest import PacketSink, RawEthernetBw


def build_contended(tm_config=None):
    """Bounced lookups while background UDP congests the server port."""
    tb = build_testbed(
        n_hosts=3,
        tm_config=tm_config or TrafficManagerConfig(buffer_bytes=kib(64)),
    )
    program = RemoteLookupProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    program.install(tb.memory_server.eth.mac, tb.server_port)
    tb.switch.bind_program(program)
    config = LookupTableConfig(entries=1 << 10, cache_entries=0)
    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, config.entries * config.entry_bytes
    )
    table = RemoteLookupTable(tb.switch, channel, config=config)
    program.use_lookup_table(table)
    # Only the measured flow consults the remote table; the background
    # congestion traffic is plain L2.
    from repro.net.headers import UdpHeader

    program.lookup_filter = (
        lambda p: p.find(UdpHeader) is not None
        and p.find(UdpHeader).dst_port == 20_000
    )
    flow = FiveTuple(
        src_ip=tb.hosts[0].eth.ip.value,
        dst_ip=tb.hosts[1].eth.ip.value,
        protocol=17,
        src_port=10_000,
        dst_port=20_000,
    )
    table.install(flow, RemoteAction(ACTION_SET_DSCP, 5))
    return tb, program, table


def run_contended(tb, lookups=200, background_packets=3000):
    sink = PacketSink(tb.hosts[1], dst_port=20_000)
    gen = RawEthernetBw(
        tb.sim, tb.hosts[0], tb.hosts[1],
        packet_size=1400, rate_bps=gbps(2), count=lookups,
        src_port=10_000,
    )
    gen.start()
    # 2:1 oversubscription keeps the server port queue pegged full.
    for i, host in enumerate((tb.hosts[1], tb.hosts[2])):
        bg = RawEthernetBw(
            tb.sim, host, tb.memory_server,
            packet_size=1500, rate_bps=gbps(40),
            count=background_packets // 2,
            src_port=31_000 + i, dst_port=31_001,
        )
        bg.start()
    tb.sim.run(max_events=4_000_000)
    return sink


class TestRdmaPriority:
    def test_congestion_without_priority_loses_bounced_packets(self):
        tb, program, table = build_contended()
        sink = run_contended(tb)
        # The RDMA leg itself suffered: fewer lookups resolved than issued
        # (bounce WRITEs/READs were dropped in the TM, triggering NAKs).
        assert table.stats.remote_hits < table.stats.remote_lookups
        assert table.rocegen.stats.naks_received > 0
        assert sink.packets < 200

    def test_priority_and_reserve_protect_bounces(self):
        tm = TrafficManagerConfig(
            buffer_bytes=kib(64),
            rdma_priority=True,
            rdma_reserved_bytes=kib(16),
        )
        tb, program, table = build_contended(tm_config=tm)
        sink = run_contended(tb)
        # Every bounce survived the RDMA path: no NAKs, all lookups hit.
        assert table.stats.remote_hits == 200
        assert table.rocegen.stats.naks_received == 0
        # Any residual loss is the *resolved original* competing for the
        # shared pool at the destination port — accounted, not leaked.
        host_queue = tb.switch.port_queue(tb.host_ports[1])
        assert sink.packets + host_queue.dropped_packets == 200
        # Protection came at the background traffic's expense.
        server_queue = tb.switch.port_queue(tb.server_port)
        assert server_queue.dropped_packets > 0
        assert server_queue.rdma_policer_drops == 0

    def test_priority_beats_baseline_delivery(self):
        baseline_tb, _, baseline_table = build_contended()
        baseline = run_contended(baseline_tb)
        tm = TrafficManagerConfig(
            buffer_bytes=kib(64),
            rdma_priority=True,
            rdma_reserved_bytes=kib(16),
        )
        prio_tb, _, prio_table = build_contended(tm_config=tm)
        protected = run_contended(prio_tb)
        assert protected.packets > baseline.packets

    def test_rdma_served_at_strict_priority(self):
        tm = TrafficManagerConfig(
            buffer_bytes=kib(256),
            rdma_priority=True,
            rdma_reserved_bytes=kib(32),
        )
        tb, program, table = build_contended(tm_config=tm)
        order = []
        tb.switch.tm.dequeue_listeners.append(
            lambda port, p, q: order.append(
                "rdma" if p.find(BthHeader) is not None else "bulk"
            )
            if port == tb.server_port
            else None
        )
        run_contended(tb, lookups=50, background_packets=400)
        assert "rdma" in order
        first_rdma = order.index("rdma")
        assert first_rdma < 40  # overtook a pegged bulk queue


class TestRdmaRateCap:
    def make_counting(self, tm_config):
        tb = build_testbed(n_hosts=2, tm_config=tm_config)
        program = CountingProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        config = StateStoreConfig(counters=1 << 10)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, (1 << 10) * 8
        )
        store = RemoteStateStore(tb.switch, channel, config=config)
        program.use_state_store(store)
        return tb, store

    def run_counting(self, tb, packets=400):
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=256, rate_bps=gbps(2), count=packets,
        )
        gen.start()
        tb.sim.run(max_events=3_000_000)

    def test_cap_polices_rdma_volume(self):
        tm = TrafficManagerConfig(
            rdma_rate_cap_bps=gbps(0.05),
            rdma_cap_burst_bytes=1024,
        )
        tb, store = self.make_counting(tm)
        self.run_counting(tb)
        queue = tb.switch.port_queue(tb.server_port)
        assert queue.rdma_policer_drops > 0

    def test_generous_cap_is_invisible(self):
        tm = TrafficManagerConfig(rdma_rate_cap_bps=gbps(20))
        tb, store = self.make_counting(tm)
        self.run_counting(tb)
        queue = tb.switch.port_queue(tb.server_port)
        assert queue.rdma_policer_drops == 0
        probe = udp_between(tb.hosts[0], tb.hosts[1], 256)
        assert store.read_counter_via_control_plane(store.index_of(store.key_of(probe))) == 400
