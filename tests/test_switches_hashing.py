"""Tests for hash externs and flow keys."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.headers import EthernetHeader, Ipv4Header, UdpHeader
from repro.net.packet import Packet
from repro.switches.hashing import FiveTuple, crc16, crc32, hash_fields


class TestCrc:
    def test_crc16_known_vector(self):
        # CRC-16/ARC of "123456789" is 0xBB3D.
        assert crc16(b"123456789") == 0xBB3D

    def test_crc32_known_vector(self):
        # CRC-32 of "123456789" is 0xCBF43926.
        assert crc32(b"123456789") == 0xCBF43926

    def test_empty_inputs(self):
        assert crc16(b"") == 0
        assert crc32(b"") == 0

    @given(st.binary(max_size=64))
    def test_crc16_deterministic_and_bounded(self, data):
        assert crc16(data) == crc16(data)
        assert 0 <= crc16(data) <= 0xFFFF


class TestHashFields:
    def test_width_truncation(self):
        value = hash_fields([1, 2, 3], width_bits=8)
        assert 0 <= value < 256

    def test_field_boundaries_matter(self):
        # (1, 23) and (12, 3) must not collide by concatenation.
        assert hash_fields([1, 23]) != hash_fields([12, 3])

    def test_bytes_and_int_fields(self):
        assert hash_fields([b"abc", 7]) == hash_fields([b"abc", 7])

    def test_address_fields_supported(self):
        value = hash_fields([Ipv4Address("10.0.0.1"), MacAddress(5)])
        assert isinstance(value, int)

    def test_negative_field_rejected(self):
        with pytest.raises(ValueError):
            hash_fields([-1])


def make_packet(src="10.0.0.1", dst="10.0.0.2", sport=1000, dport=2000):
    return Packet(
        headers=[
            EthernetHeader(dst=MacAddress(2), src=MacAddress(1)),
            Ipv4Header(src=Ipv4Address(src), dst=Ipv4Address(dst)),
            UdpHeader(src_port=sport, dst_port=dport),
        ]
    )


class TestFiveTuple:
    def test_extraction(self):
        ft = FiveTuple.of(make_packet())
        assert ft.src_ip == Ipv4Address("10.0.0.1").value
        assert ft.protocol == 17
        assert (ft.src_port, ft.dst_port) == (1000, 2000)

    def test_same_flow_same_hash(self):
        a = FiveTuple.of(make_packet())
        b = FiveTuple.of(make_packet())
        assert a == b
        assert a.hash() == b.hash()

    def test_different_flows_differ(self):
        a = FiveTuple.of(make_packet(sport=1000))
        b = FiveTuple.of(make_packet(sport=1001))
        assert a != b

    def test_hash_width(self):
        ft = FiveTuple.of(make_packet())
        assert 0 <= ft.hash(width_bits=10) < 1024

    def test_non_udp_packet_zero_ports(self):
        packet = Packet(
            headers=[
                EthernetHeader(dst=MacAddress(2), src=MacAddress(1)),
                Ipv4Header(
                    src=Ipv4Address("10.0.0.1"),
                    dst=Ipv4Address("10.0.0.2"),
                    protocol=6,
                ),
            ]
        )
        ft = FiveTuple.of(packet)
        assert (ft.src_port, ft.dst_port) == (0, 0)

    def test_usable_as_dict_key(self):
        cache = {FiveTuple.of(make_packet()): "entry"}
        assert cache[FiveTuple.of(make_packet())] == "entry"
