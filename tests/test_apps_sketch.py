"""Tests for Count-Min / Count Sketch over local and remote backends."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.programs import CountingProgram
from repro.apps.sketch import (
    CountMinSketch,
    CountSketch,
    LocalCounterBackend,
    RemoteCounterBackend,
    SketchGeometry,
)
from repro.core.state_store import RemoteStateStore, StateStoreConfig
from repro.experiments.topology import build_testbed
from repro.sim.units import kib


def local_cms(depth=4, width=512):
    geometry = SketchGeometry(depth=depth, width=width)
    backend = LocalCounterBackend(depth, width, sram_budget_bytes=depth * width * 8)
    return CountMinSketch(geometry, backend)


class TestGeometry:
    def test_counters_and_bytes(self):
        g = SketchGeometry(depth=4, width=100)
        assert g.counters == 400
        assert g.bytes == 3200

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            SketchGeometry(depth=0, width=10)


class TestLocalBackend:
    def test_budget_enforced(self):
        with pytest.raises(MemoryError):
            LocalCounterBackend(4, 1024, sram_budget_bytes=kib(1))

    def test_add_read(self):
        backend = LocalCounterBackend(2, 16, sram_budget_bytes=kib(1))
        backend.add(1, 5, 7)
        assert backend.read(1, 5) == 7
        assert backend.read(0, 5) == 0


class TestCountMin:
    def test_exact_for_single_key(self):
        sketch = local_cms()
        for _ in range(42):
            sketch.add(b"flow-a")
        assert sketch.estimate(b"flow-a") == 42

    def test_never_underestimates(self):
        sketch = local_cms(width=64)
        rng = random.Random(0)
        truth = {}
        for _ in range(2000):
            key = f"flow-{rng.randrange(200)}".encode()
            truth[key] = truth.get(key, 0) + 1
            sketch.add(key)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_unseen_key_estimate_bounded_by_total(self):
        sketch = local_cms()
        for i in range(100):
            sketch.add(f"k{i}".encode())
        assert 0 <= sketch.estimate(b"never-seen") <= 100

    def test_negative_update_rejected(self):
        with pytest.raises(ValueError):
            local_cms().add(b"x", -1)

    def test_wider_sketch_less_error(self):
        rng = random.Random(1)
        keys = [f"flow-{i}".encode() for i in range(500)]
        narrow, wide = local_cms(width=32), local_cms(width=4096)
        truth = {}
        for _ in range(5000):
            key = keys[rng.randrange(len(keys))]
            truth[key] = truth.get(key, 0) + 1
            narrow.add(key)
            wide.add(key)
        narrow_err = sum(narrow.estimate(k) - c for k, c in truth.items())
        wide_err = sum(wide.estimate(k) - c for k, c in truth.items())
        assert wide_err < narrow_err

    @settings(max_examples=20, deadline=None)
    @given(st.dictionaries(st.binary(min_size=1, max_size=8),
                           st.integers(1, 50), min_size=1, max_size=20))
    def test_overcount_only_property(self, truth):
        sketch = local_cms(width=128)
        for key, count in truth.items():
            sketch.add(key, count)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count


class TestCountSketch:
    def test_single_key_exact(self):
        geometry = SketchGeometry(depth=5, width=256)
        backend = LocalCounterBackend(5, 256, sram_budget_bytes=kib(16))
        sketch = CountSketch(geometry, backend)
        for _ in range(30):
            sketch.add(b"hot")
        assert sketch.estimate(b"hot") == 30

    def test_signed_updates(self):
        geometry = SketchGeometry(depth=5, width=256)
        backend = LocalCounterBackend(5, 256, sram_budget_bytes=kib(16))
        sketch = CountSketch(geometry, backend)
        sketch.add(b"k", 10)
        sketch.add(b"k", -4)
        assert sketch.estimate(b"k") == 6

    def test_roughly_unbiased_across_keys(self):
        geometry = SketchGeometry(depth=5, width=512)
        backend = LocalCounterBackend(5, 512, sram_budget_bytes=kib(32))
        sketch = CountSketch(geometry, backend)
        rng = random.Random(2)
        truth = {}
        for _ in range(3000):
            key = f"f{rng.randrange(300)}".encode()
            truth[key] = truth.get(key, 0) + 1
            sketch.add(key)
        errors = [sketch.estimate(k) - c for k, c in truth.items()]
        assert abs(sum(errors) / len(errors)) < 3.0


class TestRemoteBackend:
    def build(self, depth=2, width=256):
        tb = build_testbed(n_hosts=2)
        program = CountingProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        config = StateStoreConfig(counters=depth * width)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, depth * width * 8
        )
        store = RemoteStateStore(tb.switch, channel, config=config)
        program.use_state_store(store)
        backend = RemoteCounterBackend(store, depth, width)
        return tb, store, backend

    def test_capacity_enforced(self):
        tb, store, backend = self.build()
        with pytest.raises(MemoryError):
            RemoteCounterBackend(store, 100, 100)

    def test_updates_land_in_remote_memory(self):
        tb, store, backend = self.build()
        geometry = SketchGeometry(depth=2, width=256)
        sketch = CountMinSketch(geometry, backend)
        for _ in range(25):
            sketch.add(b"flow-x")
        tb.sim.run()
        assert sketch.estimate(b"flow-x") == 25
        assert tb.memory_server.rnic.stats.atomics_executed > 0
        assert tb.memory_server.cpu_packets == 0

    def test_matches_local_backend_estimates(self):
        tb, store, remote_backend = self.build(depth=3, width=128)
        geometry = SketchGeometry(depth=3, width=128)
        remote = CountMinSketch(geometry, remote_backend)
        local = CountMinSketch(
            geometry, LocalCounterBackend(3, 128, sram_budget_bytes=kib(8))
        )
        rng = random.Random(3)
        keys = [f"f{i}".encode() for i in range(50)]
        for _ in range(500):
            key = keys[rng.randrange(len(keys))]
            remote.add(key)
            local.add(key)
        tb.sim.run()
        for key in keys:
            assert remote.estimate(key) == local.estimate(key)

    def test_count_sketch_negative_updates_remote(self):
        tb, store, backend = self.build(depth=5, width=64)
        geometry = SketchGeometry(depth=5, width=64)
        sketch = CountSketch(geometry, backend)
        sketch.add(b"k", 3)
        sketch.add(b"k", -1)
        tb.sim.run()
        assert sketch.estimate(b"k") == 2
