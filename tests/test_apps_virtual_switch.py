"""Tests for the bare-metal virtual switch (§2.2)."""

import pytest

from repro.apps.virtual_switch import VipMapping, VirtualSwitchProgram
from repro.baselines.cpu_slowpath import CpuSlowPath, CpuSlowPathConfig
from repro.core.lookup_table import LookupTableConfig, RemoteLookupTable
from repro.experiments.topology import build_testbed
from repro.net.addresses import Ipv4Address
from repro.net.headers import Ipv4Header
from repro.sim.units import usec
from repro.workloads.factory import udp_between


def build(mode, sram_entries=2, n_mappings=5):
    tb = build_testbed(n_hosts=2, with_memory_server=mode == "remote")
    blackbox, vm_host = tb.hosts
    program = VirtualSwitchProgram(sram_entries=sram_entries)
    program.install(blackbox.eth.mac, tb.host_ports[0])
    program.install(vm_host.eth.mac, tb.host_ports[1])
    tb.switch.bind_program(program)
    if mode == "remote":
        config = LookupTableConfig(entries=1 << 10, cache_entries=sram_entries)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port,
            config.entries * config.entry_bytes,
        )
        program.use_remote_table(RemoteLookupTable(tb.switch, channel, config=config))
    elif mode == "slowpath":
        program.use_slow_path(CpuSlowPath(tb.sim, CpuSlowPathConfig()))
    mappings = []
    for i in range(n_mappings):
        mapping = VipMapping(
            vip=Ipv4Address(f"172.16.0.{i + 1}"),
            pip=Ipv4Address(f"10.99.0.{i + 1}"),
            pip_mac=vm_host.eth.mac,
            egress_port=tb.host_ports[1],
        )
        program.add_mapping(mapping)
        mappings.append(mapping)
    return tb, program, mappings


def send_to_vip(tb, vip, received):
    packet = udp_between(tb.hosts[0], tb.hosts[1], 256)
    packet.require(Ipv4Header).dst = Ipv4Address(vip)
    tb.hosts[0].send(packet)
    return packet


class TestRemoteMode:
    def test_translation_rewrites_destination(self):
        tb, program, mappings = build("remote")
        received = []
        tb.hosts[1].packet_handlers.append(lambda p, i: received.append(p))
        send_to_vip(tb, "172.16.0.3", received)
        tb.sim.run()
        assert len(received) == 1
        assert received[0].ipv4.dst == Ipv4Address("10.99.0.3")
        assert received[0].eth.dst == tb.hosts[1].eth.mac

    def test_second_packet_to_same_vip_hits_cache(self):
        tb, program, mappings = build("remote")
        received = []
        tb.hosts[1].packet_handlers.append(lambda p, i: received.append(p))
        send_to_vip(tb, "172.16.0.1", received)
        tb.sim.run()
        send_to_vip(tb, "172.16.0.1", received)
        tb.sim.run()
        assert len(received) == 2
        assert program.lookup_table.stats.remote_lookups == 1
        assert program.lookup_table.stats.local_hits == 1

    def test_vip_keying_ignores_ports(self):
        """Different flows to the same VIP share one table entry."""
        tb, program, mappings = build("remote")
        received = []
        tb.hosts[1].packet_handlers.append(lambda p, i: received.append(p))
        for sport in (1000, 2000, 3000):
            packet = udp_between(
                tb.hosts[0], tb.hosts[1], 256, src_port=sport
            )
            packet.require(Ipv4Header).dst = Ipv4Address("172.16.0.2")
            tb.hosts[0].send(packet)
            tb.sim.run()
        assert len(received) == 3
        assert program.lookup_table.stats.remote_lookups == 1

    def test_non_vip_traffic_forwards_normally(self):
        tb, program, mappings = build("remote")
        received = []
        tb.hosts[1].packet_handlers.append(lambda p, i: received.append(p))
        tb.hosts[0].send(udp_between(tb.hosts[0], tb.hosts[1], 256))
        tb.sim.run()
        assert len(received) == 1
        assert received[0].ipv4.dst == tb.hosts[1].eth.ip  # untouched

    def test_zero_cpu_on_memory_server(self):
        tb, program, mappings = build("remote")
        send_to_vip(tb, "172.16.0.1", [])
        tb.sim.run()
        assert tb.memory_server.cpu_packets == 0


class TestSlowPathMode:
    def test_sram_hits_are_fast(self):
        tb, program, mappings = build("slowpath", sram_entries=10)
        received = []
        tb.hosts[1].packet_handlers.append(lambda p, i: received.append(p))
        send_to_vip(tb, "172.16.0.1", received)
        tb.sim.run()
        assert len(received) == 1
        assert program.fast_translations == 1
        assert program.slow_path_translations == 0

    def test_sram_overflow_takes_slow_path(self):
        # SRAM holds 2 entries; the 5th VIP missed SRAM at install time.
        tb, program, mappings = build("slowpath", sram_entries=2)
        received = []
        arrival_times = []
        tb.hosts[1].packet_handlers.append(
            lambda p, i: (received.append(p), arrival_times.append(tb.sim.now))
        )
        send_to_vip(tb, "172.16.0.5", received)
        tb.sim.run()
        assert len(received) == 1
        assert program.slow_path_translations == 1
        assert received[0].ipv4.dst == Ipv4Address("10.99.0.5")
        # Software path costs tens of microseconds.
        assert arrival_times[0] > usec(20)

    def test_slow_path_latency_much_higher(self):
        tb, program, mappings = build("slowpath", sram_entries=2)
        times = {}

        def record(name):
            def handler(p, i):
                times[name] = tb.sim.now
            return handler

        tb.hosts[1].packet_handlers.append(record("first"))
        send_to_vip(tb, "172.16.0.1", [])  # SRAM hit
        tb.sim.run()
        fast_time = times["first"]
        tb2, program2, _ = build("slowpath", sram_entries=2)
        tb2.hosts[1].packet_handlers.append(
            lambda p, i: times.__setitem__("slow", tb2.sim.now)
        )
        packet = udp_between(tb2.hosts[0], tb2.hosts[1], 256)
        packet.require(Ipv4Header).dst = Ipv4Address("172.16.0.5")
        tb2.hosts[0].send(packet)
        tb2.sim.run()
        assert times["slow"] > 10 * fast_time

    def test_no_slow_path_configured_drops(self):
        tb, program, mappings = build("none", sram_entries=2)
        received = []
        tb.hosts[1].packet_handlers.append(lambda p, i: received.append(p))
        send_to_vip(tb, "172.16.0.5", received)
        tb.sim.run()
        assert received == []
        assert program.untranslatable_drops == 1


class TestCpuSlowPathModel:
    def test_latency_applied(self, sim):
        from repro.net.packet import Packet

        slow = CpuSlowPath(sim, CpuSlowPathConfig(latency_ns=usec(30)))
        done = []
        slow.submit(Packet(payload=b"x"), lambda p: done.append(sim.now))
        sim.run()
        assert done[0] == pytest.approx(usec(30))

    def test_rate_limits_throughput(self, sim):
        from repro.net.packet import Packet

        slow = CpuSlowPath(
            sim, CpuSlowPathConfig(latency_ns=usec(10), rate_pps=1e6)
        )
        done = []
        for _ in range(10):
            slow.submit(Packet(payload=b"x"), lambda p: done.append(sim.now))
        sim.run()
        # Completions spaced by the 1 us service time.
        deltas = [b - a for a, b in zip(done, done[1:])]
        assert all(d == pytest.approx(usec(1)) for d in deltas)

    def test_queue_overflow_drops(self, sim):
        from repro.net.packet import Packet

        slow = CpuSlowPath(sim, CpuSlowPathConfig(queue_packets=3))
        accepted = [
            slow.submit(Packet(payload=b"x"), lambda p: None) for _ in range(6)
        ]
        assert accepted.count(False) >= 2
        assert slow.stats.packets_dropped >= 2
