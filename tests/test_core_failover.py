"""Tests for §7 robustness: memory-server failure and channel failover."""

import pytest

from repro.apps.programs import RemoteBufferProgram
from repro.core.packet_buffer import (
    ENTRY_SEQ_BYTES,
    PacketBufferConfig,
    RemotePacketBuffer,
)
from repro.experiments.topology import build_testbed
from repro.sim.units import kib, usec
from repro.switches.traffic_manager import TrafficManagerConfig
from repro.workloads.perftest import PacketSink, RawEthernetBw

RECEIVER = 1


def build_striped(n_servers=2, failover_strikes=3, ring_entries=2048):
    tb = build_testbed(
        n_hosts=3,
        n_memory_servers=n_servers,
        tm_config=TrafficManagerConfig(buffer_bytes=kib(256)),
    )
    program = RemoteBufferProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    entry_bytes = 1500 + ENTRY_SEQ_BYTES
    channels = tb.open_channels(ring_entries * entry_bytes)
    primitive = RemotePacketBuffer(
        tb.switch,
        channels,
        protected_port=tb.host_ports[RECEIVER],
        config=PacketBufferConfig(
            entry_bytes=entry_bytes,
            high_watermark_bytes=kib(64),
            low_watermark_bytes=kib(8),
            read_timeout_ns=usec(50),
            failover_strikes=failover_strikes,
        ),
    )
    program.use_packet_buffer(primitive)
    return tb, program, primitive, channels


def blast(tb, count=200, senders=(0, 2)):
    sink = PacketSink(tb.hosts[RECEIVER], dst_port=20_000)
    for s in senders:
        RawEthernetBw(
            tb.sim, tb.hosts[s], tb.hosts[RECEIVER],
            packet_size=1500, rate_bps=40e9, count=count,
            src_port=10_000 + s,
        ).start()
    return sink


class TestStriping:
    def test_stores_spread_across_servers(self):
        tb, program, primitive, channels = build_striped()
        sink = blast(tb)
        tb.sim.run()
        assert primitive.stats.stored_packets > 0
        writes = [s.rnic.stats.writes_executed for s in tb.memory_servers]
        assert all(w > 0 for w in writes)
        # Round-robin striping keeps the split near 50/50.
        assert abs(writes[0] - writes[1]) <= 2
        assert sink.packets == 400
        assert sink.out_of_order == 0

    def test_cross_channel_release_is_in_order(self):
        tb, program, primitive, channels = build_striped(n_servers=4)
        sink = blast(tb, count=300)
        tb.sim.run()
        assert sink.packets == 600
        assert sink.out_of_order == 0
        assert primitive.stats.reorder_peak >= 1


class TestFailover:
    def test_dead_server_is_detected_and_excluded(self):
        tb, program, primitive, channels = build_striped()
        sink = blast(tb, count=400)
        # Kill server 1's link mid-burst, permanently.
        tb.sim.schedule(
            usec(20),
            lambda: setattr(tb.server_links[1], "loss_probability", 1.0),
        )
        tb.sim.run(max_events=5_000_000)
        assert primitive.stats.channels_failed == 1
        assert 1 in primitive._failed_channels
        assert primitive.alive_channels == [0]
        # The system keeps working: everything is delivered or accounted
        # as a loss — never wedged, never duplicated.
        accounted = (
            sink.packets
            + primitive.stats.lost_to_failover
            + primitive.stats.lost_in_transit
            + primitive.stats.ring_full_drops
            + tb.switch.tm.total_dropped_packets
        )
        assert accounted == 800
        assert sink.out_of_order == 0
        assert primitive.stats.lost_to_failover > 0
        # Fully drained afterwards.
        assert primitive.stored_entries == 0
        assert not primitive.is_buffering

    def test_new_stores_avoid_failed_channel(self):
        tb, program, primitive, channels = build_striped()
        blast(tb, count=150)
        tb.sim.schedule(
            usec(10),
            lambda: setattr(tb.server_links[1], "loss_probability", 1.0),
        )
        tb.sim.run(max_events=5_000_000)
        writes_before = tb.memory_servers[1].rnic.stats.writes_executed
        # Second burst: all stores must go to the surviving server.
        sink2 = blast(tb, count=150)
        tb.sim.run(max_events=5_000_000)
        assert (
            tb.memory_servers[1].rnic.stats.writes_executed == writes_before
        )
        assert sink2.packets > 0

    def test_all_channels_failed_degrades_to_droptail(self):
        tb, program, primitive, channels = build_striped(failover_strikes=2)
        blast(tb, count=300)
        for link in tb.server_links:
            tb.sim.schedule(
                usec(10), lambda l=link: setattr(l, "loss_probability", 1.0)
            )
        tb.sim.run(max_events=5_000_000)
        assert primitive.stats.channels_failed == 2
        assert primitive.alive_channels == []
        # The system quiesced (no wedged buffering mode)...
        assert primitive.stored_entries == 0
        # ...and a fresh overload now behaves like a plain drop-tail ToR:
        # nothing new reaches any memory server, overflow is dropped.
        writes_before = sum(
            s.rnic.stats.writes_executed for s in tb.memory_servers
        )
        sink2 = blast(tb, count=300)
        tb.sim.run(max_events=5_000_000)
        writes_after = sum(
            s.rnic.stats.writes_executed for s in tb.memory_servers
        )
        assert writes_after == writes_before
        drops = (
            primitive.stats.ring_full_drops
            + tb.switch.tm.total_dropped_packets
        )
        assert drops > 0
        assert sink2.packets + drops >= 600

    def test_no_failover_without_config(self):
        tb, program, primitive, channels = build_striped(failover_strikes=None)
        blast(tb, count=200)
        tb.sim.schedule(
            usec(10),
            lambda: setattr(tb.server_links[1], "loss_probability", 1.0),
        )
        # Without failover the primitive retries the dead channel forever;
        # a bounded window is enough to observe that no channel is failed.
        tb.sim.run(until_ns=usec(2000), max_events=1_000_000)
        assert primitive.stats.channels_failed == 0
        assert primitive.stats.read_recoveries > 0  # still retrying

    def test_transient_outage_does_not_trigger_failover(self):
        tb, program, primitive, channels = build_striped(failover_strikes=10)
        sink = blast(tb, count=300)
        tb.sim.schedule(
            usec(10),
            lambda: setattr(tb.server_links[1], "loss_probability", 1.0),
        )
        tb.sim.schedule(
            usec(120),
            lambda: setattr(tb.server_links[1], "loss_probability", 0.0),
        )
        tb.sim.run(max_events=5_000_000)
        assert primitive.stats.channels_failed == 0
        assert primitive.stats.read_recoveries >= 1
        assert sink.out_of_order == 0
        assert primitive.stored_entries == 0
