"""Property tests for the cuckoo remote layout (repro.cuckoo).

The directory is a deterministic, seeded control-plane algorithm, so the
strongest tests are properties: same seed + same insert order must give
an *identical* layout and kick sequence; the choice-filter invariant
must hold after any mutation sequence; overload must fail cleanly with
no partial state left behind.
"""

import struct

import pytest

from repro.cuckoo import (
    ChoiceFilter,
    CuckooConfig,
    CuckooDirectory,
    CuckooFullError,
    SlotRef,
    T0,
    T1,
)
from repro.switches.hashing import FiveTuple


def _flow(rank: int) -> FiveTuple:
    """Flow keys shaped like the Zipf workload's (port-pair encoding)."""
    return FiveTuple(
        src_ip=0x0A000001,
        dst_ip=0x0A000002,
        protocol=17,
        src_port=1024 + rank % 60000,
        dst_port=1024 + rank // 60000,
    )


def _packer(flow):
    return flow.pack()


def _build(seed=7, pairs=64, **kw):
    config = CuckooConfig(pairs=pairs, slots_per_bucket=4, seed=seed, **kw)
    return CuckooDirectory(config, packer=_packer)


# -- choice filter -----------------------------------------------------------


class TestChoiceFilter:
    def test_add_query_remove_roundtrip(self):
        f = ChoiceFilter(cells=256, hashes=2, seed=1)
        key = b"hello-flow"
        assert not f.query(key)
        f.add(key)
        assert f.query(key)
        f.remove(key)
        assert not f.query(key)

    def test_remove_without_add_raises(self):
        f = ChoiceFilter(cells=256, hashes=2, seed=1)
        with pytest.raises(ValueError):
            f.remove(b"never-added")

    def test_add_reports_zero_to_one_flips(self):
        f = ChoiceFilter(cells=256, hashes=2, seed=1)
        first = f.add(b"key-a")
        assert first == list(f.indices(b"key-a"))
        # A second add of the same key flips nothing: cells are already hot.
        assert f.add(b"key-a") == []

    def test_probes_are_independent_not_offset_copies(self):
        """Regression: CRC32 is affine, so probes that differ only in a
        seed prefix land on cells separated by a key-independent XOR —
        one hash masquerading as two.  With independent probes, keys
        sharing probe-0's cell must not all share probe-1's cell."""
        f = ChoiceFilter(cells=64, hashes=2, seed=3)
        by_first = {}
        for i in range(512):
            key = struct.pack("!I", i)
            c0, c1 = f.indices(key)
            by_first.setdefault(c0, set()).add(c1)
        assert any(len(seconds) > 1 for seconds in by_first.values())

    def test_deterministic_under_seed(self):
        a = ChoiceFilter(cells=128, hashes=2, seed=9)
        b = ChoiceFilter(cells=128, hashes=2, seed=9)
        for i in range(50):
            key = struct.pack("!I", i)
            assert a.indices(key) == b.indices(key)


# -- directory determinism ---------------------------------------------------


class TestDeterminism:
    def test_same_seed_same_order_identical_layout_and_kicks(self):
        a, b = _build(seed=11), _build(seed=11)
        for rank in range(int(a.config.capacity * 0.85)):
            a.insert(_flow(rank))
            b.insert(_flow(rank))
        assert a.location == b.location
        assert a.kick_log == b.kick_log
        assert a.kicks == b.kicks
        assert a.relocations == b.relocations

    def test_insert_returns_the_applied_moves(self):
        d = _build(seed=2)
        moves = d.insert(_flow(0))
        assert len(moves) == 1
        assert moves[0].key == _flow(0)
        assert moves[0].src is None
        assert d.location[_flow(0)] == moves[0].dst

    def test_reinstall_of_resident_key_is_a_noop(self):
        d = _build(seed=2)
        d.insert(_flow(0))
        ref = d.location[_flow(0)]
        assert d.insert(_flow(0)) == []
        assert d.location[_flow(0)] == ref

    def test_different_seeds_differ(self):
        a, b = _build(seed=1), _build(seed=2)
        for rank in range(200):
            a.insert(_flow(rank))
            b.insert(_flow(rank))
        assert a.location != b.location

    def test_bucket_hashes_are_independent(self):
        """Regression for the seeded-CRC pitfall: h1 must not be a
        function of h0, else the table degrades to single-hash."""
        d = _build(seed=7, pairs=32)
        by_h0 = {}
        for rank in range(512):
            kb = _flow(rank).pack()
            by_h0.setdefault(d.dataplane.h0(kb), set()).add(d.dataplane.h1(kb))
        assert any(len(h1s) > 1 for h1s in by_h0.values())


# -- the EMOMA invariant and the one-READ property ---------------------------


class TestInvariant:
    def test_invariant_holds_at_high_load(self):
        d = _build(seed=5, pairs=128)
        for rank in range(int(d.config.capacity * 0.85)):
            d.insert(_flow(rank))
        assert d.check_invariant() == []

    def test_every_key_readable_in_one_read(self):
        """read_index (the data plane's single bucket choice) must equal
        the pair each key is actually stored at — the one-READ property."""
        d = _build(seed=5, pairs=128)
        ranks = range(int(d.config.capacity * 0.85))
        for rank in ranks:
            d.insert(_flow(rank))
        for rank in ranks:
            flow = _flow(rank)
            ref = d.location[flow]
            assert d.dataplane.read_index(flow.pack()) == ref.index

    def test_remove_restores_filter_and_allows_reinsert(self):
        d = _build(seed=5)
        for rank in range(100):
            d.insert(_flow(rank))
        d.remove(_flow(50))
        assert _flow(50) not in d.location
        assert d.check_invariant() == []
        d.insert(_flow(50))
        assert _flow(50) in d.location
        assert d.check_invariant() == []

    def test_remove_unknown_key_returns_none(self):
        d = _build(seed=5)
        assert d.remove(_flow(1)) is None


# -- overload ----------------------------------------------------------------


class TestOverload:
    def _fill_until_full(self, d):
        inserted = []
        rank = 0
        with pytest.raises(CuckooFullError):
            while True:
                d.insert(_flow(rank))
                inserted.append(rank)
                rank += 1
        return inserted, rank

    def test_overload_raises_cleanly(self):
        d = _build(seed=3, pairs=16, max_kicks=8)
        inserted, failed_rank = self._fill_until_full(d)
        # The failed key left no trace; everything inserted before is
        # still resident, readable in one READ, invariant intact.
        assert _flow(failed_rank) not in d.location
        assert len(d.location) == len(inserted)
        assert d.check_invariant() == []
        for rank in inserted:
            flow = _flow(rank)
            assert d.dataplane.read_index(flow.pack()) == d.location[flow].index
        assert d.failed_inserts == 1

    def test_failed_insert_rolls_back_to_identical_state(self):
        """State after a failed insert == state as if it never happened."""
        a = _build(seed=3, pairs=16, max_kicks=8)
        inserted, _ = self._fill_until_full(a)
        b = _build(seed=3, pairs=16, max_kicks=8)
        for rank in inserted:
            b.insert(_flow(rank))
        assert a.location == b.location
        # The kick log keeps only applied work (the failed chain is
        # truncated), and the RNG state matches a run that never failed —
        # so the *next* successful insert diverges in neither directory.
        assert a.kick_log == b.kick_log

    def test_capacity_overflow_raises(self):
        d = _build(seed=3, pairs=4)
        with pytest.raises(CuckooFullError):
            for rank in range(d.config.capacity + 1):
                d.insert(_flow(rank))


# -- geometry ----------------------------------------------------------------


class TestGeometry:
    def test_config_capacity(self):
        config = CuckooConfig(pairs=64, slots_per_bucket=4)
        assert config.capacity == 64 * 2 * 4

    def test_slotref_identity(self):
        assert SlotRef(T0, 3, 1) == SlotRef(0, 3, 1)
        assert SlotRef(T1, 3, 1) != SlotRef(T0, 3, 1)

    def test_load_tracks_occupancy(self):
        d = _build(seed=1, pairs=16)
        assert d.load == 0.0
        d.insert(_flow(0))
        assert d.load == pytest.approx(1 / d.config.capacity)
