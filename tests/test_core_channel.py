"""Tests for the RDMA channel controller and the request generator."""

import pytest

from repro.core.channel import ChannelError
from repro.core.rocegen import RoceRequestGenerator
from repro.experiments.topology import build_testbed
from repro.rdma.qp import QpState
from repro.sim.units import mib


def open_channel(testbed, size=mib(1)):
    return testbed.controller.open_channel(
        testbed.memory_server, testbed.server_port, size
    )


class TestChannelController:
    def test_open_channel_registers_memory(self):
        tb = build_testbed()
        channel = open_channel(tb, size=mib(2))
        assert channel.length == mib(2)
        assert channel.region in tb.memory_server.lent_regions
        assert channel.rkey == channel.region.rkey
        assert channel.base_address == channel.region.base_address

    def test_qps_are_connected(self):
        tb = build_testbed()
        channel = open_channel(tb)
        assert channel.switch_qp.state is QpState.RTS
        assert channel.server_qp.state is QpState.RTS
        assert channel.switch_qp.dest_qpn == channel.server_qp.qpn
        assert channel.server_qp.dest_qpn == channel.switch_qp.qpn

    def test_channel_identity_comes_from_server_port(self):
        tb = build_testbed()
        channel = open_channel(tb)
        port_iface = tb.switch.port_interface(tb.server_port)
        assert channel.switch_qp.local_ip == port_iface.ip
        assert channel.switch_qp.local_mac == port_iface.mac

    def test_wrong_port_rejected(self):
        tb = build_testbed()
        with pytest.raises(ChannelError):
            tb.controller.open_channel(
                tb.memory_server, tb.host_ports[0], mib(1)
            )

    def test_nonexistent_port_rejected(self):
        tb = build_testbed()
        with pytest.raises(ChannelError):
            tb.controller.open_channel(tb.memory_server, 99, mib(1))

    def test_multiple_channels_disjoint(self):
        tb = build_testbed()
        a = open_channel(tb)
        b = open_channel(tb)
        assert a.rkey != b.rkey
        assert a.switch_qp.qpn != b.switch_qp.qpn
        assert a.end_address <= b.base_address

    def test_close_channel_invalidates(self):
        tb = build_testbed()
        channel = open_channel(tb)
        tb.controller.close_channel(channel)
        assert not channel.region.valid
        assert channel not in tb.controller.channels


class DummyProgram:
    """Minimal program so the switch pipeline can run."""

    def attach(self, switch):
        pass

    def on_ingress(self, ctx, packet):
        ctx.drop()

    def on_recirculate(self, ctx, packet):
        ctx.drop()


class TestRoceRequestGenerator:
    def make(self):
        tb = build_testbed()
        tb.switch.bind_program(DummyProgram())
        channel = open_channel(tb)
        gen = RoceRequestGenerator(tb.switch, channel)
        return tb, channel, gen

    def test_write_executes_remotely_with_zero_cpu(self):
        tb, channel, gen = self.make()
        gen.write(channel.base_address + 8, b"switch-data")
        tb.sim.run()
        assert channel.region.read(channel.base_address + 8, 11) == b"switch-data"
        assert tb.memory_server.cpu_packets == 0
        assert gen.stats.writes_issued == 1

    def test_read_response_returns_to_switch(self):
        tb, channel, gen = self.make()
        channel.region.write(channel.base_address, b"stored")
        gen.read(channel.base_address, 6)
        tb.sim.run()
        # The response came back and hit the (dropping) pipeline.
        assert tb.switch.stats.rx_packets == 1

    def test_fetch_add_applies(self):
        tb, channel, gen = self.make()
        gen.fetch_add(channel.base_address, 41)
        tb.sim.run()
        value = int.from_bytes(channel.region.read(channel.base_address, 8), "big")
        assert value == 41
        assert gen.stats.fetch_adds_issued == 1

    def test_out_of_range_rejected_locally(self):
        tb, channel, gen = self.make()
        with pytest.raises(ValueError):
            gen.write(channel.end_address, b"x")
        with pytest.raises(ValueError):
            gen.read(channel.base_address - 1, 1)

    def test_request_bytes_accounted(self):
        tb, channel, gen = self.make()
        request = gen.write(channel.base_address, b"abc")
        assert gen.stats.request_wire_bytes == request.wire_len

    def test_owns_response_matches_qpn(self):
        tb, channel, gen = self.make()
        gen.read(channel.base_address, 4)
        responses = []
        tb.memory_server.eth.tx_taps.append(responses.append)
        tb.sim.run()
        assert len(responses) == 1
        assert gen.owns_response(responses[0])
