"""Stateful / model-based property tests on core data structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.rdma.memory import MemoryAccessError, SparseBuffer
from repro.switches.tables import ActionEntry, ExactMatchTable, TableFullError
from repro.switches.traffic_manager import TrafficManager, TrafficManagerConfig
from repro.workloads.factory import udp_between


class SparseBufferMachine(RuleBasedStateMachine):
    """SparseBuffer must behave exactly like a plain bytearray."""

    SIZE = 2000

    @initialize()
    def setup(self):
        self.buffer = SparseBuffer(self.SIZE, page_size=64)
        self.reference = bytearray(self.SIZE)

    @rule(
        offset=st.integers(0, SIZE - 1),
        data=st.binary(min_size=0, max_size=300),
    )
    def write(self, offset, data):
        data = data[: self.SIZE - offset]
        self.buffer.write(offset, data)
        self.reference[offset : offset + len(data)] = data

    @rule(offset=st.integers(0, SIZE - 1), size=st.integers(0, 300))
    def read(self, offset, size):
        size = min(size, self.SIZE - offset)
        assert self.buffer.read(offset, size) == bytes(
            self.reference[offset : offset + size]
        )

    @rule(offset=st.integers(SIZE, SIZE + 100), size=st.integers(1, 10))
    def out_of_range_read_rejected(self, offset, size):
        with pytest.raises(MemoryAccessError):
            self.buffer.read(offset, size)

    @invariant()
    def residency_bounded(self):
        assert self.buffer.resident_bytes <= self.SIZE + 64


TestSparseBufferModel = SparseBufferMachine.TestCase
TestSparseBufferModel.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)


class ExactTableMachine(RuleBasedStateMachine):
    """ExactMatchTable must track a dict with bounded size."""

    CAPACITY = 8

    @initialize()
    def setup(self):
        self.table = ExactMatchTable("model", capacity=self.CAPACITY)
        self.reference = {}

    @rule(key=st.integers(0, 20), value=st.integers(0, 100))
    def insert(self, key, value):
        entry = ActionEntry("set", {"v": value})
        if key in self.reference or len(self.reference) < self.CAPACITY:
            self.table.insert(key, entry)
            self.reference[key] = value
        else:
            with pytest.raises(TableFullError):
                self.table.insert(key, entry)

    @rule(key=st.integers(0, 20))
    def delete(self, key):
        assert self.table.delete(key) == (key in self.reference)
        self.reference.pop(key, None)

    @rule(key=st.integers(0, 20))
    def lookup(self, key):
        entry = self.table.lookup(key)
        if key in self.reference:
            assert entry is not None
            assert entry.params["v"] == self.reference[key]
        else:
            assert entry is None

    @rule()
    def evict_oldest(self):
        evicted = self.table.evict_oldest()
        if self.reference:
            assert evicted in self.reference
            del self.reference[evicted]
        else:
            assert evicted is None

    @invariant()
    def sizes_agree(self):
        assert len(self.table) == len(self.reference)
        assert len(self.table) <= self.CAPACITY


TestExactTableModel = ExactTableMachine.TestCase
TestExactTableModel.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)


class TrafficManagerMachine(RuleBasedStateMachine):
    """Shared-buffer accounting must never leak or go negative."""

    @initialize()
    def setup(self):
        self.tm = TrafficManager(TrafficManagerConfig(buffer_bytes=10_000))
        self.enqueued = {0: [], 1: [], 2: []}

    def _packet(self, size):
        class Fake:
            def __init__(self, n):
                self.buffer_len = n

        return Fake(size)

    @rule(port=st.integers(0, 2), size=st.integers(60, 1600))
    def offer(self, port, size):
        packet = self._packet(size)
        queue = self.tm.queue_for(port)
        fits = self.tm.used_bytes + size <= self.tm.config.buffer_bytes
        admitted = queue.offer(packet)
        assert admitted == fits  # drop-tail admits iff the pool has room
        if admitted:
            self.enqueued[port].append(size)

    @rule(port=st.integers(0, 2))
    def poll(self, port):
        queue = self.tm.queue_for(port)
        packet = queue.poll()
        if self.enqueued[port]:
            assert packet is not None
            assert packet.buffer_len == self.enqueued[port].pop(0)
        else:
            assert packet is None

    @invariant()
    def accounting_consistent(self):
        expected = sum(sum(sizes) for sizes in self.enqueued.values())
        assert self.tm.used_bytes == expected
        assert 0 <= self.tm.used_bytes <= self.tm.config.buffer_bytes
        for port, sizes in self.enqueued.items():
            queue = self.tm.queue_for(port)
            assert queue.depth_bytes == sum(sizes)
            assert len(queue) == len(sizes)


TestTrafficManagerModel = TrafficManagerMachine.TestCase
TestTrafficManagerModel.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)


class TestPsnWraparound:
    """Primitives must survive 24-bit PSN wraparound mid-stream."""

    def test_state_store_across_wrap(self):
        from repro.apps.programs import CountingProgram
        from repro.core.state_store import RemoteStateStore, StateStoreConfig
        from repro.experiments.topology import build_testbed
        from repro.workloads.perftest import RawEthernetBw
        from repro.sim.units import gbps

        tb = build_testbed(n_hosts=2)
        program = CountingProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        config = StateStoreConfig(counters=1 << 10)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, (1 << 10) * 8
        )
        store = RemoteStateStore(tb.switch, channel, config=config)
        program.use_state_store(store)
        # Start 5 PSNs before the 24-bit wrap.
        start_psn = (1 << 24) - 5
        channel.switch_qp.next_psn = start_psn
        channel.server_qp.expected_psn = start_psn
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=256, rate_bps=gbps(10), count=50,
        )
        gen.start()
        tb.sim.run()
        packet = udp_between(tb.hosts[0], tb.hosts[1], 256)
        assert store.read_counter_via_control_plane(store.index_of(store.key_of(packet))) == 50
        assert tb.memory_server.rnic.stats.sequence_errors == 0

    def test_packet_buffer_across_wrap(self):
        from tests.test_core_packet_buffer import blast, build

        tb, program, primitive, channel = build()
        start_psn = (1 << 24) - 3
        channel.switch_qp.next_psn = start_psn
        channel.server_qp.expected_psn = start_psn
        sink, _ = blast(tb, count=100)
        tb.sim.run()
        assert sink.packets == 200
        assert sink.out_of_order == 0
        assert tb.memory_server.rnic.stats.sequence_errors == 0
