"""Whole-system determinism: identical seeds give identical experiments.

DESIGN.md lists deterministic event ordering as an invariant; these tests
check it end to end, through the RDMA stack, primitives and workloads.
The event-trace tests pin down the kernel-level guarantee directly (exact
firing order, including FIFO tie-breaks and cancellations), so a fast-path
regression in the simulator shows up here before it scrambles a figure.
"""

import random
from dataclasses import asdict

import pytest

from repro.experiments.baremetal import run_baremetal
from repro.experiments.fig3b import run_fig3b_point
from repro.experiments.incast import run_incast
from repro.experiments.kv_cache import run_kv_cache
from repro.sim.simulator import Simulator, kernel_mode

#: Both kernels must satisfy every determinism guarantee in this module.
MODES = ("scalar", "batch")


def _random_workload_trace(seed: int, n: int = 400, mode: str = "scalar"):
    """Drive a simulator with a seeded random event mix; return the trace."""
    rng = random.Random(seed)
    sim = Simulator(kernel=mode)
    trace = []
    cancellable = []

    def fire(tag):
        trace.append((sim.now, tag))
        for _ in range(rng.randrange(3)):
            delay = rng.choice([0.0, 1.0, 1.0, 2.5, 10.0])
            child = sim.schedule(delay, fire, f"{tag}.{len(trace)}")
            if rng.random() < 0.3:
                cancellable.append(child)
        if cancellable and rng.random() < 0.4:
            cancellable.pop(rng.randrange(len(cancellable))).cancel()

    for i in range(8):
        sim.schedule(float(i % 3), fire, f"root{i}")
    sim.run(max_events=n)
    return trace, sim.now, sim.events_processed


@pytest.mark.parametrize("mode", MODES)
def test_event_trace_deterministic(mode):
    """Identical seeds produce byte-identical event traces."""
    assert _random_workload_trace(7, mode=mode) == _random_workload_trace(7, mode=mode)
    assert _random_workload_trace(8, mode=mode) == _random_workload_trace(8, mode=mode)


@pytest.mark.parametrize("seed", [7, 8, 42])
def test_event_trace_identical_across_kernels(seed):
    """The batch kernel fires the exact scalar sequence — same (time, tag)
    trace, same final clock, same event count."""
    assert _random_workload_trace(seed, mode="scalar") == _random_workload_trace(
        seed, mode="batch"
    )


@pytest.mark.parametrize("mode", MODES)
def test_event_trace_fifo_at_equal_times(mode):
    """Events scheduled for the same instant fire in scheduling order."""
    sim = Simulator(kernel=mode)
    order = []
    for i in range(50):
        sim.schedule(5.0, order.append, i)
    sim.run()
    assert order == list(range(50))


@pytest.mark.parametrize("mode", MODES)
def test_run_in_slices_matches_run_to_completion(mode):
    """Draining via deadlines slice by slice equals one uninterrupted run."""
    full, full_now, full_count = _random_workload_trace(11, n=300, mode=mode)

    rng = random.Random(11)
    sim = Simulator(kernel=mode)
    trace = []
    cancellable = []

    def fire(tag):
        trace.append((sim.now, tag))
        for _ in range(rng.randrange(3)):
            delay = rng.choice([0.0, 1.0, 1.0, 2.5, 10.0])
            child = sim.schedule(delay, fire, f"{tag}.{len(trace)}")
            if rng.random() < 0.3:
                cancellable.append(child)
        if cancellable and rng.random() < 0.4:
            cancellable.pop(rng.randrange(len(cancellable))).cancel()

    for i in range(8):
        sim.schedule(float(i % 3), fire, f"root{i}")
    while sim.active_events and len(trace) < 300:
        sim.run(until_ns=sim.now + 1.0, max_events=300 - len(trace))
    assert trace == full
    assert sim.events_processed == full_count


@pytest.mark.parametrize("mode", MODES)
def test_fig3b_point_deterministic(mode):
    with kernel_mode(mode):
        a = run_fig3b_point(256, packets=800)
        b = run_fig3b_point(256, packets=800)
    assert asdict(a) == asdict(b)


def test_fig3b_point_identical_across_kernels():
    """A full experiment (switch + RNIC + workload) produces field-identical
    results whichever kernel runs it."""
    with kernel_mode("scalar"):
        scalar = run_fig3b_point(256, packets=800)
    with kernel_mode("batch"):
        batch = run_fig3b_point(256, packets=800)
    assert asdict(scalar) == asdict(batch)


def test_incast_deterministic():
    a = run_incast("remote_buffer", scale=0.02, n_memory_servers=2)
    b = run_incast("remote_buffer", scale=0.02, n_memory_servers=2)
    assert asdict(a) == asdict(b)


def test_incast_identical_across_kernels():
    with kernel_mode("scalar"):
        scalar = run_incast("remote_buffer", scale=0.02, n_memory_servers=2)
    with kernel_mode("batch"):
        batch = run_incast("remote_buffer", scale=0.02, n_memory_servers=2)
    assert asdict(scalar) == asdict(batch)


def test_chaos_run_identical_across_kernels():
    """Seed-42 chaos run — IidLoss on the server link, then the blackout →
    degrade → reconnect scenario — produces identical results, a
    byte-identical wire trace, and a field-identical metric snapshot in
    both kernels."""
    from repro.experiments.chaos import run_chaos_point, run_chaos_recovery
    from repro.obs import Observability, WireTrace

    def run(mode):
        obs = Observability(trace=WireTrace())
        with kernel_mode(mode), obs.activate():
            point = run_chaos_point(
                loss_rate=0.05, packets=300, flows=8, counters=64, seed=42
            )
            recovery = run_chaos_recovery(seed=42)
        return (
            asdict(point),
            asdict(recovery),
            obs.trace.to_jsonl(),
            obs.registry.snapshot(),
        )

    scalar = run("scalar")
    batch = run("batch")
    assert scalar[0] == batch[0]  # chaos sweep point results
    assert scalar[1] == batch[1]  # recovery scenario results
    assert scalar[2] == batch[2]  # wire trace, byte for byte
    assert scalar[3] == batch[3]  # metric registry snapshot
    assert len(scalar[2]) > 0 and len(scalar[3]) > 0


def test_baremetal_deterministic_per_seed():
    a = run_baremetal("remote", vips=500, packets=400, seed=3)
    b = run_baremetal("remote", vips=500, packets=400, seed=3)
    assert asdict(a) == asdict(b)


def test_baremetal_seed_changes_draws():
    """Different seeds draw different VIP sequences (the aggregate metrics
    can coincide — per-packet service times don't depend on which VIP —
    so the check is at the sampler level)."""
    from repro.sim.rng import SeedSequence
    from repro.workloads.flows import ZipfSampler

    a = ZipfSampler(500, 1.1, SeedSequence(0).stream("baremetal-3"))
    b = ZipfSampler(500, 1.1, SeedSequence(0).stream("baremetal-4"))
    assert [a.sample() for _ in range(50)] != [b.sample() for _ in range(50)]


def test_kv_cache_deterministic():
    a = run_kv_cache("sram+remote", keys=300, queries=200)
    b = run_kv_cache("sram+remote", keys=300, queries=200)
    assert asdict(a) == asdict(b)
