"""Whole-system determinism: identical seeds give identical experiments.

DESIGN.md lists deterministic event ordering as an invariant; these tests
check it end to end, through the RDMA stack, primitives and workloads.
"""

from dataclasses import asdict

from repro.experiments.baremetal import run_baremetal
from repro.experiments.fig3b import run_fig3b_point
from repro.experiments.incast import run_incast
from repro.experiments.kv_cache import run_kv_cache


def test_fig3b_point_deterministic():
    a = run_fig3b_point(256, packets=800)
    b = run_fig3b_point(256, packets=800)
    assert asdict(a) == asdict(b)


def test_incast_deterministic():
    a = run_incast("remote_buffer", scale=0.02, n_memory_servers=2)
    b = run_incast("remote_buffer", scale=0.02, n_memory_servers=2)
    assert asdict(a) == asdict(b)


def test_baremetal_deterministic_per_seed():
    a = run_baremetal("remote", vips=500, packets=400, seed=3)
    b = run_baremetal("remote", vips=500, packets=400, seed=3)
    assert asdict(a) == asdict(b)


def test_baremetal_seed_changes_draws():
    """Different seeds draw different VIP sequences (the aggregate metrics
    can coincide — per-packet service times don't depend on which VIP —
    so the check is at the sampler level)."""
    from repro.sim.rng import SeedSequence
    from repro.workloads.flows import ZipfSampler

    a = ZipfSampler(500, 1.1, SeedSequence(0).stream("baremetal-3"))
    b = ZipfSampler(500, 1.1, SeedSequence(0).stream("baremetal-4"))
    assert [a.sample() for _ in range(50)] != [b.sample() for _ in range(50)]


def test_kv_cache_deterministic():
    a = run_kv_cache("sram+remote", keys=300, queries=200)
    b = run_kv_cache("sram+remote", keys=300, queries=200)
    assert asdict(a) == asdict(b)
