"""Whole-system determinism: identical seeds give identical experiments.

DESIGN.md lists deterministic event ordering as an invariant; these tests
check it end to end, through the RDMA stack, primitives and workloads.
The event-trace tests pin down the kernel-level guarantee directly (exact
firing order, including FIFO tie-breaks and cancellations), so a fast-path
regression in the simulator shows up here before it scrambles a figure.
"""

import random
from dataclasses import asdict

from repro.experiments.baremetal import run_baremetal
from repro.experiments.fig3b import run_fig3b_point
from repro.experiments.incast import run_incast
from repro.experiments.kv_cache import run_kv_cache
from repro.sim.simulator import Simulator


def _random_workload_trace(seed: int, n: int = 400):
    """Drive a simulator with a seeded random event mix; return the trace."""
    rng = random.Random(seed)
    sim = Simulator()
    trace = []
    cancellable = []

    def fire(tag):
        trace.append((sim.now, tag))
        for _ in range(rng.randrange(3)):
            delay = rng.choice([0.0, 1.0, 1.0, 2.5, 10.0])
            child = sim.schedule(delay, fire, f"{tag}.{len(trace)}")
            if rng.random() < 0.3:
                cancellable.append(child)
        if cancellable and rng.random() < 0.4:
            cancellable.pop(rng.randrange(len(cancellable))).cancel()

    for i in range(8):
        sim.schedule(float(i % 3), fire, f"root{i}")
    sim.run(max_events=n)
    return trace, sim.now, sim.events_processed


def test_event_trace_deterministic():
    """Identical seeds produce byte-identical event traces."""
    assert _random_workload_trace(7) == _random_workload_trace(7)
    assert _random_workload_trace(8) == _random_workload_trace(8)


def test_event_trace_fifo_at_equal_times():
    """Events scheduled for the same instant fire in scheduling order."""
    sim = Simulator()
    order = []
    for i in range(50):
        sim.schedule(5.0, order.append, i)
    sim.run()
    assert order == list(range(50))


def test_run_in_slices_matches_run_to_completion():
    """Draining via deadlines slice by slice equals one uninterrupted run."""
    full, full_now, full_count = _random_workload_trace(11, n=300)

    rng = random.Random(11)
    sim = Simulator()
    trace = []
    cancellable = []

    def fire(tag):
        trace.append((sim.now, tag))
        for _ in range(rng.randrange(3)):
            delay = rng.choice([0.0, 1.0, 1.0, 2.5, 10.0])
            child = sim.schedule(delay, fire, f"{tag}.{len(trace)}")
            if rng.random() < 0.3:
                cancellable.append(child)
        if cancellable and rng.random() < 0.4:
            cancellable.pop(rng.randrange(len(cancellable))).cancel()

    for i in range(8):
        sim.schedule(float(i % 3), fire, f"root{i}")
    while sim.active_events and len(trace) < 300:
        sim.run(until_ns=sim.now + 1.0, max_events=300 - len(trace))
    assert trace == full
    assert sim.events_processed == full_count


def test_fig3b_point_deterministic():
    a = run_fig3b_point(256, packets=800)
    b = run_fig3b_point(256, packets=800)
    assert asdict(a) == asdict(b)


def test_incast_deterministic():
    a = run_incast("remote_buffer", scale=0.02, n_memory_servers=2)
    b = run_incast("remote_buffer", scale=0.02, n_memory_servers=2)
    assert asdict(a) == asdict(b)


def test_baremetal_deterministic_per_seed():
    a = run_baremetal("remote", vips=500, packets=400, seed=3)
    b = run_baremetal("remote", vips=500, packets=400, seed=3)
    assert asdict(a) == asdict(b)


def test_baremetal_seed_changes_draws():
    """Different seeds draw different VIP sequences (the aggregate metrics
    can coincide — per-packet service times don't depend on which VIP —
    so the check is at the sampler level)."""
    from repro.sim.rng import SeedSequence
    from repro.workloads.flows import ZipfSampler

    a = ZipfSampler(500, 1.1, SeedSequence(0).stream("baremetal-3"))
    b = ZipfSampler(500, 1.1, SeedSequence(0).stream("baremetal-4"))
    assert [a.sample() for _ in range(50)] != [b.sample() for _ in range(50)]


def test_kv_cache_deterministic():
    a = run_kv_cache("sram+remote", keys=300, queries=200)
    b = run_kv_cache("sram+remote", keys=300, queries=200)
    assert asdict(a) == asdict(b)
