"""Integration tests: programmable switch + traffic manager + L2 program."""

import pytest

from repro.baselines.l2_switch import L2SwitchProgram
from repro.net.addresses import MacAddress
from repro.net.link import connect
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.headers import EthernetHeader
from repro.sim.simulator import Simulator
from repro.sim.units import gbps, kib
from repro.switches.pipeline import PipelineContext, SwitchProgram
from repro.switches.switch import ProgrammableSwitch, SwitchConfig
from repro.switches.traffic_manager import HookVerdict, TrafficManagerConfig
from tests.test_net_packet import make_udp_packet


class SinkHost(Node):
    def __init__(self, sim, name, mac):
        super().__init__(sim, name)
        self.eth = self.add_interface("eth0", mac)
        self.received = []

    def receive(self, packet, interface):
        self.received.append((self.sim.now, packet))

    def send(self, packet):
        return self.eth.send(packet)


def build_fabric(sim, n_hosts=3, tm_config=None, switch_config=None):
    """n hosts star-wired to one switch running L2 learning."""
    switch = ProgrammableSwitch(
        sim, "sw", config=switch_config, tm_config=tm_config
    )
    switch.bind_program(L2SwitchProgram())
    hosts = []
    for i in range(n_hosts):
        host = SinkHost(sim, f"h{i}", MacAddress(0x0200_0000_0000 + i + 1))
        port = switch.add_port(MacAddress(0x0200_0000_1000 + i + 1))
        connect(sim, host.eth, switch.port_interface(port), gbps(40))
        hosts.append(host)
    return switch, hosts


def packet_between(hosts, src_idx, dst_idx, payload=b"x" * 100):
    packet = make_udp_packet(payload=payload)
    packet.headers[0] = EthernetHeader(
        dst=hosts[dst_idx].eth.mac, src=hosts[src_idx].eth.mac
    )
    return packet


def test_unknown_destination_floods():
    sim = Simulator()
    switch, hosts = build_fabric(sim)
    hosts[0].send(packet_between(hosts, 0, 1))
    sim.run()
    assert len(hosts[1].received) == 1
    assert len(hosts[2].received) == 1  # flooded
    assert len(hosts[0].received) == 0  # never back out the ingress port


def test_learned_destination_unicasts():
    sim = Simulator()
    switch, hosts = build_fabric(sim)
    hosts[1].send(packet_between(hosts, 1, 0))  # teaches the switch h1's port
    sim.run()
    hosts[0].send(packet_between(hosts, 0, 1))
    sim.run()
    assert len(hosts[1].received) == 1  # unicast only (h1 sent the flood)
    assert len(hosts[0].received) == 1  # got the initial flood
    assert len(hosts[2].received) == 1  # got the initial flood, not the unicast


def test_forwarding_latency_includes_pipeline():
    sim = Simulator()
    config = SwitchConfig(pipeline_latency_ns=400.0)
    switch, hosts = build_fabric(sim, switch_config=config)
    packet = packet_between(hosts, 0, 1)
    hosts[0].send(packet)
    sim.run()
    arrival, _ = hosts[1].received[0]
    serialize = packet.wire_len * 8 / 40e9 * 1e9
    expected = 2 * serialize + 2 * 250.0 + 400.0
    assert arrival == pytest.approx(expected)


def test_shared_buffer_overflow_drops():
    sim = Simulator()
    tm = TrafficManagerConfig(buffer_bytes=kib(4))
    switch, hosts = build_fabric(sim, tm_config=tm)
    # Pre-teach MACs so traffic unicasts toward h1.
    hosts[1].send(packet_between(hosts, 1, 0))
    sim.run()
    received_before = len(hosts[1].received)
    # Two senders at 40 Gbps into one 40 Gbps egress: 2:1 incast.
    for _ in range(20):
        hosts[0].send(packet_between(hosts, 0, 1, payload=b"y" * 1458))
        hosts[2].send(packet_between(hosts, 2, 1, payload=b"y" * 1458))
    sim.run()
    assert switch.tm.total_dropped_packets > 0
    delivered = len(hosts[1].received) - received_before
    assert delivered < 40
    # Buffer accounting must return to zero once drained.
    assert switch.tm.used_bytes == 0


class RecirculatingProgram(SwitchProgram):
    """Recirculates each packet twice, then forwards to port 1."""

    def on_ingress(self, ctx, packet):
        packet.meta.setdefault("passes", 0)
        packet.meta["passes"] += 1
        if packet.meta["passes"] <= 2:
            ctx.recirculate()
        else:
            ctx.forward(1)


def test_recirculation_counts_and_latency():
    sim = Simulator()
    switch = ProgrammableSwitch(sim, "sw")
    switch.bind_program(RecirculatingProgram())
    h0 = SinkHost(sim, "h0", MacAddress(1))
    h1 = SinkHost(sim, "h1", MacAddress(2))
    connect(sim, h0.eth, switch.port_interface(switch.add_port(MacAddress(0x10))), gbps(40))
    connect(sim, h1.eth, switch.port_interface(switch.add_port(MacAddress(0x11))), gbps(40))
    h0.send(make_udp_packet())
    sim.run()
    assert switch.stats.recirculations == 2
    assert len(h1.received) == 1


class EmittingProgram(SwitchProgram):
    """Forwards the packet and emits a clone out of port 0."""

    def on_ingress(self, ctx, packet):
        clone = ctx.clone_to(0)
        clone.meta["is_clone"] = True
        ctx.forward(1)


def test_clone_to_emits_copy():
    sim = Simulator()
    switch = ProgrammableSwitch(sim, "sw")
    switch.bind_program(EmittingProgram())
    h0 = SinkHost(sim, "h0", MacAddress(1))
    h1 = SinkHost(sim, "h1", MacAddress(2))
    connect(sim, h0.eth, switch.port_interface(switch.add_port(MacAddress(0x10))), gbps(40))
    connect(sim, h1.eth, switch.port_interface(switch.add_port(MacAddress(0x11))), gbps(40))
    h0.send(make_udp_packet())
    sim.run()
    assert len(h1.received) == 1
    assert len(h0.received) == 1
    assert h0.received[0][1].meta.get("is_clone")


def test_egress_hook_can_consume_packets():
    sim = Simulator()
    switch, hosts = build_fabric(sim)
    consumed = []

    def hook(port, packet, queue):
        consumed.append((port, packet))
        return HookVerdict.CONSUMED

    switch.tm.egress_hook = hook
    hosts[0].send(packet_between(hosts, 0, 1))
    sim.run()
    # Flood tried 2 egress ports; the hook swallowed both copies.
    assert len(consumed) == 2
    assert all(len(h.received) == 0 for h in hosts)
    assert switch.tm.total_dropped_packets == 0


def test_dequeue_listener_fires():
    sim = Simulator()
    switch, hosts = build_fabric(sim)
    events = []
    switch.tm.dequeue_listeners.append(
        lambda port, packet, queue: events.append(port)
    )
    hosts[0].send(packet_between(hosts, 0, 1))
    sim.run()
    assert len(events) == 2  # two flood copies dequeued


def test_recirculation_bound_drops_runaway_packets():
    class Forever(SwitchProgram):
        def on_ingress(self, ctx, packet):
            ctx.recirculate()

    sim = Simulator()
    switch = ProgrammableSwitch(sim, "sw", config=SwitchConfig(max_recirculations=3))
    switch.bind_program(Forever())
    h0 = SinkHost(sim, "h0", MacAddress(1))
    connect(sim, h0.eth, switch.port_interface(switch.add_port(MacAddress(0x10))), gbps(40))
    h0.send(make_udp_packet())
    sim.run()
    assert switch.stats.recirculation_overflow_drops == 1
    assert switch.stats.recirculations == 3
