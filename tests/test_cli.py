"""Tests for the repro-experiments command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["warp-drive"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["fig3a", "--probes", "5"],
            ["fig3b", "--packets", "100"],
            ["incast", "--scale", "0.01"],
            ["overhead"],
            ["ablations", "--which", "drops"],
            ["linkguard", "--packets", "200", "--check"],
            ["linkguard", "--corrupt-rate", "0.002", "--seed", "7"],
            ["l4lb", "--connections", "1000", "--check"],
            ["l4lb", "--backends", "3", "--corrupt-rate", "0.003"],
            ["all", "--quick"],
        ],
    )
    def test_valid_invocations_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.fn)

    def test_ablation_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablations", "--which", "nonsense"])


class TestExecution:
    def test_overhead_prints_table(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "RDMA WRITE" in out
        assert "56" in out

    def test_fig3a_small(self, capsys):
        assert main(["fig3a", "--probes", "3"]) == 0
        out = capsys.readouterr().out
        assert "baseline (us)" in out
        assert "64" in out

    def test_incast_tiny(self, capsys):
        assert main(["incast", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "droptail" in out
        assert "remote_buffer" in out
        assert "pfc" in out

    def test_ablations_single(self, capsys):
        assert main(["ablations", "--which", "batching"]) == 0
        out = capsys.readouterr().out
        assert "Fetch-and-Add" in out

    def test_l4lb_tiny_passes_check(self, capsys):
        assert main(
            [
                "l4lb",
                "--connections", "1500",
                "--packets", "3000",
                "--new-connections", "150",
                "--new-packets", "400",
                "--backends", "3",
                "--corrupt-rate", "0.003",
                "--check",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "counter audit" in out
        assert "lost 0" in out
        assert "0 breaks" in out
