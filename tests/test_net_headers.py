"""Tests for Ethernet / IPv4 / UDP header codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.headers import (
    ETHERTYPE_IPV4,
    EthernetHeader,
    HeaderError,
    Ipv4Header,
    UdpHeader,
    ipv4_checksum,
)

macs = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MacAddress)
ips = st.integers(min_value=0, max_value=(1 << 32) - 1).map(Ipv4Address)


class TestEthernet:
    def test_pack_length(self):
        eth = EthernetHeader(dst=MacAddress(1), src=MacAddress(2))
        assert len(eth.pack()) == EthernetHeader.LENGTH == 14

    def test_round_trip(self):
        eth = EthernetHeader(
            dst=MacAddress("ff:ff:ff:ff:ff:ff"),
            src=MacAddress("02:00:00:00:00:09"),
            ethertype=0x8915,
        )
        assert EthernetHeader.unpack(eth.pack()) == eth

    def test_short_buffer_rejected(self):
        with pytest.raises(HeaderError):
            EthernetHeader.unpack(b"\x00" * 13)

    def test_default_ethertype_is_ipv4(self):
        eth = EthernetHeader(dst=MacAddress(1), src=MacAddress(2))
        assert eth.ethertype == ETHERTYPE_IPV4

    @given(dst=macs, src=macs, ethertype=st.integers(0, 0xFFFF))
    def test_round_trip_property(self, dst, src, ethertype):
        eth = EthernetHeader(dst=dst, src=src, ethertype=ethertype)
        assert EthernetHeader.unpack(eth.pack()) == eth


class TestIpv4:
    def test_pack_length(self):
        ip = Ipv4Header(src=Ipv4Address("10.0.0.1"), dst=Ipv4Address("10.0.0.2"))
        assert len(ip.pack()) == Ipv4Header.LENGTH == 20

    def test_round_trip(self):
        ip = Ipv4Header(
            src=Ipv4Address("10.1.2.3"),
            dst=Ipv4Address("10.4.5.6"),
            protocol=17,
            total_length=1234,
            ttl=3,
            dscp=46,
            ecn=1,
            identification=777,
        )
        assert Ipv4Header.unpack(ip.pack()) == ip

    def test_checksum_verified_on_unpack(self):
        ip = Ipv4Header(src=Ipv4Address("10.0.0.1"), dst=Ipv4Address("10.0.0.2"))
        raw = bytearray(ip.pack())
        raw[8] ^= 0xFF  # corrupt the TTL
        with pytest.raises(HeaderError):
            Ipv4Header.unpack(bytes(raw))

    def test_checksum_of_packed_header_is_zero(self):
        # Summing a valid header including its checksum must give 0.
        ip = Ipv4Header(src=Ipv4Address("1.2.3.4"), dst=Ipv4Address("5.6.7.8"))
        assert ipv4_checksum(ip.pack()) == 0

    def test_rejects_ipv6_version(self):
        ip = Ipv4Header(src=Ipv4Address(1), dst=Ipv4Address(2))
        raw = bytearray(ip.pack())
        raw[0] = (6 << 4) | 5
        with pytest.raises(HeaderError):
            Ipv4Header.unpack(bytes(raw))

    @pytest.mark.parametrize(
        "field, value",
        [
            ("ttl", 256),
            ("dscp", 64),
            ("ecn", 4),
            ("total_length", 1 << 16),
            ("protocol", -1),
        ],
    )
    def test_field_ranges_enforced(self, field, value):
        kwargs = {"src": Ipv4Address(1), "dst": Ipv4Address(2), field: value}
        with pytest.raises(HeaderError):
            Ipv4Header(**kwargs)

    @given(
        src=ips,
        dst=ips,
        dscp=st.integers(0, 63),
        ecn=st.integers(0, 3),
        ttl=st.integers(0, 255),
        total_length=st.integers(0, 0xFFFF),
        identification=st.integers(0, 0xFFFF),
    )
    def test_round_trip_property(self, src, dst, dscp, ecn, ttl, total_length, identification):
        ip = Ipv4Header(
            src=src,
            dst=dst,
            dscp=dscp,
            ecn=ecn,
            ttl=ttl,
            total_length=total_length,
            identification=identification,
        )
        assert Ipv4Header.unpack(ip.pack()) == ip


class TestUdp:
    def test_pack_length(self):
        udp = UdpHeader(src_port=1000, dst_port=4791)
        assert len(udp.pack()) == UdpHeader.LENGTH == 8

    def test_round_trip(self):
        udp = UdpHeader(src_port=49152, dst_port=4791, length=64, checksum=0)
        assert UdpHeader.unpack(udp.pack()) == udp

    def test_port_range_enforced(self):
        with pytest.raises(HeaderError):
            UdpHeader(src_port=70000, dst_port=1)

    @given(
        src_port=st.integers(0, 0xFFFF),
        dst_port=st.integers(0, 0xFFFF),
        length=st.integers(0, 0xFFFF),
    )
    def test_round_trip_property(self, src_port, dst_port, length):
        udp = UdpHeader(src_port=src_port, dst_port=dst_port, length=length)
        assert UdpHeader.unpack(udp.pack()) == udp
