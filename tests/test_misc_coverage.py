"""Focused tests for smaller APIs: switch injection, topology, rocegen."""

import pytest

from repro.apps.programs import StaticL2Program
from repro.core.rocegen import RoceRequestGenerator
from repro.experiments.topology import build_testbed
from repro.net.addresses import MacAddress
from repro.net.queues import TxQueue
from repro.rdma.constants import AethSyndrome, Opcode
from repro.rdma.headers import AethHeader, BthHeader
from repro.sim.units import gbps, mib
from tests.test_net_packet import make_udp_packet


class TestSwitchMisc:
    def build(self):
        tb = build_testbed(n_hosts=2, with_memory_server=False)
        program = StaticL2Program()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        return tb

    def test_inject_runs_pipeline_without_ingress_port(self):
        tb = self.build()
        received = []
        tb.hosts[1].packet_handlers.append(lambda p, i: received.append(p))
        packet = make_udp_packet()
        packet.headers[0].dst = tb.hosts[1].eth.mac
        tb.switch.inject(packet)
        tb.sim.run()
        assert len(received) == 1

    def test_port_of_round_trips(self):
        tb = self.build()
        for port in tb.host_ports:
            iface = tb.switch.port_interface(port)
            assert tb.switch.port_of(iface) == port

    def test_transmit_invalid_port_rejected(self):
        tb = self.build()
        with pytest.raises(ValueError):
            tb.switch.transmit(make_udp_packet(), 99)

    def test_unbound_program_raises(self):
        from repro.switches.switch import ProgrammableSwitch
        from repro.sim.simulator import Simulator

        sim = Simulator()
        switch = ProgrammableSwitch(sim, "bare")
        switch.add_port(MacAddress(1))
        switch.inject(make_udp_packet())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_stats_track_processing(self):
        tb = self.build()
        packet = make_udp_packet()
        packet.headers[0].dst = tb.hosts[1].eth.mac
        tb.hosts[0].send(packet)
        tb.sim.run()
        assert tb.switch.stats.rx_packets == 1
        assert tb.switch.stats.processed == 1
        assert tb.switch.stats.tx_packets == 1


class TestTopology:
    def test_multiple_memory_servers_named_and_addressed(self):
        tb = build_testbed(n_hosts=1, n_memory_servers=3)
        names = [s.name for s in tb.memory_servers]
        assert names == ["memserver0", "memserver1", "memserver2"]
        ips = {str(s.eth.ip) for s in tb.memory_servers}
        assert len(ips) == 3
        assert len(tb.server_ports) == 3

    def test_single_server_keeps_plain_name(self):
        tb = build_testbed(n_hosts=1)
        assert tb.memory_server.name == "memserver"

    def test_no_memory_server(self):
        tb = build_testbed(n_hosts=2, with_memory_server=False)
        assert tb.memory_server is None
        assert tb.server_port is None
        assert tb.server_link is None

    def test_open_channels_one_per_server(self):
        tb = build_testbed(n_hosts=1, n_memory_servers=2)
        channels = tb.open_channels(mib(1))
        assert len(channels) == 2
        assert channels[0].server is not channels[1].server

    def test_custom_link_rate(self):
        tb = build_testbed(n_hosts=1, link_rate_bps=gbps(100))
        assert tb.host_links[0].rate_bps == gbps(100)

    def test_seeds_are_stable(self):
        a = build_testbed(n_hosts=1, seed=9)
        b = build_testbed(n_hosts=1, seed=9)
        assert a.seeds.stream("x").random() == b.seeds.stream("x").random()


class TestRoceGenMisc:
    def build(self):
        tb = build_testbed(n_hosts=1)
        program = StaticL2Program()
        program.install(tb.hosts[0].eth.mac, tb.host_ports[0])
        program.install(tb.memory_server.eth.mac, tb.server_port)
        tb.switch.bind_program(program)
        channel = tb.controller.open_channel(tb.memory_server, tb.server_port, mib(1))
        return tb, channel, RoceRequestGenerator(tb.switch, channel)

    def test_resync_only_on_sequence_error(self):
        tb, channel, gen = self.build()
        request = gen.read(channel.base_address, 4)
        # A remote-access NAK must NOT resync.
        from repro.rdma.packets import build_ack

        nak = build_ack(
            request, channel.server_qp,
            syndrome=AethSyndrome.NAK_REMOTE_ACCESS_ERROR,
        )
        before = channel.switch_qp.next_psn
        assert not gen.maybe_resync(nak)
        assert channel.switch_qp.next_psn == before
        seq_nak = build_ack(
            request, channel.server_qp,
            syndrome=AethSyndrome.NAK_PSN_SEQUENCE_ERROR,
            psn_override=0,
        )
        assert gen.maybe_resync(seq_nak)
        assert channel.switch_qp.next_psn == 0

    def test_classify_counts_nak(self):
        tb, channel, gen = self.build()
        request = gen.read(channel.base_address, 4)
        from repro.rdma.packets import build_ack

        nak = build_ack(
            request, channel.server_qp,
            syndrome=AethSyndrome.NAK_PSN_SEQUENCE_ERROR,
        )
        gen.classify_response(nak)
        assert gen.stats.naks_received == 1
        assert gen.stats.responses_handled == 1

    def test_owns_response_rejects_other_qpns(self):
        tb, channel, gen = self.build()
        packet = make_udp_packet()
        packet.headers.append(BthHeader(opcode=Opcode.ACKNOWLEDGE, dest_qp=0xBEEF, psn=0))
        assert not gen.owns_response(packet)


class TestTxQueuePeek:
    def test_peek_does_not_dequeue(self):
        queue = TxQueue()
        p = make_udp_packet()
        queue.offer(p)
        assert queue.peek() is p
        assert len(queue) == 1
        assert queue.poll() is p
        assert queue.peek() is None

    def test_packet_capacity(self):
        queue = TxQueue(capacity_packets=2)
        assert queue.offer(make_udp_packet())
        assert queue.offer(make_udp_packet())
        assert not queue.offer(make_udp_packet())
        assert queue.dropped_packets == 1
