"""End-to-end RNIC tests over a real simulated link (two hosts)."""

import pytest

from repro.rdma.constants import AethSyndrome, Opcode
from repro.rdma.qp import WorkRequest
from repro.rdma.rnic import RnicConfig
from repro.rdma.verbs import RdmaClient, connect_qps
from repro.sim.units import usec


def make_channel(host_pair):
    """Connect client→server QPs and lend 1 MiB of server memory."""
    client, server, _ = host_pair
    client_qp = client.rnic.create_qp()
    server_qp = server.rnic.create_qp()
    connect_qps(client_qp, server_qp)
    region = server.lend_memory(1 << 20)
    return RdmaClient(client.rnic, client_qp), server, region


class TestWrite:
    def test_write_lands_in_server_memory(self, sim, host_pair):
        client, server, region = make_channel(host_pair)
        done = []
        client.write(region.base_address + 64, region.rkey, b"remote!", done.append)
        sim.run()
        assert region.read(region.base_address + 64, 7) == b"remote!"
        assert len(done) == 1 and done[0].success

    def test_write_is_zero_cpu(self, sim, host_pair):
        client, server, region = make_channel(host_pair)
        client.write(region.base_address, region.rkey, b"x" * 1024)
        sim.run()
        assert server.cpu_packets == 0

    def test_many_writes_complete_in_order(self, sim, host_pair):
        client, server, region = make_channel(host_pair)
        completions = []
        for i in range(20):
            client.write(
                region.base_address + i * 8,
                region.rkey,
                i.to_bytes(8, "big"),
                callback=lambda c, i=i: completions.append(i),
            )
        sim.run()
        assert completions == list(range(20))
        for i in range(20):
            stored = region.read(region.base_address + i * 8, 8)
            assert int.from_bytes(stored, "big") == i

    def test_write_bad_rkey_naks(self, sim, host_pair):
        client, server, region = make_channel(host_pair)
        done = []
        client.write(region.base_address, 0xBAD, b"x", done.append)
        sim.run()
        assert len(done) == 1
        assert not done[0].success
        assert done[0].syndrome == AethSyndrome.NAK_REMOTE_ACCESS_ERROR
        assert server.rnic.stats.access_errors == 1

    def test_write_out_of_bounds_naks(self, sim, host_pair):
        client, server, region = make_channel(host_pair)
        done = []
        client.write(region.end_address - 2, region.rkey, b"xyz", done.append)
        sim.run()
        assert not done[0].success


class TestRead:
    def test_read_returns_data(self, sim, host_pair):
        client, server, region = make_channel(host_pair)
        region.write(region.base_address + 128, b"stored-by-server")
        got = []
        client.read(region.base_address + 128, region.rkey, 16, got.append)
        sim.run()
        assert got[0].success
        assert got[0].data == b"stored-by-server"

    def test_read_latency_includes_rtt_and_nic_processing(self, sim, host_pair):
        client, server, region = make_channel(host_pair)
        config = server.rnic.config
        done = []
        start = sim.now
        client.read(region.base_address, region.rkey, 8, done.append)
        sim.run()
        elapsed = done[0].completion_time_ns - start
        # Lower bound: request + response propagation and NIC processing.
        floor = 2 * 250.0 + config.rx_processing_ns + config.dma_read_latency_ns
        assert elapsed >= floor
        assert elapsed < usec(10)

    def test_read_write_sequence(self, sim, host_pair):
        client, server, region = make_channel(host_pair)
        results = []
        client.write(region.base_address, region.rkey, b"ping")
        client.read(region.base_address, region.rkey, 4, results.append)
        sim.run()
        assert results[0].data == b"ping"


class TestFetchAdd:
    def test_fetch_add_returns_original_and_increments(self, sim, host_pair):
        client, server, region = make_channel(host_pair)
        originals = []
        for _ in range(5):
            client.fetch_add(
                region.base_address, region.rkey, 2,
                lambda c: originals.append(c.original_value),
            )
        sim.run()
        assert originals == [0, 2, 4, 6, 8]
        final = int.from_bytes(region.read(region.base_address, 8), "big")
        assert final == 10

    def test_atomic_rate_is_capped(self, sim, host_pair):
        client, server, region = make_channel(host_pair)
        rate = server.rnic.config.atomic_rate_ops
        count = 12
        times = []
        for _ in range(count):
            client.fetch_add(
                region.base_address, region.rkey, 1,
                lambda c: times.append(c.completion_time_ns),
            )
        sim.run()
        assert len(times) == count
        # Completions must be spaced at least the atomic service time apart.
        spacing = 1e9 / rate
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(d >= spacing * 0.99 for d in deltas)

    def test_atomic_misaligned_naks(self, sim, host_pair):
        client, server, region = make_channel(host_pair)
        done = []
        client.fetch_add(region.base_address + 1, region.rkey, 1, done.append)
        sim.run()
        assert not done[0].success


class TestResponderRobustness:
    def test_unknown_qp_dropped(self, sim, host_pair):
        client_host, server, _ = host_pair
        qp = client_host.rnic.create_qp()
        # Connect to a QPN the server never created.
        qp.connect(0x999, server.eth.ip, server.eth.mac)
        region = server.lend_memory(4096)
        RdmaClient(client_host.rnic, qp).write(region.base_address, region.rkey, b"x")
        sim.run()
        assert server.rnic.stats.unknown_qp_drops == 1

    def test_psn_gap_naks_sequence_error(self, sim, host_pair):
        client, server, region = make_channel(host_pair)
        qp = client.qp
        qp.next_psn = (qp.next_psn + 5) % (1 << 24)  # simulate 5 lost requests
        done = []
        client.write(region.base_address, region.rkey, b"x", done.append)
        sim.run()
        assert not done[0].success
        assert done[0].syndrome == AethSyndrome.NAK_PSN_SEQUENCE_ERROR
        assert server.rnic.stats.sequence_errors == 1

    def test_duplicate_write_is_acked_not_reapplied(self, sim, host_pair):
        client, server, region = make_channel(host_pair)
        client.write(region.base_address, region.rkey, b"A")
        sim.run()
        # Replay the same PSN (a retransmission after a lost ACK).
        qp = client.qp
        qp.next_psn = (qp.next_psn - 1) % (1 << 24)
        region.write(region.base_address, b"B")  # server-side change
        done = []
        client.write(region.base_address, region.rkey, b"A", done.append)
        sim.run()
        assert done[0].success
        assert server.rnic.stats.duplicates == 1
        # The duplicate must NOT have overwritten the newer value.
        assert region.read(region.base_address, 1) == b"B"

    def test_retransmit_recovers_from_request_loss(self, sim):
        from repro.hosts.server import Host, MemoryServer
        from repro.net.link import connect
        from repro.sim.units import gbps

        config = RnicConfig(enable_retransmit=True, retransmit_timeout_ns=usec(50))
        client_host = Host(sim, "c", "02:00:00:00:00:01", "10.0.0.1", rnic_config=config)
        server = MemoryServer(sim, "s", "02:00:00:00:00:02", "10.0.0.2")
        link = connect(sim, client_host.eth, server.eth, gbps(40))
        qp_c = client_host.rnic.create_qp()
        qp_s = server.rnic.create_qp()
        connect_qps(qp_c, qp_s)
        region = server.lend_memory(4096)

        link.loss_probability = 1.0
        done = []
        RdmaClient(client_host.rnic, qp_c).write(
            region.base_address, region.rkey, b"retry me", done.append
        )
        sim.run_for(usec(40))
        link.loss_probability = 0.0  # heal before first retry fires
        sim.run()
        assert done and done[0].success
        assert client_host.rnic.stats.retransmissions >= 1
        assert region.read(region.base_address, 8) == b"retry me"


class TestRequesterFlowControl:
    def test_outstanding_cap_queues_excess(self, sim, host_pair):
        client, server, region = make_channel(host_pair)
        client.rnic.config.max_outstanding_requests = 4
        done = []
        for i in range(10):
            client.write(region.base_address + i, region.rkey, b"z", done.append)
        assert client.rnic.outstanding_requests <= 4
        sim.run()
        assert len(done) == 10
        assert all(c.success for c in done)
