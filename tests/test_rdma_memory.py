"""Tests for DRAM, sparse buffers, and memory-region access checks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rdma.memory import (
    AccessFlags,
    Dram,
    MemoryAccessError,
    MemoryRegion,
    SparseBuffer,
)
from repro.sim.units import gib, mib


class TestSparseBuffer:
    def test_reads_zero_initialised(self):
        buf = SparseBuffer(1000)
        assert buf.read(0, 1000) == bytes(1000)

    def test_write_read_round_trip(self):
        buf = SparseBuffer(10_000, page_size=128)
        buf.write(5000, b"hello")
        assert buf.read(5000, 5) == b"hello"
        assert buf.read(4999, 7) == b"\x00hello\x00"

    def test_write_spanning_pages(self):
        buf = SparseBuffer(1024, page_size=16)
        data = bytes(range(64))
        buf.write(8, data)
        assert buf.read(8, 64) == data

    def test_out_of_range_rejected(self):
        buf = SparseBuffer(100)
        with pytest.raises(MemoryAccessError):
            buf.read(90, 20)
        with pytest.raises(MemoryAccessError):
            buf.write(99, b"ab")
        with pytest.raises(MemoryAccessError):
            buf.read(-1, 1)

    def test_sparse_residency(self):
        buf = SparseBuffer(gib(10), page_size=4096)
        buf.write(gib(5), b"x")
        assert buf.resident_bytes == 4096  # one page, not 10 GiB

    @given(
        offset=st.integers(0, 900),
        data=st.binary(min_size=0, max_size=100),
    )
    def test_round_trip_property(self, offset, data):
        buf = SparseBuffer(1000, page_size=64)
        buf.write(offset, data)
        assert buf.read(offset, len(data)) == data


class TestMemoryRegion:
    def make_region(self, **kwargs):
        return MemoryRegion(base_address=0x10000, length=4096, **kwargs)

    def test_write_then_read(self):
        region = self.make_region()
        region.write(0x10010, b"payload")
        assert region.read(0x10010, 7) == b"payload"

    def test_bounds_enforced_at_both_ends(self):
        region = self.make_region()
        with pytest.raises(MemoryAccessError):
            region.read(0xFFFF, 2)
        with pytest.raises(MemoryAccessError):
            region.write(0x10000 + 4095, b"ab")

    def test_access_rights_enforced(self):
        read_only = self.make_region(access=AccessFlags.REMOTE_READ)
        read_only.read(0x10000, 1)
        with pytest.raises(MemoryAccessError):
            read_only.write(0x10000, b"x")
        with pytest.raises(MemoryAccessError):
            read_only.fetch_add(0x10000, 1)

    def test_fetch_add_returns_pre_value_and_accumulates(self):
        region = self.make_region()
        assert region.fetch_add(0x10000, 5) == 0
        assert region.fetch_add(0x10000, 3) == 5
        value = int.from_bytes(region.read(0x10000, 8), "big")
        assert value == 8

    def test_fetch_add_wraps_at_64_bits(self):
        region = self.make_region()
        region.write(0x10000, ((1 << 64) - 1).to_bytes(8, "big"))
        assert region.fetch_add(0x10000, 2) == (1 << 64) - 1
        assert int.from_bytes(region.read(0x10000, 8), "big") == 1

    def test_atomic_alignment_enforced(self):
        region = self.make_region()
        with pytest.raises(MemoryAccessError):
            region.fetch_add(0x10001, 1)

    def test_compare_swap(self):
        region = self.make_region()
        region.write(0x10008, (7).to_bytes(8, "big"))
        assert region.compare_swap(0x10008, compare=7, swap=9) == 7
        assert int.from_bytes(region.read(0x10008, 8), "big") == 9
        # Failed compare leaves memory untouched.
        assert region.compare_swap(0x10008, compare=7, swap=1) == 9
        assert int.from_bytes(region.read(0x10008, 8), "big") == 9

    def test_deregistered_region_rejects_access(self):
        region = self.make_region()
        region.deregister()
        with pytest.raises(MemoryAccessError):
            region.read(0x10000, 1)

    def test_operation_counters(self):
        region = self.make_region()
        region.write(0x10000, b"a")
        region.read(0x10000, 1)
        region.fetch_add(0x10008, 1)
        assert (region.writes, region.reads, region.atomics) == (1, 1, 1)


class TestDram:
    def test_register_and_lookup(self):
        dram = Dram(mib(64))
        region = dram.register(mib(1))
        assert dram.lookup(region.rkey) is region

    def test_unknown_rkey_is_none(self):
        dram = Dram(mib(1))
        assert dram.lookup(0xDEAD) is None

    def test_deregistered_region_not_found(self):
        dram = Dram(mib(64))
        region = dram.register(mib(1))
        region.deregister()
        assert dram.lookup(region.rkey) is None

    def test_capacity_budget_enforced(self):
        dram = Dram(mib(2))
        dram.register(mib(1))
        dram.register(mib(1))
        with pytest.raises(MemoryError):
            dram.register(1)

    def test_regions_have_disjoint_va_ranges(self):
        dram = Dram(mib(64))
        a = dram.register(1000)
        b = dram.register(1000)
        assert a.end_address <= b.base_address

    def test_rkeys_unique(self):
        dram = Dram(mib(64))
        rkeys = {dram.register(1).rkey for _ in range(50)}
        assert len(rkeys) == 50
