"""Link-guard tests: shim codec, protection semantics, breaker escalation.

The contract under test (DESIGN.md §14): a guarded link masks loss and
corruption *below* the transport — in ``full-ordered`` mode nothing is
lost and nothing is reordered, the RDMA machinery above sees zero NAKs,
zero timeouts, and zero retransmissions, and when the emergency buffer
can no longer honor that promise the guard says so loudly (escalation
hooks + RESYNC) instead of hanging.
"""

import random

import pytest

from repro.apps.programs import CountingProgram
from repro.core.state_store import RemoteStateStore, StateStoreConfig
from repro.experiments.topology import build_testbed
from repro.faults import Corrupt, IidLoss, LinkFaultInjector
from repro.linkguard import (
    ETHERTYPE_LINKGUARD,
    PROTECTION_LEVELS,
    GuardShimHeader,
    LinkGuard,
    LinkGuardConfig,
    guard_checksum,
)
from repro.rdma.packets import integrity_protected
from repro.resilience import CircuitBreaker, CircuitBreakerConfig
from repro.sim.simulator import kernel_mode
from repro.sim.units import gbps, usec
from repro.workloads.perftest import PacketSink, RawEthernetBw

DST_PORT = 20_000


def _guarded_run(
    mode="scalar",
    protection="full-ordered",
    config=None,
    corrupt=0.02,
    loss=0.02,
    count=400,
    seed=42,
    shape=None,
    direction="both",
):
    """Raw forwarding through the switch with a guarded, faulty host link."""
    with kernel_mode(mode):
        tb = build_testbed(n_hosts=2, with_memory_server=False)
        program = CountingProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        link = tb.host_links[1]
        if config is not None:
            guard = LinkGuard(link, config=config)
        else:
            guard = LinkGuard(link, protection=protection)
        injector = LinkFaultInjector(
            link, rng=random.Random(seed), direction=direction
        )
        if shape is not None:
            shape(injector)
        else:
            if corrupt:
                injector.arm(Corrupt(corrupt))
            if loss:
                injector.arm(IidLoss(loss))
        sink = PacketSink(tb.hosts[1], dst_port=DST_PORT)
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=256, rate_bps=gbps(5), count=count,
        )
        gen.start()
        tb.sim.run()
        return tb, guard, injector, sink, gen


class TestShimCodec:
    def test_round_trip(self):
        shim = GuardShimHeader(
            kind=2, flags=3, seq=0xDEADBEEF, ack=7, extent=9,
            checksum=0xABCD, inner_ethertype=0x0800,
        )
        raw = shim.pack()
        assert len(raw) == GuardShimHeader.LENGTH == 18
        again = GuardShimHeader.unpack(raw)
        assert again == shim
        assert again.pack() == raw

    def test_validates_fields(self):
        with pytest.raises(ValueError):
            GuardShimHeader(kind=9)
        with pytest.raises(ValueError):
            GuardShimHeader(seq=-1)
        with pytest.raises(ValueError):
            GuardShimHeader(checksum=1 << 16)

    def test_checksum_is_16_bit_and_content_sensitive(self):
        a = guard_checksum(b"hello world")
        b = guard_checksum(b"hello worle")
        assert 0 <= a < (1 << 16)
        assert a != b

    def test_protection_levels_exported(self):
        assert PROTECTION_LEVELS == ("off", "checksummed", "full-ordered")
        assert ETHERTYPE_LINKGUARD == 0x88B6


class TestConfig:
    def test_rejects_unknown_protection(self):
        with pytest.raises(ValueError):
            LinkGuardConfig(protection="best-effort")

    def test_rejects_nonpositive_buffers(self):
        with pytest.raises(ValueError):
            LinkGuardConfig(buffer_packets=0)
        with pytest.raises(ValueError):
            LinkGuardConfig(reorder_packets=0)
        with pytest.raises(ValueError):
            LinkGuardConfig(ack_every=0)

    def test_rejects_config_and_protection_together(self):
        tb = build_testbed(n_hosts=2, with_memory_server=False)
        with pytest.raises(ValueError):
            LinkGuard(
                tb.host_links[0],
                config=LinkGuardConfig(),
                protection="off",
            )


@pytest.mark.parametrize("mode", ["scalar", "batch"])
class TestFullOrdered:
    def test_masks_loss_and_corruption_in_order(self, mode):
        tb, guard, injector, sink, gen = _guarded_run(mode=mode)
        assert sink.packets == gen.report.packets_sent
        assert sink.out_of_order == 0
        assert guard.counts["masked_losses"] > 0
        assert guard.counts["corrupt_dropped"] > 0
        assert guard.counts["unmasked_losses"] == 0

    def test_tail_drop_recovers_by_timeout(self, mode):
        # Drop exactly the last data frame (guard seq 19): no later
        # frame exposes the hole at the receiver, so only the
        # sender-side tail timer can recover it.
        from repro.faults.models import LinkFault
        from repro.linkguard.shim import FLAG_RESENT, GUARD_DATA

        class DropLastData(LinkFault):
            name = "drop-last-data"

            def __init__(self, seq):
                super().__init__()
                self.seq = seq
                self.done = False

            def apply(self, deliveries, injector):
                kept = []
                for delay, pkt in deliveries:
                    shim = next(
                        (h for h in pkt.headers
                         if isinstance(h, GuardShimHeader)),
                        None,
                    )
                    if (
                        not self.done
                        and shim is not None
                        and shim.kind == GUARD_DATA
                        and shim.seq == self.seq
                        and not shim.flags & FLAG_RESENT
                    ):
                        self.done = True
                        injector.note("dropped", pkt)
                        continue
                    kept.append((delay, pkt))
                return kept

        tb, guard, injector, sink, gen = _guarded_run(
            mode=mode, count=20, shape=lambda inj: inj.arm(DropLastData(19))
        )
        assert sink.packets == 20
        assert guard.counts["tail_timeouts"] >= 1
        assert guard.counts["resent"] >= 1


class TestProtectionLevels:
    def test_off_is_passthrough(self):
        tb, guard, injector, sink, gen = _guarded_run(protection="off")
        assert guard.counts["protected"] == 0
        assert guard.counts["shim_bytes"] == 0
        # Losses leak straight through: the guard did nothing.
        assert sink.packets < gen.report.packets_sent

    def test_checksummed_delivers_all_without_ordering(self):
        tb, guard, injector, sink, gen = _guarded_run(
            protection="checksummed"
        )
        assert sink.packets == gen.report.packets_sent
        # Recovered frames are delivered as they arrive — reordering is
        # the price of the cheaper level.
        assert sink.out_of_order > 0
        assert guard.counts["reorder_fixed"] == 0

    def test_full_ordered_repairs_reordering(self):
        tb, guard, injector, sink, gen = _guarded_run()
        assert sink.out_of_order == 0
        assert guard.counts["reorder_fixed"] > 0


class TestDuplicateSuppression:
    def test_duplicate_frames_dropped_once(self):
        from repro.faults import Duplicate

        def shape(injector):
            injector.arm(Duplicate(0.05))

        tb, guard, injector, sink, gen = _guarded_run(shape=shape)
        assert sink.packets == gen.report.packets_sent
        assert sink.out_of_order == 0
        assert guard.counts["duplicates_dropped"] > 0


class TestDetach:
    def test_detach_restores_link_and_interfaces(self):
        tb = build_testbed(n_hosts=2, with_memory_server=False)
        link = tb.host_links[1]
        before_carry = link.carry
        before_deliver = {link.a: link.a.deliver, link.b: link.b.deliver}
        guard = LinkGuard(link)
        assert link.carry is not before_carry
        guard.detach()
        assert link.carry == before_carry
        assert link.a.deliver == before_deliver[link.a]
        assert link.b.deliver == before_deliver[link.b]
        assert not hasattr(link, "guard")


class TestTransportMasking:
    def test_transport_sees_nothing_under_iid_loss(self):
        """The §14 headline: with the guard on a lossy server link, the
        reliable store's entire recovery machinery stays idle — zero
        NAKs, zero timeouts, zero watchdog retransmissions — while the
        guard's own counters show it did the work."""
        with integrity_protected():
            tb = build_testbed(n_hosts=2)
            program = CountingProgram()
            for host, port in zip(tb.hosts, tb.host_ports):
                program.install(host.eth.mac, port)
            tb.switch.bind_program(program)
            config = StateStoreConfig(
                counters=1 << 10, reliable=True, retry_timeout_ns=usec(50)
            )
            channel = tb.controller.open_channel(
                tb.memory_server, tb.server_port, config.counters * 8
            )
            store = RemoteStateStore(tb.switch, channel, config=config)
            program.use_state_store(store)
            guard = LinkGuard(tb.server_link)
            injector = LinkFaultInjector(
                tb.server_link, rng=random.Random(42)
            )
            injector.arm(IidLoss(0.02))
            injector.arm(Corrupt(0.01))
            gen = RawEthernetBw(
                tb.sim, tb.hosts[0], tb.hosts[1],
                packet_size=128, rate_bps=1e9, count=600,
            )
            gen.start()
            tb.sim.run()
            for _ in range(64):
                if store.pending_value == 0 and store.outstanding == 0:
                    break
                store.flush_all()
                tb.sim.run()

            stats = store.rocegen.stats
            assert guard.counts["masked_losses"] > 0
            assert stats.naks_received == 0
            assert stats.timeouts == 0
            assert store.stats.retransmissions == 0


class TestBufferExhaustion:
    def test_exhaustion_fires_hooks_and_escalates_to_breaker(self):
        """When loss outruns the bounded buffer, the guard cannot mask —
        it must escalate.  Every unprotectable frame fires the
        ``on_exhausted`` hooks; wiring those into a circuit breaker
        (strike per event) turns sustained exhaustion into an open
        breaker, the §11 machinery taking over where §14 gives up."""
        with kernel_mode("scalar"):
            tb = build_testbed(n_hosts=2, with_memory_server=False)
            program = CountingProgram()
            for host, port in zip(tb.hosts, tb.host_ports):
                program.install(host.eth.mac, port)
            tb.switch.bind_program(program)
            link = tb.host_links[1]
            guard = LinkGuard(
                link,
                config=LinkGuardConfig(buffer_packets=2, ack_every=64),
            )
            breaker = CircuitBreaker(
                tb.sim,
                "linkguard-escalation",
                config=CircuitBreakerConfig(
                    fail_threshold=3, close_threshold=1
                ),
            )
            # Resolve every half-open probe successfully (the link is
            # lossy, not dead) — otherwise the unattended breaker would
            # re-trip and reschedule probes forever.
            breaker.on_half_open.append(lambda b: b.record("progress"))
            hook_hits = []

            def escalate(g, lane, seq):
                hook_hits.append((lane, seq))
                breaker.record("strike")

            guard.on_exhausted.append(escalate)
            injector = LinkFaultInjector(link, rng=random.Random(42))
            injector.arm(IidLoss(0.10))
            sink = PacketSink(tb.hosts[1], dst_port=DST_PORT)
            gen = RawEthernetBw(
                tb.sim, tb.hosts[0], tb.hosts[1],
                packet_size=256, rate_bps=gbps(20), count=200,
            )
            gen.start()
            tb.sim.run()

            assert guard.counts["buffer_exhausted"] > 0
            assert len(hook_hits) == guard.counts["buffer_exhausted"]
            assert breaker.opens >= 1
            # Unprotected frames that were then lost are *reported*
            # (RESYNC + unmasked counter), never silently stranded —
            # and the stream still terminates.
            assert guard.counts["resyncs"] > 0
            assert guard.counts["unmasked_losses"] > 0
            assert sink.packets < gen.report.packets_sent


class TestMetricsAndTrace:
    def test_guard_events_reach_the_wire_trace(self):
        from repro.obs import Observability, WireTrace
        from repro.obs.trace import KIND_GUARD

        obs = Observability(trace=WireTrace())
        with obs.activate():
            tb, guard, injector, sink, gen = _guarded_run(count=100)
        kinds = {e.kind for e in obs.trace.events}
        assert KIND_GUARD in kinds
        actions = {
            e.channel for e in obs.trace.events if e.kind == KIND_GUARD
        }
        assert "nak" in actions
        assert "resend" in actions

    def test_counts_match_registry(self):
        tb, guard, injector, sink, gen = _guarded_run(count=100)
        scope_prefix = f"linkguard[{guard.name}]"
        snapshot = tb.sim.obs.registry.snapshot(scope_prefix)
        for leaf in ("protected", "masked_losses", "resent", "shim_bytes"):
            assert snapshot[f"{scope_prefix}.{leaf}"] == guard.counts[leaf]
