"""Tests for the in-network KV cache application."""

import pytest

from repro.apps.kv_cache import (
    ENTRY_BYTES,
    KEY_BYTES,
    KV_UDP_PORT,
    KvCacheProgram,
    KvHeader,
    KvStorageServer,
    RemoteValueStore,
    VALUE_BYTES,
    normalize_key,
    pack_entry,
    unpack_entry,
)
from repro.baselines.cpu_slowpath import CpuSlowPath, CpuSlowPathConfig
from repro.experiments.kv_cache import run_kv_cache, run_kv_cache_comparison
from repro.experiments.topology import build_testbed
from repro.net.headers import HeaderError, UdpHeader
from repro.net.packet import Packet
from repro.sim.units import usec
from repro.workloads.factory import udp_between


class TestKvHeader:
    def test_round_trip(self):
        header = KvHeader(
            op=KvHeader.OP_REPLY,
            key=normalize_key(b"alpha"),
            value=b"v" * VALUE_BYTES,
            hit=True,
        )
        assert KvHeader.unpack(header.pack()) == header

    def test_length(self):
        header = KvHeader(op=KvHeader.OP_GET, key=normalize_key(b"k"))
        assert len(header.pack()) == KvHeader.LENGTH

    def test_bad_key_length_rejected(self):
        with pytest.raises(HeaderError):
            KvHeader(op=KvHeader.OP_GET, key=b"short")

    def test_short_buffer_rejected(self):
        with pytest.raises(HeaderError):
            KvHeader.unpack(b"\x01\x00")


class TestEntryCodec:
    def test_round_trip(self):
        entry = pack_entry(b"mykey", b"myvalue")
        valid, key, value = unpack_entry(entry)
        assert valid
        assert key == normalize_key(b"mykey")
        assert value.rstrip(b"\x00") == b"myvalue"

    def test_entry_size(self):
        assert len(pack_entry(b"k", b"v")) == ENTRY_BYTES

    def test_normalize_trims_long_keys(self):
        assert len(normalize_key(b"x" * 100)) == KEY_BYTES


def kv_testbed(mode="sram+remote", sram_entries=8, keys=100):
    tb = build_testbed(n_hosts=2, with_memory_server=True)
    client, storage_host = tb.hosts
    program = KvCacheProgram(sram_entries=sram_entries)
    program.install(client.eth.mac, tb.host_ports[0])
    program.install(storage_host.eth.mac, tb.host_ports[1])
    tb.switch.bind_program(program)
    server = KvStorageServer(storage_host, CpuSlowPath(tb.sim, CpuSlowPathConfig()))
    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, (1 << 12) * ENTRY_BYTES
    )
    store = RemoteValueStore(channel, buckets=1 << 12)
    for i in range(keys):
        key = normalize_key(f"key-{i}".encode())
        value = f"value-{i}".encode().ljust(VALUE_BYTES, b"\x00")
        store.populate(key, value)
        server.put(key, value)
    program.use_remote_store(tb.switch, store)
    program.use_server_port(tb.host_ports[1])
    return tb, program, server, store


def watch_replies(tb, replies):
    """Register (once) a handler collecting KV replies at the client."""

    def handler(p, i):
        udp = p.find(UdpHeader)
        if udp is not None and udp.src_port == KV_UDP_PORT:
            replies.append(KvHeader.unpack(p.payload))

    tb.hosts[0].packet_handlers.append(handler)


def send_get(tb, key):
    client = tb.hosts[0]
    query = udp_between(
        client, tb.hosts[1], 128,
        src_port=40_000, dst_port=KV_UDP_PORT,
        payload=KvHeader(op=KvHeader.OP_GET, key=normalize_key(key)).pack(),
    )
    client.send(query)


class TestKvCacheProgram:
    def test_remote_fetch_returns_value(self):
        tb, program, server, store = kv_testbed()
        replies = []
        watch_replies(tb, replies)
        send_get(tb, b"key-7")
        tb.sim.run()
        assert len(replies) == 1
        assert replies[0].hit
        assert replies[0].value.rstrip(b"\x00") == b"value-7"
        assert program.stats.remote_hits == 1
        assert server.cpu_queries == 0

    def test_second_query_hits_sram(self):
        tb, program, server, store = kv_testbed()
        replies = []
        watch_replies(tb, replies)
        send_get(tb, b"key-3")
        tb.sim.run()
        send_get(tb, b"key-3")
        tb.sim.run()
        assert len(replies) == 2
        assert program.stats.sram_hits == 1
        assert program.stats.remote_fetches == 1

    def test_unknown_key_falls_back_to_server(self):
        tb, program, server, store = kv_testbed()
        replies = []
        watch_replies(tb, replies)
        send_get(tb, b"no-such-key")
        tb.sim.run()
        assert len(replies) == 1
        assert not replies[0].hit
        assert program.stats.remote_misses == 1
        assert server.cpu_queries == 1  # collision/miss fallback only

    def test_sram_eviction_fifo(self):
        tb, program, server, store = kv_testbed(sram_entries=2)
        replies = []
        watch_replies(tb, replies)
        for i in range(3):
            send_get(tb, f"key-{i}".encode())
            tb.sim.run()
        assert program.stats.cache_evictions == 1
        assert len(program.sram) == 2

    def test_non_kv_traffic_forwards(self):
        tb, program, server, store = kv_testbed()
        received = []
        tb.hosts[1].packet_handlers.append(lambda p, i: received.append(p))
        tb.hosts[0].send(udp_between(tb.hosts[0], tb.hosts[1], 200))
        tb.sim.run()
        assert len(received) == 1

    def test_zero_cpu_for_populated_keys(self):
        tb, program, server, store = kv_testbed()
        replies = []
        watch_replies(tb, replies)
        for i in range(20):
            send_get(tb, f"key-{i}".encode())
        tb.sim.run()
        assert len(replies) == 20
        assert all(r.hit for r in replies)
        assert server.cpu_queries == 0
        assert tb.memory_server.cpu_packets == 0


class TestKvStorageServer:
    def test_answers_after_software_latency(self):
        tb, program, server, store = kv_testbed()
        program.rocegen = None  # disable the remote path: misses go to CPU
        program.value_store = None
        replies = []
        times = []
        watch_replies(tb, replies)
        tb.hosts[0].packet_handlers.append(
            lambda p, i: times.append(tb.sim.now)
        )
        send_get(tb, b"key-1")
        tb.sim.run()
        assert len(replies) == 1
        assert replies[0].hit
        assert server.cpu_queries == 1
        assert times[0] > usec(30)


class TestKvExperiment:
    def test_comparison_shape(self):
        results = {
            r.mode: r
            for r in run_kv_cache_comparison(keys=1000, queries=600)
        }
        assert results["server"].server_bypass_rate == 0.0
        assert results["sram"].server_bypass_rate > 0.3
        assert results["sram+remote"].server_bypass_rate > 0.9
        # Everyone answers everything eventually.
        for r in results.values():
            assert r.reply_rate == 1.0
        # The remote path removes the CPU tail.
        assert (
            results["sram+remote"].p99_latency_us
            <= results["server"].p99_latency_us
        )

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            run_kv_cache("quantum")
