"""Tests for the remote state-store primitive (Fetch-and-Add counters)."""

import pytest

from repro.apps.programs import CountingProgram
from repro.core.state_store import RemoteStateStore, StateStoreConfig
from repro.experiments.topology import build_testbed
from repro.rdma.constants import ATOMIC_OPERAND_BYTES
from repro.rdma.rnic import RnicConfig
from repro.sim.units import mib, usec
from repro.workloads.factory import udp_between
from repro.workloads.perftest import RawEthernetBw


def build(config=None, rnic_config=None):
    tb = build_testbed(n_hosts=2, rnic_config=rnic_config)
    program = CountingProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    config = config or StateStoreConfig(counters=1 << 12)
    channel = tb.controller.open_channel(
        tb.memory_server,
        tb.server_port,
        config.counters * ATOMIC_OPERAND_BYTES,
    )
    store = RemoteStateStore(tb.switch, channel, config=config)
    program.use_state_store(store)
    return tb, program, store, channel


def send_n(tb, n, sport=7000, size=256, rate=40e9):
    gen = RawEthernetBw(
        tb.sim, tb.hosts[0], tb.hosts[1],
        packet_size=size, rate_bps=rate, count=n, src_port=sport,
    )
    gen.start()
    return gen


class TestCounting:
    def test_every_packet_counted_exactly(self):
        tb, program, store, channel = build()
        send_n(tb, 50)
        tb.sim.run()
        packet = udp_between(tb.hosts[0], tb.hosts[1], 256, src_port=7000)
        index = store.index_of(store.key_of(packet))
        # §5: "the updated value is 100% accurate".
        assert store.read_counter_via_control_plane(index) == 50
        assert store.pending_value == 0
        assert store.outstanding == 0

    def test_zero_cpu(self):
        tb, program, store, channel = build()
        send_n(tb, 50)
        tb.sim.run()
        assert tb.memory_server.cpu_packets == 0

    def test_original_traffic_still_forwarded(self):
        tb, program, store, channel = build()
        received = []
        tb.hosts[1].packet_handlers.append(lambda p, i: received.append(p))
        send_n(tb, 30)
        tb.sim.run()
        assert len(received) == 30

    def test_distinct_flows_distinct_counters(self):
        tb, program, store, channel = build()
        send_n(tb, 20, sport=7000)
        send_n(tb, 30, sport=7001)
        tb.sim.run()
        p_a = udp_between(tb.hosts[0], tb.hosts[1], 256, src_port=7000)
        p_b = udp_between(tb.hosts[0], tb.hosts[1], 256, src_port=7001)
        assert store.read_counter_via_control_plane(store.index_of(store.key_of(p_a))) == 20
        assert store.read_counter_via_control_plane(store.index_of(store.key_of(p_b))) == 30

    def test_outstanding_never_exceeds_cap(self):
        config = StateStoreConfig(counters=1 << 12, max_outstanding=4)
        tb, program, store, channel = build(config=config)
        peak = []
        original_issue = store._issue

        def tracking_issue(index, value):
            original_issue(index, value)
            peak.append(store.outstanding)

        store._issue = tracking_issue
        send_n(tb, 200)
        tb.sim.run()
        assert max(peak) <= 4
        # And accuracy still holds despite accumulation.
        packet = udp_between(tb.hosts[0], tb.hosts[1], 256, src_port=7000)
        assert store.read_counter_via_control_plane(store.index_of(store.key_of(packet))) == 200

    def test_accumulation_combines_updates(self):
        # A slow atomic engine forces local accumulation.
        rnic = RnicConfig(atomic_rate_ops=100_000.0)
        config = StateStoreConfig(counters=1 << 12, max_outstanding=2)
        tb, program, store, channel = build(config=config, rnic_config=rnic)
        send_n(tb, 300)
        tb.sim.run()
        assert store.stats.updates_combined > 0
        assert store.stats.operations_issued < 300
        packet = udp_between(tb.hosts[0], tb.hosts[1], 256, src_port=7000)
        assert store.read_counter_via_control_plane(store.index_of(store.key_of(packet))) == 300

    def test_rnic_atomic_engine_never_overflows(self):
        rnic = RnicConfig(atomic_rate_ops=100_000.0, max_outstanding_atomics=16)
        config = StateStoreConfig(counters=1 << 12, max_outstanding=16)
        tb, program, store, channel = build(config=config, rnic_config=rnic)
        send_n(tb, 500)
        tb.sim.run()
        assert tb.memory_server.rnic.stats.atomic_overflow_drops == 0

    def test_bytes_mode(self):
        config = StateStoreConfig(counters=1 << 12, count_mode="bytes")
        tb, program, store, channel = build(config=config)
        send_n(tb, 10, size=500)
        tb.sim.run()
        packet = udp_between(tb.hosts[0], tb.hosts[1], 256, src_port=7000)
        assert store.read_counter_via_control_plane(store.index_of(store.key_of(packet))) == 5000

    def test_sampling_predicate(self):
        config = StateStoreConfig(
            counters=1 << 12,
            sample=lambda p: p.udp.src_port == 7000,
        )
        tb, program, store, channel = build(config=config)
        send_n(tb, 20, sport=7000)
        send_n(tb, 20, sport=7001)
        tb.sim.run()
        assert store.stats.sampled_packets == 20

    def test_batching_reduces_operations(self):
        config = StateStoreConfig(counters=1 << 12, batch_size=10)
        tb, program, store, channel = build(config=config)
        send_n(tb, 100)
        tb.sim.run()
        assert store.stats.operations_issued <= 10
        packet = udp_between(tb.hosts[0], tb.hosts[1], 256, src_port=7000)
        # Batched mode may hold back a partial batch (update delay, §7)...
        counted = store.read_counter_via_control_plane(store.index_of(store.key_of(packet)))
        assert counted + store.pending_value == 100
        assert counted >= 90

    def test_invalid_configs_rejected(self):
        tb = build_testbed()
        channel = tb.controller.open_channel(tb.memory_server, tb.server_port, mib(1))
        with pytest.raises(ValueError):
            RemoteStateStore(
                tb.switch, channel, StateStoreConfig(counters=1 << 30)
            )
        with pytest.raises(ValueError):
            RemoteStateStore(
                tb.switch, channel,
                StateStoreConfig(counters=16, batch_size=0),
            )
        with pytest.raises(ValueError):
            RemoteStateStore(
                tb.switch, channel,
                StateStoreConfig(counters=16, count_mode="flops"),
            )

    def test_accuracy_invariant_issued_plus_pending(self):
        """value_issued + pending == sampled counts, at every point."""
        config = StateStoreConfig(counters=1 << 12, max_outstanding=2)
        tb, program, store, channel = build(config=config)
        send_n(tb, 123)
        tb.sim.run()
        assert (
            store.stats.value_issued + store.pending_value
            == store.stats.sampled_packets
            == 123
        )
