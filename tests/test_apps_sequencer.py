"""Tests for the in-network sequencer over remote memory (§6)."""

import pytest

from repro.apps.sequencer import SEQUENCER_PORT, SeqHeader, SequencerProgram
from repro.experiments.topology import build_testbed
from repro.net.headers import UdpHeader
from repro.sim.units import gbps
from repro.workloads.factory import udp_between
from repro.workloads.perftest import RawEthernetBw


def build(max_outstanding=16, n_hosts=3):
    tb = build_testbed(n_hosts=n_hosts)
    program = SequencerProgram(max_outstanding=max_outstanding)
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    channel = tb.controller.open_channel(tb.memory_server, tb.server_port, 4096)
    program.use_channel(tb.switch, channel)
    return tb, program, channel


def collect_sequenced(tb, receiver_idx=1):
    out = []

    def handler(packet, interface):
        udp = packet.find(UdpHeader)
        if udp is not None and udp.dst_port == SEQUENCER_PORT:
            out.append(
                (SeqHeader.unpack(packet.payload).sequence, packet.meta.get("seq"))
            )

    tb.hosts[receiver_idx].packet_handlers.append(handler)
    return out


class TestSequencer:
    def test_sequence_numbers_gap_free_and_ordered(self):
        tb, program, channel = build()
        sequenced = collect_sequenced(tb)
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=256, rate_bps=gbps(1), count=50,
            dst_port=SEQUENCER_PORT,
        )
        gen.start()
        tb.sim.run()
        assert program.stats.sequenced == 50
        numbers = [s for s, _ in sequenced]
        assert numbers == list(range(50))  # gap-free from zero
        # Arrival order preserved (sender seq meta rides along).
        sender_seqs = [m for _, m in sequenced]
        assert sender_seqs == sorted(sender_seqs)

    def test_two_senders_get_globally_unique_numbers(self):
        tb, program, channel = build()
        sequenced = collect_sequenced(tb)
        for i in (0, 2):
            RawEthernetBw(
                tb.sim, tb.hosts[i], tb.hosts[1],
                packet_size=256, rate_bps=gbps(10), count=40,
                src_port=10_000 + i, dst_port=SEQUENCER_PORT,
            ).start()
        tb.sim.run()
        numbers = [s for s, _ in sequenced]
        assert sorted(numbers) == list(range(80))
        assert len(set(numbers)) == 80  # no duplicates, ever

    def test_counter_lives_in_server_dram(self):
        tb, program, channel = build()
        collect_sequenced(tb)
        RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=256, rate_bps=gbps(1), count=25,
            dst_port=SEQUENCER_PORT,
        ).start()
        tb.sim.run()
        value = int.from_bytes(channel.region.read(channel.base_address, 8), "big")
        assert value == 25
        assert tb.memory_server.cpu_packets == 0

    def test_rate_capped_by_atomic_engine(self):
        tb, program, channel = build()
        sequenced = collect_sequenced(tb)
        # Line-rate 64 B packets arrive far faster than 2.4 Mops.
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=64, rate_bps=gbps(40), count=400,
            dst_port=SEQUENCER_PORT,
        )
        gen.start()
        tb.sim.run()
        assert program.stats.sequenced == 400
        # Outstanding window forced parking during the burst.
        assert program.stats.parked_peak > 16

    def test_parking_bound_drops_excess(self):
        tb, program, channel = build()
        program.max_parked = 8
        sequenced = collect_sequenced(tb)
        RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=64, rate_bps=gbps(40), count=200,
            dst_port=SEQUENCER_PORT,
        ).start()
        tb.sim.run()
        assert program.stats.dropped_window_full > 0
        # Sequenced + dropped = offered; numbers still gap-free.
        assert program.stats.sequenced + program.stats.dropped_window_full == 200
        numbers = sorted(s for s, _ in sequenced)
        assert numbers == list(range(program.stats.sequenced))

    def test_non_sequencer_traffic_unaffected(self):
        tb, program, channel = build()
        received = []
        tb.hosts[1].packet_handlers.append(lambda p, i: received.append(p))
        tb.hosts[0].send(udp_between(tb.hosts[0], tb.hosts[1], 200))
        tb.sim.run()
        assert len(received) == 1
        assert program.stats.sequenced == 0

    def test_seq_header_round_trip(self):
        header = SeqHeader(sequence=2**40 + 7)
        assert SeqHeader.unpack(header.pack()) == header
        assert len(header.pack()) == 8
