"""Tests for MAC / IPv4 address value types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import Ipv4Address, MacAddress


class TestMacAddress:
    def test_parse_and_format(self):
        mac = MacAddress("02:00:00:00:ab:cd")
        assert str(mac) == "02:00:00:00:ab:cd"
        assert mac.value == 0x02000000ABCD

    def test_dash_separator_accepted(self):
        assert MacAddress("02-00-00-00-ab-cd") == MacAddress("02:00:00:00:ab:cd")

    def test_round_trip_bytes(self):
        mac = MacAddress("de:ad:be:ef:00:01")
        assert MacAddress.from_bytes(mac.to_bytes()) == mac

    def test_broadcast(self):
        assert MacAddress.broadcast().is_broadcast
        assert str(MacAddress.broadcast()) == "ff:ff:ff:ff:ff:ff"
        assert not MacAddress("02:00:00:00:00:01").is_broadcast

    def test_multicast_bit(self):
        assert MacAddress("01:00:5e:00:00:01").is_multicast
        assert not MacAddress("02:00:00:00:00:01").is_multicast

    def test_equality_with_string(self):
        assert MacAddress("02:00:00:00:00:01") == "02:00:00:00:00:01"

    def test_immutable(self):
        mac = MacAddress(1)
        with pytest.raises(AttributeError):
            mac.value = 2

    @pytest.mark.parametrize(
        "bad", ["02:00:00:00:00", "gg:00:00:00:00:01", "1:2:3", ""]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            MacAddress(bad)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)
        with pytest.raises(ValueError):
            MacAddress(-1)

    def test_hashable_as_table_key(self):
        table = {MacAddress("02:00:00:00:00:01"): "port1"}
        assert table[MacAddress("02:00:00:00:00:01")] == "port1"

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_string_round_trip_property(self, value):
        mac = MacAddress(value)
        assert MacAddress(str(mac)) == mac


class TestIpv4Address:
    def test_parse_and_format(self):
        ip = Ipv4Address("10.0.1.200")
        assert str(ip) == "10.0.1.200"
        assert ip.value == (10 << 24) | (0 << 16) | (1 << 8) | 200

    def test_round_trip_bytes(self):
        ip = Ipv4Address("192.168.1.1")
        assert Ipv4Address.from_bytes(ip.to_bytes()) == ip

    @pytest.mark.parametrize("bad", ["10.0.0", "10.0.0.256", "a.b.c.d", ""])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            Ipv4Address(bad)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Address(1 << 32)

    def test_equality_with_string(self):
        assert Ipv4Address("10.0.0.1") == "10.0.0.1"

    def test_immutable(self):
        ip = Ipv4Address(1)
        with pytest.raises(AttributeError):
            ip.value = 2

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_string_round_trip_property(self, value):
        ip = Ipv4Address(value)
        assert Ipv4Address(str(ip)) == ip
