"""Tests for the cluster subsystem: ring, health, pool, sharded primitives."""

import pytest

from repro.apps.programs import (
    CountingProgram,
    RemoteBufferProgram,
    RemoteLookupProgram,
)
from repro.cluster import (
    ConsistentHashRing,
    HealthMonitor,
    MemoryPool,
    ReplicatedStateStore,
    RingEmptyError,
    ShardedLookupTable,
)
from repro.core.lookup_table import (
    ACTION_SET_DSCP,
    LookupTableConfig,
    RemoteAction,
)
from repro.core.packet_buffer import (
    ENTRY_SEQ_BYTES,
    PacketBufferConfig,
    RemotePacketBuffer,
)
from repro.core.rocegen import RoceRequestGenerator
from repro.core.state_store import ATOMIC_OPERAND_BYTES, StateStoreConfig
from repro.experiments.topology import build_testbed
from repro.sim.units import kib
from repro.switches.hashing import FiveTuple
from repro.switches.traffic_manager import TrafficManagerConfig
from repro.workloads.perftest import PacketSink, RawEthernetBw


# -- consistent-hash ring -----------------------------------------------------


class TestConsistentHashRing:
    def test_placement_deterministic_under_fixed_seed(self):
        a = ConsistentHashRing(vnodes=64, seed=7)
        b = ConsistentHashRing(vnodes=64, seed=7)
        for ring in (a, b):
            for name in ("s0", "s1", "s2", "s3"):
                ring.add(name)
        assert all(a.owner(k) == b.owner(k) for k in range(2000))
        assert all(a.replicas(k, 2) == b.replicas(k, 2) for k in range(500))

    def test_insertion_order_is_irrelevant(self):
        a = ConsistentHashRing(seed=3)
        b = ConsistentHashRing(seed=3)
        for name in ("s0", "s1", "s2"):
            a.add(name)
        for name in ("s2", "s0", "s1"):
            b.add(name)
        assert all(a.owner(k) == b.owner(k) for k in range(2000))

    def test_removal_moves_only_the_leavers_keys(self):
        ring = ConsistentHashRing(seed=1)
        for name in ("s0", "s1", "s2", "s3"):
            ring.add(name)
        before = {k: ring.owner(k) for k in range(4000)}
        ring.remove("s2")
        for key, owner in before.items():
            if owner == "s2":
                assert ring.owner(key) != "s2"
            else:
                assert ring.owner(key) == owner

    def test_replica_sets_are_distinct_members(self):
        ring = ConsistentHashRing(seed=1)
        for name in ("s0", "s1", "s2"):
            ring.add(name)
        for key in range(500):
            replicas = ring.replicas(key, 2)
            assert len(replicas) == 2
            assert len(set(replicas)) == 2

    def test_replicas_capped_at_member_count(self):
        ring = ConsistentHashRing(seed=1)
        ring.add("only")
        assert ring.replicas(0, 3) == ["only"]

    def test_empty_ring_raises(self):
        ring = ConsistentHashRing()
        with pytest.raises(RingEmptyError):
            ring.owner(1)

    def test_shares_roughly_balanced(self):
        ring = ConsistentHashRing(vnodes=128, seed=1)
        for name in ("s0", "s1", "s2", "s3"):
            ring.add(name)
        shares = ring.shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        # vnode smoothing: nobody owns more than ~35% of a 4-member ring.
        assert max(shares.values()) < 0.35


# -- health monitor -----------------------------------------------------------


class TestHealthMonitor:
    def test_consecutive_stalls_mark_down(self):
        monitor = HealthMonitor(fail_after=3)
        monitor.track("s0")
        downs = []
        monitor.on_member_down.append(downs.append)
        monitor.record("s0", "strike")
        monitor.record("s0", "timeout")
        assert monitor.is_alive("s0")
        monitor.record("s0", "strike")
        assert not monitor.is_alive("s0")
        assert downs == ["s0"]

    def test_progress_resets_the_stall_count(self):
        monitor = HealthMonitor(fail_after=2)
        monitor.track("s0")
        for _ in range(5):
            monitor.record("s0", "strike")
            monitor.record("s0", "progress")
        assert monitor.is_alive("s0")

    def test_naks_alone_never_mark_down(self):
        monitor = HealthMonitor(fail_after=2)
        monitor.track("s0")
        for _ in range(20):
            monitor.record("s0", "nak")
        assert monitor.is_alive("s0")
        assert monitor.snapshot()["s0"]["naks"] == 20

    def test_rocegen_events_feed_the_member_record(self):
        tb = build_testbed()
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, 4096
        )
        gen = RoceRequestGenerator(tb.switch, channel)
        monitor = HealthMonitor(fail_after=2)
        monitor.track("m")
        monitor.watch("m", gen)
        gen.record_strike()
        gen.record_timeout()
        assert not monitor.is_alive("m")
        assert monitor.snapshot()["m"]["strikes"] == 1
        assert monitor.snapshot()["m"]["timeouts"] == 1


# -- channel lifecycle (close -> reopen) --------------------------------------


class TestChannelLifecycle:
    def test_close_then_reopen_gets_fresh_qpn_and_rkey(self):
        tb = build_testbed()
        first = tb.controller.open_channel(
            tb.memory_server, tb.server_port, kib(4)
        )
        old = (first.switch_qp.qpn, first.server_qp.qpn, first.rkey)
        tb.controller.close_channel(first)
        assert not first.region.valid
        second = tb.controller.open_channel(
            tb.memory_server, tb.server_port, kib(4)
        )
        assert second.switch_qp.qpn != old[0]
        assert second.server_qp.qpn != old[1]
        assert second.rkey != old[2]

    def test_reopened_channel_carries_traffic(self):
        tb = build_testbed()
        tb.switch.bind_program(RemoteLookupProgram())
        first = tb.controller.open_channel(
            tb.memory_server, tb.server_port, kib(4)
        )
        tb.controller.close_channel(first)
        second = tb.controller.open_channel(
            tb.memory_server, tb.server_port, kib(4)
        )
        gen = RoceRequestGenerator(tb.switch, second)
        gen.write(second.base_address, b"after reopen")
        tb.sim.run()
        assert second.region.read(second.base_address, 12) == b"after reopen"

    def test_close_releases_the_dram_budget(self):
        tb = build_testbed()
        used = tb.memory_server.dram.registered_bytes
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, kib(64)
        )
        assert tb.memory_server.dram.registered_bytes == used + kib(64)
        tb.controller.close_channel(channel)
        assert tb.memory_server.dram.registered_bytes == used


# -- memory pool --------------------------------------------------------------


class Recorder:
    """PoolListener that records membership events."""

    def __init__(self):
        self.events = []

    def on_member_join(self, member):
        self.events.append(("join", member.name))

    def on_member_leave(self, member, graceful):
        self.events.append(("leave", member.name, graceful))


def build_pool(servers=3, hosts=2, seed=1, **pool_kwargs):
    tb = build_testbed(n_hosts=hosts, n_memory_servers=servers)
    pool = MemoryPool(tb.controller, seed=seed, **pool_kwargs)
    for server, port in zip(tb.memory_servers, tb.server_ports):
        pool.add_server(server, port)
    return tb, pool


class TestMemoryPool:
    def test_join_and_graceful_leave_fire_listeners(self):
        tb, pool = build_pool(servers=2)
        recorder = Recorder()
        pool.listeners.append(recorder)
        extra = pool.add_server(tb.memory_servers[0], tb.server_ports[0], name="x")
        pool.remove_server("x")
        assert recorder.events == [("join", "x"), ("leave", "x", True)]
        assert extra.name not in pool.members

    def test_graceful_leave_closes_channels(self):
        tb, pool = build_pool(servers=2)
        member = pool.member("memserver0")
        channel = pool.open_channel(member, kib(4))
        assert channel in tb.controller.channels
        pool.remove_server("memserver0")
        assert channel not in tb.controller.channels
        assert not channel.region.valid

    def test_failure_abandons_channels_without_closing(self):
        tb, pool = build_pool(servers=2)
        member = pool.member("memserver0")
        channel = pool.open_channel(member, kib(4))
        pool.fail_server("memserver0")
        assert not member.alive
        assert "memserver0" not in pool.ring
        # No control-plane path to a dead server: the channel is
        # abandoned in place, not torn down.
        assert channel in tb.controller.channels

    def test_drain_hold_defers_channel_close(self):
        tb, pool = build_pool(servers=2)

        class Holder(Recorder):
            def __init__(self, pool):
                super().__init__()
                self.pool = pool

            def on_member_leave(self, member, graceful):
                super().on_member_leave(member, graceful)
                self.pool.hold_for_drain(member)

        holder = Holder(pool)
        pool.listeners.append(holder)
        member = pool.member("memserver0")
        channel = pool.open_channel(member, kib(4))
        pool.remove_server("memserver0")
        assert channel in tb.controller.channels  # held open for the drain
        pool.release_drain(member)
        assert channel not in tb.controller.channels

    def test_unbalanced_release_drain_warns_and_clamps(self):
        # Regression: an extra release used to drive drain_holds negative,
        # making the *next* hold_for_drain silently ineffective — a leave
        # could then close channels under a listener still draining.
        tb, pool = build_pool(servers=2)
        member = pool.member("memserver0")
        with pytest.warns(RuntimeWarning, match="without a matching"):
            pool.release_drain(member)
        assert member.drain_holds == 0
        # A later, balanced hold still defers the close — and the
        # matching release still performs it.
        channel = pool.open_channel(member, kib(4))
        pool.hold_for_drain(member)
        pool.remove_server("memserver0")
        assert channel in tb.controller.channels
        pool.release_drain(member)
        assert channel not in tb.controller.channels

    def test_placement_skips_dead_members(self):
        tb, pool = build_pool(servers=3)
        pool.fail_server("memserver1")
        for key in range(500):
            assert pool.member_for(key).name != "memserver1"
            for replica in pool.replicas_for(key, 2):
                assert replica.name != "memserver1"

    def test_watched_channel_stalls_take_the_member_down(self):
        tb, pool = build_pool(servers=2, fail_after=2)
        member = pool.member("memserver0")
        channel = pool.open_channel(member, kib(4))
        gen = RoceRequestGenerator(tb.switch, channel)
        pool.watch(member, gen)
        gen.record_strike()
        gen.record_strike()
        assert not member.alive
        assert "memserver0" not in pool.ring
        assert pool.member("memserver1").alive


# -- sharded lookup table -----------------------------------------------------


def lookup_flow(src, dst, src_port):
    return FiveTuple(
        src_ip=src.eth.ip.value,
        dst_ip=dst.eth.ip.value,
        protocol=17,
        src_port=src_port,
        dst_port=20_000,
    )


def build_sharded_lookup(servers=2, flows=24, entries=1 << 12):
    tb = build_testbed(n_hosts=2, n_memory_servers=servers)
    pool = MemoryPool(tb.controller, seed=1)
    for server, port in zip(tb.memory_servers, tb.server_ports):
        pool.add_server(server, port)
    program = RemoteLookupProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    table = ShardedLookupTable(
        tb.switch,
        pool,
        config=LookupTableConfig(entries=entries, cache_entries=0),
    )
    program.use_lookup_table(table)
    installed = []
    for f in range(flows):
        flow = lookup_flow(tb.hosts[0], tb.hosts[1], 10_000 + f)
        table.install(flow, RemoteAction(ACTION_SET_DSCP, 46))
        installed.append(flow)
    return tb, pool, table, installed


def blast_lookups(tb, count, flows):
    def stamp(packet, seq):
        from repro.net.headers import UdpHeader

        packet.require(UdpHeader).src_port = 10_000 + (seq % flows)

    sender = RawEthernetBw(
        tb.sim,
        tb.hosts[0],
        tb.hosts[1],
        packet_size=64,
        rate_bps=2e9,
        count=count,
        dst_port=20_000,
        stamp=stamp,
    )
    sender.start()


class TestShardedLookupTable:
    def test_shards_cover_multiple_members(self):
        tb, pool, table, installed = build_sharded_lookup(servers=3)
        owners = {pool.member_for(flow.hash()).name for flow in installed}
        assert len(owners) > 1
        assert set(table.shards) == {m.name for m in pool.alive_members}

    def test_lookups_complete_across_all_shards(self):
        tb, pool, table, installed = build_sharded_lookup(servers=3)
        blast_lookups(tb, count=120, flows=len(installed))
        tb.sim.run()
        stats = table.stats
        assert stats.remote_lookups == 120
        assert stats.remote_hits == 120
        assert stats.lookups_lost == 0
        # The load genuinely spread: more than one server saw requests.
        busy = [
            s for s in tb.memory_servers
            if s.rnic.stats.requests_received > 0
        ]
        assert len(busy) > 1

    def test_join_migrates_only_moved_flows(self):
        tb, pool, table, installed = build_sharded_lookup(servers=3)
        # Enroll only 2 of 3 servers up front; the third joins later.
        tb2, pool2 = build_pool(servers=3)  # fresh rig for before/after
        before = {f: pool2.member_for(f.hash()).name for f in installed}

        # Same thing on the live rig: drop to 2 members, then re-join.
        pool.remove_server("memserver2")
        migrated_at_leave = table.cluster_stats.flows_migrated
        placement_2 = {
            f: pool.member_for(f.hash()).name for f in installed
        }
        joined = pool.add_server(
            tb.memory_servers[2], tb.server_ports[2], name="memserver2"
        )
        placement_3 = {
            f: pool.member_for(f.hash()).name for f in installed
        }
        moved = [
            f for f in installed if placement_2[f] != placement_3[f]
        ]
        # Ring minimal movement: exactly the flows that moved to the
        # joiner were re-installed, and they all landed on the joiner.
        assert all(placement_3[f] == "memserver2" for f in moved)
        assert (
            table.cluster_stats.flows_migrated - migrated_at_leave
            == len(moved)
        )
        # Deterministic ring: back at 3 members, placement matches the
        # fresh 3-member pool exactly.
        assert placement_3 == before

    def test_graceful_leave_drains_inflight_lookups(self):
        tb, pool, table, installed = build_sharded_lookup(servers=2)
        blast_lookups(tb, count=80, flows=len(installed))

        def leave():
            pool.remove_server("memserver1")

        tb.sim.schedule_at(2_000.0, leave)
        tb.sim.run()
        stats = table.stats
        assert stats.remote_hits == 80
        assert stats.lookups_lost == 0
        assert table.cluster_stats.drains_completed == 1
        assert len(table.shards) == 1
        # The leaver's channels closed once the drain finished.
        assert all(
            ch.server is not tb.memory_servers[1]
            for ch in tb.controller.channels
        )

    def test_member_death_counts_inflight_as_lost(self):
        tb, pool, table, installed = build_sharded_lookup(servers=2)
        blast_lookups(tb, count=60, flows=len(installed))

        def die():
            pool.fail_server("memserver1")

        tb.sim.schedule_at(2_000.0, die)
        tb.sim.run()
        stats = table.stats
        assert table.cluster_stats.members_failed == 1
        assert stats.remote_hits + stats.lookups_lost >= 60
        # Flows re-homed onto the survivor keep resolving.
        blast_lookups(tb, count=40, flows=len(installed))
        hits_before = stats.remote_hits
        tb.sim.run()
        assert table.stats.remote_hits >= hits_before + 40 - stats.lookups_lost


# -- replicated state store ---------------------------------------------------


def build_replicated_store(servers=3, replication=2, counters=1 << 10):
    tb = build_testbed(n_hosts=2, n_memory_servers=servers)
    pool = MemoryPool(tb.controller, seed=1)
    for server, port in zip(tb.memory_servers, tb.server_ports):
        pool.add_server(server, port)
    program = CountingProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    store = ReplicatedStateStore(
        tb.switch,
        pool,
        config=StateStoreConfig(
            counters=counters, reliable=True, retry_timeout_ns=50_000.0
        ),
        replication=replication,
    )
    program.use_state_store(store)
    return tb, pool, store


class TestReplicatedStateStore:
    def test_every_replica_holds_the_counter(self):
        tb, pool, store = build_replicated_store()
        store.update(7, 5)
        store.update(7, 3)
        store.flush_all()
        tb.sim.run()
        replicas = store.replica_stores(7)
        assert len(replicas) == 2
        for replica in replicas:
            assert replica.read_counter_via_control_plane(7) == 8
        assert store.read_counter(7) == 8

    def test_reconcile_repairs_a_behind_replica(self):
        tb, pool, store = build_replicated_store()
        store.update(9, 10)
        store.flush_all()
        tb.sim.run()
        behind = store.replica_stores(9)[1]
        behind.channel.region.write(
            behind.counter_address(9),
            (3).to_bytes(ATOMIC_OPERAND_BYTES, "big"),
        )
        repaired = store.reconcile()
        assert repaired == 1
        assert behind.read_counter_via_control_plane(9) == 10

    def test_reconcile_does_not_double_count_unlanded_deltas(self):
        # Regression: a failover reconcile runs under live load.  A delta
        # that already landed on the replica supplying the authoritative
        # max but is still un-landed on the repair target used to be
        # counted twice — once inside the absolute value written by the
        # repair, once when the target's own Fetch-and-Add landed on top.
        tb, pool, store = build_replicated_store()
        store.update(5, 7)
        store.flush_all()
        tb.sim.run()
        ahead, behind = store.replica_stores(5)
        # The delta lands on one replica...
        ahead.update(5, 3)
        ahead.flush_all()
        tb.sim.run()
        # ...and sits switch-side (un-landed) on the other.
        behind.update(5, 3)
        assert behind.unlanded_value(5) == 3
        store.reconcile()
        # The repair must NOT lift the target to the full max: its own
        # delta is still coming.
        assert behind.read_counter_via_control_plane(5) == 7
        behind.flush_all()
        tb.sim.run()
        assert behind.read_counter_via_control_plane(5) == 10
        assert store.read_counter(5) == 10
        # A quiesced reconcile afterwards finds nothing left to repair.
        assert store.reconcile() == 0

    def test_replica_death_loses_nothing(self):
        tb, pool, store = build_replicated_store()
        for i in range(20):
            store.update(i, 2)
        store.flush_all()
        tb.sim.run()
        victim = pool.replicas_for(0, 2)[0]
        pool.fail_server(victim.name)
        assert store.cluster_stats.members_failed == 1
        for i in range(20):
            assert store.read_counter(i) == 2

    def test_join_reconciles_the_new_member(self):
        tb, pool, store = build_replicated_store(servers=2)
        for i in range(30):
            store.update(i, 4)
        store.flush_all()
        tb.sim.run()
        pool.add_server(tb.memory_servers[0], tb.server_ports[0], name="late")
        # Wherever "late" now hosts a touched counter, it holds the value.
        late = store.stores["late"]
        hosted = [
            i for i in range(30)
            if any(m.name == "late" for m in pool.replicas_for(i, 2))
        ]
        assert hosted, "ring should hand the joiner some arcs"
        for i in hosted:
            assert late.read_counter_via_control_plane(i) == 4


# -- packet buffer in pool mode -----------------------------------------------


RECEIVER = 1


def build_pool_buffer(servers=2, ring_entries=512):
    entry_bytes = 1600 + ENTRY_SEQ_BYTES
    tb = build_testbed(
        n_hosts=3,
        n_memory_servers=servers,
        tm_config=TrafficManagerConfig(buffer_bytes=kib(256)),
    )
    pool = MemoryPool(tb.controller, seed=1)
    for server, port in zip(tb.memory_servers, tb.server_ports):
        pool.add_server(server, port)
    program = RemoteBufferProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    primitive = RemotePacketBuffer.from_pool(
        tb.switch,
        pool,
        protected_port=tb.host_ports[RECEIVER],
        bytes_per_member=ring_entries * entry_bytes,
        config=PacketBufferConfig(
            entry_bytes=entry_bytes,
            high_watermark_bytes=kib(64),
            low_watermark_bytes=kib(8),
        ),
    )
    program.use_packet_buffer(primitive)
    return tb, pool, primitive


def blast_buffer(tb, count, senders=(0, 2)):
    sink = PacketSink(tb.hosts[RECEIVER], dst_port=20_000)
    for s in senders:
        RawEthernetBw(
            tb.sim,
            tb.hosts[s],
            tb.hosts[RECEIVER],
            packet_size=1500,
            rate_bps=40e9,
            count=count,
            src_port=10_000 + s,
        ).start()
    return sink


class TestPacketBufferPoolMode:
    def test_overload_stripes_over_every_member(self):
        tb, pool, primitive = build_pool_buffer(servers=2)
        sink = blast_buffer(tb, count=120)
        tb.sim.run()
        assert primitive.stats.stored_packets > 0
        assert sink.packets == 240  # nothing lost
        assert tb.switch.tm.total_dropped_packets == 0
        busy = [
            s for s in tb.memory_servers
            if s.rnic.stats.requests_received > 0
        ]
        assert len(busy) == 2

    def test_capacity_scales_with_members(self):
        tb, pool, primitive = build_pool_buffer(servers=2, ring_entries=256)
        assert primitive.capacity_entries == 2 * 256

    def test_member_join_adds_striping_capacity(self):
        tb, pool, primitive = build_pool_buffer(servers=2, ring_entries=256)
        pool.add_server(tb.memory_servers[0], tb.server_ports[0], name="late")
        assert primitive.capacity_entries == 3 * 256
        sink = blast_buffer(tb, count=100)
        tb.sim.run()
        assert sink.packets == 200
        assert tb.switch.tm.total_dropped_packets == 0

    def test_graceful_leave_drains_member_then_delivers_all(self):
        tb, pool, primitive = build_pool_buffer(servers=2)
        sink = blast_buffer(tb, count=100)

        def leave():
            pool.remove_server("memserver1")

        tb.sim.schedule_at(5_000.0, leave)
        tb.sim.run()
        assert sink.packets == 200
        assert tb.switch.tm.total_dropped_packets == 0
