"""Tests for unit helpers."""

import pytest

from repro.sim import units


def test_time_conversions():
    assert units.usec(1) == 1_000.0
    assert units.msec(1) == 1_000_000.0
    assert units.sec(1) == 1_000_000_000.0
    assert units.to_usec(units.usec(2.5)) == pytest.approx(2.5)
    assert units.to_msec(units.msec(7)) == pytest.approx(7)
    assert units.to_sec(units.sec(0.25)) == pytest.approx(0.25)


def test_rate_conversions():
    assert units.gbps(40) == 40e9
    assert units.mbps(100) == 100e6
    assert units.kbps(1) == 1e3
    assert units.to_gbps(units.gbps(10)) == pytest.approx(10)


def test_size_helpers():
    assert units.kib(1) == 1024
    assert units.mib(12) == 12 * 1024 * 1024
    assert units.gib(1) == 1024 ** 3


def test_transmission_delay_mtu_at_40g():
    # 1500 B at 40 Gbps = 300 ns, the canonical sanity number.
    assert units.transmission_delay_ns(1500, units.gbps(40)) == pytest.approx(300.0)


def test_transmission_delay_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        units.transmission_delay_ns(100, 0)


def test_rate_from_bytes_roundtrip():
    rate = units.rate_bps_from_bytes(1500, 300.0)
    assert rate == pytest.approx(units.gbps(40))


def test_rate_from_bytes_zero_window():
    assert units.rate_bps_from_bytes(1500, 0.0) == 0.0


def test_incast_arithmetic_from_paper_section_2_1():
    """§2.1: 12 MB buffer at 7x40 Gbps net inflow fills in ~0.34 ms."""
    buffer_bytes = 12e6
    net_inflow_bps = (8 - 1) * units.gbps(40)
    fill_ns = buffer_bytes * 8 * units.SEC / net_inflow_bps
    assert units.to_msec(fill_ns) == pytest.approx(0.34, rel=0.02)
