"""docs/API.md must document every ``repro.api`` export.

The reference is hand-written (a deliberate choice: generated docs
restate signatures, this one states contracts), so this test is the
only thing keeping it honest: add an export without documenting it and
CI fails here.
"""

import pathlib
import re

import repro.api

DOC = pathlib.Path(__file__).resolve().parent.parent / "docs" / "API.md"


def test_every_api_export_is_documented():
    text = DOC.read_text()
    # A name counts as documented only as inline code (`Name`), the way
    # the reference tables render every entry.
    documented = set(re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`", text))
    missing = sorted(set(repro.api.__all__) - documented)
    assert not missing, (
        f"docs/API.md is missing {len(missing)} repro.api export(s): "
        f"{', '.join(missing)}"
    )


def test_docs_do_not_reference_removed_exports():
    """Names documented as exports must actually exist on repro.api.

    Only enforced for table rows (lines starting with '| `Name`'), so
    prose may mention helper methods without tripping this.
    """
    stale = []
    for line in DOC.read_text().splitlines():
        match = re.match(r"\|\s*`([A-Za-z_][A-Za-z0-9_]*)`\s*\|", line)
        if match and match.group(1) not in repro.api.__all__:
            stale.append(match.group(1))
    assert not stale, f"docs/API.md documents non-exports: {stale}"
