"""Tests for the discrete-event simulator kernel.

The ``sim`` fixture override below runs this whole module against BOTH
kernels — every contract here (ordering, cancellation, deadlines,
budgets, reentrancy) is kernel-independent by design.
"""

import pytest

from repro.sim.simulator import SimulationError, Simulator


@pytest.fixture(params=["scalar", "batch"])
def sim(request) -> Simulator:
    return Simulator(kernel=request.param)


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_events_fire_in_time_order(sim):
    fired = []
    sim.schedule(30.0, fired.append, "c")
    sim.schedule(10.0, fired.append, "a")
    sim.schedule(20.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30.0


def test_same_time_events_fire_fifo(sim):
    fired = []
    for label in ("first", "second", "third"):
        sim.schedule(5.0, fired.append, label)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_zero_delay_event_fires_after_current(sim):
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(0.0, fired.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["outer", "inner"]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected(sim):
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_cancelled_event_does_not_fire(sim):
    fired = []
    event = sim.schedule(10.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.events_processed == 0


def test_cancel_is_idempotent(sim):
    event = sim.schedule(10.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_run_until_deadline_leaves_later_events_pending(sim):
    fired = []
    sim.schedule(10.0, fired.append, "early")
    sim.schedule(100.0, fired.append, "late")
    sim.run(until_ns=50.0)
    assert fired == ["early"]
    assert sim.now == 50.0
    assert sim.pending_events == 1
    sim.run()
    assert fired == ["early", "late"]


def test_run_for_advances_relative(sim):
    sim.schedule(10.0, lambda: None)
    sim.run(until_ns=20.0)
    sim.schedule(15.0, lambda: None)
    sim.run_for(10.0)
    assert sim.now == 30.0
    assert sim.pending_events == 1


def test_max_events_budget(sim):
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_returns_false_when_empty(sim):
    assert sim.step() is False


def test_events_processed_counts_only_fired(sim):
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    sim.run()
    assert sim.events_processed == 1


def test_deterministic_interleaving():
    """Two identical schedules must produce identical traces."""

    def trace():
        sim = Simulator()
        out = []
        sim.schedule(5.0, out.append, "a")
        sim.schedule(5.0, lambda: sim.schedule(0.0, out.append, "nested"))
        sim.schedule(5.0, out.append, "b")
        sim.run()
        return out

    assert trace() == trace()


def test_reentrant_run_rejected(sim):
    def recurse():
        sim.run()

    sim.schedule(1.0, recurse)
    with pytest.raises(SimulationError):
        sim.run()


def test_cancelled_events_excluded_from_pending(sim):
    live = sim.schedule(5.0, lambda: None)
    doomed = [sim.schedule(1.0, lambda: None) for _ in range(10)]
    assert sim.pending_events == 11
    for event in doomed:
        event.cancel()
    # Lazily-deleted entries are still in the heap, but neither
    # pending_events nor active_events counts them.
    assert sim.pending_events == 1
    assert sim.active_events == 1
    live.cancel()
    assert sim.active_events == 0


def test_cancelled_head_purged_at_deadline(sim):
    """A cancelled event sitting at the deadline boundary is purged, not
    left pending forever."""
    doomed = sim.schedule(10.0, lambda: None)
    sim.schedule(20.0, lambda: None)
    doomed.cancel()
    sim.run(until_ns=15.0)
    assert sim.now == 15.0
    assert sim.pending_events == 1  # only the t=20 event remains
    sim.run()
    assert sim.pending_events == 0


def test_cancelled_event_beyond_deadline_not_counted(sim):
    doomed = sim.schedule(30.0, lambda: None)
    doomed.cancel()
    sim.schedule(1.0, lambda: None)
    sim.run(until_ns=5.0)
    assert sim.pending_events == 0


def test_cancel_after_fire_is_harmless(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert fired == ["x"]
    event.cancel()  # late cancel of an already-fired event: no effect
    assert sim.events_processed == 2


def test_event_exposes_schedule_metadata(sim):
    def callback():
        pass

    event = sim.schedule(3.0, callback)
    assert event.time == 3.0
    assert event.seq == 0
    assert event.callback is callback
    assert event.args == ()
    assert not event.cancelled
    event.cancel()
    assert event.cancelled
    assert "cancelled" in repr(event)


def test_callback_index_error_propagates(sim):
    """The drain loop's empty-heap detection must not swallow a callback's
    own IndexError."""

    def boom():
        [].pop()

    sim.schedule(1.0, boom)
    with pytest.raises(IndexError):
        sim.run()


def test_run_with_budget_purges_cancelled_before_counting(sim):
    out = []
    for i in range(4):
        sim.schedule(1.0 + i, out.append, i)
    doomed = sim.schedule(0.5, out.append, "doomed")
    doomed.cancel()
    sim.run(max_events=2)
    assert out == [0, 1]
    assert sim.events_processed == 2
