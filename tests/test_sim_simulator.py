"""Tests for the discrete-event simulator kernel."""

import pytest

from repro.sim.simulator import SimulationError, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_events_fire_in_time_order(sim):
    fired = []
    sim.schedule(30.0, fired.append, "c")
    sim.schedule(10.0, fired.append, "a")
    sim.schedule(20.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30.0


def test_same_time_events_fire_fifo(sim):
    fired = []
    for label in ("first", "second", "third"):
        sim.schedule(5.0, fired.append, label)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_zero_delay_event_fires_after_current(sim):
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(0.0, fired.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["outer", "inner"]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected(sim):
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_cancelled_event_does_not_fire(sim):
    fired = []
    event = sim.schedule(10.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.events_processed == 0


def test_cancel_is_idempotent(sim):
    event = sim.schedule(10.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_run_until_deadline_leaves_later_events_pending(sim):
    fired = []
    sim.schedule(10.0, fired.append, "early")
    sim.schedule(100.0, fired.append, "late")
    sim.run(until_ns=50.0)
    assert fired == ["early"]
    assert sim.now == 50.0
    assert sim.pending_events == 1
    sim.run()
    assert fired == ["early", "late"]


def test_run_for_advances_relative(sim):
    sim.schedule(10.0, lambda: None)
    sim.run(until_ns=20.0)
    sim.schedule(15.0, lambda: None)
    sim.run_for(10.0)
    assert sim.now == 30.0
    assert sim.pending_events == 1


def test_max_events_budget(sim):
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_returns_false_when_empty(sim):
    assert sim.step() is False


def test_events_processed_counts_only_fired(sim):
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    sim.run()
    assert sim.events_processed == 1


def test_deterministic_interleaving():
    """Two identical schedules must produce identical traces."""

    def trace():
        sim = Simulator()
        out = []
        sim.schedule(5.0, out.append, "a")
        sim.schedule(5.0, lambda: sim.schedule(0.0, out.append, "nested"))
        sim.schedule(5.0, out.append, "b")
        sim.run()
        return out

    assert trace() == trace()


def test_reentrant_run_rejected(sim):
    def recurse():
        sim.run()

    sim.schedule(1.0, recurse)
    with pytest.raises(SimulationError):
        sim.run()
