"""Tests for the million-flow Zipf workload subsystem (repro.workloads.zipf).

ZipfGenerator is the O(1) rejection-inversion sampler; it must be
deterministic under a seeded rng, validate its parameters, degenerate to
uniform at alpha=0, and actually produce a heavy-tailed distribution.
OpenLoopZipfTraffic must offer the *same flows in the same order*
whatever the arrival model, and deliver packets end to end on the sim.
"""

import random

import pytest

from repro.apps.programs import StaticL2Program
from repro.testbed import build_testbed
from repro.workloads.zipf import OpenLoopZipfTraffic, ZipfGenerator


def _forwarding_testbed():
    tb = build_testbed(n_hosts=2)
    program = StaticL2Program()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    return tb


class TestZipfGenerator:
    def test_rejects_bad_population(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0, 1.0, random.Random(1))

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            ZipfGenerator(10, -0.5, random.Random(1))

    def test_seed_determinism(self):
        a = ZipfGenerator(1_000_000, 1.0, random.Random(42))
        b = ZipfGenerator(1_000_000, 1.0, random.Random(42))
        assert [a.sample() for _ in range(2000)] == [
            b.sample() for _ in range(2000)
        ]

    def test_samples_stay_in_range(self):
        gen = ZipfGenerator(100, 1.2, random.Random(7))
        samples = [gen.sample() for _ in range(5000)]
        assert min(samples) >= 0
        assert max(samples) < 100

    def test_alpha_zero_is_uniform(self):
        gen = ZipfGenerator(10, 0.0, random.Random(3))
        counts = [0] * 10
        for _ in range(10_000):
            counts[gen.sample()] += 1
        # Uniform: every rank near 1000; nothing Zipf-skewed.
        assert max(counts) < 2 * min(counts)

    def test_distribution_is_heavy_tailed(self):
        """At alpha=1 the rank-0 share must dwarf the deep tail and the
        empirical head frequencies must be close to 1/(r+1)/H_n."""
        n = 100_000
        gen = ZipfGenerator(n, 1.0, random.Random(11))
        counts = {}
        draws = 50_000
        for _ in range(draws):
            r = gen.sample()
            counts[r] = counts.get(r, 0) + 1
        h_n = sum(1.0 / (r + 1) for r in range(n))
        for rank in range(3):
            expected = draws / ((rank + 1) * h_n)
            assert counts.get(rank, 0) == pytest.approx(expected, rel=0.25)
        # Rank 0 alone beats the combined mass of ranks >= 1000.
        deep_tail = sum(c for r, c in counts.items() if r >= 1000)
        assert counts[0] > deep_tail / 5

    def test_ten_million_flow_population_is_cheap(self):
        """O(1) setup and sampling: a 10M-rank generator works instantly
        (the table-based sampler would need a 10M-entry CDF)."""
        gen = ZipfGenerator(10_000_000, 1.0, random.Random(5))
        samples = [gen.sample() for _ in range(1000)]
        assert all(0 <= s < 10_000_000 for s in samples)
        assert len(set(samples)) > 100  # not degenerate


class TestOpenLoopZipfTraffic:
    def _traffic(self, tb, **kw):
        defaults = dict(
            flows=10_000, alpha=1.0, rate_pps=1e6, count=500, seed=9
        )
        defaults.update(kw)
        return OpenLoopZipfTraffic(
            tb.sim, tb.hosts[0], tb.hosts[1], **defaults
        )

    def test_validates_parameters(self):
        tb = build_testbed(n_hosts=2)
        with pytest.raises(ValueError):
            self._traffic(tb, arrival="bursty")
        with pytest.raises(ValueError):
            self._traffic(tb, rate_pps=0)
        with pytest.raises(ValueError):
            self._traffic(tb, flows=60_000 * 60_000 + 1)

    def test_schedule_deterministic_across_arrival_models(self):
        """The rank stream is independent of the arrival-jitter stream:
        poisson and paced runs offer the same flows in the same order."""
        tb = build_testbed(n_hosts=2)
        poisson = self._traffic(tb, arrival="poisson")
        paced = self._traffic(tb, arrival="paced")
        assert poisson.schedule == paced.schedule
        assert poisson.distinct_ranks() == paced.distinct_ranks()

    def test_schedule_deterministic_under_seed(self):
        tb = build_testbed(n_hosts=2)
        assert (
            self._traffic(tb, seed=4).schedule
            == self._traffic(tb, seed=4).schedule
        )
        assert (
            self._traffic(tb, seed=4).schedule
            != self._traffic(tb, seed=5).schedule
        )

    def test_flow_key_mapping_is_injective(self):
        tb = build_testbed(n_hosts=2)
        traffic = self._traffic(tb)
        span = OpenLoopZipfTraffic.PORT_SPAN
        keys = {
            (k.src_port, k.dst_port)
            for k in (
                traffic.flow_key(r)
                for r in (0, 1, span - 1, span, span + 1, 2 * span)
            )
        }
        assert len(keys) == 6
        assert traffic.flow_key(0).src_port == OpenLoopZipfTraffic.BASE_PORT

    def test_open_loop_delivery_on_sim(self):
        """All scheduled packets are sent and per-rank accounting matches
        the precomputed schedule exactly."""
        tb = _forwarding_testbed()
        traffic = self._traffic(tb, count=300)
        done = []
        traffic.on_done = lambda: done.append(tb.sim.now)
        traffic.start()
        tb.sim.run()
        assert traffic.packets_sent == 300
        assert done, "on_done never fired"
        assert sum(traffic.sent_by_rank.values()) == 300
        assert traffic.distinct_flows_sent() == len(set(traffic.schedule))
        heavy = traffic.heavy_hitters(3)
        assert all(traffic.sent_by_rank[r] >= 3 for r in heavy)

    def test_paced_arrivals_are_evenly_spaced(self):
        tb = _forwarding_testbed()
        traffic = self._traffic(tb, arrival="paced", count=50, rate_pps=1e6)
        stamps = []
        original = traffic.packet_for

        def recording(rank):
            stamps.append(tb.sim.now)
            return original(rank)

        traffic.packet_for = recording
        traffic.start()
        tb.sim.run()
        gaps = {
            round(b - a, 3) for a, b in zip(stamps, stamps[1:])
        }
        assert gaps == {1000.0}  # 1 Mpps -> 1000 ns between packets
