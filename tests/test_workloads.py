"""Tests for the workload generators."""

import pytest

from repro.apps.programs import StaticL2Program
from repro.experiments.topology import build_testbed
from repro.sim.units import gbps, msec, usec
from repro.workloads.factory import UDP_HEADER_BYTES, udp_between
from repro.workloads.flows import ZipfFlowWorkload, ZipfSampler
from repro.workloads.incast import IncastWorkload
from repro.workloads.netpipe import PingPong
from repro.workloads.perftest import PacketSink, RawEthernetBw


def forwarding_testbed(n_hosts=2, **kwargs):
    tb = build_testbed(n_hosts=n_hosts, with_memory_server=False, **kwargs)
    program = StaticL2Program()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    return tb


class TestFactory:
    def test_packet_size_is_total_frame(self):
        tb = forwarding_testbed()
        packet = udp_between(tb.hosts[0], tb.hosts[1], 512)
        assert packet.buffer_len == 512

    def test_minimum_size_enforced(self):
        tb = forwarding_testbed()
        with pytest.raises(ValueError):
            udp_between(tb.hosts[0], tb.hosts[1], UDP_HEADER_BYTES - 1)

    def test_addressing(self):
        tb = forwarding_testbed()
        packet = udp_between(tb.hosts[0], tb.hosts[1], 100)
        assert packet.eth.dst == tb.hosts[1].eth.mac
        assert packet.ipv4.src == tb.hosts[0].eth.ip


class TestRawEthernetBw:
    def test_sends_exact_count(self):
        tb = forwarding_testbed()
        sink = PacketSink(tb.hosts[1], dst_port=20_000)
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=256, rate_bps=gbps(10), count=37,
        )
        gen.start()
        tb.sim.run()
        assert gen.report.packets_sent == 37
        assert sink.packets == 37

    def test_offered_rate_close_to_target(self):
        tb = forwarding_testbed()
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=1500, rate_bps=gbps(20), count=200,
        )
        gen.start()
        tb.sim.run()
        # Offered rate is paced on wire bytes; frame-byte rate is slightly
        # below the wire target.
        measured = gen.report.offered_rate_bps()
        assert measured == pytest.approx(gbps(20) * 1500 / 1520, rel=0.02)

    def test_duration_bounded(self):
        tb = forwarding_testbed()
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=1500, rate_bps=gbps(40), duration_ns=usec(10),
        )
        gen.start()
        tb.sim.run()
        assert gen.report.duration_ns <= usec(10)
        assert gen.report.packets_sent > 10

    def test_requires_count_or_duration(self):
        tb = forwarding_testbed()
        with pytest.raises(ValueError):
            RawEthernetBw(tb.sim, tb.hosts[0], tb.hosts[1], rate_bps=gbps(1))

    def test_sink_filters_by_port(self):
        tb = forwarding_testbed()
        sink = PacketSink(tb.hosts[1], dst_port=999)
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=256, rate_bps=gbps(10), count=5, dst_port=20_000,
        )
        gen.start()
        tb.sim.run()
        assert sink.packets == 0


class TestPingPong:
    def test_completes_all_probes(self):
        tb = forwarding_testbed()
        pp = PingPong(tb.sim, tb.hosts[0], tb.hosts[1], packet_size=64, probes=10)
        pp.start()
        tb.sim.run()
        assert pp.completed == 10

    def test_latency_scales_with_size(self):
        small = forwarding_testbed()
        pp_small = PingPong(small.sim, small.hosts[0], small.hosts[1], 64, probes=5)
        pp_small.start()
        small.sim.run()
        big = forwarding_testbed()
        pp_big = PingPong(big.sim, big.hosts[0], big.hosts[1], 1024, probes=5)
        pp_big.start()
        big.sim.run()
        assert pp_big.median_oneway_ns() > pp_small.median_oneway_ns()

    def test_no_probes_raises(self):
        tb = forwarding_testbed()
        pp = PingPong(tb.sim, tb.hosts[0], tb.hosts[1], probes=5)
        with pytest.raises(RuntimeError):
            pp.median_rtt_ns()


class TestZipf:
    def test_sampler_bounds(self):
        import random

        sampler = ZipfSampler(100, 1.2, random.Random(1))
        samples = [sampler.sample() for _ in range(1000)]
        assert all(0 <= s < 100 for s in samples)

    def test_skew_orders_popularity(self):
        import random

        sampler = ZipfSampler(1000, 1.2, random.Random(1))
        counts = {}
        for _ in range(20_000):
            rank = sampler.sample()
            counts[rank] = counts.get(rank, 0) + 1
        assert counts.get(0, 0) > counts.get(500, 0)

    def test_alpha_zero_is_uniformish(self):
        import random

        sampler = ZipfSampler(10, 0.0, random.Random(1))
        counts = [0] * 10
        for _ in range(10_000):
            counts[sampler.sample()] += 1
        assert min(counts) > 700

    def test_invalid_geometry(self):
        import random

        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, random.Random(1))
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0, random.Random(1))

    def test_workload_counts_flows(self):
        tb = forwarding_testbed()
        workload = ZipfFlowWorkload(
            tb.sim, tb.hosts[0], tb.hosts[1],
            flows=50, alpha=1.0, count=300, rate_bps=gbps(10), seed=3,
        )
        workload.start()
        tb.sim.run()
        assert workload.packets_sent == 300
        assert sum(workload.sent_by_rank.values()) == 300
        assert 1 <= workload.distinct_flows_sent() <= 50

    def test_workload_deterministic_per_seed(self):
        def run(seed):
            tb = forwarding_testbed()
            w = ZipfFlowWorkload(
                tb.sim, tb.hosts[0], tb.hosts[1],
                flows=20, count=100, rate_bps=gbps(10), seed=seed,
            )
            w.start()
            tb.sim.run()
            return dict(w.sent_by_rank)

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_heavy_hitters_ground_truth(self):
        tb = forwarding_testbed()
        w = ZipfFlowWorkload(
            tb.sim, tb.hosts[0], tb.hosts[1],
            flows=100, alpha=1.5, count=500, rate_bps=gbps(10),
        )
        w.start()
        tb.sim.run()
        hh = w.heavy_hitters(threshold=20)
        assert all(count >= 20 for count in hh.values())


class TestIncastWorkload:
    def test_all_senders_fire(self):
        tb = forwarding_testbed(n_hosts=4)
        workload = IncastWorkload(
            tb.sim, tb.hosts[:3], tb.hosts[3],
            bytes_per_sender=15_000, packet_size=1500,
        )
        workload.start()
        tb.sim.run()
        report = workload.report()
        assert report.senders == 3
        assert report.packets_sent == 30
        assert report.packets_received <= 30

    def test_empty_senders_rejected(self):
        tb = forwarding_testbed()
        with pytest.raises(ValueError):
            IncastWorkload(tb.sim, [], tb.hosts[0], bytes_per_sender=1)
