"""Wire-fidelity tests: the structured simulation matches real bytes.

The simulator moves structured packets for speed, but every header codec
is byte-exact.  These tests tap live links, serialize everything that
crosses them, re-parse the bytes, and assert the reconstructed packets
match — including full RoCE exchanges driven by the switch data plane.
"""

import pytest

from repro.apps.programs import CountingProgram, RemoteLookupProgram
from repro.core.lookup_table import (
    ACTION_SET_DSCP,
    LookupTableConfig,
    RemoteAction,
    RemoteLookupTable,
)
from repro.core.state_store import RemoteStateStore, StateStoreConfig
from repro.experiments.topology import build_testbed
from repro.net.headers import EthernetHeader, Ipv4Header, UdpHeader
from repro.net.packet import Packet
from repro.rdma.constants import Opcode
from repro.rdma.headers import (
    AtomicEthHeader,
    BthHeader,
    GrhHeader,
    RethHeader,
    gid_from_ipv4,
    parse_roce,
)
from repro.rdma.packets import convert_to_rocev1
from repro.switches.hashing import FiveTuple
from repro.workloads.perftest import RawEthernetBw
from repro.sim.simulator import kernel_mode
from repro.sim.units import gbps


class WireChecker:
    """Link tap: packs each packet, re-parses, compares layer by layer.

    Also keeps every packed frame (``self.raw``) so cross-kernel runs can
    assert the wire bytes are identical, not merely well-formed.
    """

    def __init__(self, link):
        self.checked = 0
        self.roce_checked = 0
        self.raw: list = []
        link.taps.append(self._tap)

    def _tap(self, src, packet: Packet) -> None:
        raw = packet.pack()
        self.raw.append(raw)
        parsed = Packet.parse(raw)
        assert parsed.eth == packet.eth
        ip = packet.find(Ipv4Header)
        if ip is not None:
            assert parsed.ipv4 == ip
        udp = packet.find(UdpHeader)
        if udp is not None:
            assert parsed.udp == udp
        bth = packet.find(BthHeader)
        if bth is not None:
            # Continue parsing the RoCE section from the UDP payload.
            headers, payload, icrc = parse_roce(parsed.payload)
            assert headers[0] == bth
            roce_index = packet.index_of(BthHeader)
            expected_stack = packet.headers[roce_index:]
            assert headers == expected_stack
            assert payload == packet.payload
            self.roce_checked += 1
        else:
            assert parsed.payload == packet.payload
        self.checked += 1


def _reset_global_id_counters():
    """Pin the process-global ID counters to a fixed origin.

    rkeys come from a process-wide ``itertools.count`` (as on a real host,
    where keys are never reused), so two runs in one process hand out
    different rkeys — and rkeys appear in RETH bytes.  Byte-identity tests
    across kernel modes must therefore restart the counters per run; the
    per-run simulation itself stays fully deterministic.
    """
    import itertools

    from repro.rdma import memory as rdma_memory
    from repro.rdma import qp as rdma_qp

    rdma_memory._rkey_counter = itertools.count(0x1000)
    rdma_qp._wr_ids = itertools.count(1)


def _run_state_store_traffic(mode):
    _reset_global_id_counters()
    with kernel_mode(mode):
        tb = build_testbed(n_hosts=2)
        program = CountingProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        config = StateStoreConfig(counters=1 << 10)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, config.counters * 8
        )
        store = RemoteStateStore(tb.switch, channel, config=config)
        program.use_state_store(store)
        checker = WireChecker(tb.server_link)
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=256, rate_bps=gbps(10), count=50,
        )
        gen.start()
        tb.sim.run()
    return checker


@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_state_store_traffic_is_byte_faithful(mode):
    checker = _run_state_store_traffic(mode)
    assert checker.roce_checked > 0
    # Every packet on the server link is RoCE (requests + atomic acks).
    assert checker.roce_checked == checker.checked


def test_state_store_traffic_identical_across_kernels():
    """Seed-fixed run: the exact bytes crossing the server link must match
    between kernels, packet for packet."""
    scalar = _run_state_store_traffic("scalar")
    batch = _run_state_store_traffic("batch")
    assert scalar.raw == batch.raw
    assert len(scalar.raw) == scalar.checked


def _run_lookup_bounce_traffic(mode):
    _reset_global_id_counters()
    with kernel_mode(mode):
        tb = build_testbed(n_hosts=2)
        program = RemoteLookupProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        config = LookupTableConfig(entries=1 << 10, cache_entries=0)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port,
            config.entries * config.entry_bytes,
        )
        table = RemoteLookupTable(tb.switch, channel, config=config)
        program.use_lookup_table(table)
        flow = FiveTuple(
            src_ip=tb.hosts[0].eth.ip.value,
            dst_ip=tb.hosts[1].eth.ip.value,
            protocol=17,
            src_port=10_000,
            dst_port=20_000,
        )
        table.install(flow, RemoteAction(ACTION_SET_DSCP, 9))
        server_checker = WireChecker(tb.server_link)
        host_checker = WireChecker(tb.host_links[1])
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=512, rate_bps=gbps(5), count=20,
        )
        gen.start()
        tb.sim.run()
    return server_checker, host_checker


@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_lookup_bounce_traffic_is_byte_faithful(mode):
    server_checker, host_checker = _run_lookup_bounce_traffic(mode)
    # 20 bounces: WRITE + READ per packet toward the server, plus responses.
    assert server_checker.roce_checked >= 60
    assert host_checker.checked == 20


def test_lookup_bounce_traffic_identical_across_kernels():
    scalar_server, scalar_host = _run_lookup_bounce_traffic("scalar")
    batch_server, batch_host = _run_lookup_bounce_traffic("batch")
    assert scalar_server.raw == batch_server.raw
    assert scalar_host.raw == batch_host.raw


def _run_l4lb_migration_traffic(mode, seed=42):
    """L4LB with a mid-run live migration: installs, VIP lookups, counter
    FAAs, and the migration's re-install all cross tapped links."""
    from repro.apps.l4lb import L4LbController, L4LbProgram
    from repro.cluster import MemoryPool, ReplicatedStateStore
    from repro.net.addresses import Ipv4Address
    from repro.workloads.factory import udp_between

    _reset_global_id_counters()
    with kernel_mode(mode):
        tb = build_testbed(n_hosts=3, n_memory_servers=3, seed=seed)
        pool = MemoryPool(tb.controller, seed=1)
        for server, port in zip(tb.memory_servers[1:], tb.server_ports[1:]):
            pool.add_server(server, port)
        program = L4LbProgram("10.9.9.9")
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        config = LookupTableConfig(
            entries=1 << 10, cache_entries=64, layout="cuckoo",
            hash_seed=seed, policy="lru",
        )
        channel = tb.controller.open_channel(
            tb.memory_servers[0], tb.server_ports[0], config.region_bytes,
            name="l4lb:connections",
        )
        table = RemoteLookupTable(tb.switch, channel, config=config)
        program.use_connection_table(table)
        store = ReplicatedStateStore(
            tb.switch,
            pool,
            config=StateStoreConfig(
                counters=4, reliable=True, retry_timeout_ns=50_000.0
            ),
            replication=2,
        )
        program.use_counter_store(store)
        controller = L4LbController(program, table, store, pool, seed=seed)
        backends = [
            controller.add_backend(
                name, host.eth.ip, host.eth.mac, port
            )
            for name, host, port in [
                ("alpha", tb.hosts[1], tb.host_ports[1]),
                ("beta", tb.hosts[2], tb.host_ports[2]),
            ]
        ]
        vip = Ipv4Address("10.9.9.9")
        flows = [
            FiveTuple(
                src_ip=tb.hosts[0].eth.ip.value,
                dst_ip=vip.value,
                protocol=17,
                src_port=10_000 + i,
                dst_port=20_000,
            )
            for i in range(8)
        ]
        for flow in flows:
            controller.admit(flow)
        table_checker = WireChecker(tb.server_links[0])
        counter_checker = WireChecker(tb.server_links[1])
        backend_checker = WireChecker(tb.host_links[1])

        def send(i):
            packet = udp_between(
                tb.hosts[0], tb.hosts[1], 128,
                src_port=10_000 + i, dst_port=20_000,
            )
            packet.require(Ipv4Header).dst = vip
            tb.hosts[0].send(packet)

        for tick in range(24):
            tb.sim.schedule_at(tick * 1_000.0, send, tick % 8)

        def migrate_half():
            for flow in flows[:4]:
                source = controller.backends[controller.placement[flow]]
                target = backends[1] if source is backends[0] else backends[0]
                controller.migrate(flow, target, reason="drain")

        tb.sim.schedule_at(11_500.0, migrate_half)
        tb.sim.run()
    return table_checker, counter_checker, backend_checker, controller


@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_l4lb_migration_traffic_is_byte_faithful(mode):
    table_checker, counter_checker, backend_checker, controller = (
        _run_l4lb_migration_traffic(mode)
    )
    # Installs + lookup bounces + the migration's re-installs: everything
    # on the table link is RoCE and round-trips byte-exactly.
    assert table_checker.roce_checked == table_checker.checked
    assert table_checker.roce_checked > 0
    # Per-backend counter FAAs crossed the replica link.
    assert counter_checker.roce_checked > 0
    # Load-balanced data traffic actually reached a backend.
    assert backend_checker.checked > 0
    assert controller.stats.connections_migrated == 4


def test_l4lb_migration_traffic_identical_across_kernels():
    """Seed-42 L4LB migration: the exact bytes crossing the table link,
    a counter-replica link, and a backend's host link must match between
    kernels, packet for packet."""
    scalar = _run_l4lb_migration_traffic("scalar")
    batch = _run_l4lb_migration_traffic("batch")
    for scalar_checker, batch_checker in zip(scalar[:3], batch[:3]):
        assert scalar_checker.raw == batch_checker.raw
        assert len(scalar_checker.raw) > 0
    # The scenario is only meaningful if the migration actually ran.
    assert scalar[3].stats.connections_migrated == 4


class RawTap:
    """Byte-only link tap for guarded links.

    :class:`WireChecker` re-parses every frame and asserts the IPv4/UDP
    layers round-trip — but a guarded link carries 0x88B6-shimmed frames
    :meth:`Packet.parse` deliberately treats as opaque payload, so here
    we keep just the packed bytes (shims, resends, and standalone guard
    ACK/NAK control frames included) for cross-kernel comparison.
    """

    def __init__(self, link):
        self.raw: list = []
        link.taps.append(lambda src, packet: self.raw.append(packet.pack()))


def _run_guarded_store_traffic(mode, seed=42):
    """Reliable store over a guarded, corrupting+losing server link."""
    import random

    from repro.faults import Corrupt, IidLoss, LinkFaultInjector
    from repro.linkguard import LinkGuard

    _reset_global_id_counters()
    with kernel_mode(mode):
        tb = build_testbed(n_hosts=2)
        program = CountingProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        config = StateStoreConfig(
            counters=1 << 10, reliable=True, retry_timeout_ns=50_000.0
        )
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, config.counters * 8
        )
        store = RemoteStateStore(tb.switch, channel, config=config)
        program.use_state_store(store)
        guard = LinkGuard(tb.server_link)
        tap = RawTap(tb.server_link)
        injector = LinkFaultInjector(
            tb.server_link, rng=random.Random(seed)
        )
        injector.arm(Corrupt(0.02))
        injector.arm(IidLoss(0.02))
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=256, rate_bps=gbps(10), count=50,
        )
        gen.start()
        tb.sim.run()
    return tap, guard


@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_guarded_traffic_is_shimmed_on_the_wire(mode):
    from repro.linkguard import ETHERTYPE_LINKGUARD, GuardShimHeader

    tap, guard = _run_guarded_store_traffic(mode)
    assert guard.counts["protected"] > 0
    # Every frame the tap saw carries the guard ethertype and a
    # well-formed shim right behind the Ethernet header.
    assert len(tap.raw) > 0
    for raw in tap.raw:
        eth = EthernetHeader.unpack(raw[: EthernetHeader.LENGTH])
        assert eth.ethertype == ETHERTYPE_LINKGUARD
        shim = GuardShimHeader.unpack(
            raw[EthernetHeader.LENGTH:
                EthernetHeader.LENGTH + GuardShimHeader.LENGTH]
        )
        assert shim.kind in (0, 1, 2, 3)


def test_guarded_traffic_identical_across_kernels():
    """Seed-42 guarded run: the exact shimmed bytes crossing the server
    link — data frames, piggybacked acks, resends, and standalone guard
    control frames — must match between kernels, frame for frame."""
    scalar_tap, scalar_guard = _run_guarded_store_traffic("scalar")
    batch_tap, batch_guard = _run_guarded_store_traffic("batch")
    assert scalar_guard.counts == batch_guard.counts
    assert scalar_tap.raw == batch_tap.raw
    # The run is only meaningful if the guard actually worked.
    assert scalar_guard.counts["masked_losses"] > 0


def _run_tiered_promotion_cycle(mode, seed=42):
    """Drive a full promotion/demotion cycle on a tiered state store.

    Phase 1 heats blocks 0 and 1 (fills the two-slot fast window); phase 2
    heats blocks 2 and 3 while the residents idle, forcing the frequency
    policy to demote the cold residents and promote the new hot set.
    Bursts are separated by quiet gaps so in-flight ops quiesce — busy
    blocks refuse to move by design.
    """
    from repro.obs import Observability, WireTrace
    from repro.obs.trace import KIND_TIER_MOVE
    from repro.tiering import TieredMemoryPool

    _reset_global_id_counters()
    obs = Observability(trace=WireTrace())
    with kernel_mode(mode), obs.activate():
        tb = build_testbed(n_hosts=2)
        program = CountingProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        pool = TieredMemoryPool(
            tb.controller,
            policy="frequency",
            policy_seed=seed,
            fast_capacity_bytes=512,
            tick_ns=10_000.0,
            seed=seed,
        )
        member = pool.add_server(tb.memory_server, tb.server_port)
        geometry = pool.tier_object(
            "counters", 8, 256, units_per_block=16,
            member=member, fast_blocks=2,
        )
        store = RemoteStateStore(
            tb.switch,
            config=StateStoreConfig(counters=256, reliable=True),
            tiering=geometry,
        )
        program.use_state_store(store)
        checker = WireChecker(tb.server_link)

        def burst(t0, index, count, gap_ns=400.0):
            for i in range(count):
                tb.sim.schedule(t0 + i * gap_ns, store.update, index, 1)

        for round_ in range(3):
            t0 = round_ * 18_000.0
            burst(t0, 0, 8)  # block 0
            burst(t0 + 4_000.0, 16, 8)  # block 1
        for round_ in range(3):
            t0 = 60_000.0 + round_ * 18_000.0
            burst(t0, 32, 10)  # block 2
            burst(t0 + 4_500.0, 48, 10)  # block 3
        tb.sim.run()
    moves = [
        (event.t_ns, event.psn, event.channel)
        for event in obs.trace.events
        if event.kind == KIND_TIER_MOVE
    ]
    return checker, moves


@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_tiered_promotion_cycle_is_byte_faithful(mode):
    checker, moves = _run_tiered_promotion_cycle(mode)
    assert checker.roce_checked > 0
    reasons = {channel for (_, _, channel) in moves}
    assert "counters:promote" in reasons
    assert "counters:demote" in reasons


def test_tiered_promotion_cycle_identical_across_kernels():
    """Fixed seed 42: the wire bytes AND the TIER_MOVE event stream of a
    promotion/demotion cycle must match between kernels exactly."""
    scalar_checker, scalar_moves = _run_tiered_promotion_cycle("scalar")
    batch_checker, batch_moves = _run_tiered_promotion_cycle("batch")
    assert scalar_checker.raw == batch_checker.raw
    assert scalar_moves == batch_moves
    assert scalar_moves, "no tier moves happened — the cycle never ran"


class TestGrh:
    def test_round_trip(self):
        from repro.net.addresses import Ipv4Address

        grh = GrhHeader(
            src_gid=gid_from_ipv4(Ipv4Address("10.0.0.1")),
            dst_gid=gid_from_ipv4(Ipv4Address("10.0.0.2")),
            payload_length=1234,
            hop_limit=3,
            traffic_class=7,
            flow_label=0xABCDE,
        )
        assert GrhHeader.unpack(grh.pack()) == grh
        assert len(grh.pack()) == 40

    def test_gid_mapping(self):
        from repro.net.addresses import Ipv4Address

        gid = gid_from_ipv4(Ipv4Address("1.2.3.4"))
        assert len(gid) == 16
        assert gid[-4:] == bytes([1, 2, 3, 4])
        assert gid[10:12] == b"\xff\xff"

    def test_convert_to_rocev1_preserves_roce_section(self):
        from repro.net.addresses import Ipv4Address, MacAddress
        from repro.rdma.packets import build_write_request
        from repro.rdma.qp import QueuePair
        from repro.rdma.verbs import connect_qps

        qp_a = QueuePair(1, Ipv4Address("10.0.0.1"), MacAddress(1))
        qp_b = QueuePair(2, Ipv4Address("10.0.0.2"), MacAddress(2))
        connect_qps(qp_a, qp_b)
        v2 = build_write_request(qp_a, 0x2000, 0x99, b"payload")
        v1 = convert_to_rocev1(v2)
        assert v1.find(GrhHeader) is not None
        assert v1.find(Ipv4Header) is None
        assert v1.require(BthHeader) == v2.require(BthHeader)
        assert v1.require(RethHeader) == v2.require(RethHeader)
        assert v1.payload == v2.payload
        # v1 framing is 12 bytes bigger (40 GRH vs 28 IPv4+UDP).
        assert v1.header_len == v2.header_len + 12
        # The original is untouched.
        assert v2.find(Ipv4Header) is not None

    def test_grh_rejects_bad_gid(self):
        from repro.net.headers import HeaderError

        with pytest.raises(HeaderError):
            GrhHeader(src_gid=b"short", dst_gid=b"\x00" * 16)
