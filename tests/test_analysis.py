"""Tests for statistics, monitors and reporting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.monitors import (
    LatencyRecorder,
    LinkBandwidthMonitor,
    QueueDepthSampler,
)
from repro.analysis.reporting import format_gbps, format_table, format_usec
from repro.analysis.stats import Summary, percentile
from repro.apps.programs import StaticL2Program
from repro.experiments.topology import build_testbed
from repro.sim.units import gbps, usec
from repro.workloads.perftest import RawEthernetBw


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50),
           st.floats(0, 100))
    def test_within_bounds_property(self, data, p):
        value = percentile(data, p)
        assert min(data) <= value <= max(data)


class TestSummary:
    def test_basic(self):
        summary = Summary.of([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == 3
        assert summary.median == 3
        assert summary.minimum == 1
        assert summary.maximum == 5

    def test_single_sample_stdev_zero(self):
        assert Summary.of([7]).stdev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Summary.of([])


class TestReporting:
    def test_table_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[1:2])) == 1

    def test_title_included(self):
        assert format_table(["x"], [[1]], title="T").startswith("T\n")

    def test_format_units(self):
        assert format_gbps(2.5e9) == "2.50 Gbps"
        assert format_usec(1500.0) == "1.50 us"


def forwarding_testbed():
    tb = build_testbed(n_hosts=2, with_memory_server=False)
    program = StaticL2Program()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    return tb


class TestMonitors:
    def test_bandwidth_monitor_counts_directionally(self):
        tb = forwarding_testbed()
        monitor = LinkBandwidthMonitor(tb.sim, tb.host_links[0])
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=1500, rate_bps=gbps(10), count=50,
        )
        gen.start()
        tb.sim.run()
        # host_links[0].a is the host side: host -> switch is a2b.
        assert monitor.packets["a2b"] == 50
        assert monitor.packets["b2a"] == 0
        # wire bytes: 1500 B packet + 4 B FCS + 20 B preamble/IFG
        assert monitor.bytes["a2b"] == 50 * 1524

    def test_bandwidth_monitor_rate(self):
        tb = forwarding_testbed()
        monitor = LinkBandwidthMonitor(tb.sim, tb.host_links[0])
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=1500, rate_bps=gbps(10), count=100,
        )
        gen.start()
        tb.sim.run()
        assert monitor.rate_bps("a2b") == pytest.approx(gbps(10), rel=0.05)
        assert monitor.rate_bps("b2a") == 0.0

    def test_bandwidth_monitor_filter(self):
        tb = forwarding_testbed()
        monitor = LinkBandwidthMonitor(
            tb.sim, tb.host_links[0], accept=lambda p: False
        )
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=256, rate_bps=gbps(10), count=5,
        )
        gen.start()
        tb.sim.run()
        assert monitor.total_bytes() == 0

    def test_latency_recorder(self):
        tb = forwarding_testbed()
        recorder = LatencyRecorder(tb.hosts[1])
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=256, rate_bps=gbps(10), count=10,
        )
        gen.start()
        tb.sim.run()
        assert len(recorder.latencies_ns) == 10
        assert all(lat > 0 for lat in recorder.latencies_ns)

    def test_queue_depth_sampler(self):
        tb = forwarding_testbed()
        queue = tb.switch.port_queue(tb.host_ports[1])
        sampler = QueueDepthSampler(tb.sim, queue, period_ns=usec(1))
        sampler.start()
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=1500, rate_bps=gbps(40), count=100,
        )
        gen.start()
        tb.sim.run(until_ns=usec(50))
        sampler.stop()
        tb.sim.run()
        assert len(sampler.samples) >= 10
        assert sampler.peak_depth_bytes() >= 0

    def test_sampler_time_to_reach(self):
        tb = forwarding_testbed()
        queue = tb.switch.port_queue(tb.host_ports[1])
        sampler = QueueDepthSampler(tb.sim, queue, period_ns=100.0)
        sampler.start()
        tb.sim.run(until_ns=usec(1))
        assert sampler.time_to_reach(1) is None  # queue never filled


class TestJainFairness:
    def test_perfect_fairness(self):
        from repro.analysis.stats import jain_fairness

        assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_hog(self):
        from repro.analysis.stats import jain_fairness

        assert jain_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        from repro.analysis.stats import jain_fairness

        assert jain_fairness([1, 2, 3]) == pytest.approx(
            jain_fairness([10, 20, 30])
        )

    def test_all_zero_is_fair(self):
        from repro.analysis.stats import jain_fairness

        assert jain_fairness([0, 0]) == 1.0

    def test_invalid_inputs(self):
        from repro.analysis.stats import jain_fairness

        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            jain_fairness([1, -1])
