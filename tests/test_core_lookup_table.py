"""Tests for the remote lookup table primitive."""

import pytest

from repro.apps.programs import RemoteLookupProgram
from repro.core.lookup_table import (
    ACTION_DROP,
    ACTION_SET_DSCP,
    LookupTableConfig,
    RemoteAction,
    RemoteLookupTable,
    fingerprint_of,
)
from repro.core.channel import ChannelError
from repro.experiments.topology import build_testbed
from repro.net.headers import UdpHeader
from repro.sim.units import mib
from repro.switches.hashing import FiveTuple
from repro.workloads.factory import udp_between


def build(config=None, n_hosts=2, default_action=None):
    tb = build_testbed(n_hosts=n_hosts)
    program = RemoteLookupProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    config = config or LookupTableConfig(entries=1 << 10, cache_entries=64)
    channel = tb.controller.open_channel(
        tb.memory_server,
        tb.server_port,
        config.entries * config.entry_bytes,
    )
    table = RemoteLookupTable(
        tb.switch, channel, config=config, default_action=default_action
    )
    program.use_lookup_table(table)
    return tb, program, table, channel


def send_flow_packet(tb, dscp=0, sport=5000, dport=6000, size=256):
    packet = udp_between(
        tb.hosts[0], tb.hosts[1], size, src_port=sport, dst_port=dport, dscp=dscp
    )
    received = []
    tb.hosts[1].packet_handlers.append(lambda p, i: received.append(p))
    tb.hosts[0].send(packet)
    return packet, received


class TestRemoteLookup:
    def test_miss_fetches_action_and_applies_dscp(self):
        tb, program, table, channel = build()
        flow = FiveTuple(
            src_ip=tb.hosts[0].eth.ip.value,
            dst_ip=tb.hosts[1].eth.ip.value,
            protocol=17,
            src_port=5000,
            dst_port=6000,
        )
        table.install(flow, RemoteAction(ACTION_SET_DSCP, 46))
        packet, received = send_flow_packet(tb)
        tb.sim.run()
        assert len(received) == 1
        assert received[0].ipv4.dscp == 46
        assert table.stats.remote_lookups == 1
        assert table.stats.remote_hits == 1
        assert tb.memory_server.cpu_packets == 0

    def test_bounce_stores_packet_remotely(self):
        tb, program, table, channel = build()
        flow = FiveTuple(
            src_ip=tb.hosts[0].eth.ip.value,
            dst_ip=tb.hosts[1].eth.ip.value,
            protocol=17,
            src_port=5000,
            dst_port=6000,
        )
        table.install(flow, RemoteAction(ACTION_SET_DSCP, 10))
        send_flow_packet(tb)
        tb.sim.run()
        # One WRITE (the bounced packet) and one READ (the entry fetch),
        # plus the control-plane install.
        assert channel.region.writes == 2
        assert channel.region.reads == 1

    def test_second_packet_hits_cache(self):
        tb, program, table, channel = build()
        flow = FiveTuple(
            src_ip=tb.hosts[0].eth.ip.value,
            dst_ip=tb.hosts[1].eth.ip.value,
            protocol=17,
            src_port=5000,
            dst_port=6000,
        )
        table.install(flow, RemoteAction(ACTION_SET_DSCP, 46))
        _, received = send_flow_packet(tb)
        tb.sim.run()
        tb.hosts[0].send(
            udp_between(tb.hosts[0], tb.hosts[1], 256, src_port=5000, dst_port=6000)
        )
        tb.sim.run()
        assert len(received) == 2
        assert table.stats.remote_lookups == 1  # only the first missed
        assert table.stats.local_hits == 1
        assert received[1].ipv4.dscp == 46

    def test_cache_disabled_every_packet_goes_remote(self):
        config = LookupTableConfig(entries=1 << 10, cache_entries=0)
        tb, program, table, channel = build(config=config)
        flow = FiveTuple(
            src_ip=tb.hosts[0].eth.ip.value,
            dst_ip=tb.hosts[1].eth.ip.value,
            protocol=17,
            src_port=5000,
            dst_port=6000,
        )
        table.install(flow, RemoteAction(ACTION_SET_DSCP, 1))
        _, received = send_flow_packet(tb)
        tb.sim.run()
        tb.hosts[0].send(
            udp_between(tb.hosts[0], tb.hosts[1], 256, src_port=5000, dst_port=6000)
        )
        tb.sim.run()
        assert len(received) == 2
        assert table.stats.remote_lookups == 2
        assert table.stats.local_hits == 0

    def test_unpopulated_entry_uses_default_action(self):
        tb, program, table, channel = build(
            default_action=RemoteAction(ACTION_SET_DSCP, 7)
        )
        _, received = send_flow_packet(tb)
        tb.sim.run()
        assert len(received) == 1
        assert received[0].ipv4.dscp == 7
        assert table.stats.remote_invalid == 1

    def test_drop_action_drops(self):
        tb, program, table, channel = build()
        flow = FiveTuple(
            src_ip=tb.hosts[0].eth.ip.value,
            dst_ip=tb.hosts[1].eth.ip.value,
            protocol=17,
            src_port=5000,
            dst_port=6000,
        )
        table.install(flow, RemoteAction(ACTION_DROP, 0))
        _, received = send_flow_packet(tb)
        tb.sim.run()
        assert received == []

    def test_fingerprint_mismatch_falls_back_to_default(self):
        tb, program, table, channel = build()
        flow_a = FiveTuple(
            src_ip=tb.hosts[0].eth.ip.value,
            dst_ip=tb.hosts[1].eth.ip.value,
            protocol=17,
            src_port=5000,
            dst_port=6000,
        )
        # Manufacture a colliding install: write flow A's entry but with a
        # different flow's fingerprint.
        index = table.index_of(flow_a)
        other = FiveTuple(1, 2, 17, 3, 4)
        entry = RemoteAction(ACTION_SET_DSCP, 63).pack_with(fingerprint_of(other))
        channel.region.write(table.entry_address(index), entry)
        _, received = send_flow_packet(tb)
        tb.sim.run()
        assert len(received) == 1
        assert received[0].ipv4.dscp == 0  # action NOT applied
        assert table.stats.fingerprint_mismatches == 1

    def test_cache_eviction_fifo(self):
        config = LookupTableConfig(entries=1 << 10, cache_entries=2)
        tb, program, table, channel = build(config=config)
        received = []
        tb.hosts[1].packet_handlers.append(lambda p, i: received.append(p))
        for sport in (100, 200, 300):
            flow = FiveTuple(
                src_ip=tb.hosts[0].eth.ip.value,
                dst_ip=tb.hosts[1].eth.ip.value,
                protocol=17,
                src_port=sport,
                dst_port=20_000,
            )
            table.install(flow, RemoteAction(ACTION_SET_DSCP, sport % 64))
            tb.hosts[0].send(
                udp_between(
                    tb.hosts[0], tb.hosts[1], 256,
                    src_port=sport, dst_port=20_000,
                )
            )
            tb.sim.run()
        assert table.stats.cache_inserts == 3
        assert table.stats.cache_evictions == 1
        assert len(table.cache) == 2

    def test_payload_survives_bounce(self):
        tb, program, table, channel = build()
        payload = bytes(range(200))
        packet = udp_between(
            tb.hosts[0], tb.hosts[1], 256, src_port=5000, payload=payload
        )
        received = []
        tb.hosts[1].packet_handlers.append(lambda p, i: received.append(p))
        tb.hosts[0].send(packet)
        tb.sim.run()
        assert len(received) == 1
        assert received[0].payload == payload
        assert received[0].require(UdpHeader).src_port == 5000

    def test_table_bigger_than_channel_rejected(self):
        tb = build_testbed()
        channel = tb.controller.open_channel(tb.memory_server, tb.server_port, mib(1))
        with pytest.raises(ValueError):
            RemoteLookupTable(
                tb.switch,
                channel,
                config=LookupTableConfig(entries=1 << 20),
            )

    def test_unknown_mode_rejected(self):
        tb = build_testbed()
        channel = tb.controller.open_channel(tb.memory_server, tb.server_port, mib(8))
        with pytest.raises(ValueError):
            RemoteLookupTable(
                tb.switch,
                channel,
                config=LookupTableConfig(entries=16, mode="telepathy"),
            )


class TestCuckooLayout:
    def build_cuckoo(self, seed=3, cache_entries=64, cache_policy="fifo"):
        config = LookupTableConfig(
            entries=1 << 10,
            cache_entries=cache_entries,
            layout="cuckoo",
            hash_seed=seed,
            policy=cache_policy,
            policy_seed=seed,
        )
        tb, program, table, channel = build(config=config)
        tb.controller.install_hash_seeds(table, seed)
        return tb, program, table, channel

    def _flow(self, tb, sport):
        return FiveTuple(
            src_ip=tb.hosts[0].eth.ip.value,
            dst_ip=tb.hosts[1].eth.ip.value,
            protocol=17,
            src_port=sport,
            dst_port=6000,
        )

    def test_miss_resolves_in_exactly_one_read(self):
        tb, program, table, channel = self.build_cuckoo(cache_entries=0)
        for sport in range(5000, 5050):
            table.install(
                self._flow(tb, sport), RemoteAction(ACTION_SET_DSCP, sport % 64)
            )
        received = []
        tb.hosts[1].packet_handlers.append(lambda p, i: received.append(p))
        for sport in range(5000, 5050):
            tb.hosts[0].send(
                udp_between(
                    tb.hosts[0], tb.hosts[1], 256,
                    src_port=sport, dst_port=6000,
                )
            )
        tb.sim.run()
        assert len(received) == 50
        assert all(p.ipv4.dscp == (p.udp.src_port % 64) for p in received)
        assert table.stats.remote_lookups == 50
        assert table.stats.remote_hits == 50
        # The one-READ property at the wire: one bucket-pair READ per
        # miss, never a bounce-retry second READ.
        assert channel.region.reads == table.stats.remote_lookups

    def test_kicked_flows_stay_readable(self):
        """Install enough flows to force kicks; every flow must still
        resolve via the data plane's single bucket choice."""
        tb, program, table, channel = self.build_cuckoo(cache_entries=0)
        flows = [self._flow(tb, 1024 + i) for i in range(700)]
        for flow in flows:
            table.install(flow, RemoteAction(ACTION_SET_DSCP, 5))
        for flow in flows:
            ref = table.directory.location[flow]
            assert table.dataplane.read_index(flow.pack()) == ref.index

    def test_install_hash_seeds_requires_cuckoo_layout(self):
        tb, program, table, channel = build()  # direct layout
        with pytest.raises(ChannelError):
            tb.controller.install_hash_seeds(table, 7)

    def test_install_hash_seeds_on_populated_table_raises(self):
        tb, program, table, channel = self.build_cuckoo()
        table.install(self._flow(tb, 5000), RemoteAction(ACTION_SET_DSCP, 1))
        with pytest.raises(ChannelError):
            tb.controller.install_hash_seeds(table, 99)

    def test_cuckoo_region_needs_bucket_pairs(self):
        """The channel must fit the cuckoo geometry, not just
        entries * entry_bytes."""
        config = LookupTableConfig(entries=1 << 10, layout="cuckoo")
        tb = build_testbed()
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, config.region_bytes - 1
        )
        with pytest.raises(ValueError):
            RemoteLookupTable(tb.switch, channel, config=config)

    def test_unknown_layout_rejected(self):
        tb = build_testbed()
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, mib(8)
        )
        with pytest.raises(ValueError):
            RemoteLookupTable(
                tb.switch,
                channel,
                config=LookupTableConfig(entries=16, layout="hopscotch"),
            )


class TestCachePolicyIntegration:
    def _send(self, tb, sport):
        tb.hosts[0].send(
            udp_between(
                tb.hosts[0], tb.hosts[1], 256, src_port=sport, dst_port=6000
            )
        )
        tb.sim.run()

    def _install(self, tb, table, sport):
        flow = FiveTuple(
            src_ip=tb.hosts[0].eth.ip.value,
            dst_ip=tb.hosts[1].eth.ip.value,
            protocol=17,
            src_port=sport,
            dst_port=6000,
        )
        table.install(flow, RemoteAction(ACTION_SET_DSCP, sport % 64))

    def test_unknown_cache_policy_rejected(self):
        config = LookupTableConfig(entries=1 << 10, policy="arc")
        tb = build_testbed()
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, config.region_bytes
        )
        with pytest.raises(ValueError):
            RemoteLookupTable(tb.switch, channel, config=config)

    def test_lru_keeps_recently_touched_flow(self):
        config = LookupTableConfig(
            entries=1 << 10, cache_entries=2, policy="lru"
        )
        tb, program, table, channel = build(config=config)
        for sport in (100, 200):
            self._install(tb, table, sport)
            self._send(tb, sport)
        self._send(tb, 100)  # touch 100: now most recent
        assert table.stats.local_hits == 1
        self._install(tb, table, 300)
        self._send(tb, 300)  # evicts 200 (LRU), not 100
        self._send(tb, 100)
        assert table.stats.local_hits == 2
        self._send(tb, 200)
        assert table.stats.remote_lookups == 4  # 100, 200, 300, 200-again

    def test_fifo_policy_matches_legacy_eviction(self):
        """The default policy reproduces the original FIFO behavior."""
        config = LookupTableConfig(
            entries=1 << 10, cache_entries=2, policy="fifo"
        )
        tb, program, table, channel = build(config=config)
        for sport in (100, 200):
            self._install(tb, table, sport)
            self._send(tb, sport)
        self._send(tb, 100)  # recency must NOT protect 100 under FIFO
        self._install(tb, table, 300)
        self._send(tb, 300)
        self._send(tb, 100)  # evicted despite the touch: goes remote
        assert table.stats.remote_lookups == 4
        # Two evictions: 300 pushed 100 out, then 100's re-fetch pushed
        # out the next-oldest resident.
        assert table.stats.cache_evictions == 2

    def test_hit_rate_snapshot_matches_counters(self):
        config = LookupTableConfig(entries=1 << 10, cache_entries=4)
        tb, program, table, channel = build(config=config)
        self._install(tb, table, 100)
        self._send(tb, 100)
        self._send(tb, 100)
        self._send(tb, 100)
        stats = table.stats
        assert stats.hit_rate == pytest.approx(
            stats.local_hits / (stats.local_hits + stats.remote_lookups)
        )
        assert stats.hit_rate == pytest.approx(2 / 3)


class TestRecirculateMode:
    def build_recirc(self):
        config = LookupTableConfig(
            entries=1 << 10, cache_entries=64, mode="recirculate"
        )
        return build(config=config)

    def test_lookup_resolves_without_bouncing_packet(self):
        tb, program, table, channel = self.build_recirc()
        flow = FiveTuple(
            src_ip=tb.hosts[0].eth.ip.value,
            dst_ip=tb.hosts[1].eth.ip.value,
            protocol=17,
            src_port=5000,
            dst_port=6000,
        )
        table.install(flow, RemoteAction(ACTION_SET_DSCP, 12))
        _, received = send_flow_packet(tb)
        tb.sim.run()
        assert len(received) == 1
        assert received[0].ipv4.dscp == 12
        # Recirculate mode never WRITEs the packet (only the install wrote).
        assert channel.region.writes == 1
        assert table.stats.recirculation_passes >= 1

    def test_recirculate_saves_remote_bandwidth(self):
        tb_b, _, table_b, _ = build()
        tb_r, _, table_r, _ = self.build_recirc()
        for tb, table in ((tb_b, table_b), (tb_r, table_r)):
            flow = FiveTuple(
                src_ip=tb.hosts[0].eth.ip.value,
                dst_ip=tb.hosts[1].eth.ip.value,
                protocol=17,
                src_port=5000,
                dst_port=6000,
            )
            table.install(flow, RemoteAction(ACTION_SET_DSCP, 1))
            send_flow_packet(tb)
            tb.sim.run()
        bounce_bytes = table_b.rocegen.stats.request_wire_bytes
        recirc_bytes = table_r.rocegen.stats.request_wire_bytes
        assert recirc_bytes < bounce_bytes
