"""Model-based test: the RDMA stack against a plain-bytearray reference.

A random sequence of WRITE / READ / Fetch-and-Add operations is driven
through the full simulated path (host RNIC → link → switch-less direct
link → server RNIC → DRAM) and mirrored against a reference byte model.
After the simulation drains, every completion and the final memory image
must match the reference exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hosts.server import Host, MemoryServer
from repro.net.link import connect
from repro.rdma.verbs import RdmaClient, connect_qps
from repro.sim.simulator import Simulator
from repro.sim.units import gbps

REGION_BYTES = 4096


class Operation:
    """One random op: kind, offset, payload/length/delta."""

    def __init__(self, kind, offset, arg):
        self.kind = kind
        self.offset = offset
        self.arg = arg

    def __repr__(self):
        return f"Operation({self.kind}, {self.offset}, {self.arg!r})"


def operations():
    writes = st.builds(
        Operation,
        st.just("write"),
        st.integers(0, REGION_BYTES - 64),
        st.binary(min_size=1, max_size=64),
    )
    reads = st.builds(
        Operation,
        st.just("read"),
        st.integers(0, REGION_BYTES - 64),
        st.integers(1, 64),
    )
    # Atomics need 8-byte alignment.
    atomics = st.builds(
        Operation,
        st.just("fetch_add"),
        st.integers(0, REGION_BYTES // 8 - 1).map(lambda i: i * 8),
        st.integers(0, 2**32),
    )
    return st.lists(st.one_of(writes, reads, atomics), min_size=1, max_size=40)


@settings(max_examples=25, deadline=None)
@given(ops=operations())
def test_rdma_matches_reference_model(ops):
    sim = Simulator()
    client_host = Host(sim, "c", "02:00:00:00:00:01", "10.0.0.1")
    server = MemoryServer(sim, "s", "02:00:00:00:00:02", "10.0.0.2")
    connect(sim, client_host.eth, server.eth, gbps(40))
    qp_c = client_host.rnic.create_qp()
    qp_s = server.rnic.create_qp()
    connect_qps(qp_c, qp_s)
    region = server.lend_memory(REGION_BYTES)
    client = RdmaClient(client_host.rnic, qp_c)

    reference = bytearray(REGION_BYTES)
    completions = []

    # RC ordering means ops execute in post order, so the reference can be
    # replayed in the same order to predict every completion.
    expectations = []
    for op in ops:
        if op.kind == "write":
            reference[op.offset : op.offset + len(op.arg)] = op.arg
            expectations.append(None)
        elif op.kind == "read":
            expectations.append(
                bytes(reference[op.offset : op.offset + op.arg])
            )
        else:
            original = int.from_bytes(
                reference[op.offset : op.offset + 8], "big"
            )
            expectations.append(original)
            updated = (original + op.arg) % (1 << 64)
            reference[op.offset : op.offset + 8] = updated.to_bytes(8, "big")

    base = region.base_address
    for op in ops:
        if op.kind == "write":
            client.write(base + op.offset, region.rkey, op.arg, completions.append)
        elif op.kind == "read":
            client.read(base + op.offset, region.rkey, op.arg, completions.append)
        else:
            client.fetch_add(
                base + op.offset, region.rkey, op.arg, completions.append
            )
    sim.run()

    assert len(completions) == len(ops)
    for op, expected, completion in zip(ops, expectations, completions):
        assert completion.success, (op, completion)
        if op.kind == "read":
            assert completion.data == expected, op
        elif op.kind == "fetch_add":
            assert completion.original_value == expected, op

    # The final memory image matches the reference byte for byte.
    assert region.read(base, REGION_BYTES) == bytes(reference)
    # And nothing touched the server's CPU.
    assert server.cpu_packets == 0
