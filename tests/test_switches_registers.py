"""Tests for register arrays."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.switches.registers import RegisterArray


def test_zero_initialised():
    reg = RegisterArray("r", size=8)
    assert all(reg.read(i) == 0 for i in range(8))


def test_write_read():
    reg = RegisterArray("r", size=4)
    reg.write(2, 99)
    assert reg.read(2) == 99


def test_width_masking():
    reg = RegisterArray("r", size=2, width_bits=8)
    reg.write(0, 0x1FF)
    assert reg.read(0) == 0xFF


def test_add_wraps_at_width():
    reg = RegisterArray("r", size=1, width_bits=8)
    reg.write(0, 250)
    assert reg.add(0, 10) == (250 + 10) % 256


def test_update_applies_function():
    reg = RegisterArray("r", size=1)
    reg.write(0, 10)
    assert reg.update(0, lambda v: v * 3) == 30


def test_index_bounds():
    reg = RegisterArray("r", size=4)
    with pytest.raises(IndexError):
        reg.read(4)
    with pytest.raises(IndexError):
        reg.write(-1, 0)


def test_fill():
    reg = RegisterArray("r", size=3)
    reg.fill(7)
    assert [reg.read(i) for i in range(3)] == [7, 7, 7]


def test_access_counters():
    reg = RegisterArray("r", size=2)
    reg.write(0, 1)
    reg.read(0)
    reg.add(1, 1)
    assert reg.reads == 2  # read + add's read
    assert reg.writes == 2  # write + add's write


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        RegisterArray("r", size=0)
    with pytest.raises(ValueError):
        RegisterArray("r", size=1, width_bits=65)


@given(
    width=st.integers(1, 64),
    value=st.integers(0, (1 << 64) - 1),
    delta=st.integers(0, (1 << 64) - 1),
)
def test_add_always_within_width(width, value, delta):
    reg = RegisterArray("r", size=1, width_bits=width)
    reg.write(0, value)
    result = reg.add(0, delta)
    assert 0 <= result < (1 << width)
    assert result == (value % (1 << width) + delta) % (1 << width)
