"""Tests for the RoCE packet builders (request/response assembly)."""

import pytest

from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.headers import ROCEV2_UDP_PORT, HeaderError
from repro.rdma.constants import AethSyndrome, Opcode
from repro.rdma.headers import (
    AethHeader,
    AtomicAckEthHeader,
    AtomicEthHeader,
    BthHeader,
    IcrcTrailer,
    RethHeader,
    parse_roce,
)
from repro.rdma.packets import (
    build_ack,
    build_atomic_ack,
    build_fetch_add_request,
    build_read_request,
    build_read_response,
    build_write_request,
)
from repro.rdma.qp import QueuePair
from repro.rdma.verbs import connect_qps


@pytest.fixture
def qps():
    a = QueuePair(0x100, Ipv4Address("10.0.0.1"), MacAddress(1))
    b = QueuePair(0x200, Ipv4Address("10.0.0.2"), MacAddress(2))
    connect_qps(a, b)
    return a, b


class TestRequestBuilders:
    def test_write_request_structure(self, qps):
        a, b = qps
        packet = build_write_request(a, 0x4000, 0x42, b"hello")
        assert packet.udp.dst_port == ROCEV2_UDP_PORT
        bth = packet.require(BthHeader)
        assert bth.opcode == Opcode.RDMA_WRITE_ONLY
        assert bth.dest_qp == b.qpn
        reth = packet.require(RethHeader)
        assert reth.virtual_address == 0x4000
        assert reth.dma_length == 5
        assert packet.payload == b"hello"
        assert packet.find_trailer(IcrcTrailer) is not None

    def test_psns_sequence_per_qp(self, qps):
        a, b = qps
        p1 = build_write_request(a, 0, 1, b"x")
        p2 = build_read_request(a, 0, 1, 4)
        p3 = build_fetch_add_request(a, 0, 1, 9)
        psns = [p.require(BthHeader).psn for p in (p1, p2, p3)]
        assert psns == [0, 1, 2]

    def test_explicit_psn_does_not_advance_qp(self, qps):
        a, b = qps
        build_write_request(a, 0, 1, b"x", psn=99)
        assert a.next_psn == 0

    def test_disconnected_qp_rejected(self):
        lonely = QueuePair(0x300, Ipv4Address("10.0.0.3"), MacAddress(3))
        with pytest.raises(RuntimeError):
            build_write_request(lonely, 0, 1, b"x")

    def test_addresses_come_from_qp_identity(self, qps):
        a, b = qps
        packet = build_read_request(a, 0x10, 0x5, 8)
        assert packet.eth.src == a.local_mac
        assert packet.eth.dst == b.local_mac
        assert packet.ipv4.src == a.local_ip
        assert packet.ipv4.dst == b.local_ip

    def test_serialized_request_parses_as_roce(self, qps):
        a, _ = qps
        packet = build_fetch_add_request(a, 0x4008, 0x9, 3, compute_icrc=True)
        raw = packet.pack()
        headers, payload, icrc = parse_roce(raw[42:])
        assert isinstance(headers[0], BthHeader)
        assert isinstance(headers[1], AtomicEthHeader)
        assert headers[1].swap_add == 3
        assert icrc == IcrcTrailer.compute(raw[42:-4])


class TestResponseBuilders:
    def test_read_response_mirrors_addressing(self, qps):
        a, b = qps
        request = build_read_request(a, 0x20, 0x5, 16)
        response = build_read_response(request, b, b"y" * 16)
        assert response.eth.src == request.eth.dst
        assert response.eth.dst == request.eth.src
        assert response.ipv4.dst == request.ipv4.src
        bth = response.require(BthHeader)
        assert bth.opcode == Opcode.RDMA_READ_RESPONSE_ONLY
        assert bth.dest_qp == a.qpn          # back to the requester's QP
        assert bth.psn == request.require(BthHeader).psn
        assert response.payload == b"y" * 16

    def test_ack_carries_syndrome_and_msn(self, qps):
        a, b = qps
        b.msn = 7
        request = build_write_request(a, 0, 1, b"z")
        ack = build_ack(request, b)
        aeth = ack.require(AethHeader)
        assert aeth.syndrome == AethSyndrome.ACK
        assert aeth.msn == 7

    def test_nak_psn_override(self, qps):
        a, b = qps
        request = build_write_request(a, 0, 1, b"z", psn=50)
        nak = build_ack(
            request, b,
            syndrome=AethSyndrome.NAK_PSN_SEQUENCE_ERROR,
            psn_override=44,
        )
        assert nak.require(BthHeader).psn == 44

    def test_atomic_ack_carries_original(self, qps):
        a, b = qps
        request = build_fetch_add_request(a, 0, 1, 5)
        ack = build_atomic_ack(request, b, original_value=123456789)
        assert ack.require(BthHeader).opcode == Opcode.ATOMIC_ACKNOWLEDGE
        assert ack.require(AtomicAckEthHeader).original_data == 123456789

    def test_response_lengths_consistent(self, qps):
        a, b = qps
        request = build_read_request(a, 0, 1, 100)
        response = build_read_response(request, b, b"d" * 100)
        raw = response.pack()
        # IPv4 total_length covers IP..ICRC.
        assert response.ipv4.total_length == len(raw) - 14
