"""Tests for the telemetry program and heavy-hitter detection."""

import pytest

from repro.apps.sketch import CountMinSketch, LocalCounterBackend, SketchGeometry
from repro.apps.telemetry import (
    HeavyHitterDetector,
    HeavyHitterReport,
    SketchTelemetryProgram,
    mean_relative_error,
)
from repro.experiments.topology import build_testbed
from repro.sim.units import gbps, kib
from repro.switches.hashing import FiveTuple
from repro.workloads.flows import ZipfFlowWorkload


def make_sketch(width=2048):
    geometry = SketchGeometry(depth=4, width=width)
    backend = LocalCounterBackend(4, width, sram_budget_bytes=4 * width * 8)
    return CountMinSketch(geometry, backend)


class TestHeavyHitterReport:
    def test_perfect_detection(self):
        report = HeavyHitterReport(threshold=5, detected={1, 2}, truth={1, 2})
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_false_positive_hurts_precision(self):
        report = HeavyHitterReport(threshold=5, detected={1, 2, 3}, truth={1, 2})
        assert report.precision == pytest.approx(2 / 3)
        assert report.recall == 1.0

    def test_miss_hurts_recall(self):
        report = HeavyHitterReport(threshold=5, detected={1}, truth={1, 2})
        assert report.recall == 0.5

    def test_empty_sets_are_vacuously_perfect(self):
        report = HeavyHitterReport(threshold=5, detected=set(), truth=set())
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0


class TestMeanRelativeError:
    def test_exact_is_zero(self):
        assert mean_relative_error([(10, 10), (5, 5)]) == 0.0

    def test_overcount(self):
        assert mean_relative_error([(15, 10)]) == pytest.approx(0.5)

    def test_ignores_zero_truth(self):
        assert mean_relative_error([(5, 0), (10, 10)]) == 0.0

    def test_all_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            mean_relative_error([(5, 0)])


class TestTelemetryProgram:
    def test_sketch_sees_every_forwarded_packet(self):
        tb = build_testbed(n_hosts=2, with_memory_server=False)
        program = SketchTelemetryProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        sketch = make_sketch()
        program.use_sketch(sketch)
        workload = ZipfFlowWorkload(
            tb.sim, tb.hosts[0], tb.hosts[1],
            flows=20, count=200, rate_bps=gbps(10),
        )
        workload.start()
        tb.sim.run()
        assert sketch.items_added == 200
        # CMS estimates for each flow must be at least the ground truth.
        for rank, count in workload.sent_by_rank.items():
            key = workload.flow_key(rank)
            flow = FiveTuple(
                src_ip=tb.hosts[0].eth.ip.value,
                dst_ip=tb.hosts[1].eth.ip.value,
                protocol=17,
                src_port=key.src_port,
                dst_port=key.dst_port,
            )
            assert sketch.estimate(flow.pack()) >= count

    def test_detector_finds_planted_heavy_hitter(self):
        sketch = make_sketch()
        keys = {i: f"flow-{i}".encode() for i in range(20)}
        truth = {}
        for i, key in keys.items():
            count = 100 if i == 0 else 2
            truth[i] = count
            for _ in range(count):
                sketch.add(key)
        detector = HeavyHitterDetector(sketch)
        report = detector.detect(keys, threshold=50, truth_counts=truth)
        assert report.detected == {0}
        assert report.truth == {0}
        assert report.f1 == 1.0
