"""Tests for the public facade (repro.api) and the deprecation shims."""

import dataclasses
import warnings

import pytest

import repro.api as api
from repro import _deprecation
from repro.switches.hashing import FiveTuple
from repro.workloads.factory import udp_between


# -- facade ------------------------------------------------------------------


def test_every_exported_name_resolves():
    for name in api.__all__:
        assert getattr(api, name, None) is not None, name


def test_facade_matches_deep_imports():
    from repro.core.lookup_table import RemoteLookupTable
    from repro.core.state_store import RemoteStateStore
    from repro.testbed import build_testbed

    assert api.RemoteLookupTable is RemoteLookupTable
    assert api.RemoteStateStore is RemoteStateStore
    assert api.build_testbed is build_testbed


def test_experiments_topology_shim_still_works():
    from repro.experiments.topology import Testbed, build_testbed

    assert build_testbed is api.build_testbed
    assert Testbed is api.Testbed


def test_build_testbed_round_trip_through_facade():
    """The quickstart flow, entirely through repro.api."""
    tb = api.build_testbed(n_hosts=1)
    program = api.StaticL2Program()
    program.install(tb.hosts[0].eth.mac, tb.host_ports[0])
    program.install(tb.memory_server.eth.mac, tb.server_port)
    tb.switch.bind_program(program)
    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, api.kib(4)
    )
    gen = api.RoceRequestGenerator(tb.switch, channel)
    gen.write(channel.base_address, b"via the facade")
    tb.sim.run()
    assert channel.region.read(channel.base_address, 14) == b"via the facade"
    assert tb.memory_server.cpu_packets == 0
    # The write is visible in the simulation's metric registry too.
    assert tb.sim.obs.registry.total("writes_issued") == 1
    assert tb.sim.obs.registry.total("writes_executed") == 1


# -- key_of / index_of reconciliation ---------------------------------------


def _lookup_table():
    tb = api.build_testbed(n_hosts=2)
    config = api.LookupTableConfig(entries=1 << 8)
    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, config.entries * config.entry_bytes
    )
    return tb, api.RemoteLookupTable(tb.switch, channel, config=config)


def _state_store():
    from repro.rdma.constants import ATOMIC_OPERAND_BYTES

    tb = api.build_testbed(n_hosts=2)
    config = api.StateStoreConfig(counters=1 << 8)
    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, config.counters * ATOMIC_OPERAND_BYTES
    )
    return tb, api.RemoteStateStore(tb.switch, channel, config=config)


def test_key_of_then_index_of_is_the_supported_form():
    tb, table = _lookup_table()
    packet = udp_between(tb.hosts[0], tb.hosts[1], 128)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        key = table.key_of(packet)
        assert isinstance(key, FiveTuple)
        index = table.index_of(key)
    assert 0 <= index < table.config.entries

    tb, store = _state_store()
    packet = udp_between(tb.hosts[0], tb.hosts[1], 128)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        key = store.key_of(packet)
        assert isinstance(key, FiveTuple)
        index = store.index_of(key)
    assert 0 <= index < store.config.counters


def test_lookup_index_of_packet_is_deprecated_but_equivalent():
    _deprecation.reset()
    tb, table = _lookup_table()
    packet = udp_between(tb.hosts[0], tb.hosts[1], 128)
    with pytest.warns(DeprecationWarning, match="index_of"):
        deprecated = table.index_of(packet)
    assert deprecated == table.index_of(table.key_of(packet))


def test_state_store_index_of_packet_is_deprecated_but_equivalent():
    _deprecation.reset()
    tb, store = _state_store()
    packet = udp_between(tb.hosts[0], tb.hosts[1], 128)
    with pytest.warns(DeprecationWarning, match="index_of"):
        deprecated = store.index_of(packet)
    assert deprecated == store.index_of(store.key_of(packet))


def test_deprecation_warns_once_until_reset():
    _deprecation.reset()
    tb, table = _lookup_table()
    packet = udp_between(tb.hosts[0], tb.hosts[1], 128)
    with pytest.warns(DeprecationWarning):
        table.index_of(packet)
    # Second call: silent (warn-once), even with an always-filter on.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        table.index_of(packet)
    assert not [w for w in caught if w.category is DeprecationWarning]
    # reset() re-arms the warning (test isolation hook).
    _deprecation.reset()
    with pytest.warns(DeprecationWarning):
        table.index_of(packet)


# -- packet-buffer read-channel validation (bugfix) --------------------------


def _buffer_setup():
    tb = api.build_testbed(n_hosts=2)
    config = api.PacketBufferConfig()
    size = 64 * config.entry_bytes
    write_ch = tb.controller.open_channel(tb.memory_server, tb.server_port, size)
    read_ch = tb.controller.open_channel(
        tb.memory_server, tb.server_port, share_region_with=write_ch
    )
    return tb, config, write_ch, read_ch


def test_read_channel_sharing_the_region_is_accepted():
    tb, config, write_ch, read_ch = _buffer_setup()
    buffer = api.RemotePacketBuffer(
        tb.switch,
        [write_ch],
        protected_port=tb.host_ports[0],
        config=config,
        read_channels=[read_ch],
    )
    assert buffer.read_channels == [read_ch]


def test_read_channel_with_same_rkey_but_other_base_is_rejected():
    # Regression: validation used to accept any channel whose rkey matched,
    # even when it pointed at different memory.
    tb, config, write_ch, read_ch = _buffer_setup()
    forged = dataclasses.replace(
        read_ch, base_address=read_ch.base_address + config.entry_bytes
    )
    assert forged.rkey == write_ch.rkey
    with pytest.raises(ValueError, match="share their write channel's region"):
        api.RemotePacketBuffer(
            tb.switch,
            [write_ch],
            protected_port=tb.host_ports[0],
            config=config,
            read_channels=[forged],
        )


def test_read_channel_on_another_server_is_rejected():
    tb = api.build_testbed(n_hosts=2, n_memory_servers=2)
    config = api.PacketBufferConfig()
    size = 64 * config.entry_bytes
    write_ch = tb.controller.open_channel(
        tb.memory_servers[0], tb.server_ports[0], size
    )
    read_ch = tb.controller.open_channel(
        tb.memory_servers[0], tb.server_ports[0], share_region_with=write_ch
    )
    forged = dataclasses.replace(read_ch, server=tb.memory_servers[1])
    assert forged.rkey == write_ch.rkey
    assert forged.base_address == write_ch.base_address
    with pytest.raises(ValueError, match="share their write channel's region"):
        api.RemotePacketBuffer(
            tb.switch,
            [write_ch],
            protected_port=tb.host_ports[0],
            config=config,
            read_channels=[forged],
        )
