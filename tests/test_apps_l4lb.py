"""L4 load balancer: placement, migration journal, drain, kill absorption.

The contract under test (DESIGN.md §15): an established connection only
ever reaches backends its journal sanctions; a graceful drain hands off
counter state before the leaver's channels close; a hard kill is
absorbed by the §11 self-healing stack (breaker → probes → escalation)
without losing a single counter update.
"""

from dataclasses import replace

import pytest

from repro.apps.l4lb import (
    BACKEND_DEAD,
    BACKEND_DRAINING,
    BACKEND_RETIRED,
    L4LbController,
    L4LbProgram,
)
from repro.cluster import MemoryPool, ReplicatedStateStore
from repro.core.lookup_table import LookupTableConfig, RemoteLookupTable
from repro.core.state_store import StateStoreConfig
from repro.experiments.l4lb import (
    assert_l4lb,
    format_l4lb,
    l4lb_perf_record,
    run_l4lb_soak,
    table_entries_for,
)
from repro.experiments.topology import build_testbed
from repro.net.headers import Ipv4Header
from repro.policies import BreakerPolicy
from repro.resilience import CircuitBreakerConfig
from repro.sim.rng import SeedSequence
from repro.sim.units import usec
from repro.switches.hashing import FiveTuple
from repro.workloads.factory import udp_between

VIP = "10.9.9.9"


def breaker_config(**overrides):
    kwargs = dict(
        fail_threshold=3,
        close_threshold=1,
        open_timeout_ns=usec(100),
        probe_timeout_ns=usec(60),
        probe_jitter_ns=usec(10),
        backoff=2.0,
    )
    kwargs.update(overrides)
    return CircuitBreakerConfig(**kwargs)


def build_l4lb(backends=3, seed=7):
    """Small soak-shaped world: table on memserver0, backends on the rest."""
    tb = build_testbed(n_hosts=2, n_memory_servers=backends + 1, seed=seed)
    pool = MemoryPool(tb.controller, seed=1, fail_after=8)
    backend_servers = tb.memory_servers[1:]
    backend_ports = tb.server_ports[1:]
    for i, (server, port) in enumerate(zip(backend_servers, backend_ports)):
        pool.add_server(server, port, name=f"backend{i}")
    program = L4LbProgram(VIP)
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    config = LookupTableConfig(
        entries=1 << 12,
        cache_entries=256,
        layout="cuckoo",
        hash_seed=seed,
        policy="lru",
    )
    channel = tb.controller.open_channel(
        tb.memory_servers[0], tb.server_ports[0], config.region_bytes,
        name="l4lb:connections",
    )
    table = RemoteLookupTable(tb.switch, channel, config=config)
    program.use_connection_table(table)
    store = ReplicatedStateStore(
        tb.switch,
        pool,
        config=StateStoreConfig(
            counters=2 * backends, reliable=True, retry_timeout_ns=50_000.0
        ),
        replication=2,
    )
    program.use_counter_store(store)
    controller = L4LbController(program, table, store, pool, seed=seed)
    for i, (server, port) in enumerate(zip(backend_servers, backend_ports)):
        controller.add_backend(
            f"backend{i}", server.eth.ip, server.eth.mac, port,
            member=pool.member(f"backend{i}"),
        )
    return tb, pool, program, table, store, controller


def vip_flow(tb, i):
    from repro.net.addresses import Ipv4Address

    return FiveTuple(
        src_ip=tb.hosts[0].eth.ip.value,
        dst_ip=Ipv4Address(VIP).value,
        protocol=17,
        src_port=10_000 + i,
        dst_port=20_000,
    )


class TestPlacementAndAdmission:
    def test_place_is_deterministic_over_active_backends(self):
        tb, pool, program, table, store, controller = build_l4lb()
        flow = vip_flow(tb, 0)
        first = controller.place(flow)
        assert first is not None
        assert all(controller.place(flow) is first for _ in range(5))
        # Taking the chosen backend out of the active set re-points the
        # placement — and only then.
        first.state = BACKEND_DRAINING
        moved = controller.place(flow)
        assert moved is not None and moved is not first

    def test_admit_is_idempotent_and_installs_once(self):
        tb, pool, program, table, store, controller = build_l4lb()
        flow = vip_flow(tb, 1)
        backend = controller.admit(flow)
        again = controller.admit(flow)
        assert again is backend
        assert controller.stats.connections_admitted == 1
        assert controller.placement[flow] == backend.name
        assert flow in controller.flows_by_backend[backend.name]

    def test_admit_with_no_active_backend_returns_none(self):
        tb, pool, program, table, store, controller = build_l4lb()
        for backend in controller.backends.values():
            backend.state = BACKEND_RETIRED
        assert controller.admit(vip_flow(tb, 2)) is None
        assert controller.stats.connections_admitted == 0

    def test_add_backend_rejects_duplicates_and_counter_overflow(self):
        tb, pool, program, table, store, controller = build_l4lb(backends=3)
        with pytest.raises(ValueError, match="already registered"):
            controller.add_backend(
                "backend0", "10.1.0.9", 0x99, 9
            )
        # The store has 2*3 counters: a fourth backend's slots don't fit.
        with pytest.raises(ValueError, match="counters"):
            controller.add_backend("backend3", "10.1.0.10", 0x9A, 10)

    def test_connection_key_translates_pip_back_to_vip(self):
        tb, pool, program, table, store, controller = build_l4lb()
        backend = controller.backends["backend0"]
        packet = udp_between(
            tb.hosts[0], tb.hosts[1], 128, src_port=10_000, dst_port=20_000
        )
        packet.require(Ipv4Header).dst = program.vip
        pre = program.connection_key(packet)
        assert pre.dst_ip == program.vip.value
        # Post-translation (dst rewritten to the PIP) the identity is
        # still the VIP 5-tuple.
        packet.require(Ipv4Header).dst = backend.pip
        assert program.connection_key(packet) == pre


class TestMigration:
    def test_migrate_journals_and_keeps_history(self):
        tb, pool, program, table, store, controller = build_l4lb()
        flow = vip_flow(tb, 3)
        source = controller.admit(flow)
        assert controller.assignment_history(flow) == [source.name]
        target = next(
            b for b in controller.backends.values() if b is not source
        )
        controller.migrate(flow, target, reason="drain")
        assert controller.placement[flow] == target.name
        assert controller.assignment_history(flow) == [
            source.name, target.name
        ]
        assert flow not in controller.flows_by_backend[source.name]
        assert flow in controller.flows_by_backend[target.name]
        record = controller.journal[-1]
        assert (record.flow, record.source, record.target, record.reason) == (
            flow, source.name, target.name, "drain"
        )
        assert controller.stats.connections_migrated == 1

    def test_migrate_refreshes_the_sram_cached_entry(self):
        tb, pool, program, table, store, controller = build_l4lb()
        flow = vip_flow(tb, 4)
        source = controller.admit(flow)
        cache = table.cache
        cache.admit(flow, source.action)
        target = next(
            b for b in controller.backends.values() if b is not source
        )
        controller.migrate(flow, target, reason="drain")
        assert cache.lookup(flow) == target.action


class TestGracefulDrain:
    def test_drain_retires_backend_and_hands_off(self):
        tb, pool, program, table, store, controller = build_l4lb()
        flows = [vip_flow(tb, i) for i in range(24)]
        for flow in flows:
            controller.admit(flow)
        victim = "backend1"
        moved = set(controller.flows_by_backend[victim])
        assert moved, "seed should place some flows on the drain target"
        member = pool.member(victim)
        backend = controller.drain_backend(victim)
        assert backend.state == BACKEND_RETIRED
        assert controller.stats.drains_started == 1
        assert controller.stats.drains_completed == 1
        assert controller.stats.drains_forced == 0
        # The member left gracefully, the hold is balanced out, and the
        # replica store was retired.
        assert victim not in pool.members
        assert member.drain_holds == 0
        assert victim not in store.stores
        assert store.cluster_stats.members_left == 1
        # Every moved connection re-pointed with a journaled drain record.
        for flow in moved:
            assert controller.placement[flow] != victim
            history = controller.assignment_history(flow)
            assert history[0] == victim and len(history) >= 2
        assert all(r.reason == "drain" for r in controller.journal)
        assert not controller.flows_by_backend[victim]

    def test_drain_rejects_non_active_backend(self):
        tb, pool, program, table, store, controller = build_l4lb()
        controller.drain_backend("backend0")
        with pytest.raises(ValueError, match="not active"):
            controller.drain_backend("backend0")


class TestKillAbsorption:
    def test_kill_is_detected_escalated_and_counters_survive(self):
        tb, pool, program, table, store, controller = build_l4lb()
        seeds = SeedSequence(7)
        healers = controller.enable_self_healing(
            policy_for=lambda member: BreakerPolicy(
                config=breaker_config(),
                rng=seeds.stream(f"breaker[{member.name}]"),
            ),
            give_up_probes=2,
        )
        flows = [vip_flow(tb, i) for i in range(24)]
        for flow in flows:
            controller.admit(flow)
        victim = "backend0"
        on_victim = set(controller.flows_by_backend[victim])
        assert on_victim, "seed should place some flows on the kill target"
        expected = {}
        for index in range(store.config.counters):
            store.update(index, 5)
            expected[index] = 5
        store.flush_all()
        tb.sim.run()
        # Dark link: every frame to/from the victim's server vanishes.
        tb.server_links[1].loss_probability = 1.0
        for index in range(store.config.counters):
            store.update(index, 3)
            expected[index] += 3
        store.flush_all()
        tb.sim.run()
        for _ in range(16):
            if store.pending_value == 0 and store.outstanding == 0:
                break
            store.flush_all()
            tb.sim.run()

        healer = healers[victim]
        assert healer.breaker.opens >= 1
        assert healer.reconnects >= 1
        assert healer.breaker.disarmed  # stood down, not probing forever
        assert controller.stats.kill_escalations >= 1
        assert controller.stats.kills_detected == 1
        assert not pool.health.is_alive(victim)
        assert controller.backends[victim].state == BACKEND_DEAD
        assert store.cluster_stats.members_failed == 1
        # K=2 replication: the surviving replica holds every update.
        for index, value in expected.items():
            assert store.read_counter(index) == value
        for flow in on_victim:
            assert controller.placement[flow] != victim
        assert any(r.reason == "kill" for r in controller.journal)


class TestSoakReducedScale:
    def test_soak_acceptance_bar_holds_at_reduced_scale(self):
        result = run_l4lb_soak(
            connections=1_500,
            packets=3_000,
            new_connections=150,
            new_packets=400,
            backends=3,
            corrupt_rate=3e-3,
            cache_entries=512,
        )
        assert_l4lb(result)
        assert result.table_entries == table_entries_for(1_650)
        text = format_l4lb(result)
        assert "counter audit" in text and "lost 0" in text
        report = l4lb_perf_record(result)
        extra = report["results"]["l4lb_soak"]["extra"]
        assert extra["lost_updates"] == 0
        assert extra["affinity_breaks"] == 0
        assert extra["all_counters_exact"] is True
