"""Acceptance tests for the cluster scale-out experiment.

The two headline claims, asserted end to end at reduced scale:

* 4 pooled servers sustain >= 3x the single-server aggregate lookup miss
  throughput at equal per-server region size (each configuration driven
  at its own maximum lossless rate);
* killing one server mid-run under K=2 replication loses not a single
  state-store counter update.
"""

from repro.experiments.scaleout import (
    run_failover_counters,
    run_scaleout,
    run_scaleout_point,
)


class TestLookupScaleout:
    def test_four_servers_at_least_3x_single_server(self):
        rows = run_scaleout(server_counts=(1, 4), lookups_per_host=400)
        single, pooled = rows
        assert single.servers == 1 and pooled.servers == 4
        # Equal per-server region size, every configuration lossless.
        assert single.lookups_lost == 0
        assert pooled.lookups_lost == 0
        assert single.lookups_completed == single.lookups_sent
        assert pooled.lookups_completed == pooled.lookups_sent
        speedup = pooled.mlookups_per_sec / single.mlookups_per_sec
        assert speedup >= 3.0

    def test_sweep_is_lossless_and_monotone(self):
        rows = run_scaleout(server_counts=(1, 2, 4), lookups_per_host=300)
        rates = [row.mlookups_per_sec for row in rows]
        assert all(row.lookups_lost == 0 for row in rows)
        assert rates == sorted(rates)

    def test_single_server_saturates_at_rnic_pipeline(self):
        # Overdriving one server at the 4-server offered rate pins its
        # throughput at the RNIC message pipeline (~1.67 M misses/s) —
        # the ceiling sharding exists to escape.
        row = run_scaleout_point(
            1, lookups_per_host=400, offered_per_server_mlps=5.0
        )
        assert row.mlookups_per_sec < 2.0

    def test_placement_is_deterministic(self):
        a = run_scaleout_point(4, lookups_per_host=200)
        b = run_scaleout_point(4, lookups_per_host=200)
        assert a.duration_ms == b.duration_ms
        assert a.lookups_completed == b.lookups_completed
        assert a.health == b.health


class TestCounterFailover:
    def test_killing_a_replica_loses_no_updates(self):
        result = run_failover_counters(packets=1500, kill_at_ns=600_000.0)
        assert result.detected, "health monitor must notice the death"
        assert result.members_failed == 1
        assert result.lost_updates == 0
        assert result.all_counters_exact
        assert result.recovered_total == result.packets_sent

    def test_updates_after_the_death_keep_landing(self):
        result = run_failover_counters(packets=1500, kill_at_ns=300_000.0)
        # The kill lands ~1/4 through the run: most updates arrive after
        # the member is already gone, and still nothing is lost.
        assert result.lost_updates == 0
        assert result.all_counters_exact
