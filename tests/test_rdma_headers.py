"""Tests for RoCEv2 header codecs and the paper's overhead accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.headers import HeaderError
from repro.rdma.constants import AethSyndrome, Opcode, psn_add, psn_distance
from repro.rdma.headers import (
    AethHeader,
    AtomicAckEthHeader,
    AtomicEthHeader,
    BthHeader,
    IcrcTrailer,
    RethHeader,
    parse_roce,
    roce_packet_overhead,
)

psns = st.integers(min_value=0, max_value=(1 << 24) - 1)
qpns = st.integers(min_value=0, max_value=(1 << 24) - 1)
vas = st.integers(min_value=0, max_value=(1 << 64) - 1)
rkeys = st.integers(min_value=0, max_value=(1 << 32) - 1)
u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestBth:
    def test_length_is_12(self):
        bth = BthHeader(opcode=Opcode.RDMA_WRITE_ONLY, dest_qp=0x11, psn=0)
        assert len(bth.pack()) == BthHeader.LENGTH == 12

    def test_round_trip(self):
        bth = BthHeader(
            opcode=Opcode.FETCH_ADD,
            dest_qp=0xABCDEF,
            psn=0x123456,
            ack_request=True,
            solicited_event=True,
            pad_count=3,
        )
        assert BthHeader.unpack(bth.pack()) == bth

    @given(
        opcode=st.sampled_from(list(Opcode)),
        dest_qp=qpns,
        psn=psns,
        ack=st.booleans(),
    )
    def test_round_trip_property(self, opcode, dest_qp, psn, ack):
        bth = BthHeader(opcode=opcode, dest_qp=dest_qp, psn=psn, ack_request=ack)
        assert BthHeader.unpack(bth.pack()) == bth

    def test_psn_range_enforced(self):
        with pytest.raises(HeaderError):
            BthHeader(opcode=Opcode.RDMA_WRITE_ONLY, dest_qp=1, psn=1 << 24)


class TestExtensionHeaders:
    def test_reth_is_16_bytes(self):
        reth = RethHeader(virtual_address=0x1000, rkey=0x42, dma_length=1500)
        assert len(reth.pack()) == RethHeader.LENGTH == 16

    def test_atomic_eth_is_28_bytes(self):
        atomic = AtomicEthHeader(virtual_address=0x1000, rkey=0x42, swap_add=1)
        assert len(atomic.pack()) == AtomicEthHeader.LENGTH == 28

    def test_aeth_is_4_bytes(self):
        aeth = AethHeader(syndrome=AethSyndrome.ACK, msn=12)
        assert len(aeth.pack()) == AethHeader.LENGTH == 4

    def test_atomic_ack_is_8_bytes(self):
        ack = AtomicAckEthHeader(original_data=2**63)
        assert len(ack.pack()) == AtomicAckEthHeader.LENGTH == 8

    @given(va=vas, rkey=rkeys, length=st.integers(0, (1 << 32) - 1))
    def test_reth_round_trip(self, va, rkey, length):
        reth = RethHeader(virtual_address=va, rkey=rkey, dma_length=length)
        assert RethHeader.unpack(reth.pack()) == reth

    @given(va=vas, rkey=rkeys, add=u64, compare=u64)
    def test_atomic_round_trip(self, va, rkey, add, compare):
        atomic = AtomicEthHeader(
            virtual_address=va, rkey=rkey, swap_add=add, compare=compare
        )
        assert AtomicEthHeader.unpack(atomic.pack()) == atomic

    @given(syndrome=st.integers(0, 255), msn=psns)
    def test_aeth_round_trip(self, syndrome, msn):
        aeth = AethHeader(syndrome=syndrome, msn=msn)
        assert AethHeader.unpack(aeth.pack()) == aeth

    @given(value=u64)
    def test_atomic_ack_round_trip(self, value):
        ack = AtomicAckEthHeader(original_data=value)
        assert AtomicAckEthHeader.unpack(ack.pack()) == ack


class TestAethSyndrome:
    def test_ack_is_not_nak(self):
        assert not AethSyndrome.is_nak(AethSyndrome.ACK)

    @pytest.mark.parametrize("syndrome", sorted(AethSyndrome.NAK_SYNDROMES))
    def test_naks_detected(self, syndrome):
        assert AethSyndrome.is_nak(syndrome)


class TestPsnArithmetic:
    def test_wraparound(self):
        assert psn_add((1 << 24) - 1, 1) == 0

    def test_distance_forward(self):
        assert psn_distance(10, 15) == 5

    def test_distance_wraps(self):
        assert psn_distance((1 << 24) - 2, 3) == 5

    @given(a=psns, delta=st.integers(0, (1 << 24) - 1))
    def test_distance_inverts_add(self, a, delta):
        assert psn_distance(a, psn_add(a, delta)) == delta


class TestParseRoce:
    def test_write_request_parses(self):
        bth = BthHeader(opcode=Opcode.RDMA_WRITE_ONLY, dest_qp=0x22, psn=9)
        reth = RethHeader(virtual_address=0x5000, rkey=0x77, dma_length=4)
        payload = b"data"
        raw = bth.pack() + reth.pack() + payload
        raw += IcrcTrailer.compute(raw).pack()
        headers, parsed_payload, icrc = parse_roce(raw)
        assert headers == [bth, reth]
        assert parsed_payload == payload
        assert icrc == IcrcTrailer.compute(raw[:-4])

    def test_atomic_ack_parses(self):
        bth = BthHeader(opcode=Opcode.ATOMIC_ACKNOWLEDGE, dest_qp=0x22, psn=9)
        aeth = AethHeader(syndrome=AethSyndrome.ACK, msn=1)
        atomic_ack = AtomicAckEthHeader(original_data=41)
        raw = bth.pack() + aeth.pack() + atomic_ack.pack() + IcrcTrailer().pack()
        headers, payload, _ = parse_roce(raw)
        assert headers == [bth, aeth, atomic_ack]
        assert payload == b""

    def test_truncated_rejected(self):
        bth = BthHeader(opcode=Opcode.RDMA_READ_REQUEST, dest_qp=1, psn=0)
        with pytest.raises(HeaderError):
            parse_roce(bth.pack())  # missing RETH and ICRC


class TestPaperOverheadNumbers:
    """§4: RoCEv2 adds 40 B of headers (52 B RoCEv1) + 16 or 28 B per op."""

    def test_write_overhead_rocev2(self):
        assert roce_packet_overhead(Opcode.RDMA_WRITE_ONLY) == 40 + 16

    def test_read_overhead_rocev2(self):
        assert roce_packet_overhead(Opcode.RDMA_READ_REQUEST) == 40 + 16

    def test_fetch_add_overhead_rocev2(self):
        assert roce_packet_overhead(Opcode.FETCH_ADD) == 40 + 28

    def test_write_overhead_rocev1(self):
        assert roce_packet_overhead(Opcode.RDMA_WRITE_ONLY, rocev1=True) == 52 + 16
