"""Tiered remote memory: geometry, pool, policy tick, degraded modes, chaos.

The invariants under test (DESIGN.md §13):

* block moves are control-plane copies — bytes survive a promote/demote
  round trip, and busy blocks (in-flight RDMA) never move;
* the fast tier is *bounded*: reservations can never exceed
  ``fast_capacity_bytes`` and the ``tiering.tier[fast].occupancy_peak``
  gauge proves occupancy never did either;
* degraded mode demotes, not drops — a graceful fast-tier loss writes
  every block back before the channels close, and the reliable store
  loses zero counter updates even when a blackout lands mid-promotion
  (the chaos test, with K=2 replication repairing the dead-member case).
"""

import pytest

from repro.apps.programs import CountingProgram
from repro.cluster.replicated_store import ReplicatedStateStore
from repro.core.state_store import (
    ATOMIC_OPERAND_BYTES,
    RemoteStateStore,
    StateStoreConfig,
)
from repro.experiments.topology import build_testbed
from repro.faults import FaultPlan, RnicBlackout
from repro.obs import Observability, WireTrace
from repro.obs.trace import KIND_TIER_MOVE
from repro.rdma.memory import TIER_DRAM, TIER_FAST
from repro.sim.units import kib, usec
from repro.tiering import DEFAULT_TICK_NS, TieredMemoryPool


def build_tiered(
    servers=1,
    fast_capacity_bytes=kib(1),
    policy="frequency",
    tick_ns=10_000.0,
    **pool_kwargs,
):
    tb = build_testbed(n_hosts=2, n_memory_servers=servers)
    program = CountingProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    pool = TieredMemoryPool(
        tb.controller,
        policy=policy,
        fast_capacity_bytes=fast_capacity_bytes,
        tick_ns=tick_ns,
        seed=1,
        **pool_kwargs,
    )
    for server, port in zip(tb.memory_servers, tb.server_ports):
        pool.add_server(server, port)
    return tb, pool


def tier_counters(pool, name="counters", units=256, units_per_block=16, **kw):
    return pool.tier_object(
        name, ATOMIC_OPERAND_BYTES, units, units_per_block=units_per_block, **kw
    )


# -- geometry: block moves are faithful control-plane copies -------------------


class TestGeometry:
    def test_resolve_follows_promotion_and_demotion(self):
        tb, pool = build_tiered()
        geometry = tier_counters(pool, fast_blocks=2)
        unit = 5
        tier, dram_va = geometry.resolve(unit)
        assert tier == TIER_DRAM
        payload = (1234).to_bytes(ATOMIC_OPERAND_BYTES, "big")
        geometry.dram_channel.region.write(dram_va, payload)

        assert geometry.promote(geometry.block_of(unit))
        tier, fast_va = geometry.resolve(unit)
        assert tier == TIER_FAST and fast_va != dram_va
        assert (
            geometry.fast_channel.region.read(fast_va, ATOMIC_OPERAND_BYTES)
            == payload
        )

        # Mutate the fast copy; demotion must write it back home.
        bumped = (5678).to_bytes(ATOMIC_OPERAND_BYTES, "big")
        geometry.fast_channel.region.write(fast_va, bumped)
        assert geometry.demote(geometry.block_of(unit))
        tier, va = geometry.resolve(unit)
        assert tier == TIER_DRAM and va == dram_va
        assert (
            geometry.dram_channel.region.read(va, ATOMIC_OPERAND_BYTES)
            == bumped
        )
        assert geometry.promotions == 1 and geometry.demotions == 1

    def test_busy_blocks_refuse_to_move(self):
        tb, pool = build_tiered()
        geometry = tier_counters(pool, fast_blocks=2)
        geometry.busy_check = lambda block: block == 0
        assert not geometry.promote(0)
        geometry.busy_check = None
        assert geometry.promote(0)
        geometry.busy_check = lambda block: block == 0
        assert not geometry.demote(0)
        # force= is the degrade path: the primitive has already suspended
        # its in-flight ops, so the copy is safe.
        assert geometry.demote(0, force=True)

    def test_pins_are_honoured(self):
        tb, pool = build_tiered()
        geometry = tier_counters(pool, fast_blocks=2)
        geometry.pin(0, TIER_DRAM)
        assert not geometry.promote(0)
        geometry.pin(1, TIER_FAST)
        assert geometry.promote(1)
        assert not geometry.demote(1)
        assert geometry.demote(1, force=True)

    def test_fast_window_is_bounded_slots(self):
        tb, pool = build_tiered()
        geometry = tier_counters(pool, fast_blocks=2)
        assert geometry.promote(0) and geometry.promote(1)
        assert not geometry.promote(2)  # window full
        assert geometry.fast_used == 2
        assert geometry.demote(0)
        assert geometry.promote(2)  # freed slot is reusable

    def test_access_counts_are_sparse_and_drain(self):
        tb, pool = build_tiered()
        geometry = tier_counters(pool, units=1 << 10, fast_blocks=2)
        geometry.record_access(3, TIER_DRAM)
        geometry.record_access(3, TIER_DRAM)
        geometry.record_access(900, TIER_DRAM)
        counts = geometry.drain_access_counts()
        assert counts == {geometry.block_of(3): 2, geometry.block_of(900): 1}
        assert geometry.drain_access_counts() == {}

    def test_abandon_remaps_without_copy_and_counts(self):
        tb, pool = build_tiered()
        geometry = tier_counters(pool, fast_blocks=2)
        unit = 0
        _, dram_va = geometry.resolve(unit)
        geometry.promote(0)
        _, fast_va = geometry.resolve(unit)
        lost = (999).to_bytes(ATOMIC_OPERAND_BYTES, "big")
        geometry.fast_channel.region.write(fast_va, lost)
        assert geometry.abandon_fast() == 1
        assert geometry.abandoned == 1 and geometry.fast_used == 0
        # No write-back happened: the DRAM home still holds the old bytes.
        assert geometry.dram_channel.region.read(
            dram_va, ATOMIC_OPERAND_BYTES
        ) != lost


# -- the pool: budget, wiring, tick ---------------------------------------------


class TestTieredMemoryPool:
    def test_fast_budget_is_enforced_at_reservation(self):
        tb, pool = build_tiered(fast_capacity_bytes=256)
        # One 128 B block fits; asking for four does not.
        with pytest.raises(ValueError, match="fast budget"):
            tier_counters(pool, fast_blocks=4)
        geometry = tier_counters(pool, fast_blocks=2)
        assert pool.fast_free_bytes == 0
        with pytest.raises(ValueError):
            tier_counters(pool, name="second", fast_blocks=1)
        assert geometry.fast_capacity == 2

    def test_duplicate_object_names_rejected(self):
        tb, pool = build_tiered()
        tier_counters(pool, fast_blocks=1)
        with pytest.raises(ValueError, match="already tiered"):
            tier_counters(pool, fast_blocks=1)

    def test_place_channel_pins_whole_object_and_unpins_on_teardown(self):
        tb, pool = build_tiered(fast_capacity_bytes=kib(1))
        channel = pool.place_channel("ring", 512, tier=TIER_FAST)
        assert channel.tier == TIER_FAST
        assert channel.region.tier == TIER_FAST
        assert pool.fast_free_bytes == kib(1) - 512
        snap = tb.sim.obs.registry.snapshot("tiering")
        assert snap["tiering.tier[fast].occupancy"] == 512
        tb.controller.close_channel(channel)
        assert pool.fast_free_bytes == kib(1)
        with pytest.raises(ValueError):
            pool.place_channel("huge", kib(2), tier=TIER_FAST)

    def test_tick_promotes_hot_blocks_within_policy_bounds(self):
        tb, pool = build_tiered(policy="frequency")
        geometry = tier_counters(pool, fast_blocks=2)
        # Block 0 is hot, block 3 is cold.
        for _ in range(10):
            geometry.record_access(0, TIER_DRAM)
        geometry.record_access(3 * 16, TIER_DRAM)
        pool.tick()
        assert geometry.tier_of_block(0) == TIER_FAST
        assert geometry.tier_of_block(3) == TIER_DRAM
        snap = tb.sim.obs.registry.snapshot("tiering")
        assert snap["tiering.tier[fast].promotions"] == 1
        assert snap["tiering.ticks"] == 1

    def test_tick_is_self_arming_and_simulation_terminates(self):
        tb, pool = build_tiered(tick_ns=5_000.0)
        geometry = tier_counters(pool, fast_blocks=2)
        for _ in range(10):
            geometry.record_access(0, TIER_DRAM)
        # record_access armed the tick; run to quiescence — this would
        # hang forever if the tick re-armed unconditionally.
        tb.sim.run()
        assert geometry.tier_of_block(0) == TIER_FAST
        assert tb.sim.now >= 5_000.0

    def test_graceful_leave_demotes_not_drops(self):
        tb, pool = build_tiered(servers=2)
        member = pool.members["memserver0"]
        geometry = tier_counters(pool, member=member, fast_blocks=2)
        unit = 0
        _, dram_va = geometry.resolve(unit)
        geometry.promote(0)
        _, fast_va = geometry.resolve(unit)
        payload = (77).to_bytes(ATOMIC_OPERAND_BYTES, "big")
        geometry.fast_channel.region.write(fast_va, payload)

        written_back = []

        class Snoop:
            def on_member_join(self, member):
                pass

            def on_member_leave(self, member, graceful):
                # Runs after the pool's own handler (appended later), but
                # before the channels close: the write-back must already
                # be visible at the DRAM home.
                written_back.append(
                    geometry.dram_channel.region.read(
                        dram_va, ATOMIC_OPERAND_BYTES
                    )
                )

        pool.listeners.append(Snoop())
        pool.remove_server("memserver0")
        assert geometry.fast_used == 0 and geometry.abandoned == 0
        assert geometry.demotions == 1 and not geometry.fast_enabled
        assert written_back == [payload]

    def test_dead_member_abandons_and_counts(self):
        tb, pool = build_tiered(servers=2)
        member = pool.members["memserver0"]
        geometry = tier_counters(pool, member=member, fast_blocks=2)
        geometry.promote(0)
        pool.fail_server("memserver0")
        assert geometry.fast_used == 0 and geometry.abandoned == 1
        assert not geometry.fast_enabled
        snap = tb.sim.obs.registry.snapshot("tiering")
        assert snap["tiering.blocks_abandoned"] == 1

    def test_dedicated_fast_member_hosts_the_window(self):
        tb = build_testbed(n_hosts=2, n_memory_servers=2)
        pool = TieredMemoryPool(
            tb.controller, fast_capacity_bytes=kib(1), seed=1
        )
        dram = pool.add_server(tb.memory_servers[0], tb.server_ports[0])
        fast = pool.add_server(
            tb.memory_servers[1], tb.server_ports[1], tier=TIER_FAST
        )
        assert pool.members_in_tier(TIER_FAST) == [fast]
        geometry = tier_counters(pool, fast_blocks=2)
        assert geometry.fast_channel in fast.channels
        assert geometry.dram_channel in dram.channels
        # Fast members never join the placement ring.
        assert pool.member_for(b"anything") is dram


# -- tiered state store: data path, metrics, degraded modes ---------------------


def drive_updates(tb, store, timed):
    """Issue ``store.update(index, 1)`` at each scheduled (t_ns, index)."""
    expected = {}
    for t_ns, index in timed:
        tb.sim.schedule(t_ns, store.update, index, 1)
        expected[index] = expected.get(index, 0) + 1
    return expected


def hot_cold_schedule(
    bursts=8, per_burst=20, gap_ns=300.0, quiet_ns=12_000.0,
    hot=0, cold_base=64, spread=8,
):
    """Bursty skew: ~75% of accesses hit one hot counter, the rest spray
    cold, with quiet gaps between bursts.  The gaps matter: a block with
    in-flight RDMA ops refuses to move, so promotion needs instants where
    the hot block has quiesced — exactly how a tiering policy catches a
    real working set between packet trains."""
    timed = []
    t = 0.0
    n = 0
    for _ in range(bursts):
        for _ in range(per_burst):
            index = hot if n % 4 != 3 else cold_base + (n % spread) * 16
            timed.append((t, index))
            t += gap_ns
            n += 1
        t += quiet_ns
    return timed


class TestTieredStateStore:
    def build_store(self, reliable=True, **pool_kwargs):
        tb, pool = build_tiered(**pool_kwargs)
        geometry = tier_counters(pool, fast_blocks=2)
        store = RemoteStateStore(
            tb.switch,
            config=StateStoreConfig(
                counters=256, reliable=reliable, retry_timeout_ns=usec(50)
            ),
            tiering=geometry,
        )
        tb.switch.program.use_state_store(store)
        return tb, pool, geometry, store

    def test_counts_exact_across_promotion_and_metrics_emitted(self):
        tb, pool, geometry, store = self.build_store()
        expected = drive_updates(tb, store, hot_cold_schedule())
        tb.sim.run()
        store.flush_all()
        tb.sim.run()
        for index, value in expected.items():
            assert store.read_counter_via_control_plane(index) == value
        # The hot block ended up fast and some operations rode it there.
        assert geometry.tier_of_block(0) == TIER_FAST
        snap = tb.sim.obs.registry.snapshot("tiering")
        assert snap["tiering.tier[fast].promotions"] >= 1
        assert snap["tiering.tier[fast].hits"] > 0
        assert snap["tiering.tier[dram].hits"] > 0
        assert (
            snap["tiering.tier[fast].hits"] + snap["tiering.tier[fast].misses"]
            == snap["tiering.tier[dram].hits"]
            + snap["tiering.tier[dram].misses"]
        )

    def test_fast_occupancy_never_exceeds_the_bound(self):
        tb, pool, geometry, store = self.build_store(
            fast_capacity_bytes=256
        )
        drive_updates(tb, store, hot_cold_schedule())
        tb.sim.run()
        store.flush_all()
        tb.sim.run()
        snap = tb.sim.obs.registry.snapshot("tiering")
        assert 0 < snap["tiering.tier[fast].occupancy_peak"] <= 256
        assert snap["tiering.tier[fast].occupancy"] <= 256

    def test_degrade_fast_demotes_and_stays_live_on_dram(self):
        tb, pool, geometry, store = self.build_store()
        expected = drive_updates(tb, store, hot_cold_schedule(bursts=4))
        tb.sim.run()
        assert geometry.fast_used > 0
        store.degrade_fast()
        assert geometry.fast_used == 0  # demoted, not dropped
        assert not geometry.fast_enabled
        # The store keeps serving on the DRAM home.
        for _ in range(20):
            store.update(0, 1)
        expected[0] = expected.get(0, 0) + 20
        store.flush_all()
        tb.sim.run()
        for index, value in expected.items():
            assert store.read_counter_via_control_plane(index) == value
        store.recover_fast()
        assert geometry.fast_enabled

    def test_tier_moves_appear_on_the_wire_trace(self):
        obs = Observability(trace=WireTrace())
        with obs.activate():
            tb, pool, geometry, store = self.build_store()
            drive_updates(tb, store, hot_cold_schedule())
            tb.sim.run()
        moves = [
            e for e in obs.trace.events if e.kind == KIND_TIER_MOVE
        ]
        assert moves, "promotion cycle emitted no TIER_MOVE events"
        assert all(e.node == "tiering:counters" for e in moves)
        assert any(e.channel == "counters:promote" for e in moves)


# -- chaos: blackout mid-promotion, K=2 replication, zero lost updates ----------


class TestTieringChaos:
    def test_blackout_mid_promotion_loses_zero_updates(self):
        """An RNIC blackout lands while the fast tier is absorbing the hot
        block.  Reliable per-replica retransmission plus demote-not-drop
        means every counter update survives; if the monitor declares the
        blacked-out member dead, the K=2 replica set still holds every
        update (the max rule)."""
        tb = build_testbed(n_hosts=2, n_memory_servers=2)
        program = CountingProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        pool = TieredMemoryPool(
            tb.controller,
            policy="frequency",
            fast_capacity_bytes=kib(1),
            tick_ns=10_000.0,
            seed=1,
            fail_after=3,
        )
        for server, port in zip(tb.memory_servers, tb.server_ports):
            pool.add_server(server, port)

        config = StateStoreConfig(
            counters=256, reliable=True, retry_timeout_ns=usec(30)
        )

        def tiered_store(member):
            geometry = pool.tier_object(
                f"counters:{member.name}",
                ATOMIC_OPERAND_BYTES,
                config.counters,
                units_per_block=16,
                member=member,
                fast_blocks=2,
            )
            return RemoteStateStore(tb.switch, config=config, tiering=geometry)

        rep = ReplicatedStateStore(
            tb.switch, pool, config=config, replication=2,
            store_factory=tiered_store,
        )
        program.use_state_store(rep)

        expected = drive_updates(tb, rep, hot_cold_schedule(bursts=12))
        # Blackout one member's RNIC mid-stream: promotions are underway
        # (first tick fires at 10 µs) and updates keep arriving.
        plan = FaultPlan(seed=7)
        plan.at(
            usec(20),
            plan.on_rnic(tb.memory_servers[0].rnic, name="fastbox"),
            RnicBlackout(),
            duration_ns=usec(200),
        )
        plan.install(tb.sim)
        tb.sim.run()
        rep.flush_all()
        tb.sim.run()
        if len(rep.stores) < 2:
            rep.reconcile()
        for index, value in expected.items():
            assert rep.read_counter(index) == value, (
                f"counter {index} lost updates: "
                f"{rep.read_counter(index)} != {value}"
            )
        assert rep.cluster_stats.updates_unreplicated == 0
