"""The unified policy surface: convention, placement planning, shims.

Covers the three things ``repro.policies`` promises:

* one construction convention — every policy takes ``(seed,
  metrics_scope)`` and names itself via ``policy_kind`` /
  ``policy_name``;
* placement policies are pure decision logic — unit-testable against a
  hand-built :class:`PlacementView`, no simulator required;
* the old spellings (``repro.core.cache_policy`` imports, lookup-table
  ``cache_policy=``/``cache_seed=``, guard ``config=``/``rng=``) keep
  working through warn-once shims.
"""

import random

import pytest

import repro._deprecation as _deprecation
from repro.core.lookup_table import LookupTableConfig
from repro.policies import (
    CACHE_POLICIES,
    PLACEMENT_POLICIES,
    POLICY_KINDS,
    AccessFrequencyPlacement,
    BlockStat,
    BreakerPolicy,
    PlacementView,
    Policy,
    StaticPinPlacement,
    TierMove,
    WatermarkPlacement,
    make_cache_policy,
    make_placement_policy,
    make_policy,
)
from repro.rdma.memory import TIER_DRAM, TIER_FAST


def _stat(block, tier=TIER_DRAM, accesses=0, pin=None, busy=False, obj="o"):
    return BlockStat(
        object_name=obj,
        block=block,
        tier=tier,
        accesses=accesses,
        pin=pin,
        busy=busy,
    )


def _view(blocks, capacity=4):
    used = sum(1 for s in blocks if s.tier == TIER_FAST)
    return PlacementView(
        blocks=list(blocks), fast_capacity=capacity, fast_used=used
    )


class TestConvention:
    def test_every_policy_kind_and_name(self):
        for name in CACHE_POLICIES:
            policy = make_cache_policy(name, 8, seed=3)
            assert policy.policy_kind == "cache"
            assert policy.policy_name == name
            assert policy.seed == 3
        for name in PLACEMENT_POLICIES:
            policy = make_placement_policy(name, seed=3)
            assert policy.policy_kind == "placement"
            assert policy.policy_name == name
            assert policy.seed == 3
        breaker = BreakerPolicy(seed=3, fail_threshold=2)
        assert breaker.policy_kind == "breaker"
        assert breaker.seed == 3
        assert {
            p
            for p in ("cache", "placement", "breaker")
        } == set(POLICY_KINDS)

    def test_make_policy_dispatches_by_kind(self):
        assert make_policy("cache", "lru", 8).policy_name == "lru"
        assert make_policy("placement", "frequency").policy_name == "frequency"
        assert isinstance(make_policy("breaker", "breaker"), BreakerPolicy)
        with pytest.raises(ValueError):
            make_policy("routing", "ecmp")

    def test_seeded_jitter_is_deterministic_and_shared(self):
        # Same (seed, token) -> same jitter on ANY policy kind: the whole
        # point of hoisting the CRC construction into the base class.
        a = AccessFrequencyPlacement(seed=42)
        b = make_cache_policy("pin", 8, seed=42)
        for token in (b"x", b"flow-7", bytes(4)):
            assert a._seeded_jitter(token, 5) == b._seeded_jitter(token, 5)
            assert 0 <= a._seeded_jitter(token, 5) < 5
        assert isinstance(a, Policy) and isinstance(b, Policy)

    def test_breaker_policy_builds_seeded_breaker(self):
        # Two builds from the same seed must probe identically.
        assert (
            BreakerPolicy(seed=9).rng().random()
            == BreakerPolicy(seed=9).rng().random()
        )
        explicit = random.Random(1)
        assert BreakerPolicy(rng=explicit).rng() is explicit
        with pytest.raises(ValueError):
            BreakerPolicy(config=object(), fail_threshold=2)


class TestStaticPinPlacement:
    def test_no_pins_means_no_moves(self):
        policy = StaticPinPlacement()
        view = _view([_stat(0, accesses=100), _stat(1, accesses=100)])
        assert policy.plan(view) == []

    def test_moves_blocks_toward_their_pins(self):
        policy = StaticPinPlacement()
        view = _view(
            [
                _stat(0, tier=TIER_DRAM, pin=TIER_FAST),
                _stat(1, tier=TIER_FAST, pin=TIER_DRAM),
                _stat(2, tier=TIER_FAST, pin=TIER_FAST),  # already home
            ]
        )
        moves = policy.plan(view)
        assert (
            TierMove("o", 0, TIER_FAST, "pin") in moves
            and TierMove("o", 1, TIER_DRAM, "pin") in moves
            and len(moves) == 2
        )

    def test_respects_fast_capacity(self):
        policy = StaticPinPlacement()
        view = _view(
            [_stat(i, pin=TIER_FAST) for i in range(4)], capacity=2
        )
        promoted = [m for m in policy.plan(view) if m.to_tier == TIER_FAST]
        assert len(promoted) == 2

    def test_never_moves_busy_blocks(self):
        policy = StaticPinPlacement()
        view = _view([_stat(0, pin=TIER_FAST, busy=True)])
        assert policy.plan(view) == []


class TestAccessFrequencyPlacement:
    def test_promotes_hot_blocks_into_free_slots(self):
        policy = AccessFrequencyPlacement(seed=0, promote_min=2)
        cold = _stat(0, accesses=0)
        hot = _stat(1, accesses=50)
        moves = policy.plan(_view([cold, hot], capacity=2))
        assert moves == [TierMove("o", 1, TIER_FAST, "promote")]

    def test_threshold_carries_seeded_jitter(self):
        policy = AccessFrequencyPlacement(seed=7, promote_min=2)
        thresholds = {
            policy.block_threshold(_stat(i)) for i in range(64)
        }
        assert thresholds <= {2, 3, 4} and len(thresholds) > 1
        again = AccessFrequencyPlacement(seed=7, promote_min=2)
        assert [again.block_threshold(_stat(i)) for i in range(64)] == [
            policy.block_threshold(_stat(i)) for i in range(64)
        ]

    def test_displaces_strictly_colder_victim_when_full(self):
        policy = AccessFrequencyPlacement(seed=0, promote_min=1, hysteresis=2)
        resident = _stat(0, tier=TIER_FAST, accesses=3)
        hot = _stat(1, accesses=50)
        moves = policy.plan(_view([resident, hot], capacity=1))
        assert moves == [
            TierMove("o", 0, TIER_DRAM, "demote"),
            TierMove("o", 1, TIER_FAST, "promote"),
        ]

    def test_hysteresis_blocks_thrash(self):
        policy = AccessFrequencyPlacement(seed=0, promote_min=1, hysteresis=4)
        resident = _stat(0, tier=TIER_FAST, accesses=10)
        warm = _stat(1, accesses=12)  # hotter, but not by >= hysteresis
        assert policy.plan(_view([resident, warm], capacity=1)) == []

    def test_never_demotes_pinned_fast_or_busy(self):
        policy = AccessFrequencyPlacement(seed=0, promote_min=1)
        pinned = _stat(0, tier=TIER_FAST, accesses=0, pin=TIER_FAST)
        busy = _stat(1, tier=TIER_FAST, accesses=0, busy=True)
        hot = _stat(2, accesses=99)
        assert policy.plan(_view([pinned, busy, hot], capacity=2)) == []

    def test_validates_knobs(self):
        with pytest.raises(ValueError):
            AccessFrequencyPlacement(promote_min=0)
        with pytest.raises(ValueError):
            AccessFrequencyPlacement(hysteresis=-1)


class TestWatermarkPlacement:
    def test_promotes_until_high_watermark(self):
        policy = WatermarkPlacement(seed=0, high=0.5, low=0.25)
        blocks = [_stat(i, accesses=10 - i) for i in range(8)]
        moves = policy.plan(_view(blocks, capacity=8))
        assert len(moves) == 4  # high = 0.5 * 8
        assert all(m.reason == "promote" for m in moves)
        # Hottest first.
        assert [m.block for m in moves] == [0, 1, 2, 3]

    def test_drains_to_low_watermark_when_over_high(self):
        policy = WatermarkPlacement(seed=0, high=0.5, low=0.25)
        blocks = [
            _stat(i, tier=TIER_FAST, accesses=i) for i in range(6)
        ]
        moves = policy.plan(_view(blocks, capacity=8))
        # 6 resident > high(4); drain to low(2): 4 spills, coldest first.
        assert [m.block for m in moves] == [0, 1, 2, 3]
        assert all(
            m.reason == "spill" and m.to_tier == TIER_DRAM for m in moves
        )

    def test_validates_watermarks(self):
        with pytest.raises(ValueError):
            WatermarkPlacement(high=0.2, low=0.5)
        with pytest.raises(ValueError):
            WatermarkPlacement(high=1.5)

    # -- ceil-semantics regression: truncation used to shrink small
    # -- windows (high=0.9 of 3 slots gave 2, losing a third of the
    # -- budget) and binary-float artifacts inflated exact products
    # -- (0.9 * 10 = 9.000...002 must not ceil to 10).

    def test_watermarks_ceil_on_tiny_window(self):
        policy = WatermarkPlacement(seed=0, high=0.9, low=0.6)
        assert policy.watermarks(3) == (3, 2)

    def test_watermarks_ceil_on_small_window(self):
        policy = WatermarkPlacement(seed=0, high=0.9, low=0.6)
        # 0.9 * 8 = 7.2 -> 8?  No: ceil(7.2) = 8 slots usable.
        assert policy.watermarks(8) == (8, 5)

    def test_watermarks_exact_products_do_not_inflate(self):
        policy = WatermarkPlacement(seed=0, high=0.9, low=0.6)
        # 0.9 * 64 = 57.6 -> 58; 0.6 * 64 = 38.4 -> 39.
        assert policy.watermarks(64) == (58, 39)
        # Exact binary-float products stay exact: 0.5 * 64 = 32, and the
        # IEEE artifact 0.9 * 10 = 9.000000000000002 rounds to 9, not 10.
        assert WatermarkPlacement(seed=0, high=0.5, low=0.5).watermarks(64) \
            == (32, 32)
        assert WatermarkPlacement(seed=0, high=0.9, low=0.9).watermarks(10) \
            == (9, 9)

    def test_tiny_window_uses_every_slot(self):
        # The user-visible regression: with 3 fast slots and high=0.9,
        # truncation capped promotion at 2 slots; ceil admits all 3.
        policy = WatermarkPlacement(seed=0, high=0.9, low=0.6)
        blocks = [_stat(i, accesses=10 - i) for i in range(4)]
        moves = policy.plan(_view(blocks, capacity=3))
        assert [m.block for m in moves] == [0, 1, 2]
        assert all(m.reason == "promote" for m in moves)

    def test_unknown_placement_policy_rejected(self):
        with pytest.raises(ValueError):
            make_placement_policy("random")


class TestDeprecationShims:
    def test_old_cache_policy_import_path_warns_once(self):
        _deprecation.reset()
        import repro.core.cache_policy as old

        with pytest.warns(DeprecationWarning, match="repro.policies"):
            cls = old.CachePolicy
        from repro.policies import CachePolicy

        assert cls is CachePolicy
        # Second access: warn-once means silence.
        import warnings

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            old.CachePolicy
        assert not any(
            issubclass(w.category, DeprecationWarning) for w in record
        )
        with pytest.raises(AttributeError):
            old.NoSuchPolicy

    def test_lookup_config_old_kwargs_warn_and_mirror(self):
        import warnings

        _deprecation.reset()
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            config = LookupTableConfig(
                entries=1 << 10, cache_policy="lru", cache_seed=9
            )
        messages = [
            str(w.message)
            for w in record
            if issubclass(w.category, DeprecationWarning)
        ]
        assert any("cache_policy" in m and "policy=" in m for m in messages)
        assert any("cache_seed" in m and "policy_seed=" in m for m in messages)
        assert config.policy == "lru" and config.policy_seed == 9

    def test_lookup_config_new_kwargs_mirror_back(self):
        config = LookupTableConfig(entries=1 << 10, policy="lfu", policy_seed=5)
        assert config.cache_policy == "lfu" and config.cache_seed == 5

    def test_make_cache_policy_scope_kwarg_warns(self):
        _deprecation.reset()
        from repro.obs import MetricRegistry

        scope = MetricRegistry().scope("cache")
        with pytest.warns(DeprecationWarning, match="metrics_scope"):
            policy = make_cache_policy("fifo", 4, scope=scope)
        assert policy.metrics_scope is scope

    def test_guard_config_and_rng_kwargs_warn(self):
        from repro.core.state_store import RemoteStateStore, StateStoreConfig
        from repro.experiments.topology import build_testbed
        from repro.rdma.constants import ATOMIC_OPERAND_BYTES
        from repro.resilience import CircuitBreakerConfig, SelfHealingChannel

        tb = build_testbed(n_hosts=2)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, 16 * ATOMIC_OPERAND_BYTES
        )
        store = RemoteStateStore(
            tb.switch, channel, config=StateStoreConfig(counters=16)
        )
        _deprecation.reset()
        with pytest.warns(DeprecationWarning, match="BreakerPolicy"):
            SelfHealingChannel(
                tb.controller,
                channel,
                store,
                config=CircuitBreakerConfig(fail_threshold=2),
                rng=random.Random(1),
            )
        with pytest.raises(ValueError):
            SelfHealingChannel(
                tb.controller,
                channel,
                store,
                policy=BreakerPolicy(),
                config=CircuitBreakerConfig(fail_threshold=2),
            )

    def test_guard_policy_seed_shorthand(self):
        from repro.core.state_store import RemoteStateStore, StateStoreConfig
        from repro.experiments.topology import build_testbed
        from repro.rdma.constants import ATOMIC_OPERAND_BYTES
        from repro.resilience import SelfHealingChannel

        tb = build_testbed(n_hosts=2)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, 16 * ATOMIC_OPERAND_BYTES
        )
        store = RemoteStateStore(
            tb.switch, channel, config=StateStoreConfig(counters=16)
        )
        guard = SelfHealingChannel(
            tb.controller, channel, store, policy_seed=11
        )
        assert guard.breaker is not None
