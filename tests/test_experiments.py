"""Smoke + shape tests for every experiment harness.

Each harness runs at a reduced scale here; the benchmarks run them at
paper scale.  These tests pin the *qualitative* results the paper reports
(who wins, directions of deltas, accuracy claims).
"""

import pytest

from repro.experiments.ablations import (
    run_batching_ablation,
    run_cache_ablation,
    run_drop_ablation,
    run_mode_ablation,
    run_window_ablation,
)
from repro.experiments.baremetal import run_baremetal_comparison
from repro.experiments.fig3a import run_fig3a
from repro.experiments.fig3b import run_fig3b
from repro.experiments.incast import run_incast_comparison
from repro.experiments.overhead import run_overhead
from repro.experiments.packet_buffer_rate import (
    run_native_baseline,
    run_store_load_point,
)
from repro.experiments.telemetry import run_telemetry
from repro.rdma.constants import Opcode


class TestFig3a:
    def test_lookup_adds_one_to_three_microseconds(self):
        rows = run_fig3a(packet_sizes=(64, 512), probes=8)
        for row in rows:
            assert row.lookup_us > row.baseline_us
            assert 0.5 <= row.delta_us <= 3.5

    def test_latency_grows_with_packet_size(self):
        rows = run_fig3a(packet_sizes=(64, 1024), probes=8)
        assert rows[1].baseline_us > rows[0].baseline_us
        assert rows[1].lookup_us > rows[0].lookup_us


class TestFig3b:
    def test_fa_bandwidth_capped_regardless_of_packet_size(self):
        rows = run_fig3b(packet_sizes=(64, 1024), packets=2500)
        for row in rows:
            assert 1.5 <= row.fa_request_gbps <= 3.0
        spread = abs(rows[0].fa_request_gbps - rows[1].fa_request_gbps)
        assert spread < 0.5  # flat across packet sizes

    def test_counter_100_percent_accurate(self):
        rows = run_fig3b(packet_sizes=(256,), packets=2000)
        assert rows[0].counter_accurate

    def test_no_end_to_end_throughput_degradation(self):
        rows = run_fig3b(packet_sizes=(1024,), packets=2000)
        row = rows[0]
        assert row.goodput_gbps == pytest.approx(
            row.baseline_goodput_gbps, rel=0.02
        )


class TestPacketBufferRate:
    def test_store_lossless_below_knee(self):
        result = run_store_load_point(offered_gbps=30, packets=800)
        assert result.lossless
        assert result.delivered == 800

    def test_store_lossy_above_knee(self):
        result = run_store_load_point(offered_gbps=40, packets=4000)
        assert not result.lossless

    def test_forward_rate_in_paper_ballpark(self):
        result = run_store_load_point(offered_gbps=30, packets=800)
        assert 33 <= result.forward_rate_gbps <= 40

    def test_native_baselines_reasonable(self):
        write = run_native_baseline(Opcode.RDMA_WRITE_ONLY, operations=500)
        read = run_native_baseline(Opcode.RDMA_READ_REQUEST, operations=500)
        assert 30 <= write <= 40
        assert 30 <= read <= 40


class TestIncast:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            r.variant: r
            for r in run_incast_comparison(scale=0.04, n_memory_servers=8)
        }

    def test_droptail_loses_heavily(self, results):
        assert results["droptail"].loss_rate > 0.3

    def test_remote_buffer_lossless(self, results):
        r = results["remote_buffer"]
        assert r.lossless
        assert r.switch_drops == 0
        assert r.remote_stored > 0
        assert r.out_of_order == 0

    def test_pfc_lossless_but_blocks_victim(self, results):
        pfc = results["pfc"]
        remote = results["remote_buffer"]
        assert pfc.lossless
        assert pfc.pause_events > 0
        # PFC head-of-line blocks the victim; the remote buffer does not.
        assert pfc.victim_completion_ms > 2 * remote.victim_completion_ms

    def test_remote_buffer_does_not_slow_victim(self, results):
        droptail = results["droptail"]
        remote = results["remote_buffer"]
        assert remote.victim_completion_ms == pytest.approx(
            droptail.victim_completion_ms, rel=0.2
        )


class TestOverhead:
    def test_all_rows_match_paper(self):
        rows = run_overhead()
        assert len(rows) == 3
        assert all(row.matches_paper for row in rows)

    def test_specific_numbers(self):
        by_name = {r.operation: r for r in run_overhead()}
        assert by_name["RDMA WRITE"].paper_total == 56
        assert by_name["Fetch-and-Add"].paper_total == 68
        assert by_name["RDMA WRITE"].rocev1_total == 68


class TestBaremetal:
    def test_remote_table_eliminates_slow_path(self):
        results = {
            r.mode: r
            for r in run_baremetal_comparison(vips=2000, packets=1200)
        }
        slow, remote = results["slowpath"], results["remote"]
        assert remote.delivery_rate == 1.0
        assert remote.slow_path_translations == 0
        assert slow.slow_path_translations > 0
        # Tail latency collapses without the software path.
        assert remote.p99_latency_us < slow.p99_latency_us / 3


class TestTelemetry:
    def test_remote_sketch_more_accurate_than_sram(self):
        local, remote = run_telemetry(
            flows=3000, packets=4000, remote_counters=1 << 16
        )
        assert remote.sketch_counters > 10 * local.sketch_counters
        assert remote.mean_relative_error < local.mean_relative_error / 2
        assert remote.hh_f1 >= local.hh_f1
        assert remote.server_cpu_packets == 0

    def test_count_sketch_variant_works_over_remote_memory(self):
        """Count Sketch [11] — signed updates over Fetch-and-Add."""
        local, remote = run_telemetry(
            flows=2000, packets=3000, remote_counters=1 << 16,
            sketch_kind="countsketch",
        )
        assert remote.sketch_kind == "countsketch"
        assert remote.mean_relative_error < local.mean_relative_error / 2
        assert remote.hh_f1 >= 0.9
        assert remote.server_cpu_packets == 0

    def test_unknown_sketch_kind_rejected(self):
        with pytest.raises(ValueError):
            run_telemetry(flows=10, packets=10, sketch_kind="hyperloglog")


class TestAblations:
    def test_batching_reduces_operations(self):
        results = run_batching_ablation(batch_sizes=(1, 16), packets=1500)
        assert results[1].operations < results[0].operations
        # No counts are ever lost, just delayed.
        for r in results:
            assert r.counted_remotely + r.pending_locally == r.packets

    def test_window_beyond_rnic_limit_loses_counts(self):
        results = run_window_ablation(windows=(16, 64), packets=1500)
        within, beyond = results
        assert within.accurate
        assert not beyond.accurate
        assert beyond.rnic_overflow_drops > 0

    def test_bigger_cache_higher_hit_rate(self):
        results = run_cache_ablation(
            cache_sizes=(0, 1024), flows=1024, packets=1200
        )
        assert results[0].hit_rate == 0.0
        assert results[1].hit_rate > 0.5
        assert results[1].remote_lookups < results[0].remote_lookups

    def test_recirculate_saves_bandwidth_costs_passes(self):
        bounce, recirc = run_mode_ablation(packets=400)
        assert recirc.remote_request_bytes < bounce.remote_request_bytes / 2
        assert recirc.recirculation_passes >= 400
        assert bounce.recirculation_passes == 0

    def test_reliability_extension_fixes_drops(self):
        results = run_drop_ablation(
            loss_probabilities=(0.02,), packets=1000, modes=(False, True)
        )
        best_effort, reliable = results
        assert best_effort.count_error_rate > 0.0
        assert reliable.count_error_rate == 0.0
        assert reliable.retransmissions > 0


class TestLinkGuard:
    """Reduced-scale link-protection sweep: the §14 decision surface."""

    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments.linkguard import run_linkguard_sweep

        return run_linkguard_sweep(packets=600)

    def test_acceptance_bar_holds_at_reduced_scale(self, rows):
        from repro.experiments.linkguard import assert_linkguard

        assert_linkguard(rows)

    def test_guard_on_loses_nothing_guard_off_does(self, rows):
        by = {(r.workload, r.variant): r for r in rows}
        assert by[("lookup", "guard-on")].lost == 0
        assert by[("lookup", "guard-off")].lost > 0
        assert by[("lookup", "guard-on")].masked_losses > 0

    def test_breaker_is_blind_to_scattered_corruption(self, rows):
        for row in rows:
            if row.variant == "breaker-only":
                assert row.breaker_opens == 0
                # ...and therefore pays exactly the guard-off price.

    def test_pktbuf_drain_pays_for_transport_recovery(self, rows):
        by = {(r.workload, r.variant): r for r in rows}
        lossless = by[("pktbuf", "lossless")].goodput_per_ms
        assert by[("pktbuf", "guard-on")].goodput_per_ms >= 0.95 * lossless
        assert by[("pktbuf", "guard-off")].goodput_per_ms < 0.95 * lossless
