#!/usr/bin/env python3
"""Example: a bare-metal hosting gateway with a remote lookup table (§2.2).

The cloud scenario from Figure 1b: blackbox customer servers address
virtual IPs; the ToR must translate VIP → PIP, but the full mapping table
dwarfs switch SRAM.  This example builds the two competing designs —
CPU slow path vs remote lookup table with an SRAM cache — and prints the
latency/tail comparison on Zipf traffic.

Run:  python examples/baremetal_gateway.py  [--vips 20000]
"""

import argparse

from repro.experiments.baremetal import (
    format_baremetal,
    run_baremetal_comparison,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vips", type=int, default=10_000)
    parser.add_argument("--sram", type=int, default=256,
                        help="SRAM entries (table for the baseline, cache "
                        "for the remote design)")
    parser.add_argument("--packets", type=int, default=5_000)
    args = parser.parse_args()

    print(
        f"Translating {args.vips} VIPs with only {args.sram} SRAM entries "
        f"({args.packets} Zipf packets)..."
    )
    results = run_baremetal_comparison(
        vips=args.vips, sram_entries=args.sram, packets=args.packets
    )
    print()
    print(format_baremetal(results))
    print()

    slow, remote = results
    print(
        f"The baseline pushed {slow.slow_path_translations} packets through "
        f"the switch CPU (p99 {slow.p99_latency_us:.1f} us); the remote "
        f"table kept everything in the data plane "
        f"(p99 {remote.p99_latency_us:.1f} us, "
        f"{remote.cache_hit_rate * 100:.0f}% SRAM cache hits)."
    )


if __name__ == "__main__":
    main()
