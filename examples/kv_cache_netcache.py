#!/usr/bin/env python3
"""Example: a NetCache-style in-network KV cache with remote memory (§6).

The paper argues its primitives "can potentially benefit those
applications" — NetCache being the canonical one.  This example runs the
same Zipf query stream against three designs:

* every GET served by the storage server's CPU (~30 µs each),
* hot keys cached in switch SRAM (fast), misses still hit the CPU,
* SRAM cache plus a remote value store: misses become RDMA READs and the
  server CPU drops out of the read path.

Run:  python examples/kv_cache_netcache.py  [--keys 10000]
"""

import argparse

from repro.experiments.kv_cache import format_kv_cache, run_kv_cache_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keys", type=int, default=10_000)
    parser.add_argument("--sram", type=int, default=64)
    parser.add_argument("--queries", type=int, default=5_000)
    args = parser.parse_args()

    print(
        f"Querying {args.keys} keys ({args.queries} Zipf GETs) with "
        f"{args.sram} SRAM cache slots..."
    )
    results = run_kv_cache_comparison(
        keys=args.keys, sram_entries=args.sram, queries=args.queries
    )
    print()
    print(format_kv_cache(results))
    print()
    by_mode = {r.mode: r for r in results}
    remote = by_mode["sram+remote"]
    print(
        f"With the remote value store the switch answered "
        f"{remote.switch_answered}/{remote.queries} GETs itself "
        f"({remote.server_bypass_rate * 100:.1f}% server bypass); only "
        f"hash-bucket collisions ({remote.server_cpu_queries} queries) "
        "still touched the storage server's CPU."
    )


if __name__ == "__main__":
    main()
