#!/usr/bin/env python3
"""Example: exact counters over a link that loses, delays, and dies.

§5 observes that "RDMA requests were occasionally dropped at the NIC"
and leaves recovery to future work.  This example injects worse than
that — 1 % i.i.d. loss in both directions from t=0, plus a complete
100 µs link blackout mid-run — while a switch counts packets into the
remote state store.  The reliable-mode machinery (NAK-driven go-back-N,
same-PSN retransmission, watchdog timeouts) repairs everything: every
per-counter total matches the send schedule exactly, and the fault
counters show what it took.

The FaultPlan is seeded, so every run of this script injects the
identical fault timeline — rerun it and the numbers don't wiggle.

Run:  python examples/chaos_recovery.py
"""

from repro.api import (
    Blackout,
    CountingProgram,
    FaultPlan,
    FiveTuple,
    IidLoss,
    RemoteStateStore,
    StateStoreConfig,
    build_testbed,
    usec,
)
from repro.rdma.constants import ATOMIC_OPERAND_BYTES
from repro.net.headers import UdpHeader
from repro.workloads.perftest import RawEthernetBw

PACKETS = 2000
FLOWS = 16
COUNTERS = 1 << 12
SRC_PORT, DST_PORT = 10_000, 20_000


def main() -> None:
    tb = build_testbed(n_hosts=2)
    program = CountingProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)

    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, COUNTERS * ATOMIC_OPERAND_BYTES
    )
    store = RemoteStateStore(
        tb.switch,
        channel,
        config=StateStoreConfig(
            counters=COUNTERS, reliable=True, retry_timeout_ns=50_000.0
        ),
    )
    program.use_state_store(store)

    # The fault schedule: steady 1% loss, plus a dead link for 100 us.
    plan = FaultPlan(seed=7)
    wire = plan.on_link(tb.server_link, name="server-link")
    plan.at(0.0, wire, IidLoss(0.01))
    plan.at(usec(800), wire, Blackout(), duration_ns=usec(100))
    plan.install(tb.sim)

    src, dst = tb.hosts
    expected = {}
    for seq in range(PACKETS):
        flow = FiveTuple(
            src_ip=src.eth.ip.value,
            dst_ip=dst.eth.ip.value,
            protocol=17,
            src_port=SRC_PORT + (seq % FLOWS),
            dst_port=DST_PORT,
        )
        index = flow.hash() % COUNTERS
        expected[index] = expected.get(index, 0) + 1

    def stamp(packet, seq):
        packet.require(UdpHeader).src_port = SRC_PORT + (seq % FLOWS)

    RawEthernetBw(
        tb.sim, src, dst,
        packet_size=128, rate_bps=1e9, count=PACKETS,
        dst_port=DST_PORT, stamp=stamp,
    ).start()
    tb.sim.run()
    for _ in range(64):
        if store.pending_value == 0 and store.outstanding == 0:
            break
        store.flush_all()
        tb.sim.run()

    recovered = {
        i: store.read_counter_via_control_plane(i) for i in expected
    }
    wrong = sum(1 for i, v in expected.items() if recovered[i] != v)
    gen = store.rocegen.stats

    print(f"packets counted           : {PACKETS}")
    print(f"expected total            : {sum(expected.values())}")
    print(f"recovered total           : {sum(recovered.values())}")
    print(f"counters wrong            : {wrong}")
    print(f"updates lost              : "
          f"{sum(expected.values()) - sum(recovered.values())}")
    print(f"link drops injected       : {wire.dropped}")
    print(f"NAKs / timeouts / retx    : {gen.naks_received} / "
          f"{gen.timeouts} / {store.stats.retransmissions}")
    assert wrong == 0, "reliable mode must recover every update"
    print("all counters exact        : yes")


if __name__ == "__main__":
    main()
