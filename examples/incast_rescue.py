#!/usr/bin/env python3
"""Example: rescuing an 8-to-1 incast with the remote packet buffer (§2.1).

Recreates Figure 1a's scenario — eight senders blast 50 MB at line rate
toward one receiver behind a ToR with a 12 MB buffer — and compares:

* a plain drop-tail ToR (massive loss),
* the remote packet buffer striped over 8 memory servers (lossless),
* PFC (lossless, but a victim flow sharing a sender link stalls).

Run:  python examples/incast_rescue.py  [--scale 0.25]
"""

import argparse

from repro.experiments.incast import format_incast, run_incast_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="scenario scale: 1.0 = the paper's exact 50 MB / 12 MB setup "
        "(slower); smaller scales keep every ratio (default 0.25)",
    )
    parser.add_argument(
        "--senders", type=int, default=8, help="number of incast senders"
    )
    args = parser.parse_args()

    print(
        f"Running {args.senders}-to-1 incast at scale {args.scale} "
        f"({int(50 * args.scale)} MB burst, {12 * args.scale:.1f} MB switch buffer)..."
    )
    results = run_incast_comparison(
        scale=args.scale, senders=args.senders, n_memory_servers=8
    )
    print()
    print(format_incast(results))
    print()

    by_variant = {r.variant: r for r in results}
    droptail = by_variant["droptail"]
    remote = by_variant["remote_buffer"]
    pfc = by_variant["pfc"]
    print(
        f"drop-tail lost {droptail.loss_rate * 100:.1f}% of the burst; the "
        f"remote buffer absorbed {remote.remote_stored} packets in server "
        "DRAM and delivered everything in order."
    )
    if pfc.victim_completion_ms and remote.victim_completion_ms:
        slowdown = pfc.victim_completion_ms / remote.victim_completion_ms
        print(
            f"PFC was also lossless but head-of-line blocked the victim "
            f"flow {slowdown:.1f}x longer than the remote buffer."
        )


if __name__ == "__main__":
    main()
