#!/usr/bin/env python3
"""Example: Count-Min sketches over remote memory for telemetry (§2.3).

Runs the same sketching algorithm twice over one Zipf packet stream:

* squeezed into a switch-SRAM budget (the status quo the paper laments),
* over a remote-DRAM counter array updated with RDMA Fetch-and-Add.

Then runs heavy-hitter detection on both and prints the accuracy gap.

Run:  python examples/telemetry_sketches.py
"""

import argparse

from repro.experiments.telemetry import format_telemetry, run_telemetry
from repro.sim.units import kib


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flows", type=int, default=20_000)
    parser.add_argument("--packets", type=int, default=15_000)
    parser.add_argument("--sram-kib", type=int, default=8,
                        help="SRAM budget for the local sketch (KiB)")
    args = parser.parse_args()

    print(
        f"Sketching {args.flows} flows / {args.packets} packets with an "
        f"{args.sram_kib} KiB SRAM budget vs remote DRAM..."
    )
    results = run_telemetry(
        flows=args.flows,
        packets=args.packets,
        sram_budget_bytes=kib(args.sram_kib),
        remote_counters=1 << 20,
    )
    print()
    print(format_telemetry(results))
    print()

    local, remote = results
    scaling = remote.sketch_counters / local.sketch_counters
    print(
        f"Remote memory held {scaling:.0f}x more counters, cutting mean "
        f"relative error from {local.mean_relative_error:.2f} to "
        f"{remote.mean_relative_error:.3f} and lifting heavy-hitter F1 "
        f"from {local.hh_f1:.2f} to {remote.hh_f1:.2f} — with "
        f"{remote.server_cpu_packets} packets touching the server CPU."
    )


if __name__ == "__main__":
    main()
