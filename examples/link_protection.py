#!/usr/bin/env python3
"""Example: masking a corrupting link below the transport.

``self_healing.py`` handles a link that *dies* — the circuit breaker
detects the outage and rides it out.  This example handles the opposite
failure: a link that merely *corrupts* one frame in a few hundred.
Packets still flow, every probe succeeds, the breaker never trips — but
each corrupted frame fails its ICRC at the receiver, silently vanishes,
and costs the RDMA transport a NAK'd go-back-N replay of the whole
in-flight window (DESIGN.md §10).

The :class:`~repro.api.LinkGuard` (DESIGN.md §14) fixes this *at the
link*: a sender-side shim numbers every frame and keeps a bounded
emergency retransmission buffer; the receiver end spots the corrupt or
missing frame the moment the next one arrives, NAKs immediately, and
the resend lands within a link RTT — microseconds instead of a
transport timeout.  The run below drives the reliable state store over
the same corrupting wire twice and prints what the transport saw:

* guard off — ICRC drops and go-back-N NAK replays;
* guard on  — a clean link: every loss masked, zero transport recovery.

Both runs finish with every counter exact (the reliable store always
recovers); the guard changes *how much the recovery costs*.

Run:  python examples/link_protection.py
"""

from repro.api import (
    Corrupt,
    CountingProgram,
    FaultPlan,
    LinkGuard,
    RemoteStateStore,
    StateStoreConfig,
    build_testbed,
    integrity_protected,
    usec,
)
from repro.rdma.constants import ATOMIC_OPERAND_BYTES
from repro.workloads.perftest import RawEthernetBw

PACKETS = 1200
COUNTERS = 1 << 10
CORRUPT_RATE = 3e-3
DST_PORT = 20_000
SEED = 42


def run(protect: bool):
    tb = build_testbed(n_hosts=2)
    program = CountingProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)

    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, COUNTERS * ATOMIC_OPERAND_BYTES
    )
    store = RemoteStateStore(
        tb.switch,
        channel,
        config=StateStoreConfig(
            counters=COUNTERS, reliable=True, retry_timeout_ns=usec(50)
        ),
    )
    program.use_state_store(store)

    guard = LinkGuard(tb.server_link) if protect else None

    plan = FaultPlan(seed=SEED)
    plan.at(0.0, plan.on_link(tb.server_link, name="server-link"),
            Corrupt(CORRUPT_RATE))
    plan.install(tb.sim)

    RawEthernetBw(
        tb.sim, tb.hosts[0], tb.hosts[1],
        packet_size=128, rate_bps=1e9, count=PACKETS, dst_port=DST_PORT,
    ).start()
    tb.sim.run()
    for _ in range(64):
        if store.pending_value == 0 and store.outstanding == 0:
            break
        store.flush_all()
        tb.sim.run()
    return store, guard, tb.sim.now


def main() -> None:
    with integrity_protected():
        for protect in (False, True):
            store, guard, now = run(protect)
            stats = store.rocegen.stats
            label = "guard on " if protect else "guard off"
            print(f"[{label}] transport NAK replays : {stats.naks_received}")
            print(f"[{label}] transport timeouts    : {stats.timeouts}")
            print(f"[{label}] store retransmissions : "
                  f"{store.stats.retransmissions}")
            if guard is not None:
                print(f"[{label}] losses guard masked   : "
                      f"{guard.counts['masked_losses']}")
                print(f"[{label}] guard resends         : "
                      f"{guard.counts['resent']}")
                assert stats.naks_received == 0, "guard must mask every loss"
                assert stats.timeouts == 0
                assert store.stats.retransmissions == 0
                assert guard.counts["masked_losses"] > 0, (
                    "corruption never hit the wire — raise CORRUPT_RATE"
                )
            else:
                assert stats.naks_received > 0, (
                    "corruption never cost the transport anything — "
                    "raise CORRUPT_RATE"
                )
            print(f"[{label}] finished at           : {now / 1e3:.1f} us")
            print()
    print("same wire, same faults: the guard kept the transport blind : yes")


if __name__ == "__main__":
    main()
