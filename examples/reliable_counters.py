#!/usr/bin/env python3
"""Example: making remote counters reliable under packet loss (§7).

The paper's future-work list includes "implement parsing and handling of
RDMA ACKs/NACKs to make certain remote memory reliable, e.g., in the
remote counter case."  This library implements it: the state store can
track per-operation acknowledgements and retransmit lost Fetch-and-Adds
with their original PSN, leaning on the RNIC's atomic replay cache for
exactly-once application.

This example counts packets across an increasingly lossy switch↔server
link, best-effort vs reliable.

Run:  python examples/reliable_counters.py
"""

from repro.experiments.ablations import format_drops, run_drop_ablation


def main() -> None:
    print("Counting 3000 packets across a lossy switch<->server link...\n")
    results = run_drop_ablation(
        loss_probabilities=(0.0, 0.001, 0.01, 0.05), packets=3000
    )
    print(format_drops(results))
    print()
    worst_best_effort = max(
        r.count_error_rate for r in results if not r.reliable
    )
    print(
        f"Best-effort counting lost up to {worst_best_effort * 100:.1f}% of "
        "the counts; the reliable mode recovered every drop by "
        "retransmitting with the original PSN (the RNIC's atomic replay "
        "cache absorbs duplicates, so nothing is double-counted)."
    )


if __name__ == "__main__":
    main()
