#!/usr/bin/env python3
"""Example: surviving a memory-server failure mid-incast (§7).

The paper's future-work list ends with "improve the robustness of the
architecture by handling switch and server failures."  This example runs
an incast absorbed by a remote packet buffer striped over two memory
servers, then kills one server's link mid-burst.  The failover logic
detects the dead channel, abandons its unread entries as clean in-order
losses, re-stripes onto the survivor, and keeps the system live.

Run:  python examples/server_failure.py
"""

from repro.api import (
    ENTRY_SEQ_BYTES,
    PacketBufferConfig,
    RemoteBufferProgram,
    RemotePacketBuffer,
    TrafficManagerConfig,
    build_testbed,
    kib,
    to_msec,
    usec,
)
from repro.workloads.perftest import PacketSink, RawEthernetBw


def main() -> None:
    tb = build_testbed(
        n_hosts=3,
        n_memory_servers=2,
        tm_config=TrafficManagerConfig(buffer_bytes=kib(256)),
    )
    program = RemoteBufferProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)

    entry_bytes = 1500 + ENTRY_SEQ_BYTES
    channels = tb.open_channels(4096 * entry_bytes)
    buffer = RemotePacketBuffer(
        tb.switch,
        channels,
        protected_port=tb.host_ports[1],
        config=PacketBufferConfig(
            entry_bytes=entry_bytes,
            high_watermark_bytes=kib(64),
            low_watermark_bytes=kib(8),
            read_timeout_ns=usec(50),
            failover_strikes=3,
        ),
    )
    program.use_packet_buffer(buffer)

    # 2:1 incast toward host 1, buffered remotely across both servers.
    sink = PacketSink(tb.hosts[1], dst_port=20_000)
    total = 0
    for s in (0, 2):
        gen = RawEthernetBw(
            tb.sim, tb.hosts[s], tb.hosts[1],
            packet_size=1500, rate_bps=40e9, count=500,
            src_port=10_000 + s,
        )
        gen.start()
        total += 500

    # Pull the plug on memory server 1 at t = 30 us.
    tb.sim.schedule(
        usec(30), lambda: setattr(tb.server_links[1], "loss_probability", 1.0)
    )
    tb.sim.run(max_events=5_000_000)

    print(f"burst: {total} packets across 2 senders; server 1 died at 30us\n")
    print(f"delivered in order    : {sink.packets} (reordered: {sink.out_of_order})")
    print(f"lost to failover      : {buffer.stats.lost_to_failover}")
    print(f"channels failed       : {buffer.stats.channels_failed}")
    print(f"surviving channels    : {buffer.alive_channels}")
    print(f"read-chain recoveries : {buffer.stats.read_recoveries}")
    print(f"done at               : {to_msec(tb.sim.now):.2f} ms "
          "(buffering mode off, nothing wedged)")
    accounted = (
        sink.packets
        + buffer.stats.lost_to_failover
        + buffer.stats.lost_in_transit
        + buffer.stats.ring_full_drops
        + tb.switch.tm.total_dropped_packets
    )
    assert accounted == total, "every packet must be delivered or accounted"
    assert not buffer.is_buffering
    print("\nEvery packet is accounted for: delivered once, in order, or a "
          "clean loss attributed to the dead server.")


if __name__ == "__main__":
    main()
