#!/usr/bin/env python3
"""Example: L4 load balancing with live backend migration (DESIGN.md §15).

The production shape of the paper's pitch: a switch terminating a VIP
whose connection table lives in remote memory (cuckoo layout, SRAM
cache), with per-backend connection/byte counters on a K=2 replicated
store.  The run soaks the load balancer with Zipf traffic while three
failures land at once — a hard backend kill (absorbed by the §11
breaker → probe → escalation stack), a graceful drain of a second
backend (journaled migration + quiesce + handoff reconcile), and 10⁻³
corruption on the table link (masked by the §14 LinkGuard) — then
audits that not one counter update was lost and not one established
connection reached a backend its journal never sanctioned.

Run:  python examples/l4_migration.py  [--connections 100000]
"""

import argparse

from repro.experiments.l4lb import (
    assert_l4lb,
    format_l4lb,
    run_l4lb_soak,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--connections", type=int, default=2_000)
    parser.add_argument("--packets", type=int, default=4_000)
    parser.add_argument("--backends", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print(
        f"Soaking {args.connections:,} connections over {args.backends} "
        f"backends — killing one, draining another, corrupting the table "
        f"link (seed={args.seed})..."
    )
    result = run_l4lb_soak(
        connections=args.connections,
        packets=args.packets,
        new_connections=max(50, args.connections // 10),
        new_packets=max(100, args.packets // 8),
        backends=args.backends,
        seed=args.seed,
    )
    print()
    print(format_l4lb(result))
    print()
    assert_l4lb(result)

    detect = result.kill_detect_latency_ns
    print(
        f"The kill was detected in {detect / 1e3:.0f} us and every one of "
        f"{result.expected_total:,} counter updates survived it; "
        f"{result.connections_migrated:,} connections migrated "
        f"({result.affinity_breaks} affinity breaks) and the drained "
        f"backend handed off {result.counters_repaired} counters before "
        f"its channels closed."
    )


if __name__ == "__main__":
    main()
