#!/usr/bin/env python3
"""Scale-out: pool many memory servers behind one ToR switch.

The single-server primitives hit a per-server ceiling long before the
40 GbE link: a lookup miss costs two RoCE messages through the RNIC's
~300 ns header pipeline, so one server absorbs ~1.67 M misses/s.  The
cluster subsystem pools servers behind a consistent-hash ring and shards
the primitives across them:

1. build a pool of N memory servers (one RDMA channel set per member),
2. shard the lookup table over the pool — aggregate miss throughput
   scales with N at equal per-server region size,
3. replicate the state store K=2 ways — kill a server mid-count and
   verify that not a single counter update is lost.

Run:  python examples/cluster_scaleout.py
"""

from repro.experiments.scaleout import (
    format_failover,
    format_scaleout,
    run_failover_counters,
    run_scaleout,
    run_scaleout_point,
)


def main() -> None:
    # -- 1+2. shard the lookup table over growing pools ------------------
    # Every configuration runs at its own maximum lossless rate (the §5
    # methodology); per-server region size is identical everywhere.
    rows = run_scaleout(server_counts=(1, 2, 4), lookups_per_host=400)
    print(format_scaleout(rows))
    speedup = rows[-1].mlookups_per_sec / rows[0].mlookups_per_sec
    print(f"\n4 servers sustain {speedup:.2f}x the single-server miss "
          "throughput (zero losses in every row).")

    # The ceiling is real: overdrive ONE server at the 4-server offered
    # rate and it saturates at its RNIC message pipeline (~1.67 M/s).
    saturated = run_scaleout_point(
        1, lookups_per_host=400, offered_per_server_mlps=5.0
    )
    print(f"1 server driven at 5.00 M/s completes at "
          f"{saturated.mlookups_per_sec:.2f} M/s — the RNIC pipeline "
          "ceiling sharding is built to escape.")

    # -- 3. kill a replica mid-count -------------------------------------
    result = run_failover_counters(packets=1500, kill_at_ns=600_000.0)
    print()
    print(format_failover(result))

    # -- the punchline ----------------------------------------------------
    assert speedup >= 3.0, "sharded lookups must scale at least 3x at N=4"
    assert result.lost_updates == 0, "replication must not lose updates"
    assert result.all_counters_exact
    print("\nno counter update lost; every per-flow count exact.")


if __name__ == "__main__":
    main()
