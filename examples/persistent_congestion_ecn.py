#!/usr/bin/env python3
"""Example: bursts go to remote memory, persistence goes to ECN (§2.1).

The paper is explicit that remote memory is for *bursts*: "in the case of
persistent congestion, end-to-end congestion control based on ECN should
have slowed traffic."  This example runs two line-rate senders at one
40 Gbps port forever and shows both halves of the argument:

* remote buffer alone — the ring fills and drops; DRAM only delays loss;
* remote buffer + the co-designed ECN signal (CE-mark diverted packets
  once ring occupancy crosses a shallow threshold) — DCTCP-style senders
  converge to fair share and nothing is ever dropped.

Run:  python examples/persistent_congestion_ecn.py  [--duration-ms 6]
"""

import argparse

from repro.experiments.persistent_congestion import (
    format_persistent_congestion,
    run_persistent_congestion_comparison,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration-ms", type=float, default=6.0)
    args = parser.parse_args()

    print(
        f"2 senders x 40 Gbps into one 40 Gbps port for {args.duration_ms} ms "
        "(persistent 2:1 overload)..."
    )
    results = run_persistent_congestion_comparison(duration_ms=args.duration_ms)
    print()
    print(format_persistent_congestion(results))
    print()
    buffer_only, with_ecn = results
    print(
        f"Remote memory alone lost {buffer_only.loss_rate * 100:.1f}% once "
        f"the ring filled; with ring-occupancy CE marking the senders "
        f"converged to {with_ecn.aggregate_final_rate_gbps:.1f} Gbps "
        f"aggregate and loss stayed at "
        f"{with_ecn.loss_rate * 100:.1f}% (ring peaked at "
        f"{with_ecn.peak_ring_entries} of "
        f"{buffer_only.peak_ring_entries} entries)."
    )


if __name__ == "__main__":
    main()
