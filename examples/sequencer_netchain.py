#!/usr/bin/env python3
"""Example: an in-network sequencer whose counter lives off-switch (§6).

NetChain-class systems use a switch to assign totally-ordered sequence
numbers.  With the paper's primitives the counter moves into server DRAM:
the switch stamps each packet with the pre-add value returned by an RDMA
Fetch-and-Add, so the sequence survives a switch replacement and can be
shared by multiple switches — at the cost of the RNIC's atomic rate.

This example sequences a two-sender packet stream, prints the achieved
rate sweep, and verifies the gap-free / total-order / zero-CPU properties.

Run:  python examples/sequencer_netchain.py
"""

from repro.experiments.sequencer import (
    format_sequencer,
    run_sequencer_throughput,
)


def main() -> None:
    print("Sweeping offered load through the remote-memory sequencer...\n")
    results = run_sequencer_throughput(packets=2000)
    print(format_sequencer(results))
    print()
    saturation = max(r.achieved_mops for r in results)
    assert all(r.gap_free and r.arrival_ordered for r in results)
    assert all(r.server_cpu_packets == 0 for r in results)
    print(
        f"Every point produced gap-free, arrival-ordered numbers with zero "
        f"server CPU; throughput saturates at {saturation:.2f} Mops — the "
        "RNIC atomic engine, the same cap that shapes Fig. 3b."
    )


if __name__ == "__main__":
    main()
