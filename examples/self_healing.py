#!/usr/bin/env python3
"""Example: a channel that dies completely — and heals itself.

``chaos_recovery.py`` shows the reliable state store riding out loss the
retry machinery can absorb.  This example injects an outage it cannot:
a 400 µs blackout, eight times the retry window, so every in-flight
Fetch-and-Add stalls and the watchdog burns timeout after timeout into a
dead wire.

The :class:`~repro.api.SelfHealingChannel` turns that into a managed
episode instead of a hang:

1. accumulated stall evidence trips the channel's **circuit breaker**
   open — the store stops driving the wire and absorbs updates locally;
2. after a (seeded, jittered) wait the breaker goes **half-open**: the
   controller reconnects the QP pair (fresh QPN/PSN, same remote region)
   and the store sends one probe READ.  The first probe dies inside the
   blackout — the breaker re-opens and backs off;
3. the second probe lands, the breaker **re-closes**, and the store
   reconciles: one READ per touched counter computes exactly how much of
   the suspended backlog already reached remote memory, and only the
   missing remainder is re-issued.  Zero updates lost, none double-counted.

Run:  python examples/self_healing.py
"""

from repro.api import (
    Blackout,
    BreakerPolicy,
    CountingProgram,
    FaultPlan,
    FiveTuple,
    RemoteStateStore,
    SelfHealingChannel,
    StateStoreConfig,
    build_testbed,
    usec,
)
from repro.net.headers import UdpHeader
from repro.rdma.constants import ATOMIC_OPERAND_BYTES
from repro.sim.rng import SeedSequence
from repro.workloads.perftest import RawEthernetBw

PACKETS = 1500
FLOWS = 16
COUNTERS = 1 << 12
SRC_PORT, DST_PORT = 10_000, 20_000
SEED = 42


def main() -> None:
    tb = build_testbed(n_hosts=2)
    program = CountingProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)

    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, COUNTERS * ATOMIC_OPERAND_BYTES
    )
    store = RemoteStateStore(
        tb.switch,
        channel,
        config=StateStoreConfig(
            counters=COUNTERS, reliable=True, retry_timeout_ns=usec(50)
        ),
    )
    program.use_state_store(store)

    # The self-healing wrapper: breaker + QP reconnect + degraded mode.
    guard = SelfHealingChannel(
        tb.controller,
        channel,
        store,
        policy=BreakerPolicy(
            rng=SeedSequence(SEED).stream("breaker[store]"),
            fail_threshold=3,
            open_timeout_ns=usec(100),
            probe_timeout_ns=usec(60),
            probe_jitter_ns=usec(10),
        ),
    )

    # The outage: a total blackout far longer than the retry window.
    plan = FaultPlan(seed=SEED)
    wire = plan.on_link(tb.server_link, name="server-link")
    plan.at(usec(300), wire, Blackout(), duration_ns=usec(400))
    plan.install(tb.sim)

    src, dst = tb.hosts
    expected = {}
    for seq in range(PACKETS):
        flow = FiveTuple(
            src_ip=src.eth.ip.value,
            dst_ip=dst.eth.ip.value,
            protocol=17,
            src_port=SRC_PORT + (seq % FLOWS),
            dst_port=DST_PORT,
        )
        index = flow.hash() % COUNTERS
        expected[index] = expected.get(index, 0) + 1

    def stamp(packet, seq):
        packet.require(UdpHeader).src_port = SRC_PORT + (seq % FLOWS)

    RawEthernetBw(
        tb.sim, src, dst,
        packet_size=128, rate_bps=1e9, count=PACKETS,
        dst_port=DST_PORT, stamp=stamp,
    ).start()
    tb.sim.run()
    for _ in range(64):
        if store.pending_value == 0 and store.outstanding == 0:
            break
        store.flush_all()
        tb.sim.run()

    recovered = {
        i: store.read_counter_via_control_plane(i) for i in expected
    }
    wrong = sum(1 for i, v in expected.items() if recovered[i] != v)
    lost = sum(expected.values()) - sum(recovered.values())
    breaker = guard.breaker

    print(f"packets counted            : {PACKETS}")
    print(f"expected / recovered total : "
          f"{sum(expected.values())} / {sum(recovered.values())}")
    print(f"updates lost / wrong ctrs  : {lost} / {wrong}")
    print(f"updates absorbed degraded  : "
          f"{store.metrics.counter('degraded_updates').value}")
    print(f"breaker opens / probe fails: "
          f"{breaker.opens} / {breaker.probe_failures}")
    print(f"QP reconnects              : {guard.reconnects}")
    print(f"degraded time (us)         : {breaker.degraded_ns / 1e3:.1f}")
    print(f"breaker state at exit      : {breaker.state}")

    assert lost == 0 and wrong == 0, "self-healing must lose nothing"
    assert breaker.opens >= 1, "the blackout must trip the breaker"
    assert breaker.probe_failures >= 1, "first probe dies in the blackout"
    assert breaker.is_closed, "the breaker must re-close after the outage"
    assert guard.reconnects >= 1, "half-open must reconnect the QP pair"
    print("channel healed, every update intact : yes")


if __name__ == "__main__":
    main()
