#!/usr/bin/env python3
"""Example: tiered remote memory with first-class placement policies (§13).

The external-memory server is not one flat DRAM: its cache hierarchy
serves the hot last mile far faster (the RDCA observation — see
PAPERS.md).  The tiered pool gives every remote object a full-size DRAM
home plus a small, bounded fast window, and a *placement policy* decides
block by block what deserves it:

* ``dram``      — baseline: nothing promotes, everything is DRAM;
* ``static``    — the operator pins the known-hot blocks up front;
* ``frequency`` — access counts learn the hot set online;
* ``watermark`` — promote eagerly, drain at a high-occupancy watermark.

This example drives the same bursty Zipf counter workload (100 k-flow
population) through each policy with a fast window of ~5 % of the
working set, and compares the mean Fetch-and-Add latency.  Every run
also proves the safety story: exact per-counter totals (zero lost
updates) and a fast-occupancy peak that never exceeded the budget.

Run:  python examples/tiered_memory.py
"""

from repro.experiments.tiering import (
    TIERING_POLICIES,
    format_tiering_sweep,
    run_tiering_sweep,
)


def main() -> None:
    print(
        "Driving 4000 bursty Zipf counter updates (100k-flow population)\n"
        "through each placement policy; fast window = 2 of 32 blocks...\n"
    )
    points = run_tiering_sweep(
        TIERING_POLICIES,
        flows=100_000,
        counters=1 << 11,
        updates=4_000,
        seed=42,
    )
    print(format_tiering_sweep(points))
    print()

    by_policy = {p.policy: p for p in points}
    dram = by_policy["dram"]
    freq = by_policy["frequency"]
    speedup = dram.mean_latency_ns / freq.mean_latency_ns
    print(
        f"The frequency policy learned the Zipf head online: "
        f"{freq.fast_hit_fraction * 100:.0f}% of updates were served from "
        f"the fast tier, cutting the mean Fetch-and-Add latency "
        f"{speedup:.1f}x vs all-DRAM ({dram.mean_latency_ns / 1e3:.2f}us "
        f"-> {freq.mean_latency_ns / 1e3:.2f}us)."
    )
    print(
        f"Safety held throughout: {sum(p.lost_updates for p in points)} "
        f"lost updates across all runs, and fast occupancy peaked at "
        f"{freq.fast_occupancy_peak} B of the {freq.fast_capacity_bytes} B "
        "budget (moves are control-plane copies; busy blocks never move)."
    )


if __name__ == "__main__":
    main()
