#!/usr/bin/env python3
"""Quickstart: a switch reads and writes server DRAM from its data plane.

This is the paper's core idea in ~60 lines of library use:

1. build a testbed (hosts + programmable ToR + memory server, 40 GbE),
2. let the control plane open an RDMA channel to the server's DRAM,
3. have the *switch data plane* WRITE, READ and Fetch-and-Add remote
   memory by crafting RoCEv2 packets — with the server's CPU untouched.

Run:  python examples/quickstart.py
"""

from repro.api import (
    RoceRequestGenerator,
    StaticL2Program,
    build_testbed,
    mib,
    to_usec,
)


class QuickstartProgram(StaticL2Program):
    """Static L2 forwarding that hands RoCE responses to the data plane.

    This is the dispatch pattern every primitive uses: responses from the
    RNIC are addressed to the switch's queue pair, so the pipeline claims
    them before normal forwarding.
    """

    roce: RoceRequestGenerator = None

    def on_ingress(self, ctx, packet):
        if self.roce is not None and self.roce.owns_response(packet):
            self.roce.classify_response(packet)
            ctx.drop()  # consumed by the data plane, never forwarded
            return
        super().on_ingress(ctx, packet)


def main() -> None:
    # -- 1. topology: one host, one ToR switch, one memory server --------
    tb = build_testbed(n_hosts=1)
    program = QuickstartProgram()
    program.install(tb.hosts[0].eth.mac, tb.host_ports[0])
    program.install(tb.memory_server.eth.mac, tb.server_port)
    tb.switch.bind_program(program)

    # -- 2. control plane: open an RDMA channel to 64 MiB of server DRAM -
    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, mib(64), name="quickstart"
    )
    print(f"channel open: rkey={channel.rkey:#x} "
          f"base={channel.base_address:#x} len={channel.length} B "
          f"switch QPN={channel.switch_qp.qpn} server QPN={channel.server_qp.qpn}")

    # -- 3. data plane: the switch talks RoCEv2 to the RNIC --------------
    dataplane = RoceRequestGenerator(tb.switch, channel)
    program.roce = dataplane

    # RDMA WRITE: 'hello' lands in server DRAM.
    dataplane.write(channel.base_address, b"hello from the data plane")
    tb.sim.run()
    stored = channel.region.read(channel.base_address, 26)
    print(f"t={to_usec(tb.sim.now):6.2f}us  WRITE landed: {stored!r}")

    # RDMA READ: the response returns as a packet the pipeline can parse.
    dataplane.read(channel.base_address, 5)
    tb.sim.run()
    print(f"t={to_usec(tb.sim.now):6.2f}us  READ issued and answered "
          f"({dataplane.stats.responses_handled} responses seen)")

    # Atomic Fetch-and-Add: a remote counter, updated at line rate.
    counter_address = channel.base_address + 4096
    for _ in range(10):
        dataplane.fetch_add(counter_address, 1)
    tb.sim.run()
    value = int.from_bytes(channel.region.read(counter_address, 8), "big")
    print(f"t={to_usec(tb.sim.now):6.2f}us  remote counter = {value}")

    # -- the punchline ----------------------------------------------------
    print(f"server CPU packets seen: {tb.memory_server.cpu_packets} "
          "(the RNIC handled everything)")
    assert value == 10
    assert tb.memory_server.cpu_packets == 0


if __name__ == "__main__":
    main()
