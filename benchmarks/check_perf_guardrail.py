"""CI perf guardrail: fail when batch-kernel throughput regresses.

Compares a freshly measured ``repro-perf-record/v1`` report against the
committed one and fails (exit 1) if the guarded benchmark regressed more
than the allowed fraction.  CI machines differ wildly in absolute speed,
so the guarded number is first *normalized* by a same-run reference
benchmark (the scalar event loop): the guarded quantity is then the
batch/scalar ratio — "how much does batch mode buy on this machine" —
which is stable across hardware in a way raw events/sec is not.

A machine-readable delta is always written (``--delta-out``) so CI can
upload it as an artifact whether the check passes or fails.

Usage (what the smoke-benchmark job runs)::

    python benchmarks/check_perf_guardrail.py BENCH_micro_ci.json \
        benchmarks/BENCH_micro.json \
        --benchmark simulator_event_throughput_batch \
        --normalize simulator_event_throughput \
        --max-regression 0.20 --delta-out perf_guardrail_delta.json
"""

import argparse
import json
import sys


def _rate(report, name):
    result = report.get("results", {}).get(name)
    if result is None:
        raise SystemExit(f"benchmark {name!r} missing from record "
                         f"(label={report.get('label')!r})")
    rate = result.get("extra", {}).get("ops_per_sec") or result.get(
        "events_per_sec", 0.0
    )
    if not rate:
        raise SystemExit(f"benchmark {name!r} has no usable rate")
    return float(rate)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly measured perf record (JSON)")
    parser.add_argument("committed", help="committed baseline perf record (JSON)")
    parser.add_argument(
        "--benchmark",
        default="simulator_event_throughput_batch",
        help="result name to guard",
    )
    parser.add_argument(
        "--normalize",
        default="simulator_event_throughput",
        help=(
            "same-run reference benchmark used to cancel out machine speed; "
            "'' disables normalization (guards the raw rate)"
        ),
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed fractional regression before failing (default 0.20)",
    )
    parser.add_argument(
        "--delta-out",
        default="perf_guardrail_delta.json",
        help="where to write the machine-readable delta artifact",
    )
    args = parser.parse_args(argv)

    with open(args.current) as fh:
        current = json.load(fh)
    with open(args.committed) as fh:
        committed = json.load(fh)

    cur_rate = _rate(current, args.benchmark)
    base_rate = _rate(committed, args.benchmark)
    if args.normalize:
        cur_norm = cur_rate / _rate(current, args.normalize)
        base_norm = base_rate / _rate(committed, args.normalize)
    else:
        cur_norm, base_norm = cur_rate, base_rate
    change = cur_norm / base_norm - 1.0  # <0 is a regression
    regressed = -change > args.max_regression

    delta = {
        "schema": "repro-perf-guardrail/v1",
        "benchmark": args.benchmark,
        "normalize": args.normalize or None,
        "current_rate": cur_rate,
        "committed_rate": base_rate,
        "current_normalized": cur_norm,
        "committed_normalized": base_norm,
        "change": change,
        "max_regression": args.max_regression,
        "regressed": regressed,
        "current_label": current.get("label"),
        "committed_label": committed.get("label"),
    }
    with open(args.delta_out, "w") as fh:
        json.dump(delta, fh, indent=2, sort_keys=True)
        fh.write("\n")

    what = (
        f"{args.benchmark}: {cur_rate:,.0f} now vs {base_rate:,.0f} committed"
    )
    if args.normalize:
        what += (
            f" (normalized by {args.normalize}: "
            f"{cur_norm:.2f}x now vs {base_norm:.2f}x committed)"
        )
    print(what)
    print(f"change: {change:+.1%} (limit -{args.max_regression:.0%}); "
          f"delta written to {args.delta_out}")
    if regressed:
        print("PERF GUARDRAIL FAILED: batch kernel regressed beyond the limit",
              file=sys.stderr)
        return 1
    print("perf guardrail OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
