"""§5 packet-buffer benchmark: lossless store / forward rates.

Regenerates the store-then-load microbenchmark: the paper stores MTU
frames at 34.1 Gbps without loss, forwards them back at 37.4 Gbps, and
finds native server-to-server RDMA only 4.4 % faster.
"""

from repro.experiments.packet_buffer_rate import (
    format_packet_buffer_rate,
    run_packet_buffer_rate,
)

OFFERED_RATES = (32.0, 33.0, 34.0, 35.0, 36.0, 38.0, 40.0)


def test_packet_buffer_store_forward(benchmark, paper_report):
    report = benchmark.pedantic(
        run_packet_buffer_rate,
        kwargs={"offered_rates_gbps": OFFERED_RATES, "packets": 8000},
        rounds=1,
        iterations=1,
    )
    paper_report(format_packet_buffer_rate(report))

    benchmark.extra_info["max_lossless_store_gbps"] = report.max_lossless_store_gbps
    benchmark.extra_info["forward_rate_gbps"] = report.forward_rate_gbps
    benchmark.extra_info["native_write_gbps"] = report.native_write_gbps
    benchmark.extra_info["paper"] = {
        "store_gbps": 34.1, "forward_gbps": 37.4, "native_advantage_pct": 4.4,
    }

    # Shape: stores cap in the low-to-mid 30s (below line rate), loads
    # come back faster (upper 30s), and native RDMA is within a few
    # percent of the switch-driven store path.
    assert 32.0 <= report.max_lossless_store_gbps <= 36.5
    assert 35.0 <= report.forward_rate_gbps <= 39.0
    assert report.forward_rate_gbps > report.max_lossless_store_gbps
    assert abs(report.native_advantage_pct) <= 8.0
    # Beyond the knee the NIC drops requests, as §5 observed.
    assert any(not p.lossless for p in report.points)
