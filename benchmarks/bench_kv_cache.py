"""§2.2/§6 benchmark: in-network KV cache with a remote-memory miss path.

NetCache-class comparison over Zipf queries against 10k keys:
server-only vs SRAM cache vs SRAM + remote value store.  The paper's
promise is that the remote path removes the storage server's CPU from the
read path entirely.
"""

from repro.experiments.kv_cache import format_kv_cache, run_kv_cache_comparison


def test_kv_cache_modes(benchmark, paper_report):
    results = benchmark.pedantic(
        run_kv_cache_comparison,
        kwargs={"keys": 10_000, "sram_entries": 64, "queries": 5_000},
        rounds=1,
        iterations=1,
    )
    paper_report(format_kv_cache(results))
    by_mode = {r.mode: r for r in results}
    server = by_mode["server"]
    sram = by_mode["sram"]
    remote = by_mode["sram+remote"]

    benchmark.extra_info["server_bypass"] = {
        mode: round(r.server_bypass_rate, 3) for mode, r in by_mode.items()
    }
    benchmark.extra_info["p99_us"] = {
        mode: round(r.p99_latency_us, 2) for mode, r in by_mode.items()
    }

    # Everyone answers every query (correctness).
    for r in results:
        assert r.reply_rate == 1.0
    # SRAM helps; remote memory nearly eliminates the server.
    assert server.server_bypass_rate == 0.0
    assert sram.server_bypass_rate > 0.3
    assert remote.server_bypass_rate > 0.95
    # The CPU's 30 us dominates the baseline's median; the remote design
    # answers misses in ~2 us from the data plane.
    assert remote.median_latency_us < server.median_latency_us / 5
