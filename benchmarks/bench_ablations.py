"""§7 ablation benchmarks: the paper's open design choices, quantified.

Six independent sweeps (see repro.experiments.ablations): Fetch-and-Add
batching, the outstanding-atomics window, local cache sizing, bounce vs
recirculation, drop sensitivity with/without the reliability extension,
and RDMA prioritization under congestion.
"""

from repro.experiments.ablations import (
    format_batching,
    format_cache,
    format_drops,
    format_mode,
    format_window,
    run_batching_ablation,
    run_cache_ablation,
    run_drop_ablation,
    run_mode_ablation,
    run_window_ablation,
)


def test_ablation_fa_batching(benchmark, paper_report):
    results = benchmark.pedantic(
        run_batching_ablation,
        kwargs={"batch_sizes": (1, 2, 4, 8, 16, 32), "packets": 4000},
        rounds=1,
        iterations=1,
    )
    paper_report(format_batching(results))
    # More combining -> fewer operations and bytes; never a lost count.
    assert results[-1].operations < results[0].operations / 2
    assert results[-1].request_bytes < results[0].request_bytes / 2
    for r in results:
        assert r.counted_remotely + r.pending_locally == r.packets


def test_ablation_outstanding_window(benchmark, paper_report):
    results = benchmark.pedantic(
        run_window_ablation,
        kwargs={"windows": (1, 4, 16, 64), "packets": 3000},
        rounds=1,
        iterations=1,
    )
    paper_report(format_window(results))
    within = [r for r in results if r.window <= r.rnic_limit]
    beyond = [r for r in results if r.window > r.rnic_limit]
    assert all(r.accurate for r in within)
    assert all(not r.accurate for r in beyond)


def test_ablation_cache_size(benchmark, paper_report):
    results = benchmark.pedantic(
        run_cache_ablation,
        kwargs={"cache_sizes": (0, 64, 256, 1024, 4096), "packets": 4000},
        rounds=1,
        iterations=1,
    )
    paper_report(format_cache(results))
    hit_rates = [r.hit_rate for r in results]
    assert hit_rates == sorted(hit_rates)  # monotone in cache size
    assert results[-1].median_latency_us < results[0].median_latency_us


def test_ablation_bounce_vs_recirculate(benchmark, paper_report):
    results = benchmark.pedantic(
        run_mode_ablation, kwargs={"packets": 1500}, rounds=1, iterations=1
    )
    paper_report(format_mode(results))
    bounce, recirc = results
    assert recirc.remote_request_bytes < bounce.remote_request_bytes / 2
    assert recirc.recirculation_passes >= recirc.packets
    assert bounce.recirculation_passes == 0


def test_ablation_drop_sensitivity(benchmark, paper_report):
    results = benchmark.pedantic(
        run_drop_ablation,
        kwargs={
            "loss_probabilities": (0.0, 0.001, 0.01, 0.05),
            "packets": 3000,
        },
        rounds=1,
        iterations=1,
    )
    paper_report(format_drops(results))
    best_effort = [r for r in results if not r.reliable]
    reliable = [r for r in results if r.reliable]
    # Best-effort error grows with loss; the reliability extension is exact.
    errors = [r.count_error_rate for r in best_effort]
    assert errors[0] == 0.0
    assert errors[-1] > errors[1]
    assert all(r.count_error_rate == 0.0 for r in reliable)


def test_ablation_rdma_priority(benchmark, paper_report):
    from repro.experiments.ablations import format_priority, run_priority_ablation

    results = benchmark.pedantic(
        run_priority_ablation,
        kwargs={"lookups": 200, "background_packets": 3000},
        rounds=1,
        iterations=1,
    )
    paper_report(format_priority(results))
    unprotected, protected = results
    # Priority + headroom makes the RDMA leg loss-free under congestion.
    assert unprotected.resolution_rate < 0.8
    assert unprotected.bounce_naks > 0
    assert protected.resolution_rate == 1.0
    assert protected.bounce_naks == 0
    assert protected.delivered > unprotected.delivered
