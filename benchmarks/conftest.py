"""Benchmark fixtures and reporting helpers.

Every benchmark regenerates one of the paper's tables or figures; the
``paper_report`` fixture collects the formatted tables and prints them at
the end of the session, so ``pytest benchmarks/ --benchmark-only`` yields
both timing data and the reproduced results.
"""

from __future__ import annotations

import pytest

_reports = []


@pytest.fixture
def paper_report():
    """Call with a formatted table string to register it for the summary."""

    def add(report: str) -> None:
        _reports.append(report)

    return add


def pytest_sessionfinish(session, exitstatus):
    if _reports:
        print("\n\n" + "=" * 72)
        print("REPRODUCED PAPER RESULTS")
        print("=" * 72)
        for report in _reports:
            print()
            print(report)
