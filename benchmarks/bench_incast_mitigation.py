"""§2.1 / Fig. 1a benchmark: last-hop incast at paper scale.

The paper's exact scenario: 8 uplinks × 40 Gbps, 50 MB aggregate burst,
12 MB switch buffer.  Drop-tail loses most of the burst; the remote packet
buffer (striped over 8 memory servers, §2.1's "one or multiple servers")
absorbs it losslessly; PFC is lossless too but head-of-line blocks a
victim flow.
"""

from repro.experiments.incast import format_incast, run_incast_comparison
from repro.sim.units import to_msec


def test_incast_mitigation(benchmark, paper_report):
    results = benchmark.pedantic(
        run_incast_comparison,
        kwargs={"scale": 1.0, "n_memory_servers": 8},
        rounds=1,
        iterations=1,
    )
    paper_report(format_incast(results))
    by_variant = {r.variant: r for r in results}
    droptail = by_variant["droptail"]
    remote = by_variant["remote_buffer"]
    pfc = by_variant["pfc"]

    benchmark.extra_info["droptail_loss_pct"] = round(droptail.loss_rate * 100, 1)
    benchmark.extra_info["remote_buffer_loss_pct"] = round(remote.loss_rate * 100, 1)
    benchmark.extra_info["pfc_victim_slowdown"] = (
        round(pfc.victim_completion_ms / remote.victim_completion_ms, 1)
        if remote.victim_completion_ms
        else None
    )

    # §2.1's arithmetic: the receiver can only take 40 Gbps, so drop-tail
    # loses roughly (burst - buffer - egress_during_burst) of 50 MB.
    assert droptail.loss_rate > 0.5
    # The remote buffer makes the last hop lossless without reordering.
    assert remote.lossless
    assert remote.out_of_order == 0
    assert remote.switch_drops == 0
    # Receiving 50 MB takes at least 10 ms at 40 Gbps.
    assert remote.completion_ms >= 10.0
    # PFC is lossless but stalls the victim; the remote buffer does not.
    assert pfc.lossless
    assert pfc.victim_completion_ms > 2 * remote.victim_completion_ms
