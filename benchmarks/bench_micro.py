"""Microbenchmarks of the substrate itself (simulator, codecs, RNIC).

Unlike the paper-figure benchmarks (one long simulation timed once), these
use pytest-benchmark's repeated timing to track the hot paths a simulation
study lives or dies by: event dispatch, header serialization, hash
externs, and a full RDMA round trip.
"""

from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.headers import EthernetHeader, Ipv4Header, UdpHeader
from repro.net.packet import Packet
from repro.rdma.headers import BthHeader, IcrcTrailer, RethHeader, parse_roce
from repro.rdma.constants import Opcode
from repro.sim.simulator import Simulator
from repro.switches.hashing import FiveTuple, crc16, hash_fields


def test_simulator_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(run_10k_events)
    assert events == 10_000


def _sample_packet():
    return Packet(
        headers=[
            EthernetHeader(dst=MacAddress(2), src=MacAddress(1)),
            Ipv4Header(src=Ipv4Address("10.0.0.1"), dst=Ipv4Address("10.0.0.2")),
            UdpHeader(src_port=1000, dst_port=4791),
            BthHeader(opcode=Opcode.RDMA_WRITE_ONLY, dest_qp=0x11, psn=7),
            RethHeader(virtual_address=0x1000, rkey=0x42, dma_length=1024),
        ],
        payload=b"z" * 1024,
        trailers=[IcrcTrailer()],
    )


def test_packet_pack_throughput(benchmark):
    packet = _sample_packet()
    raw = benchmark(packet.pack)
    assert len(raw) == 14 + 20 + 8 + 12 + 16 + 1024 + 4


def test_roce_parse_throughput(benchmark):
    packet = _sample_packet()
    raw = packet.pack()[42:]  # BTH onward
    headers, payload, icrc = benchmark(parse_roce, raw)
    assert len(payload) == 1024


def test_crc16_throughput(benchmark):
    data = b"abcdefgh" * 16
    value = benchmark(crc16, data)
    assert 0 <= value <= 0xFFFF


def test_five_tuple_hash_throughput(benchmark):
    ft = FiveTuple(0x0A000001, 0x0A000002, 17, 1000, 2000)
    value = benchmark(ft.hash)
    assert value == ft.hash()


def test_hash_fields_throughput(benchmark):
    fields = [0x0A000001, 0x0A000002, 17, 1000, 2000]
    benchmark(hash_fields, fields)


def test_rdma_write_round_trip(benchmark):
    """Full simulated RDMA WRITE through switch + RNIC, per operation."""
    from repro.apps.programs import StaticL2Program
    from repro.core.rocegen import RoceRequestGenerator
    from repro.experiments.topology import build_testbed

    def one_write():
        tb = build_testbed(n_hosts=1)
        program = StaticL2Program()
        program.install(tb.hosts[0].eth.mac, tb.host_ports[0])
        program.install(tb.memory_server.eth.mac, tb.server_port)
        tb.switch.bind_program(program)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, 4096
        )
        gen = RoceRequestGenerator(tb.switch, channel)
        gen.write(channel.base_address, b"x" * 64)
        tb.sim.run()
        return channel.region.writes

    writes = benchmark(one_write)
    assert writes == 1
