"""Microbenchmarks of the substrate itself (simulator, codecs, RNIC).

Unlike the paper-figure benchmarks (one long simulation timed once), these
use pytest-benchmark's repeated timing to track the hot paths a simulation
study lives or dies by: event dispatch, header serialization, hash
externs, and a full RDMA round trip.

Run directly (``python benchmarks/bench_micro.py``) this module times the
same hot paths with :mod:`repro.analysis.profiling` and writes a
machine-readable ``BENCH_micro.json`` perf record; when a baseline record
exists (``benchmarks/BENCH_micro_seed.json`` by default) the report also
carries per-benchmark speedups, which is how the fast-path work is tracked
PR over PR.
"""

import argparse
import os
import sys

from repro.analysis.profiling import (
    PerfRecord,
    Profiler,
    load_report,
    make_report,
    throughput,
    write_report,
)
from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.headers import EthernetHeader, Ipv4Header, UdpHeader
from repro.net.packet import Packet, PacketPool
from repro.rdma.headers import BthHeader, IcrcTrailer, RethHeader, parse_roce
from repro.rdma.constants import Opcode
from repro.sim.simulator import Simulator, kernel_mode
from repro.switches.hashing import FiveTuple, crc16, hash_fields


def test_simulator_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(run_10k_events)
    assert events == 10_000


def _sample_packet():
    return Packet(
        headers=[
            EthernetHeader(dst=MacAddress(2), src=MacAddress(1)),
            Ipv4Header(src=Ipv4Address("10.0.0.1"), dst=Ipv4Address("10.0.0.2")),
            UdpHeader(src_port=1000, dst_port=4791),
            BthHeader(opcode=Opcode.RDMA_WRITE_ONLY, dest_qp=0x11, psn=7),
            RethHeader(virtual_address=0x1000, rkey=0x42, dma_length=1024),
        ],
        payload=b"z" * 1024,
        trailers=[IcrcTrailer()],
    )


def test_packet_pack_throughput(benchmark):
    packet = _sample_packet()
    raw = benchmark(packet.pack)
    assert len(raw) == 14 + 20 + 8 + 12 + 16 + 1024 + 4


def test_roce_parse_throughput(benchmark):
    packet = _sample_packet()
    raw = packet.pack()[42:]  # BTH onward
    headers, payload, icrc = benchmark(parse_roce, raw)
    assert len(payload) == 1024


def test_crc16_throughput(benchmark):
    data = b"abcdefgh" * 16
    value = benchmark(crc16, data)
    assert 0 <= value <= 0xFFFF


def test_five_tuple_hash_throughput(benchmark):
    ft = FiveTuple(0x0A000001, 0x0A000002, 17, 1000, 2000)
    value = benchmark(ft.hash)
    assert value == ft.hash()


def test_hash_fields_throughput(benchmark):
    fields = [0x0A000001, 0x0A000002, 17, 1000, 2000]
    benchmark(hash_fields, fields)


def test_rdma_write_round_trip(benchmark):
    """Full simulated RDMA WRITE through switch + RNIC, per operation."""
    from repro.apps.programs import StaticL2Program
    from repro.core.rocegen import RoceRequestGenerator
    from repro.experiments.topology import build_testbed

    def one_write():
        tb = build_testbed(n_hosts=1)
        program = StaticL2Program()
        program.install(tb.hosts[0].eth.mac, tb.host_ports[0])
        program.install(tb.memory_server.eth.mac, tb.server_port)
        tb.switch.bind_program(program)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, 4096
        )
        gen = RoceRequestGenerator(tb.switch, channel)
        gen.write(channel.base_address, b"x" * 64)
        tb.sim.run()
        return channel.region.writes

    writes = benchmark(one_write)
    assert writes == 1


# -- standalone perf-record harness -----------------------------------------


def _event_loop_record(
    n_events: int = 200_000, chains: int = 256, mode: str = "scalar"
) -> PerfRecord:
    """Time *chains* concurrent self-rescheduling tick chains.

    Concurrent chains keep the calendar ~*chains* entries deep, matching
    what real experiments look like (every in-flight packet holds an
    event), so the benchmark exercises calendar maintenance rather than
    just dispatch.  The ticks use fire-and-forget ``post`` — what the
    product hot paths (link delivery, serializers, pipelines) use — so
    the scalar number exercises heap sifting and the batch number
    exercises whole-cohort draining of a 256-wide bucket.
    """
    with kernel_mode(mode):
        sim = Simulator()
    remaining = [n_events]
    post = sim.post

    def tick():
        r = remaining[0] - 1
        remaining[0] = r
        if r >= chains:
            post(1.0, tick)

    for _ in range(chains):
        post(1.0, tick)
    with Profiler("simulator_event_throughput") as prof:
        sim.run()
    record = prof.record
    assert record is not None and record.events == n_events
    record.extra["mode"] = mode
    record.extra["chains"] = chains
    return record


def _cancel_heavy_record(n_events: int = 50_000, mode: str = "scalar") -> PerfRecord:
    """Event loop where half the scheduled events are cancelled (timeouts)."""
    with kernel_mode(mode):
        sim = Simulator()
    remaining = [n_events]

    def tick():
        remaining[0] -= 1
        doomed = sim.schedule(2.0, tick)
        doomed.cancel()
        if remaining[0] > 0:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    with Profiler("simulator_cancel_throughput") as prof:
        sim.run()
    record = prof.record
    assert record is not None and record.events == n_events
    record.extra["mode"] = mode
    return record


def _pool_clone_record(min_seconds: float) -> PerfRecord:
    """Clone-release churn through the packet pool (steady-state reuse)."""
    pool = PacketPool()
    source = _sample_packet()
    clone = pool.clone

    def churn():
        clone(source).release(pool)

    record = throughput("packet_pool_clone", churn, min_seconds=min_seconds)
    record.extra["pool_hits"] = pool.hits
    record.extra["pool_misses"] = pool.misses
    record.extra["baseline_name"] = "packet_clone"
    return record


def collect_records(quick: bool = False):
    """Run every microbenchmark; returns {name: PerfRecord}.

    The simulator and round-trip workloads run in *both* kernel modes:
    the scalar record keeps its historical name (so seed comparisons keep
    working) and the batch twin rides under a ``_batch`` suffix with
    ``extra["mode"]`` set and ``extra["baseline_name"]`` pointing at the
    scalar entry, so its speedup is computed against the same baseline.
    """
    scale = 0.05 if quick else 0.3
    packet = _sample_packet()
    raw_roce = packet.pack()[42:]
    fresh = _sample_packet()

    def pack_fresh():
        # Re-assign a field so codec caching cannot trivialize the loop:
        # this exercises the invalidate-then-repack path.
        fresh.require(Ipv4Header).identification ^= 1
        return fresh.pack()

    n_events = 20_000 if quick else 200_000
    n_cancel = 5_000 if quick else 50_000
    records = {
        "simulator_event_throughput": _event_loop_record(n_events),
        "simulator_event_throughput_batch": _event_loop_record(
            n_events, mode="batch"
        ),
        "simulator_cancel_throughput": _cancel_heavy_record(n_cancel),
        "simulator_cancel_throughput_batch": _cancel_heavy_record(
            n_cancel, mode="batch"
        ),
        "packet_pack_cached": throughput(
            "packet_pack_cached", packet.pack, min_seconds=scale
        ),
        "packet_pack_mutating": throughput(
            "packet_pack_mutating", pack_fresh, min_seconds=scale
        ),
        "roce_parse": throughput(
            "roce_parse", lambda: parse_roce(raw_roce), min_seconds=scale
        ),
        "packet_clone": throughput(
            "packet_clone", packet.clone, min_seconds=scale
        ),
        "packet_pool_clone": _pool_clone_record(scale),
        "packet_frame_len": throughput(
            "packet_frame_len", lambda: packet.frame_len, min_seconds=scale
        ),
        "rdma_write_round_trip": throughput(
            "rdma_write_round_trip", _one_rdma_write, min_seconds=scale
        ),
    }
    with kernel_mode("batch"):
        records["rdma_write_round_trip_batch"] = throughput(
            "rdma_write_round_trip", _one_rdma_write, min_seconds=scale
        )
    records["rdma_write_round_trip_batch"].label = "rdma_write_round_trip_batch"
    for name, record in records.items():
        if name.endswith("_batch"):
            record.extra["mode"] = "batch"
            record.extra.setdefault("baseline_name", name[: -len("_batch")])
        else:
            record.extra.setdefault("mode", "scalar")
    return records


def _one_rdma_write():
    from repro.apps.programs import StaticL2Program
    from repro.core.rocegen import RoceRequestGenerator
    from repro.experiments.topology import build_testbed

    tb = build_testbed(n_hosts=1)
    program = StaticL2Program()
    program.install(tb.hosts[0].eth.mac, tb.host_ports[0])
    program.install(tb.memory_server.eth.mac, tb.server_port)
    tb.switch.bind_program(program)
    channel = tb.controller.open_channel(tb.memory_server, tb.server_port, 4096)
    gen = RoceRequestGenerator(tb.switch, channel)
    gen.write(channel.base_address, b"x" * 64)
    tb.sim.run()
    assert channel.region.writes == 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Microbenchmark the simulation fast path; emit a JSON perf record."
    )
    parser.add_argument(
        "--output", default="BENCH_micro.json", help="perf record path"
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "BENCH_micro_seed.json"),
        help="baseline record to compute speedups against ('' to skip)",
    )
    parser.add_argument(
        "--label", default="bench_micro", help="label stored in the record"
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced iteration counts (CI smoke)"
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write the run's metric registry to PATH (repro-metrics/v1 JSON)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record the RDMA wire timeline and write JSONL to PATH",
    )
    args = parser.parse_args(argv)

    from contextlib import nullcontext

    from repro.obs import Observability, WireTrace

    # Observability is only installed when its output was asked for: the
    # round-trip benchmarks build a testbed per op, and thousands of
    # testbeds worth of metrics in one shared registry (~60k series)
    # slow those loops ~3x — a measurement artifact, not kernel cost.
    obs = Observability(trace=WireTrace() if args.trace else None)
    wrapper = obs.activate() if (args.metrics or args.trace) else nullcontext()
    with wrapper:
        records = collect_records(quick=args.quick)
    baseline = None
    if args.baseline and os.path.exists(args.baseline):
        baseline = load_report(args.baseline)
    report = make_report(args.label, records, baseline=baseline)
    write_report(args.output, report)

    for name, record in sorted(records.items()):
        rate = record.extra.get("ops_per_sec") or record.events_per_sec
        speed = report.get("speedup", {}).get(name)
        suffix = f"  ({speed:.2f}x vs baseline)" if speed else ""
        print(f"{name:32s} {rate:14,.0f} ops/s{suffix}")
    print(f"\nwrote {args.output}")
    if args.metrics:
        from repro.analysis.reporting import write_metrics_json

        write_metrics_json(args.metrics, obs.registry, label=args.label)
        print(f"wrote {args.metrics} ({len(obs.registry)} metrics)")
    if args.trace:
        obs.trace.write_jsonl(args.trace)
        print(f"wrote {args.trace} ({len(obs.trace)} events)")
    if baseline is not None:
        events_speedup = report["speedup"].get("simulator_event_throughput")
        if events_speedup is not None:
            print(f"event-loop speedup vs {report['baseline_label']}: "
                  f"{events_speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
