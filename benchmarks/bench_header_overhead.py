"""§4 benchmark: RoCE protocol overhead accounting.

Byte-exact reproduction of the paper's overhead paragraph: RoCEv2 adds
40 B of routing/transport headers (52 B for RoCEv1) plus 16 B (WRITE/READ)
or 28 B (Fetch-and-Add) of operation-specific headers.
"""

from repro.experiments.overhead import format_overhead, run_overhead


def test_header_overhead(benchmark, paper_report):
    rows = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    paper_report(format_overhead(rows))
    by_name = {r.operation: r for r in rows}

    benchmark.extra_info["write_total"] = by_name["RDMA WRITE"].measured_total
    benchmark.extra_info["fa_total"] = by_name["Fetch-and-Add"].measured_total

    assert all(row.matches_paper for row in rows)
    assert by_name["RDMA WRITE"].measured_total == 56
    assert by_name["RDMA READ"].measured_total == 56
    assert by_name["Fetch-and-Add"].measured_total == 68
    assert by_name["RDMA WRITE"].rocev1_total == 68
    assert by_name["Fetch-and-Add"].rocev1_total == 80
