"""Link-protection benchmark: the §14 acceptance bar, held by a record.

Regenerates the linkguard subsystem's headline claim (DESIGN.md §14,
docs/RESILIENCE.md): over a server link corrupting one frame in a
thousand — both directions — a full-ordered :class:`LinkGuard` keeps
the goodput of the packet-buffer and lookup primitives within 5 % of
the lossless baseline with **zero lost updates**, while transport-only
recovery (guard off, or breaker-only — the breaker never opens on
scattered corruption) is measurably worse.

Run directly (``python benchmarks/bench_linkguard.py``) this module
writes the machine-readable ``BENCH_linkguard.json`` perf record the
repo commits; under pytest-benchmark it asserts the same bounds.
"""

import argparse
import os
import sys

from repro.analysis.profiling import compare_records, load_report, write_report
from repro.experiments.linkguard import (
    CORRUPT_RATE,
    LINKGUARD_SEED,
    assert_linkguard,
    format_linkguard,
    linkguard_perf_record,
    run_linkguard_sweep,
)


def test_linkguard_goodput_and_zero_loss(benchmark, paper_report):
    rows = benchmark.pedantic(
        run_linkguard_sweep,
        kwargs={"packets": 1000},
        rounds=1,
        iterations=1,
    )
    paper_report(format_linkguard(rows))
    benchmark.extra_info["lost"] = {
        f"{row.workload}[{row.variant}]": row.lost for row in rows
    }
    assert_linkguard(rows)


def test_linkguard_sweep_is_deterministic(benchmark, paper_report):
    kwargs = {"packets": 600, "workloads": ("lookup",)}
    rows = benchmark.pedantic(
        run_linkguard_sweep, kwargs=kwargs, rounds=1, iterations=1
    )
    paper_report(format_linkguard(rows))
    replay = run_linkguard_sweep(**kwargs)
    assert [r.__dict__ for r in rows] == [r.__dict__ for r in replay]


# -- standalone perf-record harness -----------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Benchmark the link-protection sweep; emit a JSON perf record."
        )
    )
    parser.add_argument(
        "--output", default="BENCH_linkguard.json", help="perf record path"
    )
    parser.add_argument(
        "--baseline",
        default="",
        help="baseline record to compute speedups against ('' to skip)",
    )
    parser.add_argument(
        "--label", default="bench_linkguard", help="label stored in the record"
    )
    parser.add_argument(
        "--packets", type=int, default=1500, help="packets per sweep point"
    )
    parser.add_argument(
        "--corrupt-rate",
        type=float,
        default=CORRUPT_RATE,
        help="per-frame corruption probability on the server link",
    )
    parser.add_argument(
        "--seed", type=int, default=LINKGUARD_SEED, help="FaultPlan seed"
    )
    parser.add_argument("--quick", action="store_true", help="reduced scales")
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write the run's metric registry to PATH (repro-metrics/v1 JSON)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record the wire timeline (GUARD events included) to PATH",
    )
    args = parser.parse_args(argv)

    from repro.obs import Observability, WireTrace

    obs = Observability(trace=WireTrace() if args.trace else None)
    with obs.activate():
        rows = run_linkguard_sweep(
            packets=800 if args.quick else args.packets,
            corrupt_rate=args.corrupt_rate,
            seed=args.seed,
        )
    assert_linkguard(rows)
    report = linkguard_perf_record(rows, label=args.label)
    if args.baseline and os.path.exists(args.baseline):
        baseline = load_report(args.baseline)
        report["baseline_label"] = baseline.get("label")
        report["speedup"] = compare_records(report, baseline)
    write_report(args.output, report)

    print(format_linkguard(rows))
    by = {(r.workload, r.variant): r for r in rows}
    on = by[("pktbuf", "guard-on")]
    off = by[("pktbuf", "guard-off")]
    base = by[("pktbuf", "lossless")]
    print(
        f"\npktbuf drain: guard-on {on.goodput_per_ms:,.0f} pkt/ms "
        f"({on.goodput_per_ms / base.goodput_per_ms:.1%} of lossless) vs "
        f"guard-off {off.goodput_per_ms:,.0f} pkt/ms "
        f"({off.goodput_per_ms / base.goodput_per_ms:.1%}); "
        f"lookup guard-off lost {by[('lookup', 'guard-off')].lost}, "
        f"guard-on lost {by[('lookup', 'guard-on')].lost}; seed={args.seed}"
    )
    print(f"wrote {args.output}")
    if args.metrics:
        from repro.analysis.reporting import write_metrics_json

        write_metrics_json(args.metrics, obs.registry, label=args.label)
        print(f"wrote {args.metrics} ({len(obs.registry)} metrics)")
    if args.trace:
        obs.trace.write_jsonl(args.trace)
        print(f"wrote {args.trace} ({len(obs.trace)} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
