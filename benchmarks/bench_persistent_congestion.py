"""§2.1 benchmark: persistent congestion — remote buffer alone vs with ECN.

The paper's burst/persistence split: the remote packet buffer absorbs
bursts, but persistent overload must be handled by "end-to-end congestion
control based on ECN".  Two line-rate senders overload one port forever;
without ECN the remote ring fills and drops, with the co-designed
ring-occupancy CE marking the DCTCP-style senders converge and the system
is loss-free.
"""

from repro.experiments.persistent_congestion import (
    format_persistent_congestion,
    run_persistent_congestion_comparison,
)


def test_persistent_congestion(benchmark, paper_report):
    results = benchmark.pedantic(
        run_persistent_congestion_comparison,
        kwargs={"duration_ms": 6.0},
        rounds=1,
        iterations=1,
    )
    paper_report(format_persistent_congestion(results))
    buffer_only, with_ecn = results

    benchmark.extra_info["buffer_only_loss_pct"] = round(
        buffer_only.loss_rate * 100, 1
    )
    benchmark.extra_info["with_ecn_loss_pct"] = round(with_ecn.loss_rate * 100, 1)
    benchmark.extra_info["with_ecn_final_gbps"] = round(
        with_ecn.aggregate_final_rate_gbps, 1
    )

    # Remote memory alone only delays the loss under persistent overload.
    assert buffer_only.ring_full_drops > 0
    assert buffer_only.loss_rate > 0.15
    assert buffer_only.peak_ring_entries >= 9000
    # The ECN co-design makes it loss-free with a bounded ring.
    assert with_ecn.loss_rate == 0.0
    assert with_ecn.ring_full_drops == 0
    assert with_ecn.peak_ring_entries < buffer_only.peak_ring_entries / 4
    # Senders converged toward the 40 Gbps bottleneck's fair share —
    # and fairly (Jain's index near 1).
    from repro.analysis.stats import jain_fairness

    assert 20.0 <= with_ecn.aggregate_final_rate_gbps <= 45.0
    assert jain_fairness(with_ecn.final_rates_gbps) > 0.9
