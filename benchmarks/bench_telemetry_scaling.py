"""§2.3 / Fig. 1c benchmark: telemetry state-store scaling.

An SRAM-budget sketch vs the same algorithm over remote DRAM counters
(the paper argues the number of counters can grow ~10^3x).  Measured on a
Zipf packet stream: estimation error, heavy-hitter detection quality, and
zero server-CPU involvement.
"""

from repro.experiments.telemetry import format_telemetry, run_telemetry


def test_telemetry_scaling(benchmark, paper_report):
    results = benchmark.pedantic(
        run_telemetry,
        kwargs={
            "flows": 20_000,
            "packets": 20_000,
            "remote_counters": 1 << 20,
        },
        rounds=1,
        iterations=1,
    )
    paper_report(format_telemetry(results))
    local, remote = results

    benchmark.extra_info["counter_scaling"] = (
        remote.sketch_counters // local.sketch_counters
    )
    benchmark.extra_info["local_mre"] = round(local.mean_relative_error, 3)
    benchmark.extra_info["remote_mre"] = round(remote.mean_relative_error, 3)

    # Paper shape: orders-of-magnitude more counters, far lower error,
    # better heavy-hitter detection, no CPU involvement.
    assert remote.sketch_counters >= 100 * local.sketch_counters
    assert remote.mean_relative_error < local.mean_relative_error / 5
    assert remote.hh_f1 >= local.hh_f1
    assert remote.hh_f1 > 0.9
    assert remote.server_cpu_packets == 0
