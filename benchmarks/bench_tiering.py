"""Tiered memory at scale: placement policies over million-flow Zipf FAA.

Regenerates the headline numbers of the tiered-memory subsystem
(DESIGN.md §13):

* the **placement-policy sweep** — all-DRAM baseline vs static pins vs
  online frequency vs occupancy watermarks, same seeded bursty Zipf
  workload, mean/p99 Fetch-and-Add latency per policy.  The acceptance
  bar: the frequency policy cuts mean FAA latency by **>= 1.5x** with a
  fast window of just 5 % of the working set's blocks;
* the **safety story** — every run proves exact per-counter totals
  (zero lost updates) and a fast-occupancy peak that never exceeded the
  configured budget, read from the ``tiering.*`` metrics;
* the **chaos variant** — an RNIC blackout lands mid-promotion on one
  member of a K=2 replicated pool; demote-not-drop plus the replica max
  rule still returns every update.

Run directly (``python benchmarks/bench_tiering.py``) this module times
the same runs with :mod:`repro.analysis.profiling` and writes a
machine-readable ``BENCH_tiering.json`` perf record; ``--quick`` shrinks
the population to 100 k flows for the CI tiering-smoke job.
"""

import argparse
import os
import sys

from repro.analysis.profiling import (
    load_report,
    make_report,
    measure,
    write_report,
)
from repro.experiments.tiering import (
    TIERING_POLICIES,
    format_tiering_chaos,
    format_tiering_sweep,
    run_tiering_chaos_point,
    run_tiering_point,
)

#: Full-scale geometry: a 1 M-flow Zipf population (the acceptance bar)
#: over a 4 k-counter working set; the fast window is 3 of 64 blocks.
FULL = dict(flows=1_000_000, counters=1 << 12, updates=20_000, seed=42)
#: CI smoke geometry: 100 k flows at the same fixed seed (fast = 2/32).
QUICK = dict(flows=100_000, counters=1 << 11, updates=4_000, seed=42)
#: Chaos-variant geometry (K=2 replication doubles every operation).
CHAOS_FULL = dict(flows=1_000_000, counters=1 << 10, updates=6_000, seed=42)
CHAOS_QUICK = dict(flows=100_000, counters=1 << 10, updates=3_000, seed=42)

#: The acceptance bar: frequency placement vs the all-DRAM baseline.
SPEEDUP_BAR = 1.5


def _check_sweep(points) -> float:
    """Shared acceptance gates; returns the frequency-vs-DRAM speedup."""
    by_policy = {p.policy: p for p in points}
    for p in points:
        assert p.lost_updates == 0, (p.policy, p.lost_updates)
        assert p.occupancy_bounded, (
            p.policy,
            p.fast_occupancy_peak,
            p.fast_capacity_bytes,
        )
    # The baseline must not touch the fast tier at all.
    assert by_policy["dram"].fast_hit_fraction == 0.0
    speedup = (
        by_policy["dram"].mean_latency_ns
        / by_policy["frequency"].mean_latency_ns
    )
    assert speedup >= SPEEDUP_BAR, f"frequency speedup {speedup:.2f}x"
    return speedup


def test_placement_policy_sweep(benchmark, paper_report):
    points = benchmark.pedantic(
        lambda: [run_tiering_point(policy, **QUICK) for policy in TIERING_POLICIES],
        rounds=1,
        iterations=1,
    )
    paper_report(format_tiering_sweep(points))

    speedup = _check_sweep(points)
    benchmark.extra_info["frequency_speedup"] = round(speedup, 2)
    benchmark.extra_info["mean_latency_ns"] = {
        p.policy: round(p.mean_latency_ns, 1) for p in points
    }


def test_chaos_blackout_zero_lost(benchmark, paper_report):
    point = benchmark.pedantic(
        lambda: run_tiering_chaos_point(**CHAOS_QUICK),
        rounds=1,
        iterations=1,
    )
    paper_report(format_tiering_chaos(point))
    benchmark.extra_info["members_alive"] = point.members_alive
    benchmark.extra_info["promotions"] = point.promotions

    # Acceptance: the blackout lost nothing, and promotions were
    # actually underway when it landed (otherwise the test is vacuous).
    assert point.zero_lost, point
    assert point.promotions > 0


# -- standalone perf-record harness -----------------------------------------


def collect_records(quick: bool = False):
    """Run the study under the profiler; returns ({name: PerfRecord}, ...)."""
    scale = QUICK if quick else FULL
    chaos_scale = CHAOS_QUICK if quick else CHAOS_FULL

    records = {}
    points = []
    for policy in TIERING_POLICIES:
        point, record = measure(
            f"tiering_{policy}", run_tiering_point, policy, **scale
        )
        record.extra.update(
            policy=policy,
            flows=point.flows,
            counters=point.counters,
            fast_blocks=point.fast_blocks,
            total_blocks=point.total_blocks,
            fast_capacity_bytes=point.fast_capacity_bytes,
            fast_occupancy_peak=point.fast_occupancy_peak,
            occupancy_bounded=point.occupancy_bounded,
            mean_latency_ns=round(point.mean_latency_ns, 1),
            p99_latency_ns=round(point.p99_latency_ns, 1),
            fast_hit_fraction=round(point.fast_hit_fraction, 4),
            promotions=point.promotions,
            demotions=point.demotions,
            lost_updates=point.lost_updates,
        )
        records[record.label] = record
        points.append(point)
    by_policy = {p.policy: p for p in points}
    speedup = (
        by_policy["dram"].mean_latency_ns
        / by_policy["frequency"].mean_latency_ns
    )
    records["tiering_frequency"].extra["speedup_vs_dram"] = round(speedup, 3)

    chaos, record = measure(
        "tiering_chaos_blackout", run_tiering_chaos_point, **chaos_scale
    )
    record.extra.update(
        flows=chaos.flows,
        updates=chaos.updates,
        blackout_ns=chaos.blackout_ns,
        members_alive=chaos.members_alive,
        promotions=chaos.promotions,
        abandoned_blocks=chaos.abandoned_blocks,
        lost_updates=chaos.lost_updates,
        updates_unreplicated=chaos.updates_unreplicated,
        zero_lost=chaos.zero_lost,
    )
    records[record.label] = record
    return records, points, chaos


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Benchmark the tiered-memory placement policies; emit a JSON "
            "perf record."
        )
    )
    parser.add_argument(
        "--output", default="BENCH_tiering.json", help="perf record path"
    )
    parser.add_argument(
        "--baseline",
        default="",
        help="baseline record to compute speedups against ('' to skip)",
    )
    parser.add_argument(
        "--label", default="bench_tiering", help="label stored in the record"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="100k-flow population (CI smoke)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write the run's metric registry to PATH (repro-metrics/v1)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record the RDMA wire timeline and write JSONL to PATH",
    )
    args = parser.parse_args(argv)

    from repro.obs import Observability, WireTrace

    obs = Observability(trace=WireTrace() if args.trace else None)
    with obs.activate():
        records, points, chaos = collect_records(quick=args.quick)
    baseline = None
    if args.baseline and os.path.exists(args.baseline):
        baseline = load_report(args.baseline)
    report = make_report(args.label, records, baseline=baseline)
    write_report(args.output, report)

    print(format_tiering_sweep(points))
    print()
    print(format_tiering_chaos(chaos))
    speedup = records["tiering_frequency"].extra["speedup_vs_dram"]
    lost = sum(r.extra.get("lost_updates", 0) for r in records.values())
    bounded = all(
        r.extra["occupancy_bounded"]
        for r in records.values()
        if "occupancy_bounded" in r.extra
    )
    print(f"\nfrequency-vs-DRAM mean FAA speedup: {speedup:.2f}x")
    print(f"lost updates across all runs: {lost}")
    if speedup < SPEEDUP_BAR:
        print(f"FAIL: frequency speedup below the {SPEEDUP_BAR}x bar")
        return 1
    if lost != 0 or not chaos.zero_lost:
        print("FAIL: counter updates were lost")
        return 1
    if not bounded:
        print("FAIL: fast occupancy exceeded the configured budget")
        return 1
    print(f"wrote {args.output}")
    if args.metrics:
        from repro.analysis.reporting import write_metrics_json

        write_metrics_json(args.metrics, obs.registry, label=args.label)
        print(f"wrote {args.metrics} ({len(obs.registry)} metrics)")
    if args.trace:
        obs.trace.write_jsonl(args.trace)
        print(f"wrote {args.trace} ({len(obs.trace)} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
