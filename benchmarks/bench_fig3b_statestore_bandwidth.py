"""Figure 3b benchmark: state-store primitive bandwidth overhead.

Regenerates Fig. 3b: the Fetch-and-Add request stream consumes ~2.1 Gbps
of switch↔RNIC bandwidth at every packet size (capped by the RNIC atomic
rate), the remote counter is 100 % accurate, and end-to-end throughput is
not degraded.
"""

import statistics

from repro.experiments.fig3b import PACKET_SIZES, format_fig3b, run_fig3b


def test_fig3b_statestore_bandwidth(benchmark, paper_report):
    rows = benchmark.pedantic(
        run_fig3b,
        kwargs={"packet_sizes": PACKET_SIZES, "packets": 4000},
        rounds=1,
        iterations=1,
    )
    paper_report(format_fig3b(rows))

    request_rates = [row.fa_request_gbps for row in rows]
    benchmark.extra_info["mean_fa_request_gbps"] = statistics.fmean(request_rates)
    benchmark.extra_info["paper_fa_request_gbps"] = 2.1

    # Paper shape: ~2.1 Gbps, flat across packet sizes, 100% accurate,
    # no goodput loss.
    assert all(1.6 <= rate <= 2.8 for rate in request_rates)
    assert max(request_rates) - min(request_rates) < 0.6
    assert all(row.counter_accurate for row in rows)
    for row in rows:
        assert row.goodput_gbps >= row.baseline_goodput_gbps * 0.99
