"""Figure 3a benchmark: lookup-table primitive latency overhead.

Regenerates both series of Fig. 3a (baseline L2 switch vs lookup-table
primitive, packet sizes 64 B – 1 KB) and checks the paper's headline:
the primitive "only adds 1-2 µs latency on average".
"""

import statistics

from repro.experiments.fig3a import PACKET_SIZES, format_fig3a, run_fig3a


def test_fig3a_lookup_latency(benchmark, paper_report):
    rows = benchmark.pedantic(
        run_fig3a,
        kwargs={"packet_sizes": PACKET_SIZES, "probes": 30},
        rounds=1,
        iterations=1,
    )
    paper_report(format_fig3a(rows))

    deltas = [row.delta_us for row in rows]
    benchmark.extra_info["mean_delta_us"] = statistics.fmean(deltas)
    benchmark.extra_info["per_size_delta_us"] = {
        row.packet_size: round(row.delta_us, 2) for row in rows
    }

    # Shape: the primitive always costs more than the baseline, and the
    # average overhead sits in the paper's 1-2 us band (we allow a little
    # head-room on the largest frames, which serialize three extra times).
    assert all(row.delta_us > 0 for row in rows)
    assert 1.0 <= statistics.fmean(deltas) <= 2.5
    assert max(deltas) <= 3.0
