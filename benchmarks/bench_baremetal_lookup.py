"""§2.2 / Fig. 1b benchmark: bare-metal VIP→PIP translation.

20k virtual IPs against 256 SRAM entries.  The CPU slow path gives the
baseline its µs-scale tail; the remote lookup table eliminates the
software path entirely ("such slow-path forwarding through the software
can be eliminated or minimized").
"""

from repro.experiments.baremetal import (
    format_baremetal,
    run_baremetal_comparison,
)


def test_baremetal_lookup(benchmark, paper_report):
    results = benchmark.pedantic(
        run_baremetal_comparison,
        kwargs={"vips": 20_000, "sram_entries": 256, "packets": 6_000},
        rounds=1,
        iterations=1,
    )
    paper_report(format_baremetal(results))
    by_mode = {r.mode: r for r in results}
    slow, remote = by_mode["slowpath"], by_mode["remote"]

    benchmark.extra_info["slowpath_p99_us"] = round(slow.p99_latency_us, 2)
    benchmark.extra_info["remote_p99_us"] = round(remote.p99_latency_us, 2)
    benchmark.extra_info["cache_hit_rate"] = round(remote.cache_hit_rate, 3)

    # Both modes deliver everything at this load, but the software path
    # dominates the baseline's tail.
    assert slow.delivery_rate == 1.0
    assert remote.delivery_rate == 1.0
    assert slow.slow_path_translations > 0
    assert remote.slow_path_translations == 0
    assert remote.p99_latency_us < slow.p99_latency_us / 3
    # The SRAM cache covers the popular VIPs (Zipf traffic).
    assert remote.cache_hit_rate > 0.4
