"""§6 benchmark: in-network sequencer over a remote counter.

Sequencing throughput vs offered load: linear until the RNIC atomic
engine saturates (~2.4 Mops in this model), with gap-free, arrival-ordered
numbering and zero server CPU at every point.
"""

from repro.experiments.sequencer import format_sequencer, run_sequencer_throughput


def test_sequencer_throughput(benchmark, paper_report):
    results = benchmark.pedantic(
        run_sequencer_throughput,
        kwargs={"packets": 3000},
        rounds=1,
        iterations=1,
    )
    paper_report(format_sequencer(results))
    benchmark.extra_info["saturation_mops"] = round(
        max(r.achieved_mops for r in results), 2
    )

    for r in results:
        assert r.gap_free
        assert r.arrival_ordered
        assert r.server_cpu_packets == 0
    # Linear region then saturation at the atomic-engine cap.
    below = [r for r in results if r.offered_mpps <= 2.0]
    above = [r for r in results if r.offered_mpps >= 3.0]
    for r in below:
        assert r.achieved_mops == __import__("pytest").approx(
            r.offered_mpps, rel=0.05
        )
    for r in above:
        assert 2.2 <= r.achieved_mops <= 2.6
