"""Chaos benchmark: the reliability acceptance bar, held by a record.

Regenerates the fault-injection subsystem's headline claim (DESIGN.md
§10): at 1 % i.i.d. loss on the memory-server link — both directions —
the reliable-mode state store completes with **zero lost counter
updates** and goodput within 10 % of the lossless run, deterministically
reproducible from the FaultPlan seed.

Run directly (``python benchmarks/bench_chaos.py``) this module writes
the machine-readable ``BENCH_chaos.json`` perf record the repo commits;
under pytest-benchmark it asserts the same bounds.
"""

import argparse
import os
import sys

from repro.analysis.profiling import compare_records, load_report, write_report
from repro.experiments.chaos import (
    CHAOS_SEED,
    LOSS_RATES,
    assert_recovery,
    chaos_perf_record,
    format_chaos,
    format_chaos_recovery,
    recovery_perf_record,
    run_chaos_recovery,
    run_chaos_sweep,
)


def _assert_acceptance(rows) -> None:
    by_rate = {row.loss_rate: row for row in rows}
    lossless = by_rate[0.0]
    lossy = by_rate[0.01]
    # Zero lost updates at every swept loss rate, counters exact.
    assert all(row.lost_updates == 0 for row in rows)
    assert all(row.counters_wrong == 0 for row in rows)
    # Loss was actually injected (the sweep is not vacuous).
    assert lossy.link_drops > 0
    # Goodput at 1% loss within 10% of the lossless run.
    assert (
        lossy.goodput_updates_per_ms
        >= 0.9 * lossless.goodput_updates_per_ms
    )


def test_chaos_zero_loss_and_goodput(benchmark, paper_report):
    rows = benchmark.pedantic(
        run_chaos_sweep,
        kwargs={"packets": 2000},
        rounds=1,
        iterations=1,
    )
    paper_report(format_chaos(rows))
    benchmark.extra_info["lost_updates"] = {
        f"{row.loss_rate:g}": row.lost_updates for row in rows
    }
    _assert_acceptance(rows)


def test_chaos_recovery_self_heals(benchmark, paper_report):
    report = benchmark.pedantic(
        run_chaos_recovery,
        kwargs={"packets": 1500},
        rounds=1,
        iterations=1,
    )
    paper_report(format_chaos_recovery(report))
    benchmark.extra_info["lost_updates"] = report.lost_updates
    benchmark.extra_info["lost_buffered"] = report.lost_buffered
    benchmark.extra_info["goodput_degraded_per_ms"] = (
        report.degraded_goodput_per_ms
    )
    benchmark.extra_info["goodput_healthy_per_ms"] = (
        report.healthy_goodput_per_ms
    )
    assert_recovery(report)


def test_chaos_sweep_is_deterministic(benchmark, paper_report):
    rows = benchmark.pedantic(
        run_chaos_sweep,
        kwargs={"packets": 1000, "loss_rates": (0.0, 0.01)},
        rounds=1,
        iterations=1,
    )
    paper_report(format_chaos(rows))
    replay = run_chaos_sweep(packets=1000, loss_rates=(0.0, 0.01))
    assert [r.__dict__ for r in rows] == [r.__dict__ for r in replay]


# -- standalone perf-record harness -----------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Benchmark the fault-injection/recovery path; emit a JSON "
            "perf record."
        )
    )
    parser.add_argument(
        "--output", default="BENCH_chaos.json", help="perf record path"
    )
    parser.add_argument(
        "--baseline",
        default="",
        help="baseline record to compute speedups against ('' to skip)",
    )
    parser.add_argument(
        "--label", default="bench_chaos", help="label stored in the record"
    )
    parser.add_argument(
        "--packets", type=int, default=3000, help="packets per sweep point"
    )
    parser.add_argument(
        "--seed", type=int, default=CHAOS_SEED, help="FaultPlan seed"
    )
    parser.add_argument("--quick", action="store_true", help="reduced scales")
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write the run's metric registry to PATH (repro-metrics/v1 JSON)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record the RDMA wire timeline and write JSONL to PATH",
    )
    args = parser.parse_args(argv)

    from repro.obs import Observability, WireTrace

    obs = Observability(trace=WireTrace() if args.trace else None)
    with obs.activate():
        rows = run_chaos_sweep(
            loss_rates=LOSS_RATES,
            packets=1000 if args.quick else args.packets,
            seed=args.seed,
        )
    _assert_acceptance(rows)
    with obs.activate():
        recovery = run_chaos_recovery(
            packets=1000 if args.quick else args.packets, seed=args.seed
        )
    assert_recovery(recovery)
    report = chaos_perf_record(rows, label=args.label)
    report["results"]["recovery"] = recovery_perf_record(recovery).to_dict()
    if args.baseline and os.path.exists(args.baseline):
        baseline = load_report(args.baseline)
        report["baseline_label"] = baseline.get("label")
        report["speedup"] = compare_records(report, baseline)
    write_report(args.output, report)

    print(format_chaos(rows))
    lossy = next(r for r in rows if r.loss_rate == 0.01)
    print(
        f"\n1% loss: {lossy.lost_updates} lost updates, "
        f"{lossy.link_drops} drops injected, "
        f"{lossy.naks} NAKs, seed={lossy.seed}"
    )
    print()
    print(format_chaos_recovery(recovery))
    print(
        f"\nrecovery goodput: {recovery.degraded_goodput_per_ms:,.0f} upd/ms "
        f"degraded vs {recovery.healthy_goodput_per_ms:,.0f} upd/ms healthy, "
        f"{recovery.lost_updates} lost, seed={recovery.seed}"
    )
    print(f"wrote {args.output}")
    if args.metrics:
        from repro.analysis.reporting import write_metrics_json

        write_metrics_json(args.metrics, obs.registry, label=args.label)
        print(f"wrote {args.metrics} ({len(obs.registry)} metrics)")
    if args.trace:
        obs.trace.write_jsonl(args.trace)
        print(f"wrote {args.trace} ({len(obs.trace)} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
