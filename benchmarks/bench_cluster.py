"""Cluster benchmark: sharded lookup scale-out and replicated failover.

Regenerates the two headline results of the cluster subsystem:

* sharding the lookup table over a 4-server pool sustains at least 3x
  the single-server miss throughput at equal per-server region size
  (every configuration driven at its own maximum lossless rate — the
  §5 methodology; the per-server ceiling is the RNIC's ~300 ns message
  pipeline, two messages per miss);
* killing one server mid-count under K=2 replication loses not a single
  state-store counter update.

Run directly (``python benchmarks/bench_cluster.py``) this module times
the same runs with :mod:`repro.analysis.profiling` and writes a
machine-readable ``BENCH_cluster.json`` perf record.
"""

import argparse
import os
import sys

from repro.analysis.profiling import (
    load_report,
    make_report,
    measure,
    write_report,
)
from repro.sim.simulator import kernel_mode
from repro.experiments.scaleout import (
    format_failover,
    format_scaleout,
    run_failover_counters,
    run_scaleout,
    run_scaleout_point,
)


def test_scaleout_throughput(benchmark, paper_report):
    rows = benchmark.pedantic(
        run_scaleout,
        kwargs={"server_counts": (1, 2, 4), "lookups_per_host": 400},
        rounds=1,
        iterations=1,
    )
    paper_report(format_scaleout(rows))

    by_servers = {row.servers: row for row in rows}
    speedup = by_servers[4].mlookups_per_sec / by_servers[1].mlookups_per_sec
    benchmark.extra_info["speedup_4_servers"] = round(speedup, 2)
    benchmark.extra_info["mlookups_per_sec"] = {
        row.servers: round(row.mlookups_per_sec, 2) for row in rows
    }

    # Acceptance: >= 3x aggregate miss throughput at 4 servers, equal
    # per-server region size, with every configuration lossless.
    assert all(row.lookups_lost == 0 for row in rows)
    assert all(row.lookups_completed == row.lookups_sent for row in rows)
    assert speedup >= 3.0


def test_failover_loses_no_counter_updates(benchmark, paper_report):
    result = benchmark.pedantic(
        run_failover_counters,
        kwargs={"packets": 1500, "kill_at_ns": 600_000.0},
        rounds=1,
        iterations=1,
    )
    paper_report(format_failover(result))

    benchmark.extra_info["killed_member"] = result.killed_member
    benchmark.extra_info["counters_repaired"] = result.counters_repaired

    # Acceptance: a mid-run server death under K=2 replication loses no
    # counter update — every per-flow count is recovered exactly.
    assert result.detected
    assert result.members_failed == 1
    assert result.lost_updates == 0
    assert result.all_counters_exact


# -- standalone perf-record harness -----------------------------------------


def collect_records(quick: bool = False, modes: tuple = ("scalar", "batch")):
    """Run the cluster experiments under the profiler; {name: PerfRecord}.

    Each experiment runs once per kernel mode: scalar records keep their
    historical names, batch twins ride under a ``_batch`` suffix with
    ``extra["mode"]`` / ``extra["baseline_name"]`` set (the same
    convention as ``bench_micro``), so baseline speedups compare like
    with like.
    """
    lookups = 400 if quick else 1200
    packets = 1500 if quick else 4000
    kill_at = 600_000.0 if quick else 1_500_000.0

    records = {}
    rows = []
    result = None
    for mode in modes:
        suffix = "" if mode == "scalar" else f"_{mode}"
        with kernel_mode(mode):
            mode_rows = []
            for servers in (1, 2, 4):
                row, record = measure(
                    f"scaleout_{servers}_servers",
                    run_scaleout_point,
                    servers,
                    lookups_per_host=lookups,
                )
                record.label += suffix
                record.extra["servers"] = servers
                record.extra["mlookups_per_sec"] = round(row.mlookups_per_sec, 3)
                record.extra["lookups_lost"] = row.lookups_lost
                records[record.label] = record
                mode_rows.append(row)
            speedup = mode_rows[-1].mlookups_per_sec / mode_rows[0].mlookups_per_sec
            records[f"scaleout_4_servers{suffix}"].extra["speedup_vs_1_server"] = (
                round(speedup, 3)
            )

            mode_result, record = measure(
                "failover_replicated_counters",
                run_failover_counters,
                packets=packets,
                kill_at_ns=kill_at,
            )
            record.label += suffix
            record.extra["killed_member"] = mode_result.killed_member
            record.extra["lost_updates"] = mode_result.lost_updates
            record.extra["all_counters_exact"] = mode_result.all_counters_exact
            record.extra["counters_repaired"] = mode_result.counters_repaired
            records[record.label] = record
            if mode == "scalar" or result is None:
                rows = mode_rows
                result = mode_result
    for name, record in records.items():
        if name.endswith("_batch"):
            record.extra["mode"] = "batch"
            record.extra.setdefault("baseline_name", name[: -len("_batch")])
        else:
            record.extra.setdefault("mode", "scalar")
    return records, rows, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Benchmark the cluster subsystem; emit a JSON perf record."
        )
    )
    parser.add_argument(
        "--output", default="BENCH_cluster.json", help="perf record path"
    )
    parser.add_argument(
        "--baseline",
        default="",
        help="baseline record to compute speedups against ('' to skip)",
    )
    parser.add_argument(
        "--label", default="bench_cluster", help="label stored in the record"
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced scales (CI smoke)"
    )
    parser.add_argument(
        "--mode",
        choices=("scalar", "batch", "both"),
        default="both",
        help="kernel mode(s) to benchmark (default: both, side by side)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write the run's metric registry to PATH (repro-metrics/v1 JSON)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record the RDMA wire timeline and write JSONL to PATH",
    )
    args = parser.parse_args(argv)

    from repro.obs import Observability, WireTrace

    modes = ("scalar", "batch") if args.mode == "both" else (args.mode,)
    obs = Observability(trace=WireTrace() if args.trace else None)
    with obs.activate():
        records, rows, failover = collect_records(quick=args.quick, modes=modes)
    baseline = None
    if args.baseline and os.path.exists(args.baseline):
        baseline = load_report(args.baseline)
    report = make_report(args.label, records, baseline=baseline)
    write_report(args.output, report)

    print(format_scaleout(rows))
    print()
    print(format_failover(failover))
    key = (
        "scaleout_4_servers"
        if "scaleout_4_servers" in records
        else "scaleout_4_servers_batch"
    )
    speedup = records[key].extra["speedup_vs_1_server"]
    print(f"\n4-server speedup: {speedup:.2f}x "
          f"(lost updates on failover: {failover.lost_updates})")
    print(f"wrote {args.output}")
    if args.metrics:
        from repro.analysis.reporting import write_metrics_json

        write_metrics_json(args.metrics, obs.registry, label=args.label)
        print(f"wrote {args.metrics} ({len(obs.registry)} metrics)")
    if args.trace:
        obs.trace.write_jsonl(args.trace)
        print(f"wrote {args.trace} ({len(obs.trace)} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
