"""L4LB soak benchmark: zero-loss live migration, held by a record.

Regenerates the production scenario's headline claim (DESIGN.md §15,
docs/RESILIENCE.md): an L4 load balancer whose connection table lives
in remote memory survives a hard backend kill, a graceful drain, and
10⁻³ link corruption — all in one run — with **zero lost counter
updates** (every per-backend connection/byte counter recovered exactly
against the program's independent ledger) and **zero affinity breaks**
for established connections.

Run directly (``python benchmarks/bench_l4lb.py``) this module writes
the machine-readable ``BENCH_l4lb.json`` perf record the repo commits;
under pytest-benchmark it asserts the same bar at reduced scale.
"""

import argparse
import os

from repro.analysis.profiling import compare_records, load_report, write_report
from repro.experiments.l4lb import (
    L4LB_CORRUPT_RATE,
    L4LB_SEED,
    assert_l4lb,
    format_l4lb,
    l4lb_perf_record,
    run_l4lb_soak,
)

SMOKE_KWARGS = dict(
    connections=1_500,
    packets=3_000,
    new_connections=150,
    new_packets=400,
    backends=3,
    corrupt_rate=3e-3,
    cache_entries=512,
)


def test_l4lb_soak_zero_loss_zero_breaks(benchmark, paper_report):
    result = benchmark.pedantic(
        run_l4lb_soak, kwargs=SMOKE_KWARGS, rounds=1, iterations=1
    )
    paper_report(format_l4lb(result))
    benchmark.extra_info["lost_updates"] = result.lost_updates
    benchmark.extra_info["affinity_breaks"] = result.affinity_breaks
    benchmark.extra_info["connections_migrated"] = result.connections_migrated
    assert_l4lb(result)


def test_l4lb_soak_is_deterministic(benchmark, paper_report):
    result = benchmark.pedantic(
        run_l4lb_soak, kwargs=SMOKE_KWARGS, rounds=1, iterations=1
    )
    paper_report(format_l4lb(result))
    replay = run_l4lb_soak(**SMOKE_KWARGS)
    assert result.expected == replay.expected
    assert result.recovered == replay.recovered
    assert result.forwarded_by_backend == replay.forwarded_by_backend
    assert result.kill_detect_ns == replay.kill_detect_ns
    assert result.connections_migrated == replay.connections_migrated


# -- standalone perf-record harness -----------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Benchmark the L4LB combined-failure soak; emit a JSON perf "
            "record."
        )
    )
    parser.add_argument(
        "--output", default="BENCH_l4lb.json", help="perf record path"
    )
    parser.add_argument(
        "--baseline",
        default="",
        help="baseline record to compute speedups against ('' to skip)",
    )
    parser.add_argument(
        "--label", default="bench_l4lb", help="label stored in the record"
    )
    parser.add_argument(
        "--connections", type=int, default=100_000,
        help="established connections in the remote table",
    )
    parser.add_argument("--packets", type=int, default=20_000)
    parser.add_argument("--backends", type=int, default=4)
    parser.add_argument(
        "--corrupt-rate",
        type=float,
        default=L4LB_CORRUPT_RATE,
        help="per-frame corruption probability on the table-server link",
    )
    parser.add_argument(
        "--seed", type=int, default=L4LB_SEED,
        help="pins traffic, corruption, probe jitter, and placement",
    )
    parser.add_argument("--quick", action="store_true", help="reduced scales")
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write the run's metric registry to PATH (repro-metrics/v1 JSON)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record the wire timeline to PATH",
    )
    args = parser.parse_args(argv)

    from repro.obs import Observability, WireTrace

    obs = Observability(trace=WireTrace() if args.trace else None)
    with obs.activate():
        result = run_l4lb_soak(
            connections=2_000 if args.quick else args.connections,
            packets=4_000 if args.quick else args.packets,
            new_connections=200 if args.quick else 2_000,
            new_packets=600 if args.quick else 3_000,
            backends=args.backends,
            corrupt_rate=args.corrupt_rate,
            seed=args.seed,
        )
    assert_l4lb(result)
    report = l4lb_perf_record(result, label=args.label)
    if args.baseline and os.path.exists(args.baseline):
        baseline = load_report(args.baseline)
        report["baseline_label"] = baseline.get("label")
        report["speedup"] = compare_records(report, baseline)
    write_report(args.output, report)

    print(format_l4lb(result))
    detect = result.kill_detect_latency_ns
    print(
        f"\n{result.connections:,} connections over {result.backends} "
        f"backends: lost {result.lost_updates} of "
        f"{result.expected_total:,} counter updates, "
        f"{result.affinity_breaks} affinity breaks across "
        f"{result.connections_migrated:,} migrations; kill detected in "
        + (f"{detect / 1e3:.0f} us" if detect is not None else "-")
        + f"; seed={result.seed} -> {args.output}"
    )
    if args.metrics:
        from repro.analysis.reporting import write_metrics_json

        write_metrics_json(args.metrics, obs.registry, label=args.label)
    if args.trace:
        obs.trace.write_jsonl(args.trace)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
