"""Lookup at EMOMA scale: cuckoo one-READ misses over million-flow Zipf.

Regenerates the headline numbers of the cuckoo/cache/Zipf subsystem:

* every remote miss under ``layout="cuckoo"`` completes in **exactly one
  RDMA READ** — zero bounce-retry READs, asserted from the RoCE
  counters of every run;
* the SRAM cache-policy curves (FIFO/LRU/LFU/pin) over a heavy-tailed
  1 M-flow population, hit rate and p99 bounce latency per cache size;
* sustained remote-miss throughput scales with the memory pool
  (1 → 2 → 4 servers, each driven at its own lossless ceiling).

Run directly (``python benchmarks/bench_lookup_scale.py``) this module
times the same runs with :mod:`repro.analysis.profiling` and writes a
machine-readable ``BENCH_lookup.json`` perf record; ``--quick`` shrinks
the population to 100 k flows for the CI lookup-smoke job.
"""

import argparse
import os
import sys

from repro.analysis.profiling import (
    load_report,
    make_report,
    measure,
    write_report,
)
from repro.experiments.lookup_scale import (
    CACHE_SIZES,
    POLICIES,
    format_lookup_scaleout,
    format_policy_curve,
    run_lookup_scaleout_point,
    run_policy_point,
)

#: Full-scale geometry: a 1 M-flow Zipf population (the acceptance bar)
#: offered over 20 k packets into a 16 k-slot cuckoo table.
FULL = dict(population=1_000_000, count=20_000, entries=1 << 14, seed=3)
#: CI smoke geometry: 100 k flows at the same fixed seed.
QUICK = dict(population=100_000, count=3_000, entries=1 << 12, seed=3)


def test_policy_curve_and_one_read(benchmark, paper_report):
    points = benchmark.pedantic(
        lambda: [
            run_policy_point(policy, 256, **QUICK) for policy in POLICIES
        ],
        rounds=1,
        iterations=1,
    )
    paper_report(format_policy_curve(points))

    by_policy = {p.policy: p for p in points}
    benchmark.extra_info["hit_rates"] = {
        p.policy: round(p.hit_rate, 3) for p in points
    }

    # Acceptance: the one-READ invariant holds for every policy run, and
    # recency/frequency-aware policies beat FIFO on a Zipf population.
    for p in points:
        assert p.one_read.holds, (p.policy, p.one_read)
    assert by_policy["lru"].hit_rate > by_policy["fifo"].hit_rate
    assert by_policy["lfu"].hit_rate > by_policy["fifo"].hit_rate


def test_scaleout_sustained_misses(benchmark, paper_report):
    rows = benchmark.pedantic(
        lambda: [
            run_lookup_scaleout_point(n, **QUICK) for n in (1, 2, 4)
        ],
        rounds=1,
        iterations=1,
    )
    paper_report(format_lookup_scaleout(rows))

    by_servers = {r.servers: r for r in rows}
    speedup = by_servers[4].mmisses_per_sec / by_servers[1].mmisses_per_sec
    benchmark.extra_info["speedup_4_servers"] = round(speedup, 2)

    # Acceptance: lossless at every pool size, zero bounce-retry READs,
    # and >= 3x sustained miss throughput at 4 servers.
    assert all(r.lookups_lost == 0 for r in rows)
    assert all(r.one_read.holds for r in rows)
    assert speedup >= 3.0


# -- standalone perf-record harness -----------------------------------------


def collect_records(quick: bool = False):
    """Run the study under the profiler; returns ({name: PerfRecord}, ...)."""
    scale = QUICK if quick else FULL
    cache_sizes = (128, 256) if quick else CACHE_SIZES

    records = {}
    curve = []
    for policy in POLICIES:
        for cache in cache_sizes:
            point, record = measure(
                f"policy_{policy}_{cache}",
                run_policy_point,
                policy,
                cache,
                **scale,
            )
            record.extra.update(
                policy=policy,
                cache_entries=cache,
                population=point.population,
                distinct_flows=point.distinct_flows,
                hit_rate=round(point.hit_rate, 4),
                p99_bounce_ns=round(point.p99_bounce_ns, 1),
                pins=point.pins,
                remote_lookups=point.one_read.remote_lookups,
                reads_issued=point.one_read.reads_issued,
                bounce_retries=point.one_read.bounce_retries,
                one_read=point.one_read.holds,
            )
            records[record.label] = record
            curve.append(point)

    scaleout = []
    for servers in (1, 2, 4):
        row, record = measure(
            f"scaleout_{servers}_servers",
            run_lookup_scaleout_point,
            servers,
            **scale,
        )
        record.extra.update(
            servers=servers,
            population=row.population,
            offered_mlps=row.offered_mlps,
            mmisses_per_sec=round(row.mmisses_per_sec, 3),
            lookups_lost=row.lookups_lost,
            p99_bounce_ns=round(row.p99_bounce_ns, 1),
            bounce_retries=row.one_read.bounce_retries,
            one_read=row.one_read.holds,
        )
        records[record.label] = record
        scaleout.append(row)
    speedup = scaleout[-1].mmisses_per_sec / scaleout[0].mmisses_per_sec
    records["scaleout_4_servers"].extra["speedup_vs_1_server"] = round(
        speedup, 3
    )
    return records, curve, scaleout


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Benchmark the EMOMA-scale lookup subsystem; emit a JSON "
            "perf record."
        )
    )
    parser.add_argument(
        "--output", default="BENCH_lookup.json", help="perf record path"
    )
    parser.add_argument(
        "--baseline",
        default="",
        help="baseline record to compute speedups against ('' to skip)",
    )
    parser.add_argument(
        "--label", default="bench_lookup", help="label stored in the record"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="100k-flow population (CI smoke)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write the run's metric registry to PATH (repro-metrics/v1)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record the RDMA wire timeline and write JSONL to PATH",
    )
    args = parser.parse_args(argv)

    from repro.obs import Observability, WireTrace

    obs = Observability(trace=WireTrace() if args.trace else None)
    with obs.activate():
        records, curve, scaleout = collect_records(quick=args.quick)
    baseline = None
    if args.baseline and os.path.exists(args.baseline):
        baseline = load_report(args.baseline)
    report = make_report(args.label, records, baseline=baseline)
    write_report(args.output, report)

    print(format_policy_curve(curve))
    print()
    print(format_lookup_scaleout(scaleout))
    retries = sum(r.extra.get("bounce_retries", 0) for r in records.values())
    speedup = records["scaleout_4_servers"].extra["speedup_vs_1_server"]
    print(f"\nbounce-retry READs across all runs: {retries}")
    print(f"4-server sustained-miss speedup: {speedup:.2f}x")
    if retries != 0:
        print("FAIL: the cuckoo one-READ invariant is violated")
        return 1
    print(f"wrote {args.output}")
    if args.metrics:
        from repro.analysis.reporting import write_metrics_json

        write_metrics_json(args.metrics, obs.registry, label=args.label)
        print(f"wrote {args.metrics} ({len(obs.registry)} metrics)")
    if args.trace:
        obs.trace.write_jsonl(args.trace)
        print(f"wrote {args.trace} ({len(obs.trace)} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
