"""Tiered remote memory: DRAM homes fronted by a bounded fast tier.

See DESIGN.md §13.  :class:`TieredMemoryPool` owns the fast budget and
the placement-policy tick; :class:`TieredRegionGeometry` is the per-object
block map primitives resolve their addresses through.
"""

from .geometry import TieredRegionGeometry
from .pool import DEFAULT_TICK_NS, TieredMemoryPool

__all__ = [
    "DEFAULT_TICK_NS",
    "TieredMemoryPool",
    "TieredRegionGeometry",
]
