"""The tiered memory pool: DRAM homes fronted by a bounded fast tier.

:class:`TieredMemoryPool` extends the :class:`~repro.cluster.pool.MemoryPool`
with a small fast tier (RDCA-style cache capacity: an on-server LLC slice
or a dedicated low-latency member) and a first-class
:class:`~repro.policies.placement.PlacementPolicy` deciding which blocks
of which objects live there.  The pool owns three things:

* **Budget** — ``fast_capacity_bytes`` bounds everything placed fast,
  enforced at reservation time so the ``tiering.tier[fast].occupancy``
  gauge can never exceed the bound (asserted in tests and CI).
* **Geometry wiring** — :meth:`tier_object` opens the DRAM home channel
  and the fast window channel for one object and returns its
  :class:`~repro.tiering.geometry.TieredRegionGeometry`; whole-object
  pins (a packet-buffer ring) use :meth:`place_channel`.
* **The policy tick** — access counters drain into a
  :class:`~repro.policies.placement.PlacementView` every ``tick_ns`` of
  simulated time; the policy plans :class:`TierMove`\\ s and the pool
  executes them as control-plane block copies.  The tick is
  *self-arming*: it re-schedules itself only while there is activity,
  so ``sim.run()`` still terminates.

Degraded mode demotes, not drops (ISSUE requirement): when a member
hosting fast windows leaves gracefully the pool writes every fast block
back to DRAM before the channels close; when the health monitor declares
it dead the fast bytes are unreachable, so the pool remaps to the DRAM
home and counts the abandoned blocks instead of pretending nothing
happened.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..cluster.pool import MemoryPool, PoolMember
from ..core.channel import RdmaChannelController, RemoteMemoryChannel
from ..policies.placement import (
    BlockStat,
    PlacementPolicy,
    PlacementView,
    make_placement_policy,
)
from ..rdma.memory import TIER_DRAM, TIER_FAST, TIERS, AccessFlags
from ..sim.units import kib
from .geometry import TieredRegionGeometry

#: Default policy-tick period: 50 µs of simulated time, a few hundred
#: data-plane operations per tick at line rate — frequent enough to
#: track a shifting working set, coarse enough to amortize the plan.
DEFAULT_TICK_NS = 50_000.0


class TieredMemoryPool(MemoryPool):
    """A :class:`MemoryPool` with a bounded fast tier and placement policy."""

    def __init__(
        self,
        controller: RdmaChannelController,
        policy: Union[str, PlacementPolicy] = "frequency",
        policy_seed: int = 0,
        fast_capacity_bytes: int = kib(256),
        tick_ns: float = DEFAULT_TICK_NS,
        vnodes: int = 128,
        seed: int = 0,
        fail_after: int = 3,
    ) -> None:
        super().__init__(
            controller, vnodes=vnodes, seed=seed, fail_after=fail_after
        )
        if fast_capacity_bytes <= 0:
            raise ValueError("fast_capacity_bytes must be positive")
        self.sim = controller.switch.sim
        self.fast_capacity_bytes = fast_capacity_bytes
        self.tick_ns = tick_ns
        self.metrics = self.sim.obs.registry.unique_scope("tiering")
        if isinstance(policy, str):
            policy = make_placement_policy(
                policy,
                seed=policy_seed,
                metrics_scope=self.metrics.child("policy"),
            )
        self.policy = policy
        self.geometries: Dict[str, TieredRegionGeometry] = {}
        #: Fast bytes committed (object windows + whole-channel pins);
        #: reservations, not occupancy — occupancy is what is resident.
        self._fast_reserved = 0
        #: Fast bytes held by whole-channel pins (always "resident").
        self._pinned_fast_bytes = 0
        self._tick_event = None

        fast = self.metrics.child(f"tier[{TIER_FAST}]")
        dram = self.metrics.child(f"tier[{TIER_DRAM}]")
        self._tier_scopes = {TIER_FAST: fast, TIER_DRAM: dram}
        fast.gauge("occupancy", fn=self._fast_occupancy_bytes)
        dram.gauge("occupancy", fn=self._dram_occupancy_bytes)
        #: High-water mark of fast occupancy — the value the CI smoke job
        #: asserts against ``fast_capacity_bytes``.
        self._g_fast_peak = fast.gauge("occupancy_peak")
        self._m_moves = {
            TIER_FAST: fast.counter("promotions"),
            TIER_DRAM: dram.counter("demotions"),
        }
        # Present-on-both so the documented name scheme
        # ``tiering.tier[fast|dram].{occupancy,promotions,demotions,hits,misses}``
        # is fully populated (arrivals are counted on the destination tier,
        # so fast.demotions / dram.promotions stay zero by convention).
        fast.counter("demotions")
        dram.counter("promotions")
        self._m_hits = {
            TIER_FAST: fast.counter("hits"),
            TIER_DRAM: dram.counter("hits"),
        }
        self._m_misses = {
            TIER_FAST: fast.counter("misses"),
            TIER_DRAM: dram.counter("misses"),
        }
        self._m_ticks = self.metrics.counter("ticks")
        self._m_skipped = self.metrics.counter("moves_skipped")
        self._m_abandoned = self.metrics.counter("blocks_abandoned")
        self.listeners.append(self)

    # -- occupancy ------------------------------------------------------------

    def _fast_occupancy_bytes(self) -> int:
        resident = sum(g.fast_bytes for g in self.geometries.values())
        return resident + self._pinned_fast_bytes

    def _dram_occupancy_bytes(self) -> int:
        total = sum(g.total_bytes for g in self.geometries.values())
        fast = sum(g.fast_bytes for g in self.geometries.values())
        return total - fast

    @property
    def fast_free_bytes(self) -> int:
        """Unreserved fast budget available to new placements."""
        return self.fast_capacity_bytes - self._fast_reserved

    def _reserve_fast(self, nbytes: int, what: str) -> None:
        if nbytes > self.fast_free_bytes:
            raise ValueError(
                f"{what}: {nbytes} B exceeds remaining fast budget "
                f"({self.fast_free_bytes} of {self.fast_capacity_bytes} B)"
            )
        self._fast_reserved += nbytes

    def _note_fast_peak(self) -> None:
        occupancy = self._fast_occupancy_bytes()
        if occupancy > (self._g_fast_peak.value or 0):
            self._g_fast_peak.set(occupancy)

    # -- placement ------------------------------------------------------------

    def _fast_home(self, member: Optional[PoolMember]) -> PoolMember:
        """Where fast windows land: a fast-tier member if enrolled, else
        colocated on the object's DRAM member with a fast channel override
        (the single-server dual-tier topology — RDCA's LLC model)."""
        fast_members = self.members_in_tier(TIER_FAST)
        if fast_members:
            return fast_members[0]
        if member is None:
            raise ValueError("no fast member and no DRAM member to colocate on")
        return member

    def tier_object(
        self,
        name: str,
        unit_bytes: int,
        units: int,
        units_per_block: int = 64,
        member: Optional[PoolMember] = None,
        fast_member: Optional[PoolMember] = None,
        fast_blocks: Optional[int] = None,
        pin: Optional[str] = None,
        access: AccessFlags = AccessFlags.ALL_REMOTE,
    ) -> TieredRegionGeometry:
        """Place one remote object: full-size DRAM home + bounded fast window.

        ``fast_blocks`` sizes the window (default: the remaining fast
        budget, at least one block, at most the whole object); ``pin``
        pins every block to one tier up front (``"fast"`` pre-promotes).
        Returns the geometry; the owning primitive passes it as its
        ``tiering=`` argument.
        """
        if name in self.geometries:
            raise ValueError(f"object {name!r} is already tiered")
        if member is None:
            member = self.member_for(name.encode())
        block_bytes = units_per_block * unit_bytes
        total_blocks = (units + units_per_block - 1) // units_per_block
        if fast_blocks is None:
            fast_blocks = min(total_blocks, self.fast_free_bytes // block_bytes)
        if fast_blocks < 1:
            raise ValueError(
                f"{name}: fast window needs at least one {block_bytes} B "
                f"block ({self.fast_free_bytes} B of budget left)"
            )
        fast_bytes = fast_blocks * block_bytes
        self._reserve_fast(fast_bytes, name)

        dram_channel = self.open_channel(
            member, units * unit_bytes, name=f"{name}:dram", access=access
        )
        home = fast_member or self._fast_home(member)
        fast_channel = self.open_channel(
            home, fast_bytes, name=f"{name}:fast", access=access, tier=TIER_FAST
        )
        obs = self.sim.obs
        geometry = TieredRegionGeometry(
            name,
            dram_channel,
            fast_channel,
            unit_bytes,
            units,
            units_per_block=units_per_block,
            trace=obs.trace,
            clock=lambda: self.sim.now,
        )
        geometry.on_access = self._on_access
        geometry.on_move = self._on_move
        self.geometries[name] = geometry
        if pin is not None:
            if pin not in TIERS:
                raise ValueError(f"unknown pin tier {pin!r}")
            geometry.pin_object(pin)
            if pin == TIER_FAST:
                for block in range(min(fast_blocks, total_blocks)):
                    geometry.promote(block, reason="pin")
        return geometry

    def place_channel(
        self,
        name: str,
        size_bytes: int,
        tier: str = TIER_FAST,
        member: Optional[PoolMember] = None,
        access: AccessFlags = AccessFlags.ALL_REMOTE,
    ) -> RemoteMemoryChannel:
        """Open a whole channel pinned to *tier* (static placement).

        The packet-buffer ring path: the object is not block-tiered, it
        simply *lives* in the fast tier, and its bytes count against the
        fast budget for the lifetime of the channel.
        """
        if tier not in TIERS:
            raise ValueError(f"unknown tier {tier!r}; expected one of {TIERS}")
        if member is None:
            member = (
                self._fast_home(self.member_for(name.encode()))
                if tier == TIER_FAST
                else self.member_for(name.encode())
            )
        if tier == TIER_FAST:
            self._reserve_fast(size_bytes, name)
        channel = self.open_channel(
            member, size_bytes, name=name, access=access, tier=tier
        )
        if tier == TIER_FAST:
            self._pinned_fast_bytes += size_bytes
            self._note_fast_peak()

            def _unpin() -> None:
                self._pinned_fast_bytes -= size_bytes
                self._fast_reserved -= size_bytes

            channel.teardown_callbacks.append(_unpin)
        return channel

    # -- access + move accounting ----------------------------------------------

    def _on_access(self, tier: str) -> None:
        self._m_hits[tier].inc()
        other = TIER_DRAM if tier == TIER_FAST else TIER_FAST
        self._m_misses[other].inc()
        self._arm_tick()

    def _on_move(self, block: int, to_tier: str, reason: str) -> None:
        self._m_moves[to_tier].inc()
        if reason == "abandon":
            self._m_abandoned.inc()
        if to_tier == TIER_FAST:
            self._note_fast_peak()

    # -- the policy tick --------------------------------------------------------

    def _arm_tick(self) -> None:
        if self._tick_event is None and self.tick_ns > 0:
            self._tick_event = self.sim.schedule(self.tick_ns, self._tick_fire)

    def _tick_fire(self) -> None:
        self._tick_event = None
        if self.tick() > 0:
            self._arm_tick()

    def tick(self) -> int:
        """Run one policy round now; returns accesses drained + moves made.

        Builds the :class:`PlacementView` from every geometry's drained
        access counters — sparse: a block appears only if it was touched,
        is fast-resident, or carries a pin the policy may need to honour —
        then executes the plan.  Busy blocks (in-flight RDMA ops) refuse
        to move; those refusals are counted, and the policy simply sees
        the block again next tick.
        """
        stats = []
        fast_capacity = 0
        fast_used = 0
        for name in sorted(self.geometries):
            geometry = self.geometries[name]
            counts = geometry.drain_access_counts()
            fast_capacity += geometry.fast_capacity
            fast_used += geometry.fast_used
            interesting = set(counts)
            interesting.update(geometry._fast_slot)
            for block, pin_tier in geometry.pins.items():
                if geometry.tier_of_block(block) != pin_tier:
                    interesting.add(block)
            for block in sorted(interesting):
                stats.append(
                    BlockStat(
                        object_name=name,
                        block=block,
                        tier=geometry.tier_of_block(block),
                        accesses=counts.get(block, 0),
                        pin=geometry.pins.get(block),
                        busy=geometry._is_busy(block),
                    )
                )
        drained = sum(stat.accesses for stat in stats)
        view = PlacementView(
            blocks=stats, fast_capacity=fast_capacity, fast_used=fast_used
        )
        executed = 0
        for move in self.policy.plan(view):
            geometry = self.geometries.get(move.object_name)
            if geometry is None:
                continue
            if move.to_tier == TIER_FAST:
                moved = geometry.promote(move.block, reason=move.reason)
            else:
                moved = geometry.demote(move.block, reason=move.reason)
            if moved:
                executed += 1
            else:
                self._m_skipped.inc()
        self._m_ticks.inc()
        return drained + executed

    # -- membership (PoolListener on ourselves) ----------------------------------

    def on_member_join(self, member: PoolMember) -> None:
        pass

    def on_member_leave(self, member: PoolMember, graceful: bool) -> None:
        """Degrade = demote, not drop (DESIGN.md §13).

        Graceful leave: the member's regions are still reachable from the
        control plane, so every fast block is written back to its DRAM
        home *before* the channels close — zero updates lost.  Dead
        member: the fast bytes are gone; remap to the DRAM home and count
        the abandoned blocks (replication's job to repair).
        """
        for geometry in self.geometries.values():
            if not any(geometry.fast_channel is c for c in member.channels):
                continue
            if graceful:
                geometry.demote_all(force=True)
            else:
                geometry.abandon_fast()
            geometry.fast_enabled = False

    def __repr__(self) -> str:
        return (
            f"<TieredMemoryPool {len(self.geometries)} objects "
            f"fast={self._fast_occupancy_bytes()}/{self.fast_capacity_bytes}B>"
        )
