"""Block-granular tier geometry: which bytes of an object live where.

A :class:`TieredRegionGeometry` fronts one remote object (a counter
array, a lookup table's entry/bucket space) with **two** channels: the
DRAM channel is the object's full-size home, the fast channel is a small
bounded window of *block* slots.  The object's address space is sliced
into fixed-size blocks (``units_per_block`` units of ``unit_bytes``
each); each block is either home in DRAM or resident in exactly one fast
slot.  Primitives resolve every data-plane access through
:meth:`resolve`, which returns the serving tier and virtual address —
the only thing tiering changes on the hot path is *which* (channel,
address) pair an operation targets.

Moves are control-plane region copies, the same mechanism PR 2's shard
migration uses: promotion copies the block's bytes DRAM→fast and flips
the map, demotion writes them back.  Correctness under concurrency is
by construction: the owning primitive registers a ``busy_check`` and a
block with in-flight RDMA operations is never moved, so no update can
land on a stale copy — which is what makes "zero lost updates
mid-promotion" hold even when a blackout interrupts the window (the
in-flight ops pin their block until the primitive reconciles them).

Degraded mode **demotes, not drops**: :meth:`demote_all` writes every
fast block back to its DRAM home (fast channel unhealthy, server
reachable), :meth:`abandon_fast` remaps without copying (fast member
dead; bytes since promotion are gone — replication's problem, counted
honestly in ``abandoned``).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional

from ..core.channel import RemoteMemoryChannel
from ..obs.trace import KIND_TIER_MOVE, WireTrace
from ..rdma.memory import TIER_DRAM, TIER_FAST


class TieredRegionGeometry:
    """Tier-aware address geometry for one remote object."""

    def __init__(
        self,
        name: str,
        dram_channel: RemoteMemoryChannel,
        fast_channel: RemoteMemoryChannel,
        unit_bytes: int,
        units: int,
        units_per_block: int = 64,
        trace: Optional[WireTrace] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if unit_bytes <= 0 or units <= 0 or units_per_block <= 0:
            raise ValueError(
                f"{name}: unit_bytes/units/units_per_block must be positive"
            )
        self.name = name
        self.dram_channel = dram_channel
        self.fast_channel = fast_channel
        self.unit_bytes = unit_bytes
        self.units = units
        self.units_per_block = units_per_block
        self.block_bytes = units_per_block * unit_bytes
        self.blocks = (units + units_per_block - 1) // units_per_block
        self.total_bytes = units * unit_bytes
        if dram_channel.length < self.total_bytes:
            raise ValueError(
                f"{name}: DRAM channel holds {dram_channel.length} B, "
                f"object needs {self.total_bytes} B"
            )
        self.fast_capacity = fast_channel.length // self.block_bytes
        if self.fast_capacity < 1:
            raise ValueError(
                f"{name}: fast channel ({fast_channel.length} B) smaller "
                f"than one block ({self.block_bytes} B)"
            )
        self._trace = trace
        self._clock = clock
        # block -> fast slot index; absent means home in DRAM.
        self._fast_slot: Dict[int, int] = {}
        self._free_slots: List[int] = list(range(self.fast_capacity))
        heapq.heapify(self._free_slots)
        #: Per-block access counts since the last policy drain (sparse:
        #: only touched blocks appear, so a million-unit object costs
        #: the policy tick only its working set, not its full geometry).
        self.access_counts: Dict[int, int] = {}
        #: False once the fast channel is gone (member left); promotions
        #: stop, demotion/abandon paths already emptied the slot map.
        self.fast_enabled = True
        #: Per-block pins: "fast" / "dram" (placement policies honour these).
        self.pins: Dict[int, str] = {}
        #: Set by the owning primitive: True while the block has in-flight
        #: RDMA operations and must not move.
        self.busy_check: Optional[Callable[[int], bool]] = None
        #: Pool hooks (wired by TieredMemoryPool; optional standalone).
        self.on_access: Optional[Callable[[str], None]] = None
        self.on_move: Optional[Callable[[int, str, str], None]] = None
        # Standalone counters (the pool mirrors these into the registry).
        self.promotions = 0
        self.demotions = 0
        self.abandoned = 0

    # -- addressing -----------------------------------------------------------

    def block_of(self, unit: int) -> int:
        return unit // self.units_per_block

    def tier_of_block(self, block: int) -> str:
        return TIER_FAST if block in self._fast_slot else TIER_DRAM

    def tier_of(self, unit: int) -> str:
        return self.tier_of_block(self.block_of(unit))

    def resolve(self, unit: int) -> "tuple[str, int]":
        """The (tier, virtual address) currently serving *unit*."""
        if not 0 <= unit < self.units:
            raise IndexError(f"{self.name}: unit {unit} out of range")
        block, offset = divmod(unit, self.units_per_block)
        slot = self._fast_slot.get(block)
        if slot is None:
            return (
                TIER_DRAM,
                self.dram_channel.base_address + unit * self.unit_bytes,
            )
        return (
            TIER_FAST,
            self.fast_channel.base_address
            + slot * self.block_bytes
            + offset * self.unit_bytes,
        )

    def channel_for(self, tier: str) -> RemoteMemoryChannel:
        return self.fast_channel if tier == TIER_FAST else self.dram_channel

    def record_access(self, unit: int, tier: str) -> None:
        """Count one data-plane access to *unit*, served by *tier*."""
        block = unit // self.units_per_block
        self.access_counts[block] = self.access_counts.get(block, 0) + 1
        if self.on_access is not None:
            self.on_access(tier)

    def drain_access_counts(self) -> Dict[int, int]:
        """Snapshot and reset the per-block access counts (policy tick)."""
        counts = self.access_counts
        self.access_counts = {}
        return counts

    # -- pins -----------------------------------------------------------------

    def pin(self, block: int, tier: str) -> None:
        if not 0 <= block < self.blocks:
            raise IndexError(f"{self.name}: block {block} out of range")
        self.pins[block] = tier

    def pin_object(self, tier: str) -> None:
        """Pin every block (whole-object placement, e.g. a buffer ring)."""
        for block in range(self.blocks):
            self.pins[block] = tier

    # -- occupancy ------------------------------------------------------------

    @property
    def fast_used(self) -> int:
        """Blocks currently resident in the fast tier."""
        return len(self._fast_slot)

    @property
    def fast_bytes(self) -> int:
        return self.fast_used * self.block_bytes

    def _block_span(self, block: int) -> "tuple[int, int]":
        """(byte offset, byte length) of *block* within the object."""
        offset = block * self.block_bytes
        return offset, min(self.block_bytes, self.total_bytes - offset)

    def _is_busy(self, block: int) -> bool:
        return self.busy_check is not None and self.busy_check(block)

    def _emit_move(self, block: int, to_tier: str, reason: str, nbytes: int) -> None:
        if self.on_move is not None:
            self.on_move(block, to_tier, reason)
        if self._trace is not None and self._clock is not None:
            self._trace.emit(
                self._clock(),
                f"tiering:{self.name}",
                0,
                KIND_TIER_MOVE,
                psn=block,
                wire_bytes=nbytes,
                channel=f"{self.name}:{reason}",
            )

    # -- moves (control-plane region copies) -----------------------------------

    def promote(self, block: int, reason: str = "promote") -> bool:
        """Copy *block* DRAM→fast and serve it fast.  False if impossible."""
        if not self.fast_enabled:
            return False
        if block in self._fast_slot or not self._free_slots:
            return False
        if self._is_busy(block) or self.pins.get(block) == TIER_DRAM:
            return False
        offset, nbytes = self._block_span(block)
        data = self.dram_channel.region.read(
            self.dram_channel.base_address + offset, nbytes
        )
        slot = heapq.heappop(self._free_slots)
        self.fast_channel.region.write(
            self.fast_channel.base_address + slot * self.block_bytes, data
        )
        self._fast_slot[block] = slot
        self.promotions += 1
        self._emit_move(block, TIER_FAST, reason, nbytes)
        return True

    def demote(self, block: int, reason: str = "demote", force: bool = False) -> bool:
        """Write *block* back to its DRAM home.  False if not fast or busy."""
        slot = self._fast_slot.get(block)
        if slot is None:
            return False
        if not force and (
            self._is_busy(block) or self.pins.get(block) == TIER_FAST
        ):
            return False
        offset, nbytes = self._block_span(block)
        data = self.fast_channel.region.read(
            self.fast_channel.base_address + slot * self.block_bytes, nbytes
        )
        self.dram_channel.region.write(
            self.dram_channel.base_address + offset, data
        )
        del self._fast_slot[block]
        heapq.heappush(self._free_slots, slot)
        self.demotions += 1
        self._emit_move(block, TIER_DRAM, reason, nbytes)
        return True

    def demote_all(self, force: bool = True) -> int:
        """Write every fast block back to DRAM (degrade = demote, not drop).

        Used when the fast channel is unhealthy but its server region is
        still reachable from the control plane (breaker open on the fast
        QP, graceful fast-member leave).  Returns blocks demoted.
        """
        moved = 0
        for block in sorted(self._fast_slot):
            if self.demote(block, reason="spill", force=force):
                moved += 1
        return moved

    def abandon_fast(self) -> int:
        """Remap every fast block to DRAM *without* copying.

        The fast member died: its bytes are unreachable, so the DRAM
        home (last write-back) becomes authoritative.  Updates applied
        only to the fast copy since promotion are lost here — that is
        the replicated store's job to repair, and the ``abandoned``
        count keeps the loss visible instead of silent.
        """
        lost = len(self._fast_slot)
        for block in sorted(self._fast_slot):
            slot = self._fast_slot.pop(block)
            heapq.heappush(self._free_slots, slot)
            self.abandoned += 1
            self._emit_move(block, TIER_DRAM, "abandon", 0)
        return lost

    def __repr__(self) -> str:
        return (
            f"<TieredRegionGeometry {self.name} blocks={self.blocks} "
            f"fast={self.fast_used}/{self.fast_capacity}>"
        )
