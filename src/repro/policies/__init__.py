"""``repro.policies`` — the unified policy surface (DESIGN.md §13).

One protocol family, three kinds, one construction convention::

    from repro.policies import (
        make_policy,          # generic factory: make_policy("cache", "lru", ...)
        CachePolicy,          # SRAM eviction (fifo/lru/lfu/pin)
        PlacementPolicy,      # tier placement (static/frequency/watermark)
        BreakerPolicy,        # circuit-breaker thresholds + probe seeding
    )

Every policy is built with ``(seed, metrics_scope)`` and consumed through
a ``policy=`` / ``policy_seed=`` kwarg pair on the owning component.
The old homes (``repro.core.cache_policy``, raw breaker ``config=``/
``rng=`` kwargs) keep working through warn-once deprecation shims.
"""

from .base import POLICY_KINDS, Policy
from .breaker import BreakerPolicy
from .cache import (
    CACHE_POLICIES,
    CachePolicy,
    FifoCachePolicy,
    LfuCachePolicy,
    LruCachePolicy,
    PinningCachePolicy,
    make_cache_policy,
)
from .placement import (
    PLACEMENT_POLICIES,
    AccessFrequencyPlacement,
    BlockStat,
    PlacementPolicy,
    PlacementView,
    StaticPinPlacement,
    TierMove,
    WatermarkPlacement,
    make_placement_policy,
)


def make_policy(kind: str, name: str, *args, **kwargs):
    """Build a policy by ``(kind, name)`` — the one-stop factory.

    ``make_policy("cache", "lru", 1024)`` ==
    :func:`make_cache_policy`\\ ``("lru", 1024)``;
    ``make_policy("placement", "frequency", seed=7)`` ==
    :func:`make_placement_policy`\\ ``("frequency", seed=7)``;
    ``make_policy("breaker", "breaker", fail_threshold=2)`` builds a
    :class:`BreakerPolicy`.
    """
    if kind == "cache":
        return make_cache_policy(name, *args, **kwargs)
    if kind == "placement":
        return make_placement_policy(name, *args, **kwargs)
    if kind == "breaker":
        return BreakerPolicy(*args, **kwargs)
    raise ValueError(
        f"unknown policy kind {kind!r}; expected one of {POLICY_KINDS}"
    )


__all__ = [
    "POLICY_KINDS",
    "Policy",
    "make_policy",
    # cache
    "CACHE_POLICIES",
    "CachePolicy",
    "FifoCachePolicy",
    "LfuCachePolicy",
    "LruCachePolicy",
    "PinningCachePolicy",
    "make_cache_policy",
    # placement
    "PLACEMENT_POLICIES",
    "AccessFrequencyPlacement",
    "BlockStat",
    "PlacementPolicy",
    "PlacementView",
    "StaticPinPlacement",
    "TierMove",
    "WatermarkPlacement",
    "make_placement_policy",
    # breaker
    "BreakerPolicy",
]
