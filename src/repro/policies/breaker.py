"""Breaker policies: how a self-healing channel decides it is broken.

:class:`~repro.resilience.SelfHealingChannel` previously took raw
``config=`` / ``rng=`` wiring; :class:`BreakerPolicy` packages both under
the unified ``(seed, metrics_scope)`` convention so breaker behaviour is
declared the same way cache eviction and tier placement are::

    guard = SelfHealingChannel(
        controller, channel, store,
        policy=BreakerPolicy(seed=7, fail_threshold=2),
    )

Thresholds may be given as keyword arguments (forwarded to
:class:`~repro.resilience.CircuitBreakerConfig`) or as a prebuilt
``config=``; ``rng=`` accepts an explicit random stream for experiments
that derive per-channel streams from one seed sequence.
"""

from __future__ import annotations

import random
from typing import Optional

from ..obs.registry import MetricScope
from ..resilience.breaker import CircuitBreaker, CircuitBreakerConfig
from .base import Policy


class BreakerPolicy(Policy):
    """Circuit-breaker thresholds + probe-jitter seeding, as a policy."""

    policy_kind = "breaker"
    policy_name = "breaker"

    def __init__(
        self,
        seed: int = 0,
        metrics_scope: Optional[MetricScope] = None,
        config: Optional[CircuitBreakerConfig] = None,
        rng: Optional[random.Random] = None,
        **thresholds,
    ) -> None:
        super().__init__(seed=seed, metrics_scope=metrics_scope)
        if config is not None and thresholds:
            raise ValueError(
                "pass either config= or threshold kwargs, not both: "
                f"{sorted(thresholds)}"
            )
        self.config = config if config is not None else CircuitBreakerConfig(
            **thresholds
        )
        self._rng = rng

    def rng(self) -> random.Random:
        """The probe-jitter stream: explicit ``rng=`` or seeded fresh."""
        return self._rng if self._rng is not None else random.Random(self.seed)

    def build(self, sim, name: str) -> CircuitBreaker:
        """Construct the breaker this policy describes for channel *name*."""
        return CircuitBreaker(sim, name, config=self.config, rng=self.rng())
