"""The unified policy surface: one construction convention, three kinds.

The repo grew three ad-hoc policy surfaces — SRAM cache eviction
(``core/cache_policy.py``), the cluster ring's placement logic, and the
resilience layer's per-channel breaker wiring.  They now share one base:

* every policy is constructed with ``(seed, metrics_scope)`` — a seed for
  any randomized decision (jittered thresholds, probe timing) and an
  optional :class:`~repro.obs.registry.MetricScope` to emit into;
* every policy names itself via two class attributes: ``policy_kind``
  (``"cache"`` / ``"placement"`` / ``"breaker"``) and ``policy_name``
  (the registry key, e.g. ``"lru"`` or ``"frequency"``);
* components accept policies through a ``policy=`` / ``policy_seed=``
  kwarg pair (:class:`~repro.core.lookup_table.LookupTableConfig`,
  :class:`~repro.tiering.TieredMemoryPool`,
  :class:`~repro.resilience.SelfHealingChannel`).

Policies are deterministic given their seed: no wall clock, no unseeded
randomness — fixed-seed runs reproduce every eviction, promotion, and
probe byte-for-byte.
"""

from __future__ import annotations

import struct
from typing import Optional

from ..obs.registry import MetricScope
from ..switches.hashing import crc32

#: The policy kinds the unified surface covers.
POLICY_KINDS = ("cache", "placement", "breaker")


class Policy:
    """Base class carrying the shared ``(seed, metrics_scope)`` convention."""

    #: Which component family consumes this policy.
    policy_kind = "?"
    #: Registry key (``"fifo"``, ``"frequency"``, …) for factory round-trips.
    policy_name = "?"

    def __init__(
        self, seed: int = 0, metrics_scope: Optional[MetricScope] = None
    ) -> None:
        self.seed = seed
        self.metrics_scope = metrics_scope

    def _seeded_jitter(self, token: bytes, mod: int) -> int:
        """Deterministic per-key jitter in ``[0, mod)`` from the policy seed.

        The same CRC construction everywhere (cache pin thresholds,
        placement hysteresis) so a given ``(seed, key)`` always jitters
        identically across policy kinds.
        """
        packed = struct.pack("!I", self.seed & 0xFFFFFFFF) + token
        return crc32(packed) % mod

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} kind={self.policy_kind} "
            f"name={self.policy_name} seed={self.seed}>"
        )
