"""Placement policies: which blocks of a tiered object live in which tier.

The tiered pool (:class:`repro.tiering.TieredMemoryPool`) slices every
tiered object into fixed-size *blocks*.  Each policy tick, the pool
gathers one :class:`BlockStat` per block (current tier, access count
since the last tick, pin, busy flag) into a :class:`PlacementView` and
asks the policy to :meth:`~PlacementPolicy.plan` a list of
:class:`TierMove` decisions.  The pool executes them — promotion copies
a block's bytes DRAM→fast, demotion writes them back — so a policy is
pure decision logic: deterministic, unit-testable without a simulator,
and swappable mid-experiment.

Three built-ins mirror the cache-policy registry:

* ``static``    — honour per-block pins only; nothing moves on its own.
* ``frequency`` — promote the hottest blocks past a seeded per-block
  threshold (jittered hysteresis breaks synchronized promotion waves),
  displacing strictly-colder fast blocks once the tier is full.
* ``watermark`` — promote any accessed block until the fast tier hits a
  high occupancy watermark, then demote the coldest blocks down to the
  low watermark.

Invariants every policy must keep (checked by the pool): never move a
``busy`` block (in-flight RDMA ops pin it), never promote past
``fast_capacity``, and never demote a block pinned fast.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..obs.registry import MetricScope
from ..rdma.memory import TIER_DRAM, TIER_FAST
from .base import Policy

#: Policy names accepted by :func:`make_placement_policy`.
PLACEMENT_POLICIES = ("static", "frequency", "watermark")


@dataclass(frozen=True)
class TierMove:
    """One placement decision: move *block* of *object_name* to *to_tier*."""

    object_name: str
    block: int
    to_tier: str
    reason: str  # "promote" | "demote" | "pin" | "spill"


@dataclass
class BlockStat:
    """Per-block input to :meth:`PlacementPolicy.plan` for one tick."""

    object_name: str
    block: int
    tier: str
    accesses: int
    pin: Optional[str] = None
    busy: bool = False

    def key(self) -> bytes:
        """Stable token for seeded per-block jitter."""
        return self.object_name.encode() + struct.pack("!I", self.block)


@dataclass
class PlacementView:
    """Everything a policy may consult: block stats + fast-tier budget."""

    blocks: List[BlockStat] = field(default_factory=list)
    fast_capacity: int = 0  # blocks
    fast_used: int = 0  # blocks currently resident fast


class PlacementPolicy(Policy):
    """Base class for tier placement policies."""

    policy_kind = "placement"
    policy_name = "?"

    def plan(self, view: PlacementView) -> List[TierMove]:
        raise NotImplementedError

    # -- shared selection helpers -------------------------------------------

    @staticmethod
    def _movable(stat: BlockStat) -> bool:
        return not stat.busy

    @staticmethod
    def _order(stat: BlockStat):
        """Deterministic tie-break: object name, then block index."""
        return (stat.object_name, stat.block)


class StaticPinPlacement(PlacementPolicy):
    """Pins only: blocks go where they are pinned and never move again.

    This is the all-DRAM baseline (no pins → nothing ever promotes) and
    the packet-buffer-ring case (whole object pinned fast at open time).
    """

    policy_name = "static"

    def plan(self, view: PlacementView) -> List[TierMove]:
        moves: List[TierMove] = []
        free = view.fast_capacity - view.fast_used
        for stat in sorted(view.blocks, key=self._order):
            if not self._movable(stat) or stat.pin is None:
                continue
            if stat.pin == stat.tier:
                continue
            if stat.pin == TIER_FAST:
                if free <= 0:
                    continue
                free -= 1
                moves.append(
                    TierMove(stat.object_name, stat.block, TIER_FAST, "pin")
                )
            else:
                free += 1
                moves.append(
                    TierMove(stat.object_name, stat.block, TIER_DRAM, "pin")
                )
        return moves


class AccessFrequencyPlacement(PlacementPolicy):
    """Promote hot blocks, displace strictly-colder ones, with seeded
    hysteresis.

    A DRAM block becomes a promotion candidate once its per-tick access
    count reaches ``promote_min`` plus a seeded per-block jitter of 0–2
    (the same CRC construction :class:`PinningCachePolicy` uses for flow
    thresholds), so ties across thousands of equally-warm blocks don't
    promote in lockstep waves.  While the fast tier has free slots the
    hottest candidates fill them; once full, a candidate only displaces
    the coldest unpinned fast block if it is hotter by at least
    ``hysteresis`` accesses — cold-for-one-tick blocks don't thrash.
    """

    policy_name = "frequency"

    def __init__(
        self,
        seed: int = 0,
        metrics_scope: Optional[MetricScope] = None,
        promote_min: int = 2,
        hysteresis: int = 2,
    ) -> None:
        super().__init__(seed=seed, metrics_scope=metrics_scope)
        if promote_min < 1:
            raise ValueError(f"promote_min must be >= 1: {promote_min}")
        if hysteresis < 0:
            raise ValueError(f"hysteresis must be >= 0: {hysteresis}")
        self.promote_min = promote_min
        self.hysteresis = hysteresis

    def block_threshold(self, stat: BlockStat) -> int:
        """Seeded per-block promotion threshold (base + jitter 0..2)."""
        return self.promote_min + self._seeded_jitter(stat.key(), 3)

    def plan(self, view: PlacementView) -> List[TierMove]:
        candidates = sorted(
            (
                s
                for s in view.blocks
                if s.tier == TIER_DRAM
                and self._movable(s)
                and s.pin != TIER_DRAM
                and s.accesses >= self.block_threshold(s)
            ),
            key=lambda s: (-s.accesses,) + self._order(s),
        )
        # Coldest-first victims; pinned-fast blocks are never demoted.
        victims = sorted(
            (
                s
                for s in view.blocks
                if s.tier == TIER_FAST
                and self._movable(s)
                and s.pin != TIER_FAST
            ),
            key=lambda s: (s.accesses,) + self._order(s),
        )
        moves: List[TierMove] = []
        free = view.fast_capacity - view.fast_used
        vi = 0
        for cand in candidates:
            if free > 0:
                free -= 1
                moves.append(
                    TierMove(cand.object_name, cand.block, TIER_FAST, "promote")
                )
                continue
            if vi >= len(victims):
                break
            victim = victims[vi]
            if cand.accesses < victim.accesses + self.hysteresis:
                break  # candidates are sorted; nothing hotter remains
            vi += 1
            moves.append(
                TierMove(victim.object_name, victim.block, TIER_DRAM, "demote")
            )
            moves.append(
                TierMove(cand.object_name, cand.block, TIER_FAST, "promote")
            )
        return moves


class WatermarkPlacement(PlacementPolicy):
    """Occupancy-watermark placement: promote eagerly, drain when full.

    Any DRAM block touched at least ``promote_min`` times this tick is
    promoted while fast occupancy stays below ``high`` × capacity.  When
    occupancy crosses the high watermark, the coldest unpinned fast
    blocks demote until occupancy falls to ``low`` × capacity — the
    classic hysteresis loop that keeps headroom for the next burst.

    Watermarks are converted to whole blocks with *ceil* semantics (see
    :meth:`watermarks`): ``high=0.9`` of a 3-slot window means 3 usable
    slots, not the 2 that truncation used to yield — small fast windows
    were silently losing a third of their budget to rounding.
    """

    policy_name = "watermark"

    def __init__(
        self,
        seed: int = 0,
        metrics_scope: Optional[MetricScope] = None,
        high: float = 0.9,
        low: float = 0.6,
        promote_min: int = 1,
    ) -> None:
        super().__init__(seed=seed, metrics_scope=metrics_scope)
        if not 0.0 < low <= high <= 1.0:
            raise ValueError(
                f"need 0 < low <= high <= 1, got low={low} high={high}"
            )
        self.high = high
        self.low = low
        self.promote_min = max(1, promote_min)

    @staticmethod
    def _blocks_ceil(fraction: float, capacity: int) -> int:
        # Ceil with a tolerance for binary-float artifacts: 0.9 * 10 is
        # 9.000000000000002 in IEEE doubles and must round to 9, not 10.
        return min(capacity, math.ceil(fraction * capacity - 1e-9))

    def watermarks(self, capacity: int) -> Tuple[int, int]:
        """The ``(high_blocks, low_blocks)`` thresholds for *capacity*.

        Both are computed with ceil semantics so a fractional watermark
        never rounds a small window's budget away: every slot the
        fraction touches is usable.
        """
        return (
            self._blocks_ceil(self.high, capacity),
            self._blocks_ceil(self.low, capacity),
        )

    def plan(self, view: PlacementView) -> List[TierMove]:
        high_blocks, low_blocks = self.watermarks(view.fast_capacity)
        used = view.fast_used
        moves: List[TierMove] = []
        if used > high_blocks:
            victims = sorted(
                (
                    s
                    for s in view.blocks
                    if s.tier == TIER_FAST
                    and self._movable(s)
                    and s.pin != TIER_FAST
                ),
                key=lambda s: (s.accesses,) + self._order(s),
            )
            for victim in victims:
                if used <= low_blocks:
                    break
                used -= 1
                moves.append(
                    TierMove(victim.object_name, victim.block, TIER_DRAM, "spill")
                )
            return moves
        candidates = sorted(
            (
                s
                for s in view.blocks
                if s.tier == TIER_DRAM
                and self._movable(s)
                and s.pin != TIER_DRAM
                and s.accesses >= self.promote_min
            ),
            key=lambda s: (-s.accesses,) + self._order(s),
        )
        for cand in candidates:
            if used >= high_blocks:
                break
            used += 1
            moves.append(
                TierMove(cand.object_name, cand.block, TIER_FAST, "promote")
            )
        return moves


def make_placement_policy(
    name: str,
    seed: int = 0,
    metrics_scope: Optional[MetricScope] = None,
    **kwargs,
) -> PlacementPolicy:
    """Build the placement policy *name* (one of :data:`PLACEMENT_POLICIES`)."""
    if name == "static":
        return StaticPinPlacement(seed=seed, metrics_scope=metrics_scope)
    if name == "frequency":
        return AccessFrequencyPlacement(
            seed=seed, metrics_scope=metrics_scope, **kwargs
        )
    if name == "watermark":
        return WatermarkPlacement(
            seed=seed, metrics_scope=metrics_scope, **kwargs
        )
    raise ValueError(
        f"unknown placement policy {name!r}; expected one of "
        f"{PLACEMENT_POLICIES}"
    )
