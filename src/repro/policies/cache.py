"""Pluggable SRAM cache policies for the remote lookup table.

The paper's lookup primitive caches fetched ``flow → action`` entries in
switch SRAM so later packets of the flow hit locally (§4).  The original
implementation hard-wired FIFO eviction; under the heavy-tailed flow
populations the Zipf workload drives, *which* flows the small cache
keeps is what determines the miss rate — so the policy is a plug:

* ``fifo`` — the original behaviour, byte-for-byte (default);
* ``lru``  — least-recently-used, the classic recency policy;
* ``lfu``  — least-frequently-used with O(1) frequency buckets and
  FIFO tie-break within a frequency;
* ``pin``  — FIB-caching-style popularity pinning (Grigoryan & Liu,
  arXiv:1804.07379): a flow is only admitted permanently once it has
  been referenced past a seeded per-flow promotion threshold; pinned
  entries never churn, the remainder of the cache is a small LRU for
  candidates.

Every policy emits ``hits / misses / inserts / evictions / pins`` plus
``hit_rate`` and ``size`` into the obs registry under the owning
table's ``lookup.cache`` scope.

This module is the canonical home (``repro.policies.cache``); the old
``repro.core.cache_policy`` path keeps working through a warn-once shim.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from .._deprecation import UNSET, warn_once
from ..obs.registry import Counter, MetricScope
from ..switches.tables import ActionEntry, ExactMatchTable, TableFullError
from .base import Policy

#: Policy names accepted by :func:`make_cache_policy` (and
#: ``LookupTableConfig.policy``).
CACHE_POLICIES = ("fifo", "lru", "lfu", "pin")


class CachePolicy(Policy):
    """Interface + shared metric plumbing for SRAM cache policies.

    ``lookup`` returns the cached action (counting a hit) or ``None``
    (counting a miss); ``admit`` offers a fetched entry and reports
    ``(inserted, evicted)`` so the owning table can keep its legacy
    ``cache_inserts`` / ``cache_evictions`` counters in lockstep.
    Policies are deterministic: no wall clock, no unseeded randomness.
    """

    policy_kind = "cache"
    policy_name = "?"

    def __init__(
        self,
        entries: int,
        metrics_scope: Optional[MetricScope] = None,
        seed: int = 0,
        *,
        scope: Any = UNSET,
    ) -> None:
        if scope is not UNSET:
            warn_once(
                "CachePolicy(scope=...) is deprecated; pass metrics_scope= "
                "(the unified repro.policies construction convention)"
            )
            metrics_scope = scope
        super().__init__(seed=seed, metrics_scope=metrics_scope)
        if entries <= 0:
            raise ValueError(f"cache needs positive capacity, got {entries}")
        self.entries = entries
        # Legacy attribute name; reads the same object as metrics_scope.
        self.scope = metrics_scope
        if metrics_scope is not None:
            self._m_hits = metrics_scope.counter("hits")
            self._m_misses = metrics_scope.counter("misses")
            self._m_inserts = metrics_scope.counter("inserts")
            self._m_evictions = metrics_scope.counter("evictions")
            self._m_pins = metrics_scope.counter("pins")
            metrics_scope.gauge("hit_rate", fn=self._hit_rate)
            metrics_scope.gauge("size", fn=self.__len__)
        else:  # standalone use (unit tests, offline analysis)
            self._m_hits = Counter("hits")
            self._m_misses = Counter("misses")
            self._m_inserts = Counter("inserts")
            self._m_evictions = Counter("evictions")
            self._m_pins = Counter("pins")

    def _hit_rate(self) -> float:
        total = self._m_hits.value + self._m_misses.value
        return self._m_hits.value / total if total else 0.0

    @property
    def hit_rate(self) -> float:
        return self._hit_rate()

    # -- the policy surface ----------------------------------------------------

    def lookup(self, flow: Any) -> Optional[Any]:
        action = self._get(flow)
        if action is not None:
            self._m_hits.inc()
        else:
            self._m_misses.inc()
        return action

    def admit(self, flow: Any, action: Any) -> Tuple[bool, int]:
        """Offer a fetched entry; returns ``(inserted, evictions)``."""
        inserted, evicted = self._put(flow, action)
        if inserted:
            self._m_inserts.inc()
        if evicted:
            self._m_evictions.inc(evicted)
        return inserted, evicted

    def contains(self, flow: Any) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def _get(self, flow: Any) -> Optional[Any]:
        raise NotImplementedError

    def _put(self, flow: Any, action: Any) -> Tuple[bool, int]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {len(self)}/{self.entries}>"


class FifoCachePolicy(CachePolicy):
    """The original fixed policy: an :class:`ExactMatchTable` with
    oldest-first eviction — preserved byte-for-byte (same table name,
    same insert/evict sequence) so fixed-seed runs and cross-kernel
    wire-trace tests reproduce exactly what the hard-wired cache did.
    """

    policy_name = "fifo"

    def __init__(
        self,
        entries: int,
        metrics_scope: Optional[MetricScope] = None,
        seed: int = 0,
        *,
        scope: Any = UNSET,
    ) -> None:
        super().__init__(entries, metrics_scope, seed, scope=scope)
        self.table = ExactMatchTable("lookup.cache", entries)

    def _get(self, flow: Any) -> Optional[Any]:
        entry = self.table.lookup(flow)
        if entry is None:
            return None
        return entry.params["remote_action"]

    def _put(self, flow: Any, action: Any) -> Tuple[bool, int]:
        evicted = 0
        if self.table.is_full and not self.table.contains(flow):
            self.table.evict_oldest()
            evicted = 1
        try:
            self.table.insert(
                flow, ActionEntry("remote", {"remote_action": action})
            )
        except TableFullError:  # pragma: no cover - eviction above prevents it
            return False, evicted
        return True, evicted

    def contains(self, flow: Any) -> bool:
        return self.table.contains(flow)

    def __len__(self) -> int:
        return len(self.table)


class LruCachePolicy(CachePolicy):
    """Least-recently-used: hits refresh recency, misses evict the LRU."""

    policy_name = "lru"

    def __init__(
        self,
        entries: int,
        metrics_scope: Optional[MetricScope] = None,
        seed: int = 0,
        *,
        scope: Any = UNSET,
    ) -> None:
        super().__init__(entries, metrics_scope, seed, scope=scope)
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()

    def _get(self, flow: Any) -> Optional[Any]:
        action = self._entries.get(flow)
        if action is not None:
            self._entries.move_to_end(flow)
        return action

    def _put(self, flow: Any, action: Any) -> Tuple[bool, int]:
        evicted = 0
        if flow in self._entries:
            self._entries.move_to_end(flow)
        elif len(self._entries) >= self.entries:
            self._entries.popitem(last=False)
            evicted = 1
        self._entries[flow] = action
        return True, evicted

    def contains(self, flow: Any) -> bool:
        return flow in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class LfuCachePolicy(CachePolicy):
    """Least-frequently-used with O(1) frequency buckets.

    Eviction removes the oldest entry of the lowest-frequency bucket
    (deterministic FIFO tie-break), so a burst of one-hit wonders cannot
    displace an established heavy hitter.
    """

    policy_name = "lfu"

    def __init__(
        self,
        entries: int,
        metrics_scope: Optional[MetricScope] = None,
        seed: int = 0,
        *,
        scope: Any = UNSET,
    ) -> None:
        super().__init__(entries, metrics_scope, seed, scope=scope)
        self._actions: Dict[Any, Any] = {}
        self._freq: Dict[Any, int] = {}
        self._buckets: Dict[int, "OrderedDict[Any, None]"] = {}
        self._min_freq = 0

    def _touch(self, flow: Any) -> None:
        freq = self._freq[flow]
        bucket = self._buckets[freq]
        del bucket[flow]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq[flow] = freq + 1
        self._buckets.setdefault(freq + 1, OrderedDict())[flow] = None

    def _get(self, flow: Any) -> Optional[Any]:
        action = self._actions.get(flow)
        if action is not None:
            self._touch(flow)
        return action

    def _put(self, flow: Any, action: Any) -> Tuple[bool, int]:
        evicted = 0
        if flow in self._actions:
            self._actions[flow] = action
            self._touch(flow)
            return True, 0
        if len(self._actions) >= self.entries:
            bucket = self._buckets[self._min_freq]
            victim, _ = bucket.popitem(last=False)
            if not bucket:
                del self._buckets[self._min_freq]
            del self._actions[victim]
            del self._freq[victim]
            evicted = 1
        self._actions[flow] = action
        self._freq[flow] = 1
        self._buckets.setdefault(1, OrderedDict())[flow] = None
        self._min_freq = 1
        return True, evicted

    def contains(self, flow: Any) -> bool:
        return flow in self._actions

    def __len__(self) -> int:
        return len(self._actions)


class PinningCachePolicy(CachePolicy):
    """FIB-caching-style popular-flow pinning (arXiv:1804.07379).

    Every lookup — hit or miss — counts a reference.  A flow whose
    references pass its *promotion threshold* is pinned: installed in
    the protected region (at most ``pin_fraction`` of capacity) where
    no later churn can evict it.  Everything else cycles through a
    small LRU region, so the cache keeps serving medium flows while the
    heavy tail earns pins.  The threshold carries seeded per-flow
    jitter, breaking the synchronized promotion waves a single global
    threshold produces.
    """

    policy_name = "pin"

    def __init__(
        self,
        entries: int,
        metrics_scope: Optional[MetricScope] = None,
        seed: int = 0,
        threshold: int = 4,
        pin_fraction: float = 0.75,
        *,
        scope: Any = UNSET,
    ) -> None:
        super().__init__(entries, metrics_scope, seed, scope=scope)
        if threshold < 1:
            raise ValueError(f"promotion threshold must be >= 1: {threshold}")
        if not 0.0 < pin_fraction < 1.0:
            raise ValueError(
                f"pin_fraction must be in (0, 1), got {pin_fraction}"
            )
        self.threshold = threshold
        self.pin_cap = max(1, min(entries - 1, int(entries * pin_fraction)))
        self._pinned: Dict[Any, Any] = {}
        self._lru: "OrderedDict[Any, Any]" = OrderedDict()
        self._refs: Dict[Any, int] = {}

    def flow_threshold(self, flow: Any) -> int:
        """The seeded per-flow promotion threshold (base + jitter 0..2)."""
        packed = flow.pack() if hasattr(flow, "pack") else bytes(flow)
        return self.threshold + self._seeded_jitter(packed, 3)

    @property
    def pinned_flows(self) -> int:
        return len(self._pinned)

    def _get(self, flow: Any) -> Optional[Any]:
        self._refs[flow] = self._refs.get(flow, 0) + 1
        action = self._pinned.get(flow)
        if action is not None:
            return action
        action = self._lru.get(flow)
        if action is not None:
            self._lru.move_to_end(flow)
        return action

    def _put(self, flow: Any, action: Any) -> Tuple[bool, int]:
        if flow in self._pinned:
            self._pinned[flow] = action
            return True, 0
        evicted = 0
        promote = (
            self._refs.get(flow, 0) >= self.flow_threshold(flow)
            and len(self._pinned) < self.pin_cap
        )
        if promote:
            if flow in self._lru:
                del self._lru[flow]
            elif len(self) >= self.entries and self._lru:
                self._lru.popitem(last=False)
                evicted = 1
            self._pinned[flow] = action
            self._m_pins.inc()
            return True, evicted
        if flow in self._lru:
            self._lru.move_to_end(flow)
            self._lru[flow] = action
            return True, 0
        if len(self) >= self.entries:
            if not self._lru:  # every slot pinned (pin_cap == entries - 1
                return False, 0  # can't happen, but never evict a pin)
            self._lru.popitem(last=False)
            evicted = 1
        self._lru[flow] = action
        return True, evicted

    def contains(self, flow: Any) -> bool:
        return flow in self._pinned or flow in self._lru

    def __len__(self) -> int:
        return len(self._pinned) + len(self._lru)


def make_cache_policy(
    name: str,
    entries: int,
    metrics_scope: Optional[MetricScope] = None,
    seed: int = 0,
    pin_threshold: int = 4,
    pin_fraction: float = 0.75,
    *,
    scope: Any = UNSET,
) -> CachePolicy:
    """Build the cache policy *name* (one of :data:`CACHE_POLICIES`)."""
    if scope is not UNSET:
        warn_once(
            "make_cache_policy(scope=...) is deprecated; pass metrics_scope="
        )
        metrics_scope = scope
    if name == "fifo":
        return FifoCachePolicy(entries, metrics_scope, seed)
    if name == "lru":
        return LruCachePolicy(entries, metrics_scope, seed)
    if name == "lfu":
        return LfuCachePolicy(entries, metrics_scope, seed)
    if name == "pin":
        return PinningCachePolicy(
            entries,
            metrics_scope,
            seed=seed,
            threshold=pin_threshold,
            pin_fraction=pin_fraction,
        )
    raise ValueError(
        f"unknown cache policy {name!r}; expected one of {CACHE_POLICIES}"
    )
