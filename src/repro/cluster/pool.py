"""The memory-pool manager: many servers behind one switch, one resource.

The paper's primitives each talk to *one* RDMA channel on *one* memory
server.  Scale-out (§7 discussion) needs a layer that owns the set of
servers: open channels through the existing
:class:`~repro.core.channel.RdmaChannelController`, place shards with a
deterministic :class:`~repro.cluster.ring.ConsistentHashRing`, watch
health through the uniform channel signal, and coordinate membership
change so primitives can migrate live instead of wiring servers in at
construction time.

The pool is control-plane machinery: the data plane still sees only
channels (QPN / rkey / address scalars).  Primitives subscribe as
*membership listeners* and react to joins and leaves; the pool never
touches their packets.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.channel import RdmaChannelController, RemoteMemoryChannel
from ..core.rocegen import RoceRequestGenerator
from ..hosts.server import MemoryServer
from ..rdma.memory import TIER_DRAM, TIERS, AccessFlags
from .health import HealthMonitor
from .ring import ConsistentHashRing, Key


@dataclass
class PoolMember:
    """One memory server enrolled in the pool."""

    name: str
    server: MemoryServer
    port: int
    #: Channels opened through the pool for this member.
    channels: List[RemoteMemoryChannel] = field(default_factory=list)
    alive: bool = True
    #: Listeners still draining in-flight work during a graceful leave;
    #: channels close when the count returns to zero.
    drain_holds: int = 0
    #: The memory tier this member serves (DESIGN.md §13).  ``dram``
    #: members join the consistent-hash ring and host shard homes;
    #: ``fast`` members are cache-tier capacity only — channels to them
    #: are opened explicitly by the tiered pool, never by ring placement.
    tier: str = TIER_DRAM


class PoolListener:
    """Membership-change interface primitives implement (duck-typed).

    ``on_member_join`` fires after the member is placed on the ring;
    ``on_member_leave`` fires after the member left the ring but before
    its channels close (graceful leave) — the window in which listeners
    migrate their shards.  ``graceful`` is False when the health monitor
    declared the member dead (its channels are unusable; migrate from
    replicas or journals instead).
    """

    def on_member_join(self, member: PoolMember) -> None:  # pragma: no cover
        pass

    def on_member_leave(
        self, member: PoolMember, graceful: bool
    ) -> None:  # pragma: no cover
        pass


class MemoryPool:
    """Sharded, health-monitored pool of remote-memory servers."""

    def __init__(
        self,
        controller: RdmaChannelController,
        vnodes: int = 128,
        seed: int = 0,
        fail_after: int = 3,
    ) -> None:
        self.controller = controller
        self.ring = ConsistentHashRing(vnodes=vnodes, seed=seed)
        self.health = HealthMonitor(
            fail_after=fail_after,
            registry=controller.switch.sim.obs.registry,
        )
        self.health.on_member_down.append(self._health_down)
        self.members: Dict[str, PoolMember] = {}
        self.listeners: List[PoolListener] = []

    # -- membership ---------------------------------------------------------------

    @property
    def alive_members(self) -> List[PoolMember]:
        return [m for m in self.members.values() if m.alive]

    def member(self, name: str) -> PoolMember:
        try:
            return self.members[name]
        except KeyError:
            raise KeyError(f"no pool member named {name!r}") from None

    def add_server(
        self,
        server: MemoryServer,
        port: int,
        name: Optional[str] = None,
        tier: str = TIER_DRAM,
    ) -> PoolMember:
        """Enroll *server* (attached at switch *port*); fires join events.

        ``tier="fast"`` enrolls cache-tier capacity: the member is health
        tracked and receives explicitly-placed channels but never joins
        the consistent-hash ring, so ring placement (shard homes, replica
        sets) stays on the DRAM tier.
        """
        name = name or server.name
        if name in self.members:
            raise ValueError(f"pool already has a member named {name!r}")
        if tier not in TIERS:
            raise ValueError(f"unknown tier {tier!r}; expected one of {TIERS}")
        member = PoolMember(name=name, server=server, port=port, tier=tier)
        self.members[name] = member
        self.health.track(name)
        if tier == TIER_DRAM:
            self.ring.add(name)
        for listener in list(self.listeners):
            listener.on_member_join(member)
        return member

    def members_in_tier(self, tier: str) -> List[PoolMember]:
        """Alive members serving *tier*, in enrollment order."""
        return [m for m in self.alive_members if m.tier == tier]

    def remove_server(self, name: str) -> PoolMember:
        """Gracefully drain *name* out of the pool.

        Re-points the ring first (new placements skip the leaver), lets
        every listener migrate its shards, then closes the member's
        channels.  Listeners that need in-flight operations to drain
        schedule that themselves (see the sharded lookup table).
        """
        member = self.member(name)
        if member.alive and name in self.ring:
            self.ring.remove(name)
        member.alive = False
        for listener in list(self.listeners):
            listener.on_member_leave(member, graceful=True)
        if member.drain_holds == 0:
            self.close_member_channels(member)
        del self.members[name]
        return member

    def hold_for_drain(self, member: PoolMember) -> None:
        """Keep a leaving member's channels open while in-flight work drains.

        Call during ``on_member_leave``; pair with :meth:`release_drain`
        once the last in-flight operation on those channels completed.
        """
        member.drain_holds += 1

    def release_drain(self, member: PoolMember) -> None:
        """Release one drain hold; channels close when the last one drops.

        An unbalanced release (no hold outstanding) is a listener bug: it
        used to drive the count negative, so the *next*
        :meth:`hold_for_drain` was silently ineffective and a leave could
        close channels out from under a listener still draining.  The
        count now clamps at zero and the extra release warns instead of
        closing anything.
        """
        if member.drain_holds <= 0:
            member.drain_holds = 0
            warnings.warn(
                f"release_drain({member.name!r}) without a matching "
                "hold_for_drain; ignoring the extra release",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        member.drain_holds -= 1
        if member.drain_holds == 0:
            self.close_member_channels(member)

    def fail_server(self, name: str) -> None:
        """Declare *name* dead right now (operator override of the monitor)."""
        self.health.mark_down(name)

    def _health_down(self, name: str) -> None:
        member = self.members.get(name)
        if member is None or not member.alive:
            return
        member.alive = False
        if name in self.ring:
            self.ring.remove(name)
        for listener in list(self.listeners):
            listener.on_member_leave(member, graceful=False)
        # The server is unreachable: its channels are abandoned, not
        # closed — there is no control-plane path to tear them down.

    # -- channels -----------------------------------------------------------------

    def open_channel(
        self,
        member: PoolMember,
        size_bytes: int,
        name: Optional[str] = None,
        access: AccessFlags = AccessFlags.ALL_REMOTE,
        share_region_with: Optional[RemoteMemoryChannel] = None,
        tier: Optional[str] = None,
    ) -> RemoteMemoryChannel:
        """Open a channel to *member* through the controller and track it.

        The channel inherits the member's tier unless ``tier`` overrides
        it — the single-server dual-tier topology (RDCA's LLC model)
        opens a ``fast`` channel onto a ``dram`` member's server.
        """
        channel = self.controller.open_channel(
            member.server,
            member.port,
            size_bytes,
            name=name or f"pool:{member.name}",
            access=access,
            share_region_with=share_region_with,
            # Shared regions inherit the original channel's tier.
            tier=tier
            if tier is not None or share_region_with is not None
            else member.tier,
        )
        member.channels.append(channel)
        return channel

    def close_member_channels(self, member: PoolMember) -> None:
        for channel in list(member.channels):
            if channel in self.controller.channels:
                self.controller.close_channel(channel)
            member.channels.remove(channel)

    def watch(
        self, member: PoolMember, rocegen: RoceRequestGenerator
    ) -> Callable[[], None]:
        """Feed *rocegen*'s health events into the member's health record.

        Returns the monitor's *unwatch* callable (also fired by channel
        teardown, so pool-driven close→reopen cycles never double-count).
        """
        return self.health.watch(member.name, rocegen)

    def watch_requester(self, member: PoolMember, rnic) -> Callable[[], None]:
        """Escalate *rnic*'s retry exhaustion straight to member failover.

        Retry exhaustion is a terminal verdict — the RNIC already spent
        its whole go-back-N budget on a silent peer — so the pool drains
        the member immediately instead of waiting for ``fail_after``
        strike events to accumulate on top of it.  The event still flows
        through the monitor first (counters, snapshots), then the member
        is marked down regardless of the strike threshold.
        """
        unwatch_monitor = self.health.watch_requester(member.name, rnic)
        previous = rnic.on_retry_exhausted
        active = [True]

        def drain_now(qp) -> None:
            if previous is not None:
                previous(qp)
            if active[0]:
                self.health.mark_down(member.name)

        def unwatch() -> None:
            if not active[0]:
                return
            active[0] = False
            if rnic.on_retry_exhausted is drain_now:
                rnic.on_retry_exhausted = previous
            unwatch_monitor()

        rnic.on_retry_exhausted = drain_now
        return unwatch

    # -- placement ----------------------------------------------------------------

    def member_for(self, key: Key) -> PoolMember:
        """The alive member owning *key* (the ring holds only alive members)."""
        return self.member(self.ring.owner(key))

    def replicas_for(self, key: Key, k: int) -> List[PoolMember]:
        """Up to *k* distinct alive members hosting replicas of *key*."""
        return [self.member(name) for name in self.ring.replicas(key, k)]

    def __repr__(self) -> str:
        alive = len(self.alive_members)
        return f"<MemoryPool {alive}/{len(self.members)} members alive>"
