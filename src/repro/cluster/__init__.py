"""Cluster subsystem: sharded, replicated external-memory pools.

Scale-out layer over the single-server primitives (§7): a
:class:`MemoryPool` owns channels to many memory servers, places shards
with a deterministic :class:`ConsistentHashRing`, watches the uniform
channel health signal through a :class:`HealthMonitor`, and coordinates
live migration on membership change.  :class:`ShardedLookupTable` and
:class:`ReplicatedStateStore` are pool-backed drop-ins for the
single-channel primitives.
"""

from .health import HealthMonitor, MemberHealth
from .pool import MemoryPool, PoolListener, PoolMember
from .replicated_store import ClusterStoreStats, ReplicatedStateStore
from .ring import ConsistentHashRing, RingEmptyError
from .sharded_lookup import ClusterLookupStats, ShardedLookupTable

__all__ = [
    "ClusterLookupStats",
    "ClusterStoreStats",
    "ConsistentHashRing",
    "HealthMonitor",
    "MemberHealth",
    "MemoryPool",
    "PoolListener",
    "PoolMember",
    "ReplicatedStateStore",
    "RingEmptyError",
    "ShardedLookupTable",
]
