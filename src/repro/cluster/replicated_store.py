"""K-way replicated remote counters over a memory pool.

The state store's reliable mode (§7) makes a *single* server exactly-once;
it does nothing when the server itself dies.  This layer replicates every
counter update to K ring-chosen members — each replica is a full
:class:`~repro.core.state_store.RemoteStateStore` in reliable mode, so
each copy is independently exactly-once — and reconciles divergence after
failover with a quorum-style rule:

    the authoritative value of a counter is the **maximum** over its
    surviving replicas.

Max is correct for the monotone counters this primitive models (per-flow
packet/byte counts): a replica can only *miss* updates (it died, or an
update was still in flight), never over-count, because the per-replica
replay cache already de-duplicates retransmissions.  Applications pushing
signed deltas (Count Sketch) must not assume this rule — they should
reconcile with application-level logic instead.

Failover path: the health monitor declares a member dead → its store is
closed (watchdog stops retransmitting into the void) → every touched
counter still has K-1 live replicas → :meth:`reconcile` copies the
authoritative values onto the members that took over the dead arcs,
restoring K-way redundancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from .._deprecation import warn_once
from ..core.state_store import (
    ATOMIC_OPERAND_BYTES,
    RemoteStateStore,
    StateStoreConfig,
    StateStoreStats,
)
from ..net.packet import Packet
from ..switches.hashing import FiveTuple
from ..switches.pipeline import PipelineContext
from ..switches.switch import ProgrammableSwitch
from .pool import MemoryPool, PoolMember


@dataclass
class ClusterStoreStats:
    """Cluster-level counters layered over the per-replica store stats."""

    updates_replicated: int = 0
    members_joined: int = 0
    members_left: int = 0
    members_failed: int = 0
    #: Counters copied onto a new replica during reconciliation.
    counters_repaired: int = 0
    reconciliations: int = 0
    #: Updates dropped because the pool had no live members.
    updates_unreplicated: int = 0


class ReplicatedStateStore:
    """Pool-backed, K-way replicated drop-in for :class:`RemoteStateStore`.

    Every update fans out to the key's current replica set
    (``pool.replicas_for(index, k)``); reads take the max over the alive
    replicas.  Exposes the same program-facing surface (``on_packet`` /
    ``update`` / ``try_handle`` / ``flush_all``), so
    :class:`~repro.apps.programs.CountingProgram`-style programs drive it
    unchanged.
    """

    def __init__(
        self,
        switch: ProgrammableSwitch,
        pool: MemoryPool,
        config: Optional[StateStoreConfig] = None,
        replication: int = 2,
        store_factory: Optional[
            Callable[[PoolMember], RemoteStateStore]
        ] = None,
    ) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.switch = switch
        self.pool = pool
        #: Builds one replica store per member.  The default opens a plain
        #: DRAM channel; pass a factory to back replicas differently —
        #: e.g. a tiered store whose hot blocks ride the fast tier
        #: (``pool.tier_object`` + ``RemoteStateStore(tiering=...)``).
        self.store_factory = store_factory
        if config is None:
            # Replication without per-replica exactly-once would let a
            # *lossy link* (not just a dead server) desynchronize copies.
            config = StateStoreConfig(reliable=True)
        self.config = config
        self.replication = replication
        self.cluster_stats = ClusterStoreStats()
        #: Active replica stores by member name.
        self.stores: Dict[str, RemoteStateStore] = {}
        #: Closed stores kept only to consume late in-flight responses.
        self._retired: List[RemoteStateStore] = []
        #: Every counter index that ever received an update — the
        #: control-plane worklist for reconciliation.
        self._touched: Set[int] = set()
        for member in pool.alive_members:
            self._open_store(member)
        pool.listeners.append(self)

    # -- replica management --------------------------------------------------------

    @property
    def region_bytes_per_member(self) -> int:
        return self.config.counters * ATOMIC_OPERAND_BYTES

    def _open_store(self, member: PoolMember) -> RemoteStateStore:
        if self.store_factory is not None:
            store = self.store_factory(member)
        else:
            channel = self.pool.open_channel(
                member,
                self.region_bytes_per_member,
                name=f"counters:{member.name}",
            )
            store = RemoteStateStore(self.switch, channel, config=self.config)
        self.pool.watch(member, store.rocegen)
        self.stores[member.name] = store
        return store

    def replica_stores(self, index: int) -> List[RemoteStateStore]:
        """The alive replica stores currently hosting *index*."""
        if not self.stores:
            return []
        return [
            self.stores[m.name]
            for m in self.pool.replicas_for(index, self.replication)
        ]

    # -- program-facing surface (duck-types RemoteStateStore) ---------------------

    def key_of(self, packet: Packet) -> FiveTuple:
        """The counter key for *packet* (its 5-tuple)."""
        return FiveTuple.of(packet)

    def index_of(self, flow: FiveTuple) -> int:
        """Counter index for *flow*; ``index_of(packet)`` is deprecated."""
        if isinstance(flow, Packet):
            warn_once(
                f"{type(self).__name__}.index_of(packet) is deprecated; "
                "use index_of(key_of(packet))"
            )
            flow = self.key_of(flow)
        return flow.hash() % self.config.counters

    def on_packet(self, ctx: PipelineContext, packet: Packet) -> None:
        if self.config.sample is not None and not self.config.sample(packet):
            return
        value = 1 if self.config.count_mode == "packets" else packet.buffer_len
        self.update(self.key_of(packet).hash() % self.config.counters, value)

    def update(self, index: int, value: int) -> None:
        """Fan *value* out to every replica of counter *index*.

        With no live members the update is dropped and accounted — there
        is nowhere left to put it.
        """
        if not self.stores:
            self.cluster_stats.updates_unreplicated += 1
            return
        self._touched.add(index)
        for store in self.replica_stores(index):
            store.update(index, value)
        self.cluster_stats.updates_replicated += 1

    def try_handle(self, ctx: PipelineContext, packet: Packet) -> bool:
        for store in self.stores.values():
            if store.try_handle(ctx, packet):
                return True
        for store in self._retired:
            if store.try_handle(ctx, packet):
                return True
        return False

    def flush_all(self) -> None:
        for store in self.stores.values():
            store.flush_all()

    @property
    def outstanding(self) -> int:
        return sum(store.outstanding for store in self.stores.values())

    @property
    def pending_value(self) -> int:
        return sum(store.pending_value for store in self.stores.values())

    @property
    def stats(self) -> StateStoreStats:
        """Aggregate per-replica stats (retired replicas included)."""
        total = StateStoreStats()
        for store in list(self.stores.values()) + self._retired:
            for name in vars(total):
                setattr(
                    total, name,
                    getattr(total, name) + getattr(store.stats, name),
                )
        return total

    # -- reads and reconciliation --------------------------------------------------

    def read_counter(self, index: int) -> int:
        """Authoritative value: max over the alive replicas of *index*.

        Counts still accumulated switch-side or in flight are not yet in
        any replica's DRAM; quiesce first (``flush_all`` + run the sim)
        for an exact total.
        """
        return max(
            (
                store.read_counter_via_control_plane(index)
                for store in self.replica_stores(index)
            ),
            default=0,
        )

    def reconcile(self) -> int:
        """Control-plane repair after a membership change.

        For every touched counter, copy the authoritative (max) value onto
        any current replica that is behind — the member that took over a
        dead arc starts at zero and catches up here.  Returns the number
        of counters repaired.

        Failover reconciles run under live load, so the repair must not
        race the target's own un-landed deltas: a delta that already
        landed on the replica supplying the max but is still in flight to
        the repair target would be counted twice — once inside the
        absolute value written here, once when the Fetch-and-Add lands on
        top of it.  The target therefore catches up only to
        ``authoritative - unlanded``; its in-flight and accumulated
        deltas lift it the rest of the way, and any remaining shortfall
        is closed by the next quiesced reconcile (drain handoffs always
        run one).
        """
        repaired = 0
        for index in sorted(self._touched):
            authoritative = self.read_counter(index)
            if authoritative == 0:
                continue
            for store in self.replica_stores(index):
                held = store.read_counter_via_control_plane(index)
                target = authoritative - store.unlanded_value(index)
                if held < target:
                    store.channel.region.write(
                        store.counter_address(index),
                        target.to_bytes(ATOMIC_OPERAND_BYTES, "big"),
                    )
                    repaired += 1
        self.cluster_stats.counters_repaired += repaired
        self.cluster_stats.reconciliations += 1
        return repaired

    # -- membership change (PoolListener) ------------------------------------------

    def on_member_join(self, member: PoolMember) -> None:
        self.cluster_stats.members_joined += 1
        self._open_store(member)
        # The joiner took over arcs whose counters live on other members;
        # copy them in so its replicas are immediately authoritative.
        self.reconcile()

    def on_member_leave(self, member: PoolMember, graceful: bool) -> None:
        store = self.stores.pop(member.name, None)
        if store is None:
            return
        if graceful:
            self.cluster_stats.members_left += 1
        else:
            self.cluster_stats.members_failed += 1
        # Closing abandons the replica's in-flight and accumulated
        # updates; the surviving replicas still hold every update, which
        # is the redundancy replication bought.
        store.close()
        self._retired.append(store)
        if self.stores:
            self.reconcile()
