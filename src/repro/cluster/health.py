"""Per-member health tracking fed by channel health signals.

Every :class:`~repro.core.rocegen.RoceRequestGenerator` emits the same
event vocabulary — ``nak`` / ``strike`` / ``timeout`` / ``progress`` —
regardless of which primitive drives it.  The monitor aggregates those
events per pool member and turns *consecutive* stall evidence (strikes
and timeouts with no progress in between) into an up/down verdict, the
cluster-level generalization of the packet buffer's original private
``failover_strikes`` counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.rocegen import RoceRequestGenerator
from ..obs.registry import MetricRegistry

#: Membership verdict callbacks receive the member name.
MemberCallback = Callable[[str], None]


@dataclass
class MemberHealth:
    """Aggregated health counters for one pool member."""

    naks: int = 0
    strikes: int = 0
    timeouts: int = 0
    progress: int = 0
    #: Strikes/timeouts since the last progress event (the down trigger).
    consecutive_stalls: int = 0
    alive: bool = True
    #: Channels reporting into this member (for snapshots).
    watched: int = 0


class HealthMonitor:
    """Turns uniform channel health events into member up/down verdicts.

    A member goes *down* after ``fail_after`` consecutive stall events
    (strike or timeout) with no intervening progress from any of its
    watched channels — the same hysteresis the §7 failover logic applies,
    but shared by every primitive instead of private to one.  NAKs alone
    never count: one loss event produces a NAK burst, and a channel that
    resynchronizes and makes progress is healthy.
    """

    def __init__(
        self, fail_after: int = 3, registry: Optional[MetricRegistry] = None
    ) -> None:
        if fail_after < 1:
            raise ValueError("fail_after must be >= 1")
        self.fail_after = fail_after
        self.members: Dict[str, MemberHealth] = {}
        self.on_member_down: List[MemberCallback] = []
        self.on_member_up: List[MemberCallback] = []
        # When given a registry (the pool passes the simulation's), every
        # member's health surfaces under cluster.member[<name>].* — the
        # event counters plus alive/consecutive_stalls sampled live.
        self._registry = registry
        self._member_counters: Dict[str, Dict[str, object]] = {}

    # -- wiring -------------------------------------------------------------------

    def track(self, member: str) -> MemberHealth:
        health = self.members.get(member)
        if health is None:
            health = MemberHealth()
            self.members[member] = health
            if self._registry is not None:
                scope = self._registry.unique_scope(
                    f"cluster.member[{member}]"
                )
                self._member_counters[member] = {
                    event: scope.counter(event)
                    for event in ("nak", "strike", "timeout", "progress")
                }
                scope.gauge("alive", fn=lambda h=health: int(h.alive))
                scope.gauge(
                    "consecutive_stalls",
                    fn=lambda h=health: h.consecutive_stalls,
                )
                scope.gauge("watched_channels", fn=lambda h=health: h.watched)
        return health

    def watch(
        self, member: str, rocegen: RoceRequestGenerator
    ) -> Callable[[], None]:
        """Subscribe to *rocegen*'s health events under *member*'s name.

        Chains any listener already installed so several monitors (or a
        test probe) can observe the same channel.  Returns an *unwatch*
        callable that detaches the subscription; it is also registered on
        the channel's ``teardown_callbacks`` so ``close_channel``
        silences the watch automatically — a closed-then-reopened channel
        must not keep striking its old member.
        """
        health = self.track(member)
        health.watched += 1
        previous = rocegen.health_listener
        active = [True]

        def listen(gen: RoceRequestGenerator, event: str) -> None:
            if previous is not None:
                previous(gen, event)
            if active[0]:
                self.record(member, event)

        def unwatch() -> None:
            if not active[0]:
                return
            active[0] = False
            health.watched -= 1
            # Pop our link out of the chain when still the head; otherwise
            # the active flag alone mutes us (the chain stays intact for
            # listeners stacked after this one).
            if rocegen.health_listener is listen:
                rocegen.health_listener = previous

        rocegen.health_listener = listen
        channel = getattr(rocegen, "channel", None)
        if channel is not None:
            channel.teardown_callbacks.append(unwatch)
        return unwatch

    def watch_requester(self, member: str, rnic) -> Callable[[], None]:
        """Subscribe to *rnic*'s retry-exhaustion verdicts under *member*.

        The requester-side complement of :meth:`watch`: when the RNIC's
        go-back-N machinery gives up on a QP (``max_retries`` fruitless
        timeout rounds — a silent peer, not a NAKing one), that terminal
        evidence lands here as a ``timeout`` event.  Chains any hook
        already installed, like :meth:`watch` does, and returns the
        matching *unwatch* callable.
        """
        health = self.track(member)
        health.watched += 1
        previous = rnic.on_retry_exhausted
        active = [True]

        def escalate(qp) -> None:
            if previous is not None:
                previous(qp)
            if active[0]:
                self.record(member, "timeout")

        def unwatch() -> None:
            if not active[0]:
                return
            active[0] = False
            health.watched -= 1
            if rnic.on_retry_exhausted is escalate:
                rnic.on_retry_exhausted = previous

        rnic.on_retry_exhausted = escalate
        return unwatch

    # -- event intake --------------------------------------------------------------

    def record(self, member: str, event: str) -> None:
        health = self.track(member)
        counters = self._member_counters.get(member)
        if counters is not None and event in counters:
            counters[event].inc()
        if event == "progress":
            health.progress += 1
            health.consecutive_stalls = 0
            return
        if event == "nak":
            health.naks += 1
            return
        if event == "strike":
            health.strikes += 1
        elif event == "timeout":
            health.timeouts += 1
        else:
            raise ValueError(f"unknown health event: {event!r}")
        health.consecutive_stalls += 1
        if health.alive and health.consecutive_stalls >= self.fail_after:
            self.mark_down(member)

    # -- verdicts -----------------------------------------------------------------

    def is_alive(self, member: str) -> bool:
        health = self.members.get(member)
        return health.alive if health is not None else True

    def mark_down(self, member: str) -> None:
        health = self.track(member)
        if not health.alive:
            return
        health.alive = False
        for callback in list(self.on_member_down):
            callback(member)

    def mark_up(self, member: str) -> None:
        """Re-admit a member (operator action after repair)."""
        health = self.track(member)
        if health.alive:
            return
        health.alive = True
        health.consecutive_stalls = 0
        for callback in list(self.on_member_up):
            callback(member)

    def snapshot(self) -> Dict[str, dict]:
        """Per-member counters, for experiments and operator dashboards."""
        return {
            name: {
                "alive": h.alive,
                "naks": h.naks,
                "strikes": h.strikes,
                "timeouts": h.timeouts,
                "progress": h.progress,
                "consecutive_stalls": h.consecutive_stalls,
                "watched_channels": h.watched,
            }
            for name, h in sorted(self.members.items())
        }
