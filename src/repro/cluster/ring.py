"""Consistent-hash ring for shard placement across memory servers.

EMOMA (Pontarelli et al.) keeps exact-match lookups one-access-only by
making placement *deterministic*: the data plane must be able to compute,
from the key alone, which server owns the key's entry.  A consistent-hash
ring gives that determinism plus minimal movement on membership change —
when a server joins or leaves, only the keys in its arcs move, everything
else stays put (the property live shard migration depends on).

The ring is CRC32-based (the same hash-unit family a Tofino exposes, see
:mod:`repro.switches.hashing`), salted with a fixed seed so placement is
reproducible run to run, and uses virtual nodes so the hash space splits
evenly across members.
"""

from __future__ import annotations

import bisect
import struct
from typing import Dict, List, Union

from ..switches.hashing import crc32

Key = Union[int, bytes]


class RingEmptyError(LookupError):
    """Placement was requested on a ring with no members."""


class ConsistentHashRing:
    """Deterministic consistent hashing with virtual nodes.

    Members are identified by name.  ``owner(key)`` walks clockwise from
    the key's hash to the first virtual node; ``replicas(key, k)`` keeps
    walking until *k* distinct members are collected, so replica sets are
    also stable under membership change (a surviving replica stays a
    replica when another member leaves).
    """

    def __init__(self, vnodes: int = 128, seed: int = 0) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.seed = seed
        self._points: List[int] = []  # sorted vnode positions
        self._owner_at: Dict[int, str] = {}  # position -> member name

    # -- membership ---------------------------------------------------------------

    @property
    def members(self) -> List[str]:
        return sorted(set(self._owner_at.values()))

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, member: str) -> bool:
        return member in self._owner_at.values()

    def _positions_of(self, member: str) -> List[int]:
        return [
            crc32(f"{self.seed}:{member}#{i}".encode())
            for i in range(self.vnodes)
        ]

    def add(self, member: str) -> None:
        if member in self:
            raise ValueError(f"member {member!r} already on the ring")
        for position in self._positions_of(member):
            # CRC collisions across members are possible in principle;
            # deterministic tie-break by name keeps placement stable.
            holder = self._owner_at.get(position)
            if holder is not None:
                if member < holder:
                    self._owner_at[position] = member
                continue
            bisect.insort(self._points, position)
            self._owner_at[position] = member

    def remove(self, member: str) -> None:
        if member not in self:
            raise ValueError(f"member {member!r} is not on the ring")
        for position in list(self._owner_at):
            if self._owner_at[position] == member:
                del self._owner_at[position]
                index = bisect.bisect_left(self._points, position)
                del self._points[index]

    # -- placement ---------------------------------------------------------------

    @staticmethod
    def _hash_key(key: Key) -> int:
        if isinstance(key, bytes):
            return crc32(key)
        return crc32(struct.pack("!Q", key & ((1 << 64) - 1)))

    def owner(self, key: Key) -> str:
        """The member owning *key*: first virtual node clockwise."""
        return self.replicas(key, 1)[0]

    def replicas(self, key: Key, k: int) -> List[str]:
        """The first *k* distinct members clockwise from *key*'s position.

        Returns fewer than *k* members when the ring holds fewer.
        """
        if not self._points:
            raise RingEmptyError("ring has no members")
        if k < 1:
            raise ValueError("k must be >= 1")
        start = bisect.bisect_right(self._points, self._hash_key(key))
        chosen: List[str] = []
        for step in range(len(self._points)):
            position = self._points[(start + step) % len(self._points)]
            member = self._owner_at[position]
            if member not in chosen:
                chosen.append(member)
                if len(chosen) == k:
                    break
        return chosen

    def shares(self, samples: int = 4096) -> Dict[str, float]:
        """Approximate fraction of the hash space owned per member.

        Sampled (not arc-integrated) so it doubles as a check of the
        placement actually seen by uniformly-hashed keys.
        """
        counts: Dict[str, int] = {}
        for i in range(samples):
            member = self.owner(crc32(struct.pack("!I", i)))
            counts[member] = counts.get(member, 0) + 1
        return {m: c / samples for m, c in sorted(counts.items())}
