"""The lookup-table primitive, sharded across a memory pool.

One :class:`~repro.core.lookup_table.RemoteLookupTable` shard per pool
member, each with its own channel and an *equal per-server region size*
(``config.entries`` entries per shard).  A flow's shard is chosen by the
pool's consistent-hash ring over the flow hash, so the data plane can
compute placement from the packet alone — every miss is still exactly one
WRITE + one READ to exactly one server, now spread over as many server
links as the pool has members.

Live shard migration follows the ring's minimal-movement property.  The
control plane journals every installed ``flow → action``; on membership
change it re-installs only the flows whose ring owner moved:

* **join** — the new member's shard opens, moved flows are written into
  its region (re-register), and the dispatch map re-points; the old
  copies are simply never consulted again.
* **graceful leave** — the ring re-points first (no new lookups reach the
  leaver), moved flows are re-installed, and the leaver's channels stay
  open under a drain hold until its in-flight lookups complete.
* **failure** — the health monitor pulls the member; in-flight lookups on
  it are accounted lost (bounce mode parks the packet remotely — §7's
  loss semantics), and journaled flows are re-installed onto survivors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.lookup_table import (
    ACTION_DROP,
    LookupTableConfig,
    LookupTableStats,
    RemoteAction,
    RemoteLookupTable,
    ResolveEgress,
)
from ..net.packet import Packet
from ..switches.hashing import FiveTuple
from ..switches.pipeline import PipelineContext
from ..switches.switch import ProgrammableSwitch
from .pool import MemoryPool, PoolMember


@dataclass
class ClusterLookupStats:
    """Cluster-level counters layered over the per-shard stats."""

    members_joined: int = 0
    members_left: int = 0
    members_failed: int = 0
    #: Journaled flows re-installed because their ring owner moved.
    flows_migrated: int = 0
    #: In-flight lookups abandoned when their member failed.
    lookups_lost_on_failure: int = 0
    #: Graceful drains that completed (all in-flight lookups answered).
    drains_completed: int = 0
    #: Lookups offered while the pool had no live members (the packet
    #: falls back to the default action locally).
    lookups_unplaced: int = 0


class ShardedLookupTable:
    """Pool-backed drop-in for :class:`RemoteLookupTable`.

    Exposes the same program-facing surface (``lookup`` / ``try_handle``
    / ``install`` / ``resolve_egress`` / ``flow_of``), so
    :class:`~repro.apps.programs.RemoteLookupProgram` drives it unchanged.
    """

    def __init__(
        self,
        switch: ProgrammableSwitch,
        pool: MemoryPool,
        config: Optional[LookupTableConfig] = None,
        default_action: Optional[RemoteAction] = None,
        drain_poll_ns: float = 10_000.0,
        drain_timeout_ns: float = 1_000_000.0,
    ) -> None:
        self.switch = switch
        self.pool = pool
        self.config = config if config is not None else LookupTableConfig()
        self.default_action = default_action
        self.cluster_stats = ClusterLookupStats()
        self.drain_poll_ns = drain_poll_ns
        self.drain_timeout_ns = drain_timeout_ns
        self._resolve_egress: Optional[ResolveEgress] = None
        self._flow_of: Callable[[Packet], FiveTuple] = FiveTuple.of
        #: Active shards by member name (dispatch targets).
        self.shards: Dict[str, RemoteLookupTable] = {}
        #: Shards draining or dead, kept only to consume late responses.
        self._retired: List[RemoteLookupTable] = []
        #: Control-plane journal: every installed flow → action.
        self._journal: Dict[FiveTuple, RemoteAction] = {}
        #: Current ring owner per journaled flow (migration delta base).
        self._placement: Dict[FiveTuple, str] = {}
        for member in pool.alive_members:
            self._open_shard(member)
        pool.listeners.append(self)

    # -- shard management ---------------------------------------------------------

    @property
    def region_bytes_per_member(self) -> int:
        return self.config.region_bytes

    def _open_shard(self, member: PoolMember) -> RemoteLookupTable:
        channel = self.pool.open_channel(
            member,
            self.region_bytes_per_member,
            name=f"lookup:{member.name}",
        )
        shard = RemoteLookupTable(
            self.switch,
            channel,
            config=self.config,
            default_action=self.default_action,
        )
        if self._resolve_egress is not None:
            shard.resolve_egress = self._resolve_egress
        shard.flow_of = self._flow_of
        self.pool.watch(member, shard.rocegen)
        self.shards[member.name] = shard
        return shard

    def _shard_key(self, flow: FiveTuple) -> int:
        return flow.hash()

    def shard_for(self, flow: FiveTuple) -> RemoteLookupTable:
        return self.shards[self.pool.member_for(self._shard_key(flow)).name]

    # -- program-facing surface (duck-types RemoteLookupTable) -------------------

    @property
    def resolve_egress(self) -> Optional[ResolveEgress]:
        return self._resolve_egress

    @resolve_egress.setter
    def resolve_egress(self, policy: ResolveEgress) -> None:
        self._resolve_egress = policy
        for shard in self.shards.values():
            shard.resolve_egress = policy

    @property
    def flow_of(self) -> Callable[[Packet], FiveTuple]:
        return self._flow_of

    @flow_of.setter
    def flow_of(self, extractor: Callable[[Packet], FiveTuple]) -> None:
        self._flow_of = extractor
        for shard in self.shards.values():
            shard.flow_of = extractor

    def install(self, flow: FiveTuple, action: RemoteAction) -> int:
        """Journal and write *action* into the flow's owning shard.

        With no live members the flow is journaled only (returns ``-1``);
        it is written out when the next member joins.
        """
        self._journal[flow] = action
        if not self.shards:
            self._placement.pop(flow, None)
            return -1
        owner = self.pool.member_for(self._shard_key(flow)).name
        self._placement[flow] = owner
        return self.shards[owner].install(flow, action)

    def lookup(self, ctx: PipelineContext, packet: Packet) -> bool:
        if not self.shards:
            # Pool fully dead: the table cannot be consulted, so apply the
            # default action locally and keep the pipeline moving.
            self.cluster_stats.lookups_unplaced += 1
            action = self.default_action
            port = (
                self._resolve_egress(packet, action)
                if self._resolve_egress is not None
                else None
            )
            if port is None or (
                action is not None and action.action_id == ACTION_DROP
            ):
                ctx.drop()
            else:
                ctx.forward(port)
            return True
        return self.shard_for(self._flow_of(packet)).lookup(ctx, packet)

    def try_handle(self, ctx: PipelineContext, packet: Packet) -> bool:
        for shard in self.shards.values():
            if shard.try_handle(ctx, packet):
                return True
        for shard in self._retired:
            if shard.try_handle(ctx, packet):
                return True
        return False

    @property
    def stats(self) -> LookupTableStats:
        """Aggregate per-shard stats (retired shards included)."""
        total = LookupTableStats()
        for shard in list(self.shards.values()) + self._retired:
            for name in vars(total):
                setattr(
                    total, name,
                    getattr(total, name) + getattr(shard.stats, name),
                )
        total.lookups_lost += self.cluster_stats.lookups_lost_on_failure
        total.lookups_lost += self.cluster_stats.lookups_unplaced
        return total

    # -- membership change (PoolListener) -----------------------------------------

    def on_member_join(self, member: PoolMember) -> None:
        self.cluster_stats.members_joined += 1
        self._open_shard(member)
        self._migrate_moved_flows()

    def on_member_leave(self, member: PoolMember, graceful: bool) -> None:
        shard = self.shards.pop(member.name, None)
        if shard is None:
            return
        self._retired.append(shard)
        if graceful:
            self.cluster_stats.members_left += 1
            self.pool.hold_for_drain(member)
            self._drain(member, shard, deadline=self.switch.sim.now + self.drain_timeout_ns)
        else:
            self.cluster_stats.members_failed += 1
            # Bounce mode parked the packets in the dead member's DRAM;
            # they are gone (§7's clean-loss semantics).
            self.cluster_stats.lookups_lost_on_failure += len(shard._pending)
            shard._pending.clear()
        # The leaver's flows have no placement until migration re-homes
        # them (or, with an empty pool, until the next join).
        for flow, owner in list(self._placement.items()):
            if owner == member.name:
                del self._placement[flow]
        self._migrate_moved_flows()

    def _drain(
        self, member: PoolMember, shard: RemoteLookupTable, deadline: float
    ) -> None:
        """Poll until the leaver's in-flight lookups complete, then close."""
        if not shard._pending:
            self.cluster_stats.drains_completed += 1
            self.pool.release_drain(member)
            return
        if self.switch.sim.now >= deadline:
            self.cluster_stats.lookups_lost_on_failure += len(shard._pending)
            shard._pending.clear()
            self.pool.release_drain(member)
            return
        self.switch.sim.schedule(
            self.drain_poll_ns, self._drain, member, shard, deadline
        )

    def _migrate_moved_flows(self) -> None:
        """Re-install journaled flows whose ring owner changed.

        The ring moves only the arcs of the member that joined or left,
        so this writes the minimal delta — the rest of the table stays
        untouched on its current servers.
        """
        if not self.shards:
            return
        for flow, action in self._journal.items():
            owner = self.pool.member_for(self._shard_key(flow)).name
            if self._placement.get(flow) == owner:
                continue
            self.shards[owner].install(flow, action)
            self._placement[flow] = owner
            self.cluster_stats.flows_migrated += 1
