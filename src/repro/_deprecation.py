"""Warn-once DeprecationWarning helpers for API-reconciliation shims.

The repo's CI runs in-repo callers with ``-W error::DeprecationWarning``,
so anything still on a deprecated form fails loudly there; external
callers get exactly one warning per distinct message per process instead
of one per packet.
"""

from __future__ import annotations

import warnings
from typing import Set

_warned: Set[str] = set()


class _Unset:
    """Sentinel distinguishing 'kwarg not passed' from an explicit None."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<UNSET>"


#: Default for deprecated keyword arguments, so shims can tell whether
#: the caller actually used the old spelling.
UNSET = _Unset()


def warn_once(message: str) -> None:
    """Issue ``DeprecationWarning(message)`` once per process.

    The dedup is manual (not ``warnings`` filter state) so test code that
    resets warning filters still sees at most one emission — except via
    :func:`reset`, which tests use to assert the warning fires at all.
    """
    if message in _warned:
        return
    _warned.add(message)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def reset() -> None:
    """Forget what was warned (test hook)."""
    _warned.clear()
