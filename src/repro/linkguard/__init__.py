"""Link-local loss protection: mask a bad link below the transport.

The transport's answer to loss is end-to-end go-back-N (DESIGN.md §10)
and, above that, circuit breakers that degrade service when a server
really dies (§11).  Both are the *wrong tool* for one specific failure:
a link that corrupts — packets arrive, fail their CRC, and silently
vanish, so every loss costs a full transport RTO and a go-back-N replay
of the whole in-flight window.

This package is the other tool: a LinkGuardian-style (SIGCOMM'23) guard
pair wrapped around one :class:`~repro.net.link.Link`.  The sender shims
every frame with a link-local sequence number and keeps a bounded
emergency retransmission buffer; the receiver detects corruption and
holes the moment they appear and NAKs immediately, so the resend lands
within a link RTT — orders of magnitude before the transport's timer
would fire.  The transport above sees a lossless (and, in
``"full-ordered"`` mode, ordered) link.

docs/RESILIENCE.md is the decision guide for when to reach for this
versus a breaker; DESIGN.md §14 specifies the protocol.

>>> from repro.api import LinkGuard
>>> guard = LinkGuard(tb.server_link)          # full-ordered by default
>>> ...                                        # run traffic, inject faults
>>> guard.counts["masked_losses"]              # losses the transport never saw
"""

from .guard import LinkGuard, LinkGuardConfig, PROTECTION_LEVELS
from .shim import ETHERTYPE_LINKGUARD, GuardShimHeader, guard_checksum

__all__ = [
    "ETHERTYPE_LINKGUARD",
    "GuardShimHeader",
    "LinkGuard",
    "LinkGuardConfig",
    "PROTECTION_LEVELS",
    "guard_checksum",
]
