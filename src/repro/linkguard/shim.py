"""The guard shim header: the on-wire format of link-local protection.

LinkGuardian (SIGCOMM'23) masks corrupting links below the transport by
tagging every protected frame with a link-local sequence number, keeping
a small emergency retransmission buffer at the sender, and having the
receiver notify the sender the moment a hole appears — detect-and-resend
in a link RTT instead of a transport RTO.  The shim here is that tag:

* it rides between the Ethernet header and the original L3 stack (the
  Ethernet ``ethertype`` is rewritten to :data:`ETHERTYPE_LINKGUARD` and
  the original value travels in :attr:`GuardShimHeader.inner_ethertype`,
  exactly how an 802.1Q tag or MPLS shim nests), so switches on either
  side of the guarded hop never see it;
* ``seq``/``ack`` carry the guard's link-local sequence space (fully
  independent of RoCE PSNs — the transport above is untouched);
* ``checksum`` is a CRC over the *inner* frame bytes, which turns silent
  single-bit corruption into detectable loss at the guard itself, even
  for packets whose ICRC was never computed;
* control frames (ACK / NAK / RESYNC) reuse the same header with no
  inner frame behind it.

The codec follows the repo's header idiom (:mod:`repro.net.headers`):
dataclass + :class:`~repro.net.headers.CachedPackMixin`, a module-level
precompiled :class:`struct.Struct`, byte-exact ``pack``/``unpack``.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from ..net.headers import CachedPackMixin, HeaderError

#: EtherType claimed by guarded frames (IEEE 802 local experimental 2).
ETHERTYPE_LINKGUARD = 0x88B6

#: Shim kinds.  DATA carries a guarded inner frame; the rest are
#: standalone control frames between the two guard endpoints.
GUARD_DATA = 0
#: Cumulative acknowledgement: every seq <= ``ack`` arrived in order.
GUARD_ACK = 1
#: Loss notification: seqs ``seq`` .. ``extent`` are missing — resend now.
GUARD_NAK = 2
#: Give-up notification: seqs ``seq`` .. ``extent`` are unrecoverable at
#: this layer (emergency buffer exhausted); the receiver must advance
#: past them and let the transport's go-back-N repair the damage.
GUARD_RESYNC = 3

#: Flag bit: this DATA frame is a guard retransmission.
FLAG_RESENT = 0x01
#: Flag bit: the ``ack`` field is meaningful (piggybacked cumulative ack).
FLAG_ACK_VALID = 0x02

_SHIM_STRUCT = struct.Struct("!BBIIIHH")


def guard_checksum(frame_bytes: bytes) -> int:
    """16-bit CRC over the inner frame, the guard's corruption detector."""
    return zlib.crc32(frame_bytes) & 0xFFFF


@dataclass
class GuardShimHeader(CachedPackMixin):
    """The 18-byte link-guard shim (kind, flags, seq, ack, extent,
    checksum, inner ethertype)."""

    kind: int = GUARD_DATA
    flags: int = 0
    #: DATA: this frame's link-local sequence number.  NAK/RESYNC: first
    #: sequence of the named range.  ACK: unused (0).
    seq: int = 0
    #: Cumulative ack (valid iff ``FLAG_ACK_VALID``): every sequence up
    #: to and including this value arrived.  ``0xFFFFFFFF`` encodes
    #: "nothing yet" (the sequence space starts at 0).
    ack: int = 0
    #: NAK/RESYNC: last sequence of the named range (inclusive).
    extent: int = 0
    #: DATA: CRC16 of the inner frame bytes.  Control frames: 0.
    checksum: int = 0
    #: DATA: the Ethernet ethertype the shim displaced.  Control: 0.
    inner_ethertype: int = 0

    LENGTH = 18

    def __post_init__(self) -> None:
        if self.kind not in (GUARD_DATA, GUARD_ACK, GUARD_NAK, GUARD_RESYNC):
            raise HeaderError(f"bad guard shim kind: {self.kind}")
        for name, value, limit in (
            ("flags", self.flags, 0xFF),
            ("seq", self.seq, 0xFFFFFFFF),
            ("ack", self.ack, 0xFFFFFFFF),
            ("extent", self.extent, 0xFFFFFFFF),
            ("checksum", self.checksum, 0xFFFF),
            ("inner_ethertype", self.inner_ethertype, 0xFFFF),
        ):
            if not 0 <= value <= limit:
                raise HeaderError(f"guard shim {name} out of range: {value}")

    def _pack(self) -> bytes:
        return _SHIM_STRUCT.pack(
            self.kind,
            self.flags,
            self.seq,
            self.ack,
            self.extent,
            self.checksum,
            self.inner_ethertype,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "GuardShimHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short guard shim: {len(data)} bytes")
        raw = data[: cls.LENGTH]
        kind, flags, seq, ack, extent, checksum, inner = _SHIM_STRUCT.unpack(raw)
        if kind not in (GUARD_DATA, GUARD_ACK, GUARD_NAK, GUARD_RESYNC):
            raise HeaderError(f"bad guard shim kind: {kind}")
        # Direct __dict__ fill (see EthernetHeader.unpack): wire-masked
        # fields cannot be out of range.
        header = object.__new__(cls)
        header.__dict__.update(
            kind=kind,
            flags=flags,
            seq=seq,
            ack=ack,
            extent=extent,
            checksum=checksum,
            inner_ethertype=inner,
            _packed=raw,
        )
        return header

    @property
    def byte_len(self) -> int:
        return self.LENGTH
