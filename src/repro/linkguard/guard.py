"""The link guard: sender/receiver protection endpoints around one Link.

A :class:`LinkGuard` wraps an existing :class:`~repro.net.link.Link` with
a LinkGuardian-style (SIGCOMM'23) protection pair in each direction:

* the **sender** side intercepts ``link.carry``, stamps every outgoing
  frame with a :class:`~repro.linkguard.shim.GuardShimHeader` (sequence
  number + inner-frame checksum + piggybacked cumulative ack) and keeps
  the original frame in a bounded *emergency retransmission buffer*;
* the **receiver** side shadows the peer interface's ``deliver`` /
  ``deliver_batch``, verifies the checksum, strips the shim, and watches
  the sequence space: a corrupted frame or a hole triggers an immediate
  NAK back across the link, so the sender resends from its buffer within
  a link RTT — the transport above never sees the loss, its RTO never
  fires.

Interop is by construction, not by special cases:

* the saved inner ``link.carry`` still runs the tap list, the legacy
  loss knob, and any installed
  :class:`~repro.faults.injectors.LinkFaultInjector` — fault models
  corrupt/drop the *shimmed* frames exactly as they would corrupt real
  ones, and guard control frames (ACK/NAK/RESYNC) cross the same
  impaired wire;
* the receive hook replays the saved per-interface ``deliver`` for each
  released frame in sequence order, so under the batch kernel a
  coalesced ``deliver_batch`` cohort produces the identical
  tap/accounting/receive stream as the scalar kernel — guard ordering
  survives delivery coalescing;
* a breaker watching the transport still trips on real outages: when
  the emergency buffer is exhausted (e.g. a blackout outlives it) new
  frames travel *unprotected*, the receiver is told to RESYNC past
  anything unrecoverable, and the transport's go-back-N — and therefore
  its circuit breaker — takes over, exactly as without a guard.

Protection levels (:data:`PROTECTION_LEVELS`):

* ``"off"`` — pass-through; the guard is installed but inert.
* ``"checksummed"`` — corruption detection + NAK-driven resend; frames
  are released the moment they arrive (resends may reach the transport
  out of order — fine for datagram traffic, hostile to RC transports).
* ``"full-ordered"`` — additionally holds out-of-order arrivals in a
  bounded reorder buffer and releases them in sequence, so the layer
  above observes a lossless, ordered link (the mode RoCE RC wants).

Metrics live under ``linkguard[<name>]`` (``masked_losses``, ``resent``,
``shim_bytes``, ``reorder_fixed``, ...); protocol actions emit ``GUARD``
wire-trace events.  Everything is deterministic: the guard draws no
randomness, so a seeded run with a guard replays byte-for-byte.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..net.headers import EthernetHeader
from ..net.link import Link
from ..net.node import Interface
from ..net.packet import Packet
from ..obs.trace import KIND_GUARD
from ..sim.units import transmission_delay_ns, usec
from .shim import (
    ETHERTYPE_LINKGUARD,
    FLAG_ACK_VALID,
    FLAG_RESENT,
    GUARD_ACK,
    GUARD_DATA,
    GUARD_NAK,
    GUARD_RESYNC,
    GuardShimHeader,
    guard_checksum,
)

#: The supported protection levels, weakest first.
PROTECTION_LEVELS = ("off", "checksummed", "full-ordered")

#: Wire encoding of "nothing acked yet" (the sequence space starts at 0).
_ACK_NONE = 0xFFFFFFFF


@dataclass
class LinkGuardConfig:
    """Knobs for one :class:`LinkGuard` (both directions share them).

    ``buffer_packets`` bounds the emergency retransmission buffer per
    direction — size it to cover the frames in flight across one guard
    round trip (link BDP in frames plus the NAK turnaround; DESIGN.md
    §14 derives the rule).  ``tail_timeout_ns`` is the sender-side
    watchdog that recovers tail losses no later frame can reveal
    (default: ``max(4 µs, 40 × propagation)`` — well under any transport
    RTO, well over a guard RTT).
    """

    protection: str = "full-ordered"
    buffer_packets: int = 64
    reorder_packets: int = 64
    #: Send a standalone cumulative ACK every this many accepted frames
    #: (piggybacked acks on reverse-direction traffic flow regardless).
    ack_every: int = 8
    #: Delayed-ack bound: a standalone ACK no later than this after the
    #: first unacked frame, so sparse one-way traffic still drains the
    #: sender's buffer well inside a tail-timeout window (default:
    #: ``tail_timeout_ns / 4``).
    ack_delay_ns: Optional[float] = None
    tail_timeout_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.protection not in PROTECTION_LEVELS:
            raise ValueError(
                f"unknown protection level {self.protection!r}; expected "
                f"one of {PROTECTION_LEVELS}"
            )
        if self.buffer_packets < 1:
            raise ValueError(
                f"buffer_packets must be >= 1: {self.buffer_packets}"
            )
        if self.reorder_packets < 1:
            raise ValueError(
                f"reorder_packets must be >= 1: {self.reorder_packets}"
            )
        if self.ack_every < 1:
            raise ValueError(f"ack_every must be >= 1: {self.ack_every}")


class _Lane:
    """One guarded direction: sender state at ``src``, receiver at ``dst``."""

    __slots__ = (
        "label",
        "src",
        "dst",
        # -- sender state ----------------------------------------------------
        "next_seq",
        "acked",
        "buffer",
        "checksums",
        "skipped",
        "timer_armed",
        # -- receiver state --------------------------------------------------
        "expected",
        "max_seen",
        "ahead",
        "since_ack",
        "ack_timer_armed",
    )

    def __init__(self, label: str, src: Interface, dst: Interface) -> None:
        self.label = label
        self.src = src
        self.dst = dst
        self.next_seq = 0
        self.acked = -1
        #: seq -> ``(original unshimmed frame, last send time)``; resends
        #: re-shim a clone and refresh the timestamp.
        self.buffer: "OrderedDict[int, Tuple[Packet, float]]" = OrderedDict()
        self.checksums: Dict[int, int] = {}
        #: Seqs sent while the buffer was full — unrecoverable at this layer.
        self.skipped: Set[int] = set()
        self.timer_armed = False
        self.expected = 0
        self.max_seen = -1
        #: seq -> held frame (full-ordered) or None (already released).
        self.ahead: Dict[int, Optional[Packet]] = {}
        self.since_ack = 0
        self.ack_timer_armed = False


class LinkGuard:
    """Install LinkGuardian-style protection on one duplex link.

    ``LinkGuard(link)`` guards both directions at the default
    ``"full-ordered"`` level; pass ``protection=`` or a full
    :class:`LinkGuardConfig`.  :meth:`detach` restores the link and both
    interfaces to their unguarded methods.
    """

    def __init__(
        self,
        link: Link,
        config: Optional[LinkGuardConfig] = None,
        name: Optional[str] = None,
        protection: Optional[str] = None,
    ) -> None:
        if config is not None and protection is not None:
            raise ValueError("pass config= or protection=, not both")
        if config is None:
            config = (
                LinkGuardConfig(protection=protection)
                if protection is not None
                else LinkGuardConfig()
            )
        self.link = link
        self.sim = link.sim
        self.config = config
        self.name = (
            name
            if name is not None
            else f"{link.a.node.name}<->{link.b.node.name}"
        )
        #: Called as ``cb(guard, lane_label, seq)`` the moment a frame is
        #: sent unprotected because the emergency buffer was full — the
        #: escalation hook a breaker-owning layer can subscribe to.
        self.on_exhausted: List[Callable[["LinkGuard", str, int], None]] = []

        obs = self.sim.obs
        self.metrics = obs.registry.unique_scope(f"linkguard[{self.name}]")
        self._trace = obs.trace
        m = self.metrics
        self._m_protected = m.counter("protected")
        self._m_masked = m.counter("masked_losses")
        self._m_resent = m.counter("resent")
        self._m_shim_bytes = m.counter("shim_bytes")
        self._m_reorder_fixed = m.counter("reorder_fixed")
        self._m_corrupt_dropped = m.counter("corrupt_dropped")
        self._m_duplicates = m.counter("duplicates_dropped")
        self._m_naks = m.counter("naks_sent")
        self._m_acks = m.counter("acks_sent")
        self._m_resyncs = m.counter("resyncs")
        self._m_exhausted = m.counter("buffer_exhausted")
        self._m_tail_timeouts = m.counter("tail_timeouts")
        self._m_unmasked = m.counter("unmasked_losses")
        m.gauge(
            "inflight",
            fn=lambda s=self: sum(len(l.buffer) for l in s._lanes),
        )

        if link.propagation_ns > 0:
            default_tail = max(usec(4), 40.0 * link.propagation_ns)
        else:
            default_tail = usec(4)
        self._tail_timeout_ns = (
            config.tail_timeout_ns
            if config.tail_timeout_ns is not None
            else default_tail
        )
        self._ack_delay_ns = (
            config.ack_delay_ns
            if config.ack_delay_ns is not None
            else self._tail_timeout_ns / 4.0
        )

        # Sender hook: shadow link.carry with an instance attribute; the
        # saved bound method still runs taps / loss / fault injector.
        self._inner_carry = link.carry
        self._lanes = (
            _Lane("a2b", link.a, link.b),
            _Lane("b2a", link.b, link.a),
        )
        self._lane_by_src = {link.a: self._lanes[0], link.b: self._lanes[1]}
        self._lane_by_dst = {link.b: self._lanes[0], link.a: self._lanes[1]}
        link.carry = self._carry  # type: ignore[method-assign]
        link.guard = self  # type: ignore[attr-defined]

        # Receiver hooks: shadow each interface's deliver/deliver_batch.
        self._inner_deliver: Dict[Interface, Callable[[Packet], None]] = {}
        for iface in (link.a, link.b):
            self._install_receiver(iface)

    # -- lifecycle -------------------------------------------------------------

    def _install_receiver(self, iface: Interface) -> None:
        inner = iface.deliver
        self._inner_deliver[iface] = inner

        def deliver(packet: Packet, _self=self, _iface=iface) -> None:
            _self._receive(_iface, packet)

        def deliver_batch(
            packets: List[Packet], _self=self, _iface=iface
        ) -> None:
            # Per-frame processing in cohort order: the released stream
            # (taps, rx accounting, node.receive) is identical to the
            # scalar kernel's per-packet deliveries.
            receive = _self._receive
            for packet in packets:
                receive(_iface, packet)

        iface.deliver = deliver  # type: ignore[method-assign]
        iface.deliver_batch = deliver_batch  # type: ignore[method-assign]

    def detach(self) -> None:
        """Restore the link and both interfaces to their unguarded paths."""
        if self.link.carry == self._carry:  # instance-attribute shadow
            del self.link.carry
        if getattr(self.link, "guard", None) is self:
            del self.link.guard
        for iface in (self.link.a, self.link.b):
            if iface in self._inner_deliver:
                try:
                    del iface.deliver
                    del iface.deliver_batch
                except AttributeError:
                    pass
        self._inner_deliver.clear()

    # -- accounting ------------------------------------------------------------

    @property
    def counts(self) -> Dict[str, int]:
        """This guard's counter values (``{name: value}``), for tests and
        reports — read these rather than snapshotting the registry by
        scope name (see :attr:`LinkFaultInjector.effects`)."""
        return {
            "protected": self._m_protected.value,
            "masked_losses": self._m_masked.value,
            "resent": self._m_resent.value,
            "shim_bytes": self._m_shim_bytes.value,
            "reorder_fixed": self._m_reorder_fixed.value,
            "corrupt_dropped": self._m_corrupt_dropped.value,
            "duplicates_dropped": self._m_duplicates.value,
            "naks_sent": self._m_naks.value,
            "acks_sent": self._m_acks.value,
            "resyncs": self._m_resyncs.value,
            "buffer_exhausted": self._m_exhausted.value,
            "tail_timeouts": self._m_tail_timeouts.value,
            "unmasked_losses": self._m_unmasked.value,
        }

    def _trace_event(
        self, lane: _Lane, action: str, seq: int, wire_bytes: int = 0
    ) -> None:
        if self._trace is not None:
            self._trace.emit(
                self.sim.now,
                f"guard:{self.name}:{lane.label}",
                0,
                KIND_GUARD,
                psn=seq,
                wire_bytes=wire_bytes,
                channel=action,
            )

    # -- sender side -----------------------------------------------------------

    def _carry(self, src: Interface, packet: Packet) -> None:
        if self.config.protection == "off":
            self._inner_carry(src, packet)
            return
        lane = self._lane_by_src[src]
        seq = lane.next_seq
        lane.next_seq = seq + 1
        checksum = guard_checksum(packet.pack())
        if len(lane.buffer) < self.config.buffer_packets:
            lane.buffer[seq] = (packet, self.sim.now)
            lane.checksums[seq] = checksum
            self._arm_tail_timer(lane)
        else:
            # Emergency buffer full: the frame travels unprotected.  If
            # it is lost, a NAK for its seq draws a RESYNC instead of a
            # resend and the transport's machinery takes over.
            lane.skipped.add(seq)
            self._m_exhausted.inc()
            self._trace_event(lane, "buffer_exhausted", seq)
            for callback in self.on_exhausted:
                callback(self, lane.label, seq)
        self._m_protected.inc()
        self._m_shim_bytes.inc(GuardShimHeader.LENGTH)
        wire = self._shimmed(lane, packet, seq, checksum, resent=False)
        # The shim's extra serialization time: the frame enters the wire
        # LENGTH bytes later than the unshimmed serializer accounted for.
        extra_ns = transmission_delay_ns(
            GuardShimHeader.LENGTH, self.link.rate_bps
        )
        self.sim.post(extra_ns, self._inner_carry, src, wire)

    def _shimmed(
        self,
        lane: _Lane,
        packet: Packet,
        seq: int,
        checksum: int,
        resent: bool,
    ) -> Packet:
        """A wire clone of *packet* with the guard shim nested after L2."""
        wire = packet.clone()
        flags = FLAG_ACK_VALID | (FLAG_RESENT if resent else 0)
        # Piggyback the reverse direction's cumulative ack.
        reverse = self._lane_by_dst[lane.src]
        shim = GuardShimHeader(
            kind=GUARD_DATA,
            flags=flags,
            seq=seq,
            ack=(reverse.expected - 1) & _ACK_NONE
            if reverse.expected > 0
            else _ACK_NONE,
            checksum=checksum,
        )
        headers = wire.headers
        if headers and isinstance(headers[0], EthernetHeader):
            shim.inner_ethertype = headers[0].ethertype
            headers[0].ethertype = ETHERTYPE_LINKGUARD
            headers.insert(1, shim)
        else:
            wire.push(shim)
        return wire

    def _arm_tail_timer(self, lane: _Lane) -> None:
        if lane.timer_armed:
            return
        lane.timer_armed = True
        self.sim.schedule(self._tail_timeout_ns, self._tail_check, lane)

    def _tail_check(self, lane: _Lane) -> None:
        if not lane.buffer:
            lane.timer_armed = False
            return
        # The watchdog keys on the *age of the oldest unacked frame*: a
        # frame (or every ack covering it) lost at the very tail of a
        # burst has no later arrival to reveal the hole, so once the head
        # outlives a full window, resend it — the receiver re-acks even a
        # duplicate, which drains the buffer and stops this timer.
        seq, (packet, sent_ns) = next(iter(lane.buffer.items()))
        age = self.sim.now - sent_ns
        if age >= self._tail_timeout_ns - 1e-9:
            self._m_tail_timeouts.inc()
            self._trace_event(lane, "tail_timeout", seq)
            self._resend(lane, seq)
            delay = self._tail_timeout_ns
        else:
            delay = self._tail_timeout_ns - age
        self.sim.schedule(delay, self._tail_check, lane)

    def _resend(self, lane: _Lane, seq: int) -> None:
        entry = lane.buffer.get(seq)
        if entry is None:
            return
        packet = entry[0]
        lane.buffer[seq] = (packet, self.sim.now)
        wire = self._shimmed(
            lane, packet, seq, lane.checksums[seq], resent=True
        )
        self._m_resent.inc()
        self._m_shim_bytes.inc(wire.wire_len)
        self._trace_event(lane, "resend", seq, wire.wire_len)
        # Guard resends bypass the egress queue (LinkGuardian gives its
        # retransmissions a strict-priority queue); their wire time is
        # modeled as a delayed entry onto the link.
        delay_ns = transmission_delay_ns(wire.wire_len, self.link.rate_bps)
        self.sim.post(delay_ns, self._inner_carry, lane.src, wire)

    def _process_ack(self, lane: _Lane, ack: int) -> None:
        if ack <= lane.acked:
            return
        lane.acked = ack
        buffer = lane.buffer
        while buffer:
            seq = next(iter(buffer))
            if seq > ack:
                break
            del buffer[seq]
            lane.checksums.pop(seq, None)
        if lane.skipped:
            lane.skipped = {s for s in lane.skipped if s > ack}

    def _process_nak(self, lane: _Lane, first: int, last: int) -> None:
        for seq in range(first, last + 1):
            if seq <= lane.acked:
                continue
            if seq in lane.buffer:
                self._resend(lane, seq)
            elif seq in lane.skipped:
                self._send_resync(lane, seq)

    def _send_resync(self, lane: _Lane, seq: int) -> None:
        self._m_resyncs.inc()
        self._trace_event(lane, "resync", seq)
        self._send_control(
            lane, lane.src, GUARD_RESYNC, seq=seq, extent=seq
        )

    # -- receiver side ---------------------------------------------------------

    def _receive(self, iface: Interface, packet: Packet) -> None:
        headers = packet.headers
        shim: Optional[GuardShimHeader] = None
        index = -1
        if len(headers) >= 2 and type(headers[1]) is GuardShimHeader:
            shim, index = headers[1], 1
        elif headers and type(headers[0]) is GuardShimHeader:
            shim, index = headers[0], 0
        if shim is None:
            # Unguarded traffic (protection "off", or frames already in
            # flight when the guard was installed).
            self._inner_deliver[iface](packet)
            return
        kind = shim.kind
        if kind == GUARD_DATA:
            if shim.flags & FLAG_ACK_VALID and shim.ack != _ACK_NONE:
                self._process_ack(self._lane_by_src[iface], shim.ack)
            self._receive_data(self._lane_by_dst[iface], packet, shim, index)
        elif kind == GUARD_ACK:
            if shim.ack != _ACK_NONE:
                self._process_ack(self._lane_by_src[iface], shim.ack)
        elif kind == GUARD_NAK:
            lane = self._lane_by_src[iface]
            if shim.flags & FLAG_ACK_VALID and shim.ack != _ACK_NONE:
                self._process_ack(lane, shim.ack)
            self._process_nak(lane, shim.seq, shim.extent)
        elif kind == GUARD_RESYNC:
            self._receive_resync(self._lane_by_dst[iface], shim.seq, shim.extent)

    def _receive_data(
        self, lane: _Lane, packet: Packet, shim: GuardShimHeader, index: int
    ) -> None:
        seq = shim.seq
        # Strip the shim and restore the displaced ethertype; the wire
        # clone is guard-owned, so in-place restoration is safe.
        packet.headers.pop(index)
        if index == 1:
            packet.headers[0].ethertype = shim.inner_ethertype
        if guard_checksum(packet.pack()) != shim.checksum:
            # Corruption detected below the transport: drop and NAK this
            # seq immediately — LinkGuardian's detect-and-resend path.
            self._m_corrupt_dropped.inc()
            self._trace_event(lane, "corrupt_dropped", seq, packet.wire_len)
            if seq >= lane.expected and seq not in lane.ahead:
                lane.max_seen = max(lane.max_seen, seq)
                self._send_nak(lane, seq, seq)
            return
        if seq < lane.expected or seq in lane.ahead:
            # Duplicate (a resend raced the original, or an ack was lost
            # and the tail timer fired): drop, but re-ack so the sender's
            # emergency buffer drains.
            self._m_duplicates.inc()
            self._send_ack(lane)
            return
        resent = bool(shim.flags & FLAG_RESENT)
        if resent:
            self._m_masked.inc()
            self._trace_event(lane, "masked", seq)
        inner = self._inner_deliver[lane.dst]
        if seq == lane.expected:
            lane.expected = seq + 1
            inner(packet)
            ahead = lane.ahead
            while lane.expected in ahead:
                held = ahead.pop(lane.expected)
                lane.expected += 1
                if held is not None:
                    self._m_reorder_fixed.inc()
                    inner(held)
        else:  # seq > expected: a hole just became visible
            if seq > lane.max_seen + 1:
                first = max(lane.expected, lane.max_seen + 1)
                self._send_nak(lane, first, seq - 1)
            if self.config.protection == "full-ordered":
                if len(lane.ahead) >= self.config.reorder_packets:
                    # Reorder window overflow: release unordered rather
                    # than drop — the transport sees reordering, not loss.
                    self._trace_event(lane, "reorder_overflow", seq)
                    lane.ahead[seq] = None
                    inner(packet)
                else:
                    lane.ahead[seq] = packet
            else:  # checksummed: release immediately, track for dedup
                lane.ahead[seq] = None
                inner(packet)
        lane.max_seen = max(lane.max_seen, seq)
        lane.since_ack += 1
        if lane.since_ack >= self.config.ack_every:
            self._send_ack(lane)
        elif not lane.ack_timer_armed:
            # Delayed ack: sparse one-way traffic must still drain the
            # sender's buffer well inside a tail-timeout window.
            lane.ack_timer_armed = True
            self.sim.schedule(self._ack_delay_ns, self._delayed_ack, lane)

    def _receive_resync(self, lane: _Lane, first: int, last: int) -> None:
        """The sender gave up on ``first..last``: advance past the range."""
        if last < lane.expected:
            return
        inner = self._inner_deliver[lane.dst]
        for seq in range(lane.expected, last + 1):
            held = lane.ahead.pop(seq, None)
            if held is not None:
                inner(held)
            elif seq >= first and seq not in lane.ahead:
                self._m_unmasked.inc()
                self._trace_event(lane, "unmasked", seq)
        lane.expected = last + 1
        lane.max_seen = max(lane.max_seen, last)
        ahead = lane.ahead
        while lane.expected in ahead:
            held = ahead.pop(lane.expected)
            lane.expected += 1
            if held is not None:
                self._m_reorder_fixed.inc()
                inner(held)
        self._send_ack(lane)

    def _send_nak(self, lane: _Lane, first: int, last: int) -> None:
        self._m_naks.inc()
        self._trace_event(lane, "nak", first)
        lane.since_ack = 0
        self._send_control(
            lane, lane.dst, GUARD_NAK, seq=first, extent=last
        )

    def _delayed_ack(self, lane: _Lane) -> None:
        lane.ack_timer_armed = False
        if lane.since_ack > 0:
            self._send_ack(lane)

    def _send_ack(self, lane: _Lane) -> None:
        self._m_acks.inc()
        lane.since_ack = 0
        self._send_control(lane, lane.dst, GUARD_ACK)

    def _send_control(
        self,
        lane: _Lane,
        src: Interface,
        kind: int,
        seq: int = 0,
        extent: int = 0,
    ) -> None:
        """Emit a standalone control frame from *src* back across the link.

        Control frames carry the lane receiver's cumulative ack and, like
        guard resends, enter the wire directly (strict-priority in real
        LinkGuardian); they are still subject to the link's fault models.
        """
        peer = self.link.peer_of(src)
        receiver_lane = self._lane_by_dst[src]
        shim = GuardShimHeader(
            kind=kind,
            flags=FLAG_ACK_VALID,
            seq=seq,
            ack=(receiver_lane.expected - 1) & _ACK_NONE
            if receiver_lane.expected > 0
            else _ACK_NONE,
            extent=extent,
        )
        control = Packet(
            headers=[
                EthernetHeader(
                    dst=peer.mac, src=src.mac, ethertype=ETHERTYPE_LINKGUARD
                ),
                shim,
            ]
        )
        self._m_shim_bytes.inc(control.wire_len)
        delay_ns = transmission_delay_ns(control.wire_len, self.link.rate_bps)
        self.sim.post(delay_ns, self._inner_carry, src, control)
