"""EMOMA-style cuckoo layout for the remote lookup table.

One RDMA READ per miss, deterministically: a 2-hash, 4-slot-bucket
cuckoo table whose bucket pairs are adjacent in server memory, plus an
on-chip counting Bloom "choice filter" that tells the data plane which
pair to read.  See :mod:`repro.cuckoo.layout` for the invariant and
:mod:`repro.cuckoo.filter` for the filter.
"""

from .filter import ChoiceFilter
from .layout import (
    T0,
    T1,
    CuckooConfig,
    CuckooDataPlane,
    CuckooDirectory,
    CuckooFullError,
    Move,
    SlotRef,
)

__all__ = [
    "ChoiceFilter",
    "CuckooConfig",
    "CuckooDataPlane",
    "CuckooDirectory",
    "CuckooFullError",
    "Move",
    "SlotRef",
    "T0",
    "T1",
]
