"""The on-chip choice filter: a seeded counting Bloom filter.

EMOMA (Pontarelli et al., arXiv:1709.04711) resolves the classic cuckoo
read problem — "which of the two candidate buckets holds the key?" — with
a small SRAM counting Bloom filter the data plane queries per packet:

* the key is **negative** in the filter → it can only live in subtable
  T0, so read bucket pair ``h0(key)``;
* the key is **positive** → read bucket pair ``h1(key)``.

The control plane maintains one invariant so this is always correct:
every key stored in T1 has been :meth:`add`-ed (counting filters have no
false negatives), and every key stored in T0 must currently
:meth:`query` negative.  False positives are harmless *if* the control
plane relocates any T0 key that an unrelated :meth:`add` flips positive —
:mod:`repro.cuckoo.layout` owns that cascade; this module is just the
filter, deterministic under a seed.

Cells are 16-bit saturating counters in a compact :mod:`array`, sized by
the directory (default four cells per table slot keeps the
false-positive — and hence relocation — rate low at high load).
"""

from __future__ import annotations

import struct
from array import array
from typing import List, Tuple

from ..switches.hashing import crc32

_CELL_MAX = 0xFFFF


class ChoiceFilter:
    """Counting Bloom filter with ``hashes`` seeded CRC32 probes.

    Deterministic: cell indices depend only on ``(seed, probe index,
    key bytes)``, never on insertion history or Python hash
    randomization.
    """

    __slots__ = ("cells", "hashes", "seed", "_cells", "adds", "removes")

    def __init__(self, cells: int, hashes: int = 2, seed: int = 0) -> None:
        if cells <= 0:
            raise ValueError(f"need at least one cell, got {cells}")
        if hashes <= 0:
            raise ValueError(f"need at least one hash, got {hashes}")
        self.cells = cells
        self.hashes = hashes
        self.seed = seed
        self._cells = array("H", bytes(2 * cells))
        self.adds = 0
        self.removes = 0

    def indices(self, key: bytes) -> Tuple[int, ...]:
        """The probe cells for *key* (stable for the filter's lifetime).

        Each probe hashes a different rotation of the key bytes: CRC32
        is affine, so probes that differed only in their seed prefix
        would land on cells related by a key-independent XOR — one hash
        masquerading as k.  Rotations are distinct linear maps, making
        the probes behave independently.
        """
        pivots = (probe % len(key) if key else 0 for probe in range(self.hashes))
        return tuple(
            crc32(
                struct.pack("!II", self.seed, probe) + key[pivot:] + key[:pivot]
            )
            % self.cells
            for probe, pivot in enumerate(pivots)
        )

    def add(self, key: bytes) -> List[int]:
        """Increment *key*'s cells; returns the cells that went 0 → 1.

        The 0 → 1 transitions are exactly the events that can flip an
        unrelated key from negative to positive — the directory uses the
        return value to find T0 residents that must relocate.
        """
        self.adds += 1
        flipped: List[int] = []
        for cell in self.indices(key):
            value = self._cells[cell]
            if value == 0:
                flipped.append(cell)
            if value < _CELL_MAX:
                self._cells[cell] = value + 1
        return flipped

    def remove(self, key: bytes) -> None:
        """Decrement *key*'s cells (must pair with a previous :meth:`add`)."""
        self.removes += 1
        for cell in self.indices(key):
            value = self._cells[cell]
            if value == 0:
                raise ValueError(
                    "choice filter underflow: remove() without a matching "
                    "add() — the directory invariant is broken"
                )
            if value < _CELL_MAX:  # saturated cells stay pinned
                self._cells[cell] = value - 1

    def query(self, key: bytes) -> bool:
        """True when every probe cell is non-zero (key *may* be in T1)."""
        cells = self._cells
        return all(cells[cell] for cell in self.indices(key))

    def cell_value(self, cell: int) -> int:
        return self._cells[cell]

    @property
    def load(self) -> float:
        """Fraction of non-zero cells (false-positive pressure)."""
        occupied = sum(1 for value in self._cells if value)
        return occupied / self.cells

    def __repr__(self) -> str:
        return (
            f"<ChoiceFilter cells={self.cells} hashes={self.hashes} "
            f"seed={self.seed:#x}>"
        )
