"""Cuckoo bucket-pair layout: control-plane directory + data-plane view.

The remote table becomes two logical subtables T0 and T1, each with
``pairs`` buckets of ``slots_per_bucket`` action slots.  The two buckets
with the same index are stored **adjacent** in server memory (a *bucket
pair*), so one RDMA READ starting at the pair's base address covers all
``2 x slots_per_bucket`` candidate slots::

    pair i:  [ T0 bucket i | T1 bucket i | packet slot ]

A key hashes to pair ``h0(key)`` (its T0 home) and pair ``h1(key)`` (its
T1 home).  The data plane picks which pair to READ with the on-chip
:class:`~repro.cuckoo.filter.ChoiceFilter`: query negative → pair
``h0``, positive → pair ``h1``.  Because the control plane maintains the
EMOMA invariant — T1 residents are always in the filter, T0 residents
always query negative — the single READ deterministically lands on the
bucket pair holding the key, whatever collisions occurred at insert
time.  There is no bounce-retry path.

The control plane (:class:`CuckooDirectory`) owns placement: a seeded,
deterministic cuckoo insert with bounded kicks, plus the relocation
cascade that repairs the invariant when a filter add flips an unrelated
T0 resident positive.  Every slot change is reported as a
:class:`Move` so the owning table can mirror it into server memory.
Failed inserts are rolled back and raise :class:`CuckooFullError`
instead of looping.
"""

from __future__ import annotations

import random
import struct
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..switches.hashing import crc32
from .filter import ChoiceFilter

#: Subtable identifiers.
T0 = 0
T1 = 1


class CuckooFullError(RuntimeError):
    """Raised when an insert exhausts its kick/relocation budget.

    The directory is rolled back to its pre-insert state first, so the
    table stays consistent and the caller can shed the flow (or grow the
    table) instead of spinning.
    """


@dataclass(frozen=True)
class SlotRef:
    """One action slot: ``(subtable, pair index, slot within bucket)``."""

    table: int
    index: int
    slot: int


@dataclass(frozen=True)
class Move:
    """A placement the remote table must mirror: write *key* at *dst*.

    ``src`` is the slot the key vacated (``None`` for a fresh insert).
    Moves from one :meth:`CuckooDirectory.insert` call apply atomically
    between packets — the simulator's control-plane writes do not
    interleave with data-plane reads, mirroring how a real control plane
    quiesces a pair before rewriting it.
    """

    key: Any
    src: Optional[SlotRef]
    dst: SlotRef


@dataclass
class CuckooConfig:
    """Geometry and determinism knobs for one cuckoo directory."""

    #: Bucket pairs per subtable (total slots = pairs * 2 * slots_per_bucket).
    pairs: int = 1 << 10
    slots_per_bucket: int = 4
    #: Master seed: bucket-hash seeds, filter probes, and victim choice
    #: all derive from it, so layout is a pure function of (seed, inserts).
    seed: int = 0
    #: Kick chain length bound for one insert.
    max_kicks: int = 64
    #: Total placements (kicks + invariant relocations) bound per insert.
    max_relocations: int = 256
    #: Choice-filter cells (0 → four cells per slot).
    cbf_cells: int = 0
    cbf_hashes: int = 2

    def __post_init__(self) -> None:
        if self.pairs <= 0:
            raise ValueError(f"need at least one pair, got {self.pairs}")
        if self.slots_per_bucket <= 0:
            raise ValueError(
                f"need at least one slot per bucket, got {self.slots_per_bucket}"
            )

    @property
    def capacity(self) -> int:
        return self.pairs * 2 * self.slots_per_bucket

    @property
    def filter_cells(self) -> int:
        return self.cbf_cells if self.cbf_cells > 0 else 4 * self.capacity

    def derived_seed(self, label: str) -> int:
        return crc32(label.encode() + struct.pack("!Q", self.seed & (2**64 - 1)))


def _default_packer(key: Any) -> bytes:
    if isinstance(key, bytes):
        return key
    return key.pack()


class CuckooDataPlane:
    """What the switch pipeline knows: two hash seeds and the filter.

    The control plane installs ``seed0``/``seed1`` (via
    ``RdmaChannelController.install_hash_seeds``); the filter lives in
    switch SRAM and is updated by control-plane writes.  The read path
    is two CRC32 invocations and one filter query — no directory state,
    no retries.
    """

    __slots__ = ("pairs", "seed0", "seed1", "filter")

    def __init__(
        self, pairs: int, seed0: int, seed1: int, choice_filter: ChoiceFilter
    ) -> None:
        self.pairs = pairs
        self.seed0 = seed0
        self.seed1 = seed1
        self.filter = choice_filter

    # CRC32 is affine, so two digests of same-length messages that differ
    # only in a seed prefix XOR to a key-independent constant — with a
    # power-of-two modulus that collapses h1 to h0 ^ const, i.e. a
    # single-hash table.  Hardware avoids this by wiring each hash to a
    # different polynomial; we get the same independence by feeding h1
    # the byte-reversed key (a different linear map of the key bits).

    def h0(self, key: bytes) -> int:
        return crc32(struct.pack("!I", self.seed0 & 0xFFFFFFFF) + key) % self.pairs

    def h1(self, key: bytes) -> int:
        return (
            crc32(struct.pack("!I", self.seed1 & 0xFFFFFFFF) + key[::-1])
            % self.pairs
        )

    def read_index(self, key: bytes) -> int:
        """The ONE pair index to READ for *key* (the EMOMA choice)."""
        if self.filter.query(key):
            return self.h1(key)
        return self.h0(key)

    def reseed(self, seed0: int, seed1: int) -> None:
        self.seed0 = seed0
        self.seed1 = seed1


class CuckooDirectory:
    """Control-plane mirror of the remote cuckoo table.

    Tracks which key sits in which slot, runs the seeded insert/kick
    path, and maintains the choice-filter invariant:

    * key in T1  ⇒  the filter was :meth:`~ChoiceFilter.add`-ed for it
      (query positive, no false negatives);
    * key in T0  ⇒  the filter currently queries negative for it.

    A filter add (for some T1 placement) can flip unrelated T0 keys
    positive; those are detected through a cell → T0-residents index and
    relocated to T1 in the same insert call, bounded by
    ``max_relocations``.
    """

    def __init__(
        self,
        config: Optional[CuckooConfig] = None,
        packer: Callable[[Any], bytes] = _default_packer,
    ) -> None:
        self.config = config if config is not None else CuckooConfig()
        self.packer = packer
        self.filter = ChoiceFilter(
            self.config.filter_cells,
            hashes=self.config.cbf_hashes,
            seed=self.config.derived_seed("cuckoo-filter"),
        )
        self.dataplane = CuckooDataPlane(
            self.config.pairs,
            self.config.derived_seed("cuckoo-h0"),
            self.config.derived_seed("cuckoo-h1"),
            self.filter,
        )
        self._rng = random.Random(self.config.derived_seed("cuckoo-victim"))
        #: key → its current slot.
        self.location: Dict[Any, SlotRef] = {}
        self._slot_key: Dict[SlotRef, Any] = {}
        #: filter cell → T0-resident keys probing that cell (invariant index).
        self._t0_cells: Dict[int, Set[Any]] = {}
        #: Every eviction/relocation, in order — the deterministic kick
        #: trace the property tests compare across same-seed runs.
        self.kick_log: List[Tuple[str, Any, SlotRef]] = []
        self.kicks = 0
        self.relocations = 0
        self.failed_inserts = 0

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.location)

    def __contains__(self, key: Any) -> bool:
        return key in self.location

    def slot_key(self, ref: SlotRef) -> Optional[Any]:
        return self._slot_key.get(ref)

    @property
    def load(self) -> float:
        return len(self.location) / self.config.capacity

    def candidate_pairs(self, key: Any) -> Tuple[int, int]:
        kb = self.packer(key)
        return self.dataplane.h0(kb), self.dataplane.h1(kb)

    def check_invariant(self) -> List[Any]:
        """Keys violating the EMOMA invariant (must be empty)."""
        bad = []
        for key, ref in self.location.items():
            positive = self.filter.query(self.packer(key))
            if ref.table == T0 and positive:
                bad.append(key)
            elif ref.table == T1 and not positive:
                bad.append(key)
        return bad

    # -- journaled mutations (so a failed insert rolls back cleanly) ----------

    def _register_t0(self, key: Any, kb: bytes) -> None:
        for cell in self.filter.indices(kb):
            self._t0_cells.setdefault(cell, set()).add(key)

    def _unregister_t0(self, key: Any, kb: bytes) -> None:
        for cell in self.filter.indices(kb):
            residents = self._t0_cells.get(cell)
            if residents is not None:
                residents.discard(key)

    def _set_slot(self, key: Any, ref: SlotRef, journal: List[tuple]) -> None:
        journal.append(("set", key, ref, self.location.get(key)))
        self._slot_key[ref] = key
        self.location[key] = ref
        if ref.table == T0:
            self._register_t0(key, self.packer(key))

    def _clear_slot(self, key: Any, ref: SlotRef, journal: List[tuple]) -> None:
        journal.append(("clear", key, ref))
        del self._slot_key[ref]
        if ref.table == T0:
            self._unregister_t0(key, self.packer(key))

    def _filter_add(self, kb: bytes, journal: List[tuple]) -> List[int]:
        journal.append(("fadd", kb))
        return self.filter.add(kb)

    def _filter_remove(self, kb: bytes, journal: List[tuple]) -> None:
        journal.append(("fremove", kb))
        self.filter.remove(kb)

    def _rollback(self, journal: List[tuple]) -> None:
        for op in reversed(journal):
            kind = op[0]
            if kind == "set":
                _, key, ref, prev = op
                if self._slot_key.get(ref) is key:
                    del self._slot_key[ref]
                if ref.table == T0:
                    self._unregister_t0(key, self.packer(key))
                if prev is None:
                    self.location.pop(key, None)
                else:
                    self.location[key] = prev
            elif kind == "clear":
                _, key, ref = op
                self._slot_key[ref] = key
                if ref.table == T0:
                    self._register_t0(key, self.packer(key))
            elif kind == "fadd":
                self.filter.remove(op[1])
            elif kind == "fremove":
                self.filter.add(op[1])

    # -- the insert path -------------------------------------------------------

    def insert(self, key: Any) -> List[Move]:
        """Place *key*; returns the slot writes the table must mirror.

        Deterministic: same seed + same insert order ⇒ identical final
        layout, identical move lists, identical ``kick_log``.  Raises
        :class:`CuckooFullError` (after rolling back) when the kick or
        relocation budget is exhausted.
        """
        if key in self.location:
            return []  # re-install: same slot, caller rewrites the entry
        if len(self.location) >= self.config.capacity:
            self.failed_inserts += 1
            raise CuckooFullError(
                f"cuckoo table full: {len(self.location)} keys in "
                f"{self.config.capacity} slots"
            )
        journal: List[tuple] = []
        log_mark = len(self.kick_log)
        rng_state = self._rng.getstate()
        counters = (self.kicks, self.relocations)
        moves: List[Move] = []
        #: Keys awaiting (re)placement, with the slot each vacated.
        pending: deque = deque([(key, None)])
        kicks_left = self.config.max_kicks
        try:
            while pending:
                if len(moves) > self.config.max_relocations:
                    raise CuckooFullError(
                        f"insert of {key!r} exceeded max_relocations="
                        f"{self.config.max_relocations} at load "
                        f"{self.load:.2f}"
                    )
                k, src = pending.popleft()
                kicks_left = self._place(k, src, moves, pending, journal,
                                         kicks_left)
        except CuckooFullError:
            self._rollback(journal)
            del self.kick_log[log_mark:]
            self._rng.setstate(rng_state)
            self.kicks, self.relocations = counters
            self.failed_inserts += 1
            raise
        return moves

    def _place(
        self,
        key: Any,
        src: Optional[SlotRef],
        moves: List[Move],
        pending: deque,
        journal: List[tuple],
        kicks_left: int,
    ) -> int:
        kb = self.packer(key)
        h0 = self.dataplane.h0(kb)
        h1 = self.dataplane.h1(kb)
        # 1. T0 home, but only while the filter still queries negative —
        #    otherwise the data plane would READ pair h1 and miss it.
        if not self.filter.query(kb):
            slot = self._free_slot(T0, h0)
            if slot is not None:
                ref = SlotRef(T0, h0, slot)
                self._set_slot(key, ref, journal)
                moves.append(Move(key, src, ref))
                return kicks_left
        # 2. T1 home: always legal (the add keeps it query-positive), but
        #    the add may flip T0 residents positive — relocate them now.
        slot = self._free_slot(T1, h1)
        if slot is not None:
            ref = SlotRef(T1, h1, slot)
            self._set_slot(key, ref, journal)
            flipped = self._filter_add(kb, journal)
            moves.append(Move(key, src, ref))
            self._cascade(flipped, pending, journal)
            return kicks_left
        # 3. Both homes full: kick a seeded victim.
        if kicks_left <= 0:
            raise CuckooFullError(
                f"kick chain for {key!r} exceeded max_kicks="
                f"{self.config.max_kicks} at load {self.load:.2f}"
            )
        self.kicks += 1
        if not self.filter.query(kb):
            # The key may sit in T0, so kick there: a T0 placement needs
            # no filter add (keeping filter pressure — and hence the
            # relocation cascade — down), and the T0 victim restarts the
            # walk with both of its own homes to try.
            victim_slot = self._rng.randrange(self.config.slots_per_bucket)
            ref = SlotRef(T0, h0, victim_slot)
            victim = self._slot_key[ref]
            self.kick_log.append(("kick", victim, ref))
            self._clear_slot(victim, ref, journal)
            self._set_slot(key, ref, journal)
            moves.append(Move(key, src, ref))
            pending.append((victim, ref))
            return kicks_left - 1
        # Filter-positive: the key is confined to its T1 bucket.  A victim
        # whose own filter entries are all that keep it positive — and
        # whose T0 home has room — escapes to T0 immediately, ending the
        # chain; prefer those, else the walk cycles inside this bucket
        # (every occupant confined the same way) until the budget trips.
        escapable = [
            slot
            for slot in range(self.config.slots_per_bucket)
            if self._can_escape_to_t0(self._slot_key[SlotRef(T1, h1, slot)])
        ]
        if escapable:
            victim_slot = escapable[self._rng.randrange(len(escapable))]
        else:
            victim_slot = self._rng.randrange(self.config.slots_per_bucket)
        ref = SlotRef(T1, h1, victim_slot)
        victim = self._slot_key[ref]
        self.kick_log.append(("kick", victim, ref))
        self._clear_slot(victim, ref, journal)
        self._filter_remove(self.packer(victim), journal)
        self._set_slot(key, ref, journal)
        flipped = self._filter_add(kb, journal)
        moves.append(Move(key, src, ref))
        self._cascade(flipped, pending, journal)
        pending.append((victim, ref))
        return kicks_left - 1

    def _can_escape_to_t0(self, key: Any) -> bool:
        """Would *key*, removed from T1, fit (and stay negative) in T0?"""
        kb = self.packer(key)
        cells: Dict[int, int] = {}
        for cell in self.filter.indices(kb):
            cells[cell] = cells.get(cell, 0) + 1
        # Negative after removing its own increments?
        if all(self.filter.cell_value(c) - n > 0 for c, n in cells.items()):
            return False
        return self._free_slot(T0, self.dataplane.h0(kb)) is not None

    def _cascade(
        self, flipped_cells: List[int], pending: deque, journal: List[tuple]
    ) -> None:
        """Queue T0 residents the filter add just flipped positive."""
        if not flipped_cells:
            return
        suspects: Set[Any] = set()
        for cell in flipped_cells:
            suspects |= self._t0_cells.get(cell, set())
        # Deterministic order: sort by packed key bytes, never set order.
        for suspect in sorted(suspects, key=self.packer):
            ref = self.location.get(suspect)
            if ref is None or ref.table != T0:
                continue
            if not self.filter.query(self.packer(suspect)):
                continue  # still negative; invariant holds
            self.relocations += 1
            self.kick_log.append(("relocate", suspect, ref))
            self._clear_slot(suspect, ref, journal)
            pending.append((suspect, ref))

    def _free_slot(self, table: int, index: int) -> Optional[int]:
        for slot in range(self.config.slots_per_bucket):
            if SlotRef(table, index, slot) not in self._slot_key:
                return slot
        return None

    def remove(self, key: Any) -> Optional[SlotRef]:
        """Forget *key*; returns the slot the table must zero remotely."""
        ref = self.location.pop(key, None)
        if ref is None:
            return None
        del self._slot_key[ref]
        kb = self.packer(key)
        if ref.table == T0:
            self._unregister_t0(key, kb)
        else:
            self.filter.remove(kb)
        return ref

    def __repr__(self) -> str:
        return (
            f"<CuckooDirectory {len(self.location)}/{self.config.capacity} "
            f"keys, kicks={self.kicks}, relocations={self.relocations}>"
        )
