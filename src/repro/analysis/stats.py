"""Summary statistics for experiment results."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Iterable, List, Sequence


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile (p in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * p / 100
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    # The a + (b-a)*t form is monotone in floating point, so the result
    # never escapes [min, max] (the naive lerp can, by an ulp).
    return ordered[low] + (ordered[high] - ordered[low]) * frac


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one flow hogs.

    Used by the congestion-control experiments to check that ECN-reactive
    senders converge to similar shares of the bottleneck.
    """
    if not values:
        raise ValueError("fairness of an empty allocation")
    if any(v < 0 for v in values):
        raise ValueError("allocations must be non-negative")
    total = sum(values)
    if total == 0:
        return 1.0
    squares = sum(v * v for v in values)
    return total * total / (len(values) * squares)


@dataclass
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    median: float
    p99: float
    minimum: float
    maximum: float
    stdev: float

    @classmethod
    def of(cls, values: Iterable[float]) -> "Summary":
        data: List[float] = list(values)
        if not data:
            raise ValueError("cannot summarise an empty sample")
        return cls(
            count=len(data),
            mean=statistics.fmean(data),
            median=statistics.median(data),
            p99=percentile(data, 99),
            minimum=min(data),
            maximum=max(data),
            stdev=statistics.stdev(data) if len(data) > 1 else 0.0,
        )
