"""Lightweight profiling for the simulation fast path.

Three layers, all cheap enough to stay on in production runs:

* **Sections** — named wall-clock accumulators (``with section("codec")``)
  giving per-module cumulative time without the overhead of a tracing
  profiler.
* **Counters** — process-wide totals maintained by the hot loops
  themselves (events fired by every :class:`~repro.sim.simulator.Simulator`,
  packets constructed by :class:`~repro.net.packet.Packet`), sampled
  before/after a run to derive events/sec and packets/sec.
* **Records** — :class:`PerfRecord` snapshots serialized as JSON so the
  performance trajectory is tracked PR over PR (``BENCH_micro.json``);
  :func:`compare_records` computes speedups against a stored baseline.

The CLI exposes this via ``repro-experiments --profile out.json <cmd>``;
``python benchmarks/bench_micro.py`` emits a full microbenchmark record.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

#: Schema tag stamped into every JSON perf record.
RECORD_SCHEMA = "repro-perf-record/v1"

# -- per-module cumulative sections -----------------------------------------

_section_times: Dict[str, float] = {}
_section_calls: Dict[str, int] = {}


@contextmanager
def section(name: str) -> Iterator[None]:
    """Accumulate the wall-clock time of the enclosed block under *name*."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        _section_times[name] = _section_times.get(name, 0.0) + elapsed
        _section_calls[name] = _section_calls.get(name, 0) + 1


def section_times() -> Dict[str, Dict[str, float]]:
    """Cumulative time and call count per section, keyed by section name."""
    return {
        name: {"seconds": _section_times[name], "calls": _section_calls[name]}
        for name in sorted(_section_times)
    }


def reset_sections() -> None:
    """Clear all accumulated section timings."""
    _section_times.clear()
    _section_calls.clear()


# -- hot-loop counters -------------------------------------------------------


def sim_counters() -> Dict[str, int]:
    """Sample the process-wide hot-loop counters.

    Imported lazily so that profiling stays importable even if only a
    subset of the library is on the path.
    """
    from ..net.packet import packets_created
    from ..sim.simulator import total_events_fired

    return {
        "events_fired": total_events_fired(),
        "packets_created": packets_created(),
    }


# -- perf records ------------------------------------------------------------


@dataclass
class PerfRecord:
    """One profiled run: wall time plus hot-loop throughput."""

    label: str
    wall_s: float
    events: int = 0
    packets: int = 0
    sections: Dict[str, Dict[str, float]] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def packets_per_sec(self) -> float:
        return self.packets / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "wall_s": self.wall_s,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "packets": self.packets,
            "packets_per_sec": self.packets_per_sec,
            "sections": self.sections,
            "extra": self.extra,
        }


class Profiler:
    """Context manager capturing a :class:`PerfRecord` around a block.

    Example::

        with Profiler("fig3a") as prof:
            run_fig3a()
        write_record("perf.json", [prof.record])
    """

    def __init__(self, label: str) -> None:
        self.label = label
        self.record: Optional[PerfRecord] = None
        self._start = 0.0
        self._counters: Dict[str, int] = {}

    def __enter__(self) -> "Profiler":
        self._counters = sim_counters()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        wall = time.perf_counter() - self._start
        after = sim_counters()
        self.record = PerfRecord(
            label=self.label,
            wall_s=wall,
            events=after["events_fired"] - self._counters["events_fired"],
            packets=after["packets_created"] - self._counters["packets_created"],
            sections=section_times(),
        )


def measure(
    label: str, fn: Callable[..., Any], *args: Any, **kwargs: Any
) -> Tuple[Any, PerfRecord]:
    """Run ``fn(*args, **kwargs)`` under a :class:`Profiler`."""
    with Profiler(label) as prof:
        result = fn(*args, **kwargs)
    assert prof.record is not None
    return result, prof.record


def throughput(label: str, fn: Callable[[], Any], min_seconds: float = 0.2) -> PerfRecord:
    """Repeatedly call *fn* until ``min_seconds`` elapse; derive ops/sec.

    Used by the microbenchmark harness for codec-level loops where a
    single call is too short to time reliably.  The call count is stored
    as ``extra["calls"]`` and ops/sec as ``extra["ops_per_sec"]``.
    """
    # Warm up once (struct compilation, caches, attribute resolution).
    fn()
    calls = 0
    before = sim_counters()
    start = time.perf_counter()
    deadline = start + min_seconds
    now = start
    while now < deadline:
        fn()
        calls += 1
        now = time.perf_counter()
    wall = now - start
    after = sim_counters()
    record = PerfRecord(
        label=label,
        wall_s=wall,
        events=after["events_fired"] - before["events_fired"],
        packets=after["packets_created"] - before["packets_created"],
    )
    record.extra["calls"] = calls
    record.extra["ops_per_sec"] = calls / wall if wall > 0 else 0.0
    return record


# -- JSON persistence --------------------------------------------------------


def environment_info() -> Dict[str, str]:
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
    }


def make_report(
    label: str,
    records: Dict[str, PerfRecord],
    baseline: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the machine-readable perf report for *records*.

    When *baseline* (a previously written report) is given, a ``speedup``
    map is included: per-benchmark ratio of current ops/sec (or
    events/sec) over the baseline's.
    """
    report: Dict[str, Any] = {
        "schema": RECORD_SCHEMA,
        "label": label,
        "timestamp": time.time(),
        "environment": environment_info(),
        "results": {name: rec.to_dict() for name, rec in records.items()},
    }
    if baseline is not None:
        report["baseline_label"] = baseline.get("label")
        report["speedup"] = compare_records(report, baseline)
    return report


def _rate_of(result: Dict[str, Any]) -> float:
    rate = result.get("extra", {}).get("ops_per_sec", 0.0)
    if not rate:
        rate = result.get("events_per_sec", 0.0)
    if not rate and result.get("wall_s"):
        rate = 1.0 / result["wall_s"]
    return rate


def compare_records(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> Dict[str, float]:
    """Per-benchmark speedup of *current* over *baseline* (>1 is faster).

    A result may name a different baseline benchmark via
    ``extra["baseline_name"]`` — this is how mode variants (e.g.
    ``simulator_event_throughput_batch``) report speedup against the
    scalar baseline entry, which predates the variant.
    """
    speedups: Dict[str, float] = {}
    base_results = baseline.get("results", {})
    for name, result in current.get("results", {}).items():
        base_name = result.get("extra", {}).get("baseline_name", name)
        base = base_results.get(base_name)
        if not base:
            continue
        base_rate = _rate_of(base)
        rate = _rate_of(result)
        if base_rate > 0 and rate > 0:
            speedups[name] = rate / base_rate
    return speedups


def write_report(path: str, report: Dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        return json.load(fh)
