"""Live measurement instruments: link bandwidth, latency, queue depth.

These attach non-intrusively (interface taps, periodic sampling events) so
experiments measure what actually crossed the wire rather than what the
sender intended.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..net.link import Link
from ..net.node import Interface
from ..net.packet import Packet
from ..sim.simulator import Simulator
from ..sim.units import SEC


class LinkBandwidthMonitor:
    """Counts wire bytes per direction on a link, with a filter option.

    Direction "a2b" is traffic transmitted by ``link.a``; "b2a" by
    ``link.b``.  ``rate_bps`` uses the window between the first and last
    observed packet of that direction.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        accept: Optional[Callable[[Packet], bool]] = None,
    ) -> None:
        self.sim = sim
        self.link = link
        self.accept = accept
        self.bytes = {"a2b": 0, "b2a": 0}
        self.packets = {"a2b": 0, "b2a": 0}
        self._first_ns = {"a2b": None, "b2a": None}
        self._last_ns = {"a2b": 0.0, "b2a": 0.0}
        link.taps.append(self._tap)

    def _tap(self, src: Interface, packet: Packet) -> None:
        if self.accept is not None and not self.accept(packet):
            return
        direction = "a2b" if src is self.link.a else "b2a"
        self.bytes[direction] += packet.wire_len
        self.packets[direction] += 1
        if self._first_ns[direction] is None:
            self._first_ns[direction] = self.sim.now
        self._last_ns[direction] = self.sim.now

    def rate_bps(self, direction: str) -> float:
        first = self._first_ns[direction]
        if first is None:
            return 0.0
        window = self._last_ns[direction] - first
        if window <= 0:
            return 0.0
        return self.bytes[direction] * 8 * SEC / window

    def total_bytes(self) -> int:
        return self.bytes["a2b"] + self.bytes["b2a"]


class LatencyRecorder:
    """Records per-packet one-way latency at a receiving host.

    Requires senders to stamp ``meta['sent_at']`` (the workload generators
    all do).
    """

    def __init__(self, host) -> None:
        self.host = host
        self.latencies_ns: List[float] = []
        host.packet_handlers.append(self._handle)

    def _handle(self, packet: Packet, interface: Interface) -> None:
        sent_at = packet.meta.get("sent_at")
        if sent_at is None:
            return
        self.latencies_ns.append(self.host.sim.now - sent_at)


@dataclass
class DepthSample:
    time_ns: float
    depth_bytes: int
    depth_packets: int


class QueueDepthSampler:
    """Samples a port queue's depth on a fixed period."""

    def __init__(
        self, sim: Simulator, queue, period_ns: float = 10_000.0
    ) -> None:
        self.sim = sim
        self.queue = queue
        self.period_ns = period_ns
        self.samples: List[DepthSample] = []
        self._stopped = False

    def start(self) -> None:
        self.sim.schedule(0.0, self._sample)

    def stop(self) -> None:
        self._stopped = True

    def _sample(self) -> None:
        if self._stopped:
            return
        self.samples.append(
            DepthSample(self.sim.now, self.queue.depth_bytes, len(self.queue))
        )
        self.sim.schedule(self.period_ns, self._sample)

    def peak_depth_bytes(self) -> int:
        if not self.samples:
            return 0
        return max(s.depth_bytes for s in self.samples)

    def time_to_reach(self, depth_bytes: int) -> Optional[float]:
        """First sampled time the queue was at or above *depth_bytes*."""
        for sample in self.samples:
            if sample.depth_bytes >= depth_bytes:
                return sample.time_ns
        return None
