"""Plain-text tables for benchmark output (the "rows the paper reports"),
plus text/JSON renderers for the metric registry (``--metrics``)."""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..obs.registry import Histogram, MetricRegistry

#: Schema tag stamped on every metrics JSON dump.
METRICS_SCHEMA = "repro-metrics/v1"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _metric_cell(metric: Any) -> str:
    """One table cell per metric; histograms compress to their summary."""
    if isinstance(metric, Histogram):
        if not metric.count:
            return "n=0"
        return (
            f"n={metric.count} mean={metric.mean:.1f} "
            f"min={metric.min:.0f} max={metric.max:.0f} "
            f"p99~{metric.percentile(0.99):.0f}"
        )
    value = metric.value
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_metrics(
    registry: MetricRegistry, prefix: str = "", title: str = "Metrics"
) -> str:
    """Render a registry (optionally prefix-filtered) as an aligned table."""
    rows = []
    for name in registry.names():
        if prefix and name != prefix and not name.startswith(prefix + "."):
            continue
        metric = registry.get(name)
        rows.append([name, metric.kind, _metric_cell(metric)])
    if not rows:
        return f"{title}\n(no metrics under prefix {prefix!r})"
    return format_table(["metric", "kind", "value"], rows, title=title)


def metrics_to_dict(
    registry: MetricRegistry,
    prefix: str = "",
    label: Optional[str] = None,
) -> Dict[str, Any]:
    """The ``repro-metrics/v1`` JSON document for *registry*.

    Deterministic for fixed-seed runs: metrics sort by name and nothing
    samples wall-clock time, so two identical runs produce byte-identical
    dumps.
    """
    doc: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "metrics": registry.to_dict(prefix),
    }
    if label is not None:
        doc["label"] = label
    return doc


def write_metrics_json(
    path: str,
    registry: MetricRegistry,
    prefix: str = "",
    label: Optional[str] = None,
) -> None:
    """Dump *registry* to *path* as a ``repro-metrics/v1`` document."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics_to_dict(registry, prefix, label), fh, indent=2,
                  sort_keys=True)
        fh.write("\n")


def format_gbps(rate_bps: float) -> str:
    return f"{rate_bps / 1e9:.2f} Gbps"


def format_usec(time_ns: float) -> str:
    return f"{time_ns / 1000:.2f} us"
