"""Plain-text tables for benchmark output (the "rows the paper reports")."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_gbps(rate_bps: float) -> str:
    return f"{rate_bps / 1e9:.2f} Gbps"


def format_usec(time_ns: float) -> str:
    return f"{time_ns / 1000:.2f} us"
