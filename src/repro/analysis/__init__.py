"""Measurement: recorders, monitors, statistics, reporting."""

from .monitors import (
    DepthSample,
    LatencyRecorder,
    LinkBandwidthMonitor,
    QueueDepthSampler,
)
from .reporting import (
    METRICS_SCHEMA,
    format_gbps,
    format_metrics,
    format_table,
    format_usec,
    metrics_to_dict,
    write_metrics_json,
)
from .stats import Summary, jain_fairness, percentile

__all__ = [
    "DepthSample",
    "LatencyRecorder",
    "LinkBandwidthMonitor",
    "METRICS_SCHEMA",
    "QueueDepthSampler",
    "Summary",
    "format_gbps",
    "format_metrics",
    "format_table",
    "format_usec",
    "jain_fairness",
    "metrics_to_dict",
    "percentile",
    "write_metrics_json",
]
