"""Measurement: recorders, monitors, statistics, reporting."""

from .monitors import (
    DepthSample,
    LatencyRecorder,
    LinkBandwidthMonitor,
    QueueDepthSampler,
)
from .reporting import format_gbps, format_table, format_usec
from .stats import Summary, jain_fairness, percentile

__all__ = [
    "DepthSample",
    "LatencyRecorder",
    "LinkBandwidthMonitor",
    "QueueDepthSampler",
    "Summary",
    "format_gbps",
    "format_table",
    "format_usec",
    "jain_fairness",
    "percentile",
]
