"""Unified observability: one metric registry + opt-in wire tracing.

Before this subsystem every layer grew its own ad-hoc surface
(``LookupTableStats``, ``StateStoreStats``, ``PacketBufferStats``,
``RnicStats``, health snapshots) and experiments deep-imported and
hand-aggregated them.  Now every component emits into a shared
:class:`MetricRegistry` under hierarchical names, and an optional
:class:`WireTrace` records the per-QP wire timeline.  The pair travels
as one :class:`Observability` handle.

**Where the handle lives.**  Each :class:`~repro.sim.simulator.Simulator`
owns one (``sim.obs``), created at construction, so everything sharing a
simulation shares a registry and two simulations never alias metrics —
test isolation for free.  A CLI run that spans *many* simulations (every
experiment harness builds several testbeds) installs a session-wide
handle instead::

    with Observability(trace=WireTrace()).activate() as obs:
        run_fig3a()                 # every Simulator inside adopts obs
    obs.registry.snapshot()         # the whole run's metrics
    obs.trace.write_jsonl(path)     # the whole run's wire timeline

``Simulator`` adopts the active handle when one is installed and builds
a private one otherwise (:meth:`Observability.adopt`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .registry import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricRegistry,
    MetricScope,
)
from .trace import TraceEvent, WireTrace


class Observability:
    """A metric registry plus an optional wire trace, as one handle."""

    #: The session-installed handle new Simulators adopt (None = private).
    _active: Optional["Observability"] = None

    def __init__(
        self,
        registry: Optional[MetricRegistry] = None,
        trace: Optional[WireTrace] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.trace = trace

    # -- session installation ------------------------------------------------

    @classmethod
    def active(cls) -> Optional["Observability"]:
        return cls._active

    @classmethod
    def adopt(cls) -> "Observability":
        """The active session handle, or a fresh private one."""
        return cls._active if cls._active is not None else cls()

    @contextmanager
    def activate(self) -> Iterator["Observability"]:
        """Install this handle for every Simulator built in the block."""
        previous = Observability._active
        Observability._active = self
        try:
            yield self
        finally:
            Observability._active = previous


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricRegistry",
    "MetricScope",
    "Observability",
    "TraceEvent",
    "WireTrace",
]
