"""The metric registry: counters, gauges and histograms by dotted name.

Every layer of the system — the three remote-memory primitives, the RoCE
request generators under them, the RNIC model answering them, and the
cluster health monitor above them — emits into one
:class:`MetricRegistry` under hierarchical names::

    lookup.remote_lookups          statestore.operations_issued
    pktbuf[3].stored_packets       roce[tor->memserver].naks_received
    rnic[memserver-rnic].qp[17].requests_received
    cluster.member[m0].nak

Design constraints, in order:

* **Hot-path cheap.**  A counter increment is one bound-method call and
  one integer add; primitives resolve their counters once at
  construction and hold direct references.  Nothing is formatted or
  hashed per event.
* **Deterministic.**  Metrics keep registration order; snapshots sort by
  name; nothing samples wall-clock time.  Two fixed-seed runs produce
  byte-identical metric JSON.
* **Collision-free.**  Components claim a *scope* (name prefix) through
  :meth:`MetricRegistry.unique_scope`; a second lookup table on the same
  registry becomes ``lookup#2`` rather than silently sharing (and
  corrupting) the first table's counters.

The legacy per-component ``stats`` dataclasses survive as thin property
shims that read these metrics back, so existing experiments keep working
while new code reads the registry.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

MetricValue = Union[int, float]


class Counter:
    """A monotonically increasing integer metric."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value; either set directly or computed on read.

    Pass ``fn`` to make a *function gauge* that samples live state at
    snapshot time (queue depths, outstanding windows) without the hot
    path maintaining a shadow copy.
    """

    kind = "gauge"
    __slots__ = ("name", "_value", "_fn")

    def __init__(
        self, name: str, fn: Optional[Callable[[], MetricValue]] = None
    ) -> None:
        self.name = name
        self._value: MetricValue = 0
        self._fn = fn

    def set(self, value: MetricValue) -> None:
        if self._fn is not None:
            raise TypeError(f"gauge {self.name!r} is function-backed")
        self._value = value

    def add(self, delta: MetricValue) -> None:
        if self._fn is not None:
            raise TypeError(f"gauge {self.name!r} is function-backed")
        self._value += delta

    @property
    def value(self) -> MetricValue:
        return self._fn() if self._fn is not None else self._value

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A streaming distribution: count/sum/min/max plus log2 buckets.

    Bucket ``b`` holds observations whose integer part has bit length
    ``b`` (i.e. values in ``[2^(b-1), 2^b)``), which is plenty to read
    latency distributions off a metrics dump without storing every
    sample.  Percentiles are estimated from the bucket upper bounds.
    """

    kind = "histogram"
    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: float = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value).bit_length() if value > 0 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Estimate the *fraction*-quantile from the bucket boundaries."""
        if not self.count:
            return 0.0
        target = max(1, int(round(fraction * self.count)))
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= target:
                return float(1 << bucket) if bucket else 0.0
        return float(self.max if self.max is not None else 0.0)

    @property
    def value(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def to_dict(self) -> Dict[str, Any]:
        payload = dict(self.value)
        payload["buckets"] = {str(k): v for k, v in sorted(self.buckets.items())}
        return {"kind": self.kind, "value": payload}

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


Metric = Union[Counter, Gauge, Histogram]


class MetricScope:
    """A name prefix bound to a registry; components hold one of these.

    ``scope.counter("naks")`` is ``registry.counter(f"{prefix}.naks")``.
    """

    __slots__ = ("registry", "name")

    def __init__(self, registry: "MetricRegistry", name: str) -> None:
        self.registry = registry
        self.name = name

    def _full(self, leaf: str) -> str:
        return f"{self.name}.{leaf}" if self.name else leaf

    def counter(self, leaf: str) -> Counter:
        return self.registry.counter(self._full(leaf))

    def gauge(
        self, leaf: str, fn: Optional[Callable[[], MetricValue]] = None
    ) -> Gauge:
        return self.registry.gauge(self._full(leaf), fn=fn)

    def histogram(self, leaf: str) -> Histogram:
        return self.registry.histogram(self._full(leaf))

    def child(self, leaf: str) -> "MetricScope":
        return MetricScope(self.registry, self._full(leaf))

    def __repr__(self) -> str:
        return f"<MetricScope {self.name!r}>"


class MetricRegistry:
    """All metrics of one simulation (or one CLI session), by name."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._claimed_scopes: set = set()

    # -- creation ------------------------------------------------------------

    def _get_or_create(self, name: str, cls: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(
        self, name: str, fn: Optional[Callable[[], MetricValue]] = None
    ) -> Gauge:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Gauge(name, fn=fn)
            self._metrics[name] = metric
        elif type(metric) is not Gauge:
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a gauge")
        return metric

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def scope(self, prefix: str) -> MetricScope:
        """A (possibly shared) scope under *prefix*."""
        self._claimed_scopes.add(prefix)
        return MetricScope(self, prefix)

    def unique_scope(self, base: str) -> MetricScope:
        """Claim an unclaimed scope: ``base``, else ``base#2``, ``base#3``…

        Components that can be instantiated more than once per registry
        (tables, stores, buffers, channels) use this so their counters
        never alias.
        """
        name = base
        n = 1
        while name in self._claimed_scopes:
            n += 1
            name = f"{base}#{n}"
        self._claimed_scopes.add(name)
        return MetricScope(self, name)

    def remove(self, name: str) -> None:
        """Drop one metric (e.g. the gauges of a destroyed queue pair)."""
        self._metrics.pop(name, None)

    def remove_scope(self, prefix: str) -> None:
        """Drop every metric under ``prefix.`` and release the scope."""
        dotted = prefix + "."
        for name in [n for n in self._metrics if n.startswith(dotted)]:
            del self._metrics[name]
        self._claimed_scopes.discard(prefix)

    # -- reading -------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def value(self, name: str, default: Any = None) -> Any:
        metric = self._metrics.get(name)
        return metric.value if metric is not None else default

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self, prefix: str = "") -> Dict[str, Any]:
        """Flat ``{name: value}`` map, sorted, optionally prefix-filtered."""
        return {
            name: metric.value
            for name, metric in sorted(self._metrics.items())
            if not prefix or name == prefix or name.startswith(prefix + ".")
        }

    def to_dict(self, prefix: str = "") -> Dict[str, Dict[str, Any]]:
        """Structured ``{name: {kind, value}}`` map for JSON export."""
        return {
            name: metric.to_dict()
            for name, metric in sorted(self._metrics.items())
            if not prefix or name == prefix or name.startswith(prefix + ".")
        }

    def total(self, suffix: str) -> MetricValue:
        """Sum of every counter/gauge whose name ends with ``.suffix``."""
        dotted = "." + suffix
        return sum(
            m.value
            for name, m in self._metrics.items()
            if (name == suffix or name.endswith(dotted))
            and not isinstance(m, Histogram)
        )

    def __repr__(self) -> str:
        return f"<MetricRegistry {len(self._metrics)} metrics>"
