"""Opt-in wire tracing: a per-QP timeline of RDMA verbs on the wire.

Queue depths and NAK/resync storms are invisible in aggregate counters;
diagnosing them needs the *sequence* — which WRITE left at t, which NAK
named which PSN, how long a READ response took.  :class:`WireTrace`
records exactly that: every request a
:class:`~repro.core.rocegen.RoceRequestGenerator` transmits, every
response it classifies, and every NAK an RNIC sends, each stamped with
the simulated time, the queue pair, the PSN and the wire size.

Tracing is **opt-in**: the default :class:`~repro.obs.Observability` has
``trace=None`` and the emitting code pays one ``is None`` test per
packet.  Enable it per run (CLI ``--trace out.jsonl``) or per test
(``Observability(trace=WireTrace())``).

Two export shapes:

* **JSONL** — one event per line, the format trace tooling diffs and
  greps (:meth:`WireTrace.write_jsonl`).
* **repro-perf-record/v1** — the repo's existing perf-record schema,
  one record per QP, so trace summaries ride the same artifact pipeline
  as the benchmark records (:meth:`WireTrace.to_perf_record`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

#: Event kinds, requester view unless noted.
KIND_WRITE = "WRITE"
KIND_READ = "READ"
KIND_ATOMIC = "ATOMIC"
KIND_ACK = "ACK"
KIND_NAK = "NAK"
KIND_READ_RESP = "READ_RESP"
KIND_ATOMIC_ACK = "ATOMIC_ACK"
#: A go-back-N retransmission leaving the requester (see DESIGN.md §10).
KIND_RETX = "RETX"
#: An injected fault or integrity drop; ``channel`` names the effect.
KIND_FAULT = "FAULT"
#: A circuit-breaker state transition (see DESIGN.md §11); ``channel``
#: carries ``"<old>-><new>"`` (e.g. ``"closed->open"``).
KIND_BREAKER = "BREAKER"
#: A control-plane QP reconnect on a live channel; ``channel`` names the
#: channel and ``psn`` carries the fresh switch-side QPN.
KIND_RECONNECT = "RECONNECT"
#: A tier placement move (promotion/demotion, DESIGN.md §13); ``channel``
#: carries ``"<object>:<direction>"`` (e.g. ``"counters:promote"``),
#: ``psn`` the block index, and ``wire_bytes`` the block size copied.
KIND_TIER_MOVE = "TIER_MOVE"
#: A link-guard protocol action (DESIGN.md §14); ``node`` is
#: ``"guard:<link>:<direction>"``, ``psn`` the guard sequence number,
#: and ``channel`` the action (``"nak"``, ``"resend"``, ``"masked"``,
#: ``"corrupt_dropped"``, ``"tail_timeout"``, ``"resync"``, ...).
KIND_GUARD = "GUARD"


@dataclass
class TraceEvent:
    """One wire event on one queue pair."""

    #: Simulated time the event was observed, nanoseconds.
    t_ns: float
    #: Observing component ("switch:tor", "rnic:memserver-rnic", ...).
    node: str
    #: The observer's local queue pair number.
    qpn: int
    #: WRITE / READ / ATOMIC / ACK / NAK / READ_RESP / ATOMIC_ACK /
    #: RETX (go-back-N retransmission) / FAULT (injected fault, ICRC drop).
    kind: str
    #: Packet sequence number carried in the BTH (None if absent).
    psn: Optional[int] = None
    #: Bytes the packet occupies on the wire.
    wire_bytes: int = 0
    #: Channel name for requester-side events.
    channel: Optional[str] = None
    #: AETH syndrome for NAKs.
    syndrome: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "t_ns": self.t_ns,
            "node": self.node,
            "qpn": self.qpn,
            "kind": self.kind,
            "psn": self.psn,
            "wire_bytes": self.wire_bytes,
        }
        if self.channel is not None:
            record["channel"] = self.channel
        if self.syndrome is not None:
            record["syndrome"] = self.syndrome
        return record


class WireTrace:
    """An append-only event stream with per-QP views and two exporters.

    ``limit`` bounds memory on long runs: beyond it the oldest events
    are NOT evicted (that would silently corrupt timelines) — instead
    new events are dropped and counted in :attr:`dropped`, which both
    exporters surface.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        self.events: List[TraceEvent] = []
        self.limit = limit
        self.dropped = 0

    # -- intake --------------------------------------------------------------

    def emit(
        self,
        t_ns: float,
        node: str,
        qpn: int,
        kind: str,
        psn: Optional[int] = None,
        wire_bytes: int = 0,
        channel: Optional[str] = None,
        syndrome: Optional[int] = None,
    ) -> None:
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(
                t_ns=t_ns,
                node=node,
                qpn=qpn,
                kind=kind,
                psn=psn,
                wire_bytes=wire_bytes,
                channel=channel,
                syndrome=syndrome,
            )
        )

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def per_qp(self) -> Dict[int, List[TraceEvent]]:
        """Events grouped by QPN, each list in emission (= time) order."""
        timelines: Dict[int, List[TraceEvent]] = {}
        for event in self.events:
            timelines.setdefault(event.qpn, []).append(event)
        return timelines

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- exporters -----------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line; a final meta line when events dropped."""
        lines = [
            json.dumps(event.to_dict(), sort_keys=True)
            for event in self.events
        ]
        if self.dropped:
            lines.append(json.dumps({"meta": "truncated", "dropped": self.dropped}))
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())

    def to_perf_record(self, label: str = "wire-trace") -> Dict[str, Any]:
        """The trace summarized in the ``repro-perf-record/v1`` shape.

        One result per QP: ``wall_s`` is the simulated span of that QP's
        timeline, ``events`` its event count, and ``extra`` carries the
        per-kind breakdown, the PSN range and the wire byte total —
        enough to spot a NAK storm or an idle QP from the same artifact
        viewer the benchmarks use.
        """
        # Imported here: analysis depends on obs for reporting, not the
        # other way around.
        from ..analysis.profiling import PerfRecord, make_report

        records: Dict[str, PerfRecord] = {}
        for qpn, events in sorted(self.per_qp().items()):
            span_ns = events[-1].t_ns - events[0].t_ns if len(events) > 1 else 0.0
            record = PerfRecord(
                label=f"qp[{qpn}]",
                wall_s=span_ns / 1e9,
                events=len(events),
            )
            kinds: Dict[str, int] = {}
            wire_bytes = 0
            psns = []
            for event in events:
                kinds[event.kind] = kinds.get(event.kind, 0) + 1
                wire_bytes += event.wire_bytes
                if event.psn is not None:
                    psns.append(event.psn)
            record.extra["kinds"] = kinds
            record.extra["wire_bytes"] = wire_bytes
            if psns:
                record.extra["first_psn"] = psns[0]
                record.extra["last_psn"] = psns[-1]
            records[f"qp[{qpn}]"] = record
        report = make_report(label, records)
        report["trace_events"] = len(self.events)
        report["trace_dropped"] = self.dropped
        return report
