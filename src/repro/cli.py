"""Command-line interface: run any paper experiment from the shell.

Installed as ``repro-experiments`` (see pyproject.toml).  Examples::

    repro-experiments fig3a
    repro-experiments incast --scale 0.25
    repro-experiments ablations --which drops
    repro-experiments all --quick
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List

from .experiments import ablations
from .experiments.baremetal import format_baremetal, run_baremetal_comparison
from .experiments.chaos import (
    LOSS_RATES,
    assert_recovery,
    format_chaos,
    format_chaos_recovery,
    run_chaos_recovery,
    run_chaos_sweep,
)
from .experiments.fig3a import format_fig3a, run_fig3a
from .experiments.fig3b import format_fig3b, run_fig3b
from .experiments.incast import format_incast, run_incast_comparison
from .experiments.kv_cache import format_kv_cache, run_kv_cache_comparison
from .experiments.l4lb import (
    L4LB_CORRUPT_RATE,
    L4LB_SEED,
    assert_l4lb,
    format_l4lb,
    run_l4lb_soak,
)
from .experiments.linkguard import (
    assert_linkguard,
    format_linkguard,
    run_linkguard_sweep,
)
from .experiments.lookup_scale import (
    format_lookup_scaleout,
    format_policy_curve,
    run_lookup_scale,
)
from .experiments.overhead import format_overhead, run_overhead
from .experiments.packet_buffer_rate import (
    format_packet_buffer_rate,
    run_packet_buffer_rate,
)
from .experiments.persistent_congestion import (
    format_persistent_congestion,
    run_persistent_congestion_comparison,
)
from .experiments.scaleout import (
    format_failover,
    format_scaleout,
    run_failover_counters,
    run_scaleout,
)
from .experiments.sequencer import format_sequencer, run_sequencer_throughput
from .experiments.telemetry import format_telemetry, run_telemetry
from .obs import Observability, WireTrace


def _cmd_fig3a(args: argparse.Namespace) -> str:
    return format_fig3a(run_fig3a(probes=args.probes))


def _cmd_fig3b(args: argparse.Namespace) -> str:
    return format_fig3b(run_fig3b(packets=args.packets))


def _cmd_packet_buffer(args: argparse.Namespace) -> str:
    return format_packet_buffer_rate(
        run_packet_buffer_rate(packets=args.packets)
    )


def _cmd_incast(args: argparse.Namespace) -> str:
    return format_incast(
        run_incast_comparison(scale=args.scale, senders=args.senders)
    )


def _cmd_overhead(args: argparse.Namespace) -> str:
    return format_overhead(run_overhead())


def _cmd_baremetal(args: argparse.Namespace) -> str:
    return format_baremetal(
        run_baremetal_comparison(vips=args.vips, packets=args.packets)
    )


def _cmd_telemetry(args: argparse.Namespace) -> str:
    return format_telemetry(
        run_telemetry(flows=args.flows, packets=args.packets)
    )


def _cmd_persistent(args: argparse.Namespace) -> str:
    return format_persistent_congestion(
        run_persistent_congestion_comparison(duration_ms=args.duration_ms)
    )


def _cmd_sequencer(args: argparse.Namespace) -> str:
    return format_sequencer(run_sequencer_throughput(packets=args.packets))


def _scaleout_counts(servers: int) -> List[int]:
    """Pool sizes for the sweep: powers of two up to *servers*."""
    counts = [1]
    while counts[-1] * 2 <= servers:
        counts.append(counts[-1] * 2)
    if counts[-1] != servers:
        counts.append(servers)
    return counts


def _cmd_scaleout(args: argparse.Namespace) -> str:
    rows = run_scaleout(
        server_counts=_scaleout_counts(args.servers),
        lookups_per_host=args.lookups_per_host,
    )
    sections = [format_scaleout(rows)]
    if args.servers >= 2:
        sections.append(
            format_failover(
                run_failover_counters(
                    packets=args.failover_packets,
                    servers=max(3, min(args.servers, 4)),
                    kill_at_ns=600_000.0,
                )
            )
        )
    return "\n\n".join(sections)


def _cmd_lookup_scale(args: argparse.Namespace) -> str:
    study = run_lookup_scale(
        server_counts=_scaleout_counts(args.servers),
        population=args.flows,
        count=args.packets,
        alpha=args.alpha,
        seed=args.seed,
        entries=args.entries,
    )
    return "\n\n".join(
        [
            format_policy_curve(study.policy_curve),
            format_lookup_scaleout(study.scaleout),
        ]
    )


def _cmd_chaos(args: argparse.Namespace) -> str:
    if args.recover:
        report = run_chaos_recovery(packets=args.packets, seed=args.seed)
        assert_recovery(report)
        return format_chaos_recovery(report)
    rates = tuple(args.loss) if args.loss else LOSS_RATES
    return format_chaos(
        run_chaos_sweep(
            loss_rates=rates,
            packets=args.packets,
            seed=args.seed,
            reliable=not args.unreliable,
        )
    )


def _cmd_linkguard(args: argparse.Namespace) -> str:
    rows = run_linkguard_sweep(
        packets=args.packets,
        corrupt_rate=args.corrupt_rate,
        seed=args.seed,
    )
    if args.check:
        assert_linkguard(rows)
    return format_linkguard(rows)


def _cmd_l4lb(args: argparse.Namespace) -> str:
    result = run_l4lb_soak(
        connections=args.connections,
        packets=args.packets,
        new_connections=args.new_connections,
        new_packets=args.new_packets,
        backends=args.backends,
        corrupt_rate=args.corrupt_rate,
        seed=args.seed,
    )
    if args.check:
        assert_l4lb(result)
    return format_l4lb(result)


def _cmd_kv_cache(args: argparse.Namespace) -> str:
    return format_kv_cache(
        run_kv_cache_comparison(keys=args.keys, queries=args.queries)
    )


_ABLATIONS: Dict[str, Callable[[], str]] = {
    "batching": lambda: ablations.format_batching(ablations.run_batching_ablation()),
    "window": lambda: ablations.format_window(ablations.run_window_ablation()),
    "cache": lambda: ablations.format_cache(ablations.run_cache_ablation()),
    "mode": lambda: ablations.format_mode(ablations.run_mode_ablation()),
    "drops": lambda: ablations.format_drops(ablations.run_drop_ablation()),
    "priority": lambda: ablations.format_priority(
        ablations.run_priority_ablation()
    ),
}


def _cmd_ablations(args: argparse.Namespace) -> str:
    which = list(_ABLATIONS) if args.which == "all" else [args.which]
    return "\n\n".join(_ABLATIONS[name]() for name in which)


def _cmd_all(args: argparse.Namespace) -> str:
    quick = args.quick
    sections = [
        format_overhead(run_overhead()),
        format_fig3a(run_fig3a(probes=10 if quick else 30)),
        format_fig3b(run_fig3b(packets=2000 if quick else 4000)),
        format_packet_buffer_rate(
            run_packet_buffer_rate(
                offered_rates_gbps=(33, 34, 35, 36, 40) if quick else
                (32, 33, 34, 35, 36, 38, 40),
                packets=3000 if quick else 8000,
            )
        ),
        format_incast(
            run_incast_comparison(scale=0.1 if quick else 1.0)
        ),
        format_baremetal(
            run_baremetal_comparison(
                vips=2000 if quick else 20_000,
                packets=1500 if quick else 6000,
            )
        ),
        format_telemetry(
            run_telemetry(
                flows=3000 if quick else 20_000,
                packets=4000 if quick else 20_000,
                remote_counters=1 << 16 if quick else 1 << 20,
            )
        ),
        format_kv_cache(
            run_kv_cache_comparison(
                keys=2000 if quick else 10_000,
                queries=1500 if quick else 5000,
            )
        ),
        format_l4lb(
            run_l4lb_soak(
                connections=2000 if quick else 100_000,
                packets=4000 if quick else 20_000,
                new_connections=200 if quick else 2000,
                new_packets=600 if quick else 3000,
            )
        ),
    ]
    study = run_lookup_scale(
        server_counts=(1, 2) if quick else (1, 2, 4),
        cache_sizes=(256,) if quick else (256, 1024, 4096),
        population=100_000 if quick else 1_000_000,
        count=2000 if quick else 20_000,
        entries=1 << 12 if quick else 1 << 14,
    )
    sections.append(format_policy_curve(study.policy_curve))
    sections.append(format_lookup_scaleout(study.scaleout))
    return "\n\n".join(sections)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Generic External Memory "
            "for Switch Data Planes' (HotNets 2018)."
        ),
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help=(
            "profile the run (wall time, events/sec, packets/sec, section "
            "times) and write a JSON perf record to PATH"
        ),
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help=(
            "collect every simulation's metric registry into one session "
            "registry and write it to PATH as repro-metrics/v1 JSON"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "record the RDMA wire timeline (per-QP WRITE/READ/ATOMIC/ACK/"
            "NAK events with PSNs) and write JSONL to PATH"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig3a", help="latency overhead of the lookup primitive")
    p.add_argument("--probes", type=int, default=30)
    p.set_defaults(fn=_cmd_fig3a)

    p = sub.add_parser("fig3b", help="bandwidth overhead of the state store")
    p.add_argument("--packets", type=int, default=4000)
    p.set_defaults(fn=_cmd_fig3b)

    p = sub.add_parser("packet-buffer", help="§5 store/forward rate sweep")
    p.add_argument("--packets", type=int, default=8000)
    p.set_defaults(fn=_cmd_packet_buffer)

    p = sub.add_parser("incast", help="§2.1 incast comparison")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--senders", type=int, default=8)
    p.set_defaults(fn=_cmd_incast)

    p = sub.add_parser("overhead", help="§4 RoCE header overhead table")
    p.set_defaults(fn=_cmd_overhead)

    p = sub.add_parser("baremetal", help="§2.2 VIP→PIP translation")
    p.add_argument("--vips", type=int, default=10_000)
    p.add_argument("--packets", type=int, default=5000)
    p.set_defaults(fn=_cmd_baremetal)

    p = sub.add_parser("telemetry", help="§2.3 sketch scaling")
    p.add_argument("--flows", type=int, default=20_000)
    p.add_argument("--packets", type=int, default=15_000)
    p.set_defaults(fn=_cmd_telemetry)

    p = sub.add_parser("sequencer", help="§6 in-network sequencer throughput")
    p.add_argument("--packets", type=int, default=3000)
    p.set_defaults(fn=_cmd_sequencer)

    p = sub.add_parser(
        "l4lb",
        help=(
            "L4 load balancer soak: live backend migration under a hard "
            "kill, a graceful drain, and link corruption at once"
        ),
    )
    p.add_argument(
        "--connections", type=int, default=100_000,
        help="established connections pre-installed in the remote table",
    )
    p.add_argument("--packets", type=int, default=20_000)
    p.add_argument("--new-connections", type=int, default=2000)
    p.add_argument("--new-packets", type=int, default=3000)
    p.add_argument("--backends", type=int, default=4)
    p.add_argument(
        "--corrupt-rate",
        type=float,
        default=L4LB_CORRUPT_RATE,
        help="per-frame corruption probability on the table-server link",
    )
    p.add_argument(
        "--seed", type=int, default=L4LB_SEED,
        help="pins traffic, corruption, probe jitter, and placement",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help=(
            "assert the acceptance bar: zero lost counter updates, zero "
            "affinity breaks, kill absorbed, drain graceful"
        ),
    )
    p.set_defaults(fn=_cmd_l4lb)

    p = sub.add_parser("kv-cache", help="§6 in-network KV cache study")
    p.add_argument("--keys", type=int, default=10_000)
    p.add_argument("--queries", type=int, default=5000)
    p.set_defaults(fn=_cmd_kv_cache)

    p = sub.add_parser(
        "persistent-congestion",
        help="§2.1 persistent overload: remote buffer vs buffer+ECN",
    )
    p.add_argument("--duration-ms", type=float, default=6.0)
    p.set_defaults(fn=_cmd_persistent)

    p = sub.add_parser(
        "scaleout",
        help="cluster: shard lookups over N servers; kill a replica mid-count",
    )
    p.add_argument(
        "--servers", type=int, default=4, help="pool size for the sweep"
    )
    p.add_argument("--lookups-per-host", type=int, default=1200)
    p.add_argument("--failover-packets", type=int, default=4000)
    p.set_defaults(fn=_cmd_scaleout)

    p = sub.add_parser(
        "lookup-scale",
        help=(
            "EMOMA-scale lookup: Zipf flow populations over the cuckoo "
            "layout; cache-policy curves + sustained miss throughput"
        ),
    )
    p.add_argument(
        "--flows", type=int, default=1_000_000, help="Zipf flow population"
    )
    p.add_argument(
        "--packets", type=int, default=20_000, help="packets per run"
    )
    p.add_argument("--alpha", type=float, default=1.0, help="Zipf skew")
    p.add_argument("--seed", type=int, default=3)
    p.add_argument(
        "--servers", type=int, default=4, help="largest pool size to sweep"
    )
    p.add_argument(
        "--entries", type=int, default=1 << 14, help="remote table slots"
    )
    p.set_defaults(fn=_cmd_lookup_scale)

    p = sub.add_parser(
        "chaos",
        help="fault injection: reliable counters over a lossy link",
    )
    p.add_argument("--packets", type=int, default=3000)
    p.add_argument(
        "--seed", type=int, default=42, help="FaultPlan seed (replayable)"
    )
    p.add_argument(
        "--loss",
        type=float,
        action="append",
        default=None,
        metavar="P",
        help="loss probability to sweep (repeatable; default 0/0.1%%/1%%/5%%)",
    )
    p.add_argument(
        "--unreliable",
        action="store_true",
        help="ablation: disable the reliable-mode recovery machinery",
    )
    p.add_argument(
        "--recover",
        action="store_true",
        help=(
            "self-healing scenario: blackout -> degrade -> reconnect -> "
            "reconcile, asserting zero lost state and in-order drain"
        ),
    )
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "linkguard",
        help=(
            "link protection: goodput of the lookup and packet-buffer "
            "primitives over a corrupting link, guard off/on/breaker-only"
        ),
    )
    p.add_argument("--packets", type=int, default=1500)
    p.add_argument(
        "--corrupt-rate",
        type=float,
        default=1e-3,
        help="per-frame corruption probability on the server link",
    )
    p.add_argument(
        "--seed", type=int, default=42, help="FaultPlan seed (replayable)"
    )
    p.add_argument(
        "--check",
        action="store_true",
        help=(
            "assert the acceptance bar: guard-on within 5%% of lossless, "
            "guard-off measurably worse, zero lost updates, breaker blind"
        ),
    )
    p.set_defaults(fn=_cmd_linkguard)

    p = sub.add_parser("ablations", help="§7 design-choice ablations")
    p.add_argument(
        "--which",
        choices=[*_ABLATIONS, "all"],
        default="all",
    )
    p.set_defaults(fn=_cmd_ablations)

    p = sub.add_parser("all", help="run every experiment")
    p.add_argument("--quick", action="store_true", help="reduced scales")
    p.set_defaults(fn=_cmd_all)

    return parser


def main(argv: List[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    # Fail before the (possibly long) run, not after it.
    for flag in ("profile", "metrics", "trace"):
        path = getattr(args, flag)
        if path:
            out_dir = os.path.dirname(os.path.abspath(path))
            if not os.path.isdir(out_dir):
                parser.error(f"--{flag}: directory does not exist: {out_dir}")

    # One session-wide observability handle: every Simulator the harness
    # builds inside the block emits into the same registry (and trace).
    obs = Observability(trace=WireTrace() if args.trace else None)
    with obs.activate():
        if args.profile:
            from .analysis.profiling import Profiler, make_report, write_report

            with Profiler(args.command) as prof:
                print(args.fn(args))
            record = prof.record
            assert record is not None
            write_report(
                args.profile, make_report(args.command, {args.command: record})
            )
            print(
                f"[profile] {record.wall_s:.3f}s wall, "
                f"{record.events_per_sec:,.0f} events/s, "
                f"{record.packets_per_sec:,.0f} packets/s -> {args.profile}",
                file=sys.stderr,
            )
        else:
            print(args.fn(args))

    if args.metrics:
        from .analysis.reporting import write_metrics_json

        write_metrics_json(args.metrics, obs.registry, label=args.command)
        print(
            f"[metrics] {len(obs.registry)} metrics -> {args.metrics}",
            file=sys.stderr,
        )
    if args.trace:
        obs.trace.write_jsonl(args.trace)
        print(
            f"[trace] {len(obs.trace)} events "
            f"({obs.trace.dropped} dropped) -> {args.trace}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
