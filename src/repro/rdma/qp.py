"""Queue pairs and work requests (RC transport).

A :class:`QueuePair` holds the connection state both endpoints of an RDMA
channel need: queue-pair numbers, packet sequence numbers, and the network
identity of the peer.  The same class serves three users:

* the RNIC responder (tracks the expected PSN / message sequence number),
* the RNIC requester used by the native host-to-host RDMA baseline,
* the *switch-side soft queue pair* of the paper's primitives, whose fields
  live in data-plane register arrays on real hardware.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..net.addresses import Ipv4Address, MacAddress
from .constants import Opcode, psn_add


class QpState(enum.Enum):
    """The subset of the IB QP state machine the simulation needs."""

    RESET = "RESET"
    INIT = "INIT"
    RTR = "RTR"      # ready to receive
    RTS = "RTS"      # ready to send
    ERROR = "ERROR"


_wr_ids = itertools.count(1)


@dataclass
class WorkRequest:
    """A one-sided RDMA operation posted by a requester."""

    opcode: Opcode
    remote_address: int
    rkey: int
    #: Payload for WRITE; ignored for READ/atomics.
    data: bytes = b""
    #: Bytes to read for READ; operand for FETCH_ADD; ignored for WRITE.
    length: int = 0
    compare: int = 0
    #: Completion callback, called as ``callback(completion)``.
    callback: Optional[Callable[["Completion"], None]] = None
    wr_id: int = field(default_factory=lambda: next(_wr_ids))
    #: Assigned when the request is transmitted.
    psn: Optional[int] = None
    post_time_ns: Optional[float] = None
    #: Free-form requester context (e.g. the original packet being bounced).
    context: Any = None


@dataclass
class Completion:
    """Completion record delivered to a work request's callback."""

    wr_id: int
    opcode: Opcode
    success: bool
    #: READ response payload (empty otherwise).
    data: bytes = b""
    #: Pre-operation value for atomics.
    original_value: int = 0
    #: NAK syndrome when success is False (None for local errors).
    syndrome: Optional[int] = None
    completion_time_ns: float = 0.0
    context: Any = None


class QueuePair:
    """Reliable-connection queue pair state."""

    def __init__(
        self,
        qpn: int,
        local_ip: Ipv4Address,
        local_mac: MacAddress,
        initial_psn: int = 0,
    ) -> None:
        if not 0 < qpn < (1 << 24):
            raise ValueError(f"QPN out of range: {qpn}")
        self.qpn = qpn
        self.local_ip = Ipv4Address(local_ip)
        self.local_mac = MacAddress(local_mac)
        self.state = QpState.INIT
        # Peer identity, filled in by connect().
        self.dest_qpn: Optional[int] = None
        self.dest_ip: Optional[Ipv4Address] = None
        self.dest_mac: Optional[MacAddress] = None
        # Requester-side sequencing.
        self.next_psn = initial_psn % (1 << 24)
        # Responder-side sequencing.
        self.expected_psn = 0
        self.msn = 0
        # Statistics.
        self.requests_received = 0
        self.responses_sent = 0
        self.naks_sent = 0

    def connect(
        self,
        dest_qpn: int,
        dest_ip: Ipv4Address,
        dest_mac: MacAddress,
        dest_initial_psn: int = 0,
    ) -> None:
        """Transition INIT → RTR → RTS with the peer's identity installed."""
        if self.state not in (QpState.INIT, QpState.RESET):
            raise RuntimeError(f"QP {self.qpn} cannot connect from {self.state}")
        self.dest_qpn = dest_qpn
        self.dest_ip = Ipv4Address(dest_ip)
        self.dest_mac = MacAddress(dest_mac)
        self.expected_psn = dest_initial_psn % (1 << 24)
        self.state = QpState.RTS

    @property
    def is_connected(self) -> bool:
        return self.state == QpState.RTS and self.dest_qpn is not None

    def allocate_psn(self) -> int:
        """Take the next requester PSN (one packet per request here)."""
        psn = self.next_psn
        self.next_psn = psn_add(self.next_psn, 1)
        return psn

    def advance_expected(self) -> None:
        """Responder accepted the in-order request: bump ePSN and MSN."""
        self.expected_psn = psn_add(self.expected_psn, 1)
        self.msn = psn_add(self.msn, 1)

    def to_error(self) -> None:
        self.state = QpState.ERROR

    def __repr__(self) -> str:
        return (
            f"<QP {self.qpn} {self.state.value} -> {self.dest_qpn} "
            f"nPSN={self.next_psn} ePSN={self.expected_psn}>"
        )
