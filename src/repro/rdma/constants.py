"""InfiniBand / RoCEv2 protocol constants (RC transport subset).

Opcode values follow the InfiniBand Architecture Specification (volume 1):
the upper three bits of the BTH opcode select the transport service (RC =
``000``) and the lower five bits select the operation.  Only the subset the
paper needs is implemented: one-packet RDMA WRITE/READ, atomic
Fetch-and-Add, and their acknowledgements.
"""

from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    """RC-transport BTH opcodes used by the primitives."""

    SEND_ONLY = 0x04
    RDMA_WRITE_FIRST = 0x06
    RDMA_WRITE_MIDDLE = 0x07
    RDMA_WRITE_LAST = 0x08
    RDMA_WRITE_ONLY = 0x0A
    RDMA_READ_REQUEST = 0x0C
    RDMA_READ_RESPONSE_FIRST = 0x0D
    RDMA_READ_RESPONSE_MIDDLE = 0x0E
    RDMA_READ_RESPONSE_LAST = 0x0F
    RDMA_READ_RESPONSE_ONLY = 0x10
    ACKNOWLEDGE = 0x11
    ATOMIC_ACKNOWLEDGE = 0x12
    COMPARE_SWAP = 0x13
    FETCH_ADD = 0x14


#: Opcodes that a responder treats as requests.
REQUEST_OPCODES = frozenset(
    {
        Opcode.SEND_ONLY,
        Opcode.RDMA_WRITE_ONLY,
        Opcode.RDMA_WRITE_FIRST,
        Opcode.RDMA_WRITE_MIDDLE,
        Opcode.RDMA_WRITE_LAST,
        Opcode.RDMA_READ_REQUEST,
        Opcode.COMPARE_SWAP,
        Opcode.FETCH_ADD,
    }
)

#: Opcodes that a requester treats as responses.
RESPONSE_OPCODES = frozenset(
    {
        Opcode.RDMA_READ_RESPONSE_ONLY,
        Opcode.RDMA_READ_RESPONSE_FIRST,
        Opcode.RDMA_READ_RESPONSE_MIDDLE,
        Opcode.RDMA_READ_RESPONSE_LAST,
        Opcode.ACKNOWLEDGE,
        Opcode.ATOMIC_ACKNOWLEDGE,
    }
)


class AethSyndrome:
    """AETH syndrome encodings (simplified: ACK with unlimited credits)."""

    ACK = 0b0001_1111          # ACK, credit field saturated
    NAK_PSN_SEQUENCE_ERROR = 0b0110_0000
    NAK_INVALID_REQUEST = 0b0110_0001
    NAK_REMOTE_ACCESS_ERROR = 0b0110_0010
    NAK_REMOTE_OP_ERROR = 0b0110_0011

    NAK_SYNDROMES = frozenset(
        {
            NAK_PSN_SEQUENCE_ERROR,
            NAK_INVALID_REQUEST,
            NAK_REMOTE_ACCESS_ERROR,
            NAK_REMOTE_OP_ERROR,
        }
    )

    @classmethod
    def is_nak(cls, syndrome: int) -> bool:
        return (syndrome & 0b0110_0000) == 0b0110_0000


#: PSNs are 24-bit sequence numbers.
PSN_MODULO = 1 << 24

#: Atomic operations always act on exactly 8 bytes.
ATOMIC_OPERAND_BYTES = 8

#: Default partition key (the "default partition" in IB terms).
DEFAULT_PKEY = 0xFFFF


def psn_add(psn: int, delta: int) -> int:
    """Advance a 24-bit PSN by *delta*, wrapping at 2**24."""
    return (psn + delta) % PSN_MODULO


def psn_distance(a: int, b: int) -> int:
    """Forward distance from *a* to *b* in PSN space (0..2**24-1)."""
    return (b - a) % PSN_MODULO
