"""Builders for complete RoCEv2 packets.

Shared by the RNIC (responses), the native host requester (baseline), and —
crucially — the switch data plane (:mod:`repro.core.rocegen`), which crafts
exactly these packets out of P4 actions on real hardware.

All builders produce structured :class:`~repro.net.packet.Packet` objects
with an Ethernet/IPv4/UDP/BTH stack and an ICRC trailer.  By default the
ICRC value is left zero (computing CRC32 per simulated packet is wasted
work); pass ``compute_icrc=True`` where integrity actually matters, or
flip the process-wide default with :func:`set_integrity_default` /
:func:`integrity_protected` for runs that inject bit corruption — a
zero-valued trailer is *unprotected* and corruption of such a packet is
silent, which is exactly what the end-to-end ICRC regression test
demonstrates (see DESIGN.md §10).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from ..net.addresses import Ipv4Address, MacAddress
from ..net.headers import (
    ETHERTYPE_ROCEV1,
    ROCEV2_UDP_PORT,
    EthernetHeader,
    Ipv4Header,
    UdpHeader,
)
from ..net.packet import Packet
from .constants import AethSyndrome, Opcode
from .headers import (
    AethHeader,
    AtomicAckEthHeader,
    AtomicEthHeader,
    BthHeader,
    GrhHeader,
    IcrcTrailer,
    RethHeader,
    gid_from_ipv4,
)
from .qp import QueuePair


#: Process-wide default for the builders' ``compute_icrc`` parameter.
#: False keeps the fast path free of per-packet CRC32; chaos runs with
#: corruption faults flip it on so the receivers can actually detect
#: damage (LinkGuardian's premise: corruption is *detected* loss).
_default_compute_icrc = False


def set_integrity_default(enabled: bool) -> bool:
    """Set whether builders compute real ICRCs by default; returns the old value."""
    global _default_compute_icrc
    previous = _default_compute_icrc
    _default_compute_icrc = bool(enabled)
    return previous


@contextmanager
def integrity_protected(enabled: bool = True) -> Iterator[None]:
    """Scope within which every built RoCE packet carries a real ICRC."""
    previous = set_integrity_default(enabled)
    try:
        yield
    finally:
        set_integrity_default(previous)


def verify_icrc(packet: Packet) -> bool:
    """Check *packet*'s ICRC; True when intact or unprotected.

    A missing trailer or a zero value means the sender never computed an
    ICRC (the simulation default) — such packets are accepted, keeping
    the fast path unchanged.  A nonzero value is recomputed over the
    RoCE section (BTH onward, as the builders do); a mismatch means the
    packet was damaged in flight and the receiver must drop it, turning
    corruption into loss for the retransmission machinery to repair.
    """
    trailer = packet.find_trailer(IcrcTrailer)
    if trailer is None or trailer.value == 0:
        return True
    return _icrc_for(packet).value == trailer.value


def _icrc_for(packet: Packet) -> IcrcTrailer:
    """Compute the ICRC over the RoCE section (BTH onward) of *packet*."""
    bth_index = packet.index_of(BthHeader)
    roce_bytes = (
        b"".join(h.pack() for h in packet.headers[bth_index:]) + packet.payload
    )
    return IcrcTrailer.compute(roce_bytes)


def _base_packet(
    src_mac: MacAddress,
    dst_mac: MacAddress,
    src_ip: Ipv4Address,
    dst_ip: Ipv4Address,
    bth: BthHeader,
    src_udp_port: int = 49152,
) -> Packet:
    """Assemble the Eth/IPv4/UDP/BTH scaffolding every RoCE packet shares."""
    packet = Packet(
        headers=[
            EthernetHeader(dst=dst_mac, src=src_mac),
            Ipv4Header(src=src_ip, dst=dst_ip, protocol=Ipv4Header.PROTO_UDP),
            UdpHeader(src_port=src_udp_port, dst_port=ROCEV2_UDP_PORT),
            bth,
        ],
        trailers=[IcrcTrailer()],
    )
    return packet


def _finish(packet: Packet, compute_icrc: bool) -> Packet:
    packet.fixup_lengths()
    if compute_icrc or _default_compute_icrc:
        packet.trailers[0] = _icrc_for(packet)
    return packet


def build_write_request(
    qp: QueuePair,
    remote_address: int,
    rkey: int,
    data: bytes,
    psn: Optional[int] = None,
    ack_request: bool = True,
    compute_icrc: bool = False,
) -> Packet:
    """RDMA WRITE (only) request carrying *data* to ``remote_address``."""
    if not qp.is_connected:
        raise RuntimeError(f"QP {qp.qpn} is not connected")
    psn = qp.allocate_psn() if psn is None else psn
    bth = BthHeader(
        opcode=Opcode.RDMA_WRITE_ONLY,
        dest_qp=qp.dest_qpn,
        psn=psn,
        ack_request=ack_request,
    )
    packet = _base_packet(
        qp.local_mac, qp.dest_mac, qp.local_ip, qp.dest_ip, bth
    )
    packet.headers.append(
        RethHeader(virtual_address=remote_address, rkey=rkey, dma_length=len(data))
    )
    packet.payload = bytes(data)
    return _finish(packet, compute_icrc)


def build_read_request(
    qp: QueuePair,
    remote_address: int,
    rkey: int,
    length: int,
    psn: Optional[int] = None,
    compute_icrc: bool = False,
) -> Packet:
    """RDMA READ request for *length* bytes at ``remote_address``."""
    if not qp.is_connected:
        raise RuntimeError(f"QP {qp.qpn} is not connected")
    psn = qp.allocate_psn() if psn is None else psn
    bth = BthHeader(
        opcode=Opcode.RDMA_READ_REQUEST, dest_qp=qp.dest_qpn, psn=psn
    )
    packet = _base_packet(
        qp.local_mac, qp.dest_mac, qp.local_ip, qp.dest_ip, bth
    )
    packet.headers.append(
        RethHeader(virtual_address=remote_address, rkey=rkey, dma_length=length)
    )
    return _finish(packet, compute_icrc)


def build_fetch_add_request(
    qp: QueuePair,
    remote_address: int,
    rkey: int,
    add_value: int,
    psn: Optional[int] = None,
    compute_icrc: bool = False,
) -> Packet:
    """RDMA atomic Fetch-and-Add of *add_value* at ``remote_address``."""
    if not qp.is_connected:
        raise RuntimeError(f"QP {qp.qpn} is not connected")
    psn = qp.allocate_psn() if psn is None else psn
    bth = BthHeader(opcode=Opcode.FETCH_ADD, dest_qp=qp.dest_qpn, psn=psn)
    packet = _base_packet(
        qp.local_mac, qp.dest_mac, qp.local_ip, qp.dest_ip, bth
    )
    packet.headers.append(
        AtomicEthHeader(
            virtual_address=remote_address, rkey=rkey, swap_add=add_value
        )
    )
    return _finish(packet, compute_icrc)


def _response_scaffold(
    request: Packet, opcode: Opcode, responder_qp: QueuePair
) -> Packet:
    """Build a response packet addressed back at the requester."""
    req_eth = request.eth
    req_ip = request.ipv4
    req_udp = request.udp
    req_bth = request.require(BthHeader)
    bth = BthHeader(
        opcode=opcode,
        # Responses go to the requester's QP.
        dest_qp=responder_qp.dest_qpn if responder_qp.dest_qpn is not None else 0,
        psn=req_bth.psn,
    )
    packet = _base_packet(
        src_mac=req_eth.dst,
        dst_mac=req_eth.src,
        src_ip=req_ip.dst,
        dst_ip=req_ip.src,
        bth=bth,
        src_udp_port=req_udp.src_port,
    )
    return packet


def build_read_response(
    request: Packet,
    responder_qp: QueuePair,
    data: bytes,
    compute_icrc: bool = False,
) -> Packet:
    """READ response (only) carrying *data*, mirrored from *request*."""
    packet = _response_scaffold(
        request, Opcode.RDMA_READ_RESPONSE_ONLY, responder_qp
    )
    packet.headers.append(
        AethHeader(syndrome=AethSyndrome.ACK, msn=responder_qp.msn)
    )
    packet.payload = bytes(data)
    return _finish(packet, compute_icrc)


def build_ack(
    request: Packet,
    responder_qp: QueuePair,
    syndrome: int = AethSyndrome.ACK,
    psn_override: Optional[int] = None,
    compute_icrc: bool = False,
) -> Packet:
    """ACK or NAK (per *syndrome*) for *request*.

    A PSN-sequence-error NAK carries the responder's *expected* PSN in the
    BTH (``psn_override``), which is how a real requester learns where to
    resume — the primitives use it to resynchronize their soft QPs.
    """
    packet = _response_scaffold(request, Opcode.ACKNOWLEDGE, responder_qp)
    if psn_override is not None:
        packet.require(BthHeader).psn = psn_override
    packet.headers.append(AethHeader(syndrome=syndrome, msn=responder_qp.msn))
    return _finish(packet, compute_icrc)


def convert_to_rocev1(packet: Packet) -> Packet:
    """Reframe a RoCEv2 packet as RoCEv1 (Ethernet / GRH / BTH ...).

    RoCEv1 replaces the IPv4+UDP pair (28 B) with a 40 B Global Route
    Header under ethertype 0x8915 — the origin of the paper's "52 bytes in
    the case of RoCEv1".  Returns a new packet; the input is not modified.
    """
    v1 = packet.clone()
    eth = v1.require(EthernetHeader)
    ip = v1.require(Ipv4Header)
    grh = GrhHeader(
        src_gid=gid_from_ipv4(ip.src),
        dst_gid=gid_from_ipv4(ip.dst),
        hop_limit=ip.ttl,
    )
    bth_index = v1.index_of(BthHeader)
    v1.headers = [
        EthernetHeader(dst=eth.dst, src=eth.src, ethertype=ETHERTYPE_ROCEV1),
        grh,
        *v1.headers[bth_index:],
    ]
    # GRH payload length covers everything after the GRH, ICRC included.
    grh.payload_length = (
        sum(h.byte_len for h in v1.headers[2:])
        + len(v1.payload)
        + v1.trailer_len
    )
    return v1


def build_atomic_ack(
    request: Packet,
    responder_qp: QueuePair,
    original_value: int,
    compute_icrc: bool = False,
) -> Packet:
    """Atomic acknowledgement carrying the pre-operation value."""
    packet = _response_scaffold(request, Opcode.ATOMIC_ACKNOWLEDGE, responder_qp)
    packet.headers.append(
        AethHeader(syndrome=AethSyndrome.ACK, msn=responder_qp.msn)
    )
    packet.headers.append(AtomicAckEthHeader(original_data=original_value))
    return _finish(packet, compute_icrc)
