"""RoCEv2 header codecs: BTH, RETH, AETH, AtomicETH, AtomicAckETH, ICRC.

These are the headers a programmable switch must craft and parse to speak
one-sided RDMA with a commodity RNIC (§3–§4 of the paper).  All codecs
round-trip byte-exactly.  Sizes match the paper's overhead analysis: BTH is
12 B (so IPv4 + UDP + BTH = the 40 B the paper quotes for RoCEv2), RETH is
16 B, AtomicETH is 28 B.

Like the L2/L3 codecs in :mod:`repro.net.headers`, every header here uses
module-level precompiled :class:`struct.Struct` instances and caches its
serialized bytes via :class:`~repro.net.headers.CachedPackMixin`
(invalidated only when a field assignment changes a value).  ICRC
computation is memoized by input bytes, since retransmissions and mirrored
packets re-CRC identical byte strings.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..net.headers import CachedPackMixin, HeaderError
from ..net.packet import Packet
from .constants import Opcode

# Precompiled wire formats (struct.Struct avoids per-call format parsing).
_GRH_STRUCT = struct.Struct("!IHBB")
_BTH_STRUCT = struct.Struct("!BBHII")
_RETH_STRUCT = struct.Struct("!QII")
_ATOMIC_ETH_STRUCT = struct.Struct("!QIQQ")
_U32_STRUCT = struct.Struct("!I")
_U64_STRUCT = struct.Struct("!Q")


@dataclass
class GrhHeader(CachedPackMixin):
    """Global Route Header (40 bytes) — RoCEv1's routing layer.

    RoCEv1 frames are ``Ethernet / GRH / BTH / ...`` with ethertype 0x8915
    instead of IPv4+UDP, which is where the paper's "52 bytes in the case
    of RoCEv1" comes from (40 GRH + 12 BTH).  The v2 experiments don't use
    it, but the overhead harness serializes both framings.
    """

    src_gid: bytes
    dst_gid: bytes
    payload_length: int = 0
    next_header: int = 0x1B  # IBA transport
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0

    LENGTH = 40

    def __post_init__(self) -> None:
        if len(self.src_gid) != 16 or len(self.dst_gid) != 16:
            raise HeaderError("GRH GIDs must be 16 bytes")
        if not 0 <= self.payload_length <= 0xFFFF:
            raise HeaderError(
                f"GRH payload length out of range: {self.payload_length}"
            )
        if not 0 <= self.flow_label < (1 << 20):
            raise HeaderError(f"GRH flow label out of range: {self.flow_label}")

    def _pack(self) -> bytes:
        word0 = (
            (6 << 28)
            | ((self.traffic_class & 0xFF) << 20)
            | (self.flow_label & 0xFFFFF)
        )
        return (
            _GRH_STRUCT.pack(
                word0,
                self.payload_length,
                self.next_header,
                self.hop_limit,
            )
            + self.src_gid
            + self.dst_gid
        )

    @classmethod
    def unpack(cls, data: bytes) -> "GrhHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short GRH: {len(data)} bytes")
        word0, payload_length, next_header, hop_limit = _GRH_STRUCT.unpack(
            data[:8]
        )
        if word0 >> 28 != 6:
            raise HeaderError(f"bad GRH IP version: {word0 >> 28}")
        # Direct __dict__ fill: skips the cache-invalidation __setattr__ and
        # __post_init__ revalidation — every field is width-limited by the
        # wire format itself (the same pattern as repro.net.headers).
        header = object.__new__(cls)
        header.__dict__.update(
            src_gid=data[8:24],
            dst_gid=data[24:40],
            payload_length=payload_length,
            next_header=next_header,
            hop_limit=hop_limit,
            traffic_class=(word0 >> 20) & 0xFF,
            flow_label=word0 & 0xFFFFF,
            _packed=data[: cls.LENGTH],
        )
        return header

    @property
    def byte_len(self) -> int:
        return self.LENGTH


def gid_from_ipv4(ip) -> bytes:
    """Build an IPv4-mapped GID (::ffff:a.b.c.d), as RoCEv1 NICs do."""
    return b"\x00" * 10 + b"\xff\xff" + ip.to_bytes()


@dataclass
class BthHeader(CachedPackMixin):
    """Base Transport Header (12 bytes) — present in every RoCE packet."""

    opcode: int
    dest_qp: int
    psn: int
    ack_request: bool = False
    solicited_event: bool = False
    migration_request: bool = False
    pad_count: int = 0
    partition_key: int = 0xFFFF

    LENGTH = 12

    def __post_init__(self) -> None:
        if not 0 <= self.opcode <= 0xFF:
            raise HeaderError(f"BTH opcode out of range: {self.opcode}")
        if not 0 <= self.dest_qp < (1 << 24):
            raise HeaderError(f"BTH dest_qp out of range: {self.dest_qp}")
        if not 0 <= self.psn < (1 << 24):
            raise HeaderError(f"BTH psn out of range: {self.psn}")
        if not 0 <= self.pad_count <= 3:
            raise HeaderError(f"BTH pad_count out of range: {self.pad_count}")
        if not 0 <= self.partition_key <= 0xFFFF:
            raise HeaderError(f"BTH pkey out of range: {self.partition_key}")

    def _pack(self) -> bytes:
        flags = (
            (int(self.solicited_event) << 7)
            | (int(self.migration_request) << 6)
            | (self.pad_count << 4)
            # transport header version = 0 in low nibble
        )
        word2 = self.dest_qp & 0x00FFFFFF  # high byte reserved
        word3 = ((int(self.ack_request) << 31) | self.psn) & 0xFFFFFFFF
        return _BTH_STRUCT.pack(
            self.opcode, flags, self.partition_key, word2, word3
        )

    @classmethod
    def unpack(cls, data: bytes) -> "BthHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short BTH: {len(data)} bytes")
        raw = data[: cls.LENGTH]
        opcode, flags, pkey, word2, word3 = _BTH_STRUCT.unpack(raw)
        header = object.__new__(cls)
        header.__dict__.update(
            opcode=opcode,
            dest_qp=word2 & 0x00FFFFFF,
            psn=word3 & 0x00FFFFFF,
            ack_request=bool(word3 >> 31),
            solicited_event=bool(flags >> 7 & 1),
            migration_request=bool(flags >> 6 & 1),
            pad_count=(flags >> 4) & 0x3,
            partition_key=pkey,
            _packed=raw,
        )
        return header

    @property
    def byte_len(self) -> int:
        return self.LENGTH


@dataclass
class RethHeader(CachedPackMixin):
    """RDMA Extended Transport Header (16 bytes) — WRITE and READ requests."""

    virtual_address: int
    rkey: int
    dma_length: int

    LENGTH = 16

    def __post_init__(self) -> None:
        if not 0 <= self.virtual_address < (1 << 64):
            raise HeaderError(f"RETH VA out of range: {self.virtual_address}")
        if not 0 <= self.rkey < (1 << 32):
            raise HeaderError(f"RETH rkey out of range: {self.rkey}")
        if not 0 <= self.dma_length < (1 << 32):
            raise HeaderError(f"RETH length out of range: {self.dma_length}")

    def _pack(self) -> bytes:
        return _RETH_STRUCT.pack(self.virtual_address, self.rkey, self.dma_length)

    @classmethod
    def unpack(cls, data: bytes) -> "RethHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short RETH: {len(data)} bytes")
        raw = data[: cls.LENGTH]
        va, rkey, length = _RETH_STRUCT.unpack(raw)
        header = object.__new__(cls)
        header.__dict__.update(
            virtual_address=va, rkey=rkey, dma_length=length, _packed=raw
        )
        return header

    @property
    def byte_len(self) -> int:
        return self.LENGTH


@dataclass
class AtomicEthHeader(CachedPackMixin):
    """Atomic Extended Transport Header (28 bytes) — Fetch-and-Add / CAS."""

    virtual_address: int
    rkey: int
    swap_add: int
    compare: int = 0

    LENGTH = 28

    def __post_init__(self) -> None:
        if not 0 <= self.virtual_address < (1 << 64):
            raise HeaderError(f"AtomicETH VA out of range: {self.virtual_address}")
        if not 0 <= self.rkey < (1 << 32):
            raise HeaderError(f"AtomicETH rkey out of range: {self.rkey}")
        if not 0 <= self.swap_add < (1 << 64):
            raise HeaderError(f"AtomicETH swap/add out of range: {self.swap_add}")
        if not 0 <= self.compare < (1 << 64):
            raise HeaderError(f"AtomicETH compare out of range: {self.compare}")

    def _pack(self) -> bytes:
        return _ATOMIC_ETH_STRUCT.pack(
            self.virtual_address, self.rkey, self.swap_add, self.compare
        )

    @classmethod
    def unpack(cls, data: bytes) -> "AtomicEthHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short AtomicETH: {len(data)} bytes")
        raw = data[: cls.LENGTH]
        va, rkey, swap_add, compare = _ATOMIC_ETH_STRUCT.unpack(raw)
        header = object.__new__(cls)
        header.__dict__.update(
            virtual_address=va,
            rkey=rkey,
            swap_add=swap_add,
            compare=compare,
            _packed=raw,
        )
        return header

    @property
    def byte_len(self) -> int:
        return self.LENGTH


@dataclass
class AethHeader(CachedPackMixin):
    """ACK Extended Transport Header (4 bytes) — responses and ACK/NAK."""

    syndrome: int
    msn: int = 0

    LENGTH = 4

    def __post_init__(self) -> None:
        if not 0 <= self.syndrome <= 0xFF:
            raise HeaderError(f"AETH syndrome out of range: {self.syndrome}")
        if not 0 <= self.msn < (1 << 24):
            raise HeaderError(f"AETH MSN out of range: {self.msn}")

    def _pack(self) -> bytes:
        return _U32_STRUCT.pack((self.syndrome << 24) | self.msn)

    @classmethod
    def unpack(cls, data: bytes) -> "AethHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short AETH: {len(data)} bytes")
        raw = data[: cls.LENGTH]
        (word,) = _U32_STRUCT.unpack(raw)
        header = object.__new__(cls)
        header.__dict__.update(
            syndrome=word >> 24, msn=word & 0x00FFFFFF, _packed=raw
        )
        return header

    @property
    def byte_len(self) -> int:
        return self.LENGTH


@dataclass
class AtomicAckEthHeader(CachedPackMixin):
    """Atomic ACK ETH (8 bytes): the value read before the atomic applied."""

    original_data: int

    LENGTH = 8

    def __post_init__(self) -> None:
        if not 0 <= self.original_data < (1 << 64):
            raise HeaderError(
                f"AtomicAckETH data out of range: {self.original_data}"
            )

    def _pack(self) -> bytes:
        return _U64_STRUCT.pack(self.original_data)

    @classmethod
    def unpack(cls, data: bytes) -> "AtomicAckEthHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short AtomicAckETH: {len(data)} bytes")
        raw = data[: cls.LENGTH]
        (value,) = _U64_STRUCT.unpack(raw)
        header = object.__new__(cls)
        header.__dict__.update(original_data=value, _packed=raw)
        return header

    @property
    def byte_len(self) -> int:
        return self.LENGTH


#: Memoized ICRC values by input bytes (bounded): retransmissions, mirrors,
#: and loopback verification all CRC identical byte strings.
_icrc_cache: Dict[bytes, int] = {}


@dataclass
class IcrcTrailer(CachedPackMixin):
    """Invariant CRC (4 bytes), appended after the RoCE payload.

    We compute a CRC32 over the packed RoCE headers and payload.  This is a
    simplification of the IB ICRC (which masks variant fields), but it is
    stable for our packets and lets tests detect corruption end to end.
    """

    value: int = 0

    LENGTH = 4

    def _pack(self) -> bytes:
        return _U32_STRUCT.pack(self.value & 0xFFFFFFFF)

    @classmethod
    def unpack(cls, data: bytes) -> "IcrcTrailer":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short ICRC: {len(data)} bytes")
        raw = data[: cls.LENGTH]
        (value,) = _U32_STRUCT.unpack(raw)
        trailer = object.__new__(cls)
        trailer.__dict__.update(value=value, _packed=raw)
        return trailer

    @classmethod
    def compute(cls, roce_bytes: bytes) -> "IcrcTrailer":
        """Compute the trailer over already-packed BTH..payload bytes."""
        value = _icrc_cache.get(roce_bytes)
        if value is None:
            value = zlib.crc32(roce_bytes) & 0xFFFFFFFF
            if len(_icrc_cache) >= 4096:
                _icrc_cache.clear()
            _icrc_cache[roce_bytes] = value
        return cls(value=value)

    @property
    def byte_len(self) -> int:
        return self.LENGTH


# -- structured helpers -----------------------------------------------------

#: Extension headers keyed by the opcode that carries them (after the BTH).
_EXTENSIONS_BY_OPCODE = {
    Opcode.RDMA_WRITE_ONLY: (RethHeader,),
    Opcode.RDMA_WRITE_FIRST: (RethHeader,),
    Opcode.RDMA_READ_REQUEST: (RethHeader,),
    Opcode.FETCH_ADD: (AtomicEthHeader,),
    Opcode.COMPARE_SWAP: (AtomicEthHeader,),
    Opcode.RDMA_READ_RESPONSE_ONLY: (AethHeader,),
    Opcode.RDMA_READ_RESPONSE_FIRST: (AethHeader,),
    Opcode.RDMA_READ_RESPONSE_LAST: (AethHeader,),
    Opcode.ACKNOWLEDGE: (AethHeader,),
    Opcode.ATOMIC_ACKNOWLEDGE: (AethHeader, AtomicAckEthHeader),
}

#: Same table keyed by the raw opcode int — saves an Opcode() construction
#: plus try/except per parsed packet on the hot path.
_EXTENSIONS_BY_RAW_OPCODE: Dict[int, Tuple[type, ...]] = {
    int(op): exts for op, exts in _EXTENSIONS_BY_OPCODE.items()
}


def roce_headers_for(opcode: int) -> Tuple[type, ...]:
    """Return the extension-header types that follow the BTH for *opcode*."""
    return _EXTENSIONS_BY_RAW_OPCODE.get(opcode, ())


def parse_roce(data: bytes) -> Tuple[List[object], bytes, Optional[IcrcTrailer]]:
    """Parse a UDP payload as RoCE: returns (headers, payload, icrc).

    ``headers`` starts with the :class:`BthHeader` followed by its extension
    headers; ``payload`` is whatever sits between the last extension header
    and the 4-byte ICRC trailer.
    """
    bth = BthHeader.unpack(data)
    headers: List[object] = [bth]
    offset = BthHeader.LENGTH
    for ext_type in _EXTENSIONS_BY_RAW_OPCODE.get(bth.opcode, ()):
        headers.append(ext_type.unpack(data[offset:]))
        offset += ext_type.LENGTH
    if len(data) < offset + IcrcTrailer.LENGTH:
        raise HeaderError("RoCE packet too short for ICRC trailer")
    payload = data[offset : len(data) - IcrcTrailer.LENGTH]
    icrc = IcrcTrailer.unpack(data[len(data) - IcrcTrailer.LENGTH :])
    return headers, payload, icrc


def roce_packet_overhead(opcode: int, rocev1: bool = False) -> int:
    """Bytes of RoCE protocol overhead for *opcode* per the paper's §4.

    RoCEv2: IPv4 (20) + UDP (8) + BTH (12) = 40 bytes of routing/transport
    headers, plus the opcode's extension headers (16 for WRITE/READ via
    RETH, 28 for Fetch-and-Add via AtomicETH).  RoCEv1 replaces IPv4+UDP
    with the 40-byte GRH for 52 bytes of routing/transport headers.
    The ICRC trailer (4) is excluded, matching the paper's accounting.
    """
    transport = 52 if rocev1 else 40
    extensions = sum(
        ext.LENGTH
        for ext in roce_headers_for(opcode)
        if ext in (RethHeader, AtomicEthHeader)
    )
    return transport + extensions


def find_bth(packet: Packet) -> Optional[BthHeader]:
    """Return the packet's BTH header if it carries one."""
    return packet.find(BthHeader)
