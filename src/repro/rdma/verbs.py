"""Verbs-style convenience layer over the RNIC model.

Mirrors how applications use libibverbs: register memory, create queue
pairs, exchange connection info out of band, then post one-sided
operations.  Used directly by the native host-to-host RDMA baseline and by
tests; the switch data plane uses the lower-level pieces instead (it has no
verbs library — that is the paper's point).
"""

from __future__ import annotations

from typing import Callable, Optional

from .constants import Opcode
from .qp import Completion, QueuePair, WorkRequest
from .rnic import Rnic


def connect_qps(qp_a: QueuePair, qp_b: QueuePair) -> None:
    """Wire two queue pairs together (the out-of-band connection exchange)."""
    qp_a.connect(
        dest_qpn=qp_b.qpn,
        dest_ip=qp_b.local_ip,
        dest_mac=qp_b.local_mac,
        dest_initial_psn=qp_b.next_psn,
    )
    qp_b.connect(
        dest_qpn=qp_a.qpn,
        dest_ip=qp_a.local_ip,
        dest_mac=qp_a.local_mac,
        dest_initial_psn=qp_a.next_psn,
    )


class RdmaClient:
    """A requester endpoint: one RNIC + one connected QP."""

    def __init__(self, rnic: Rnic, qp: QueuePair) -> None:
        self.rnic = rnic
        self.qp = qp

    def write(
        self,
        remote_address: int,
        rkey: int,
        data: bytes,
        callback: Optional[Callable[[Completion], None]] = None,
        context: object = None,
    ) -> WorkRequest:
        """Post an RDMA WRITE; returns the work request."""
        wr = WorkRequest(
            opcode=Opcode.RDMA_WRITE_ONLY,
            remote_address=remote_address,
            rkey=rkey,
            data=data,
            callback=callback,
            context=context,
        )
        self.rnic.post(self.qp, wr)
        return wr

    def read(
        self,
        remote_address: int,
        rkey: int,
        length: int,
        callback: Optional[Callable[[Completion], None]] = None,
        context: object = None,
    ) -> WorkRequest:
        """Post an RDMA READ; the completion carries the data."""
        wr = WorkRequest(
            opcode=Opcode.RDMA_READ_REQUEST,
            remote_address=remote_address,
            rkey=rkey,
            length=length,
            callback=callback,
            context=context,
        )
        self.rnic.post(self.qp, wr)
        return wr

    def fetch_add(
        self,
        remote_address: int,
        rkey: int,
        add_value: int,
        callback: Optional[Callable[[Completion], None]] = None,
        context: object = None,
    ) -> WorkRequest:
        """Post an atomic Fetch-and-Add of *add_value*."""
        wr = WorkRequest(
            opcode=Opcode.FETCH_ADD,
            remote_address=remote_address,
            rkey=rkey,
            length=add_value,
            callback=callback,
            context=context,
        )
        self.rnic.post(self.qp, wr)
        return wr
