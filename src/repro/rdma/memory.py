"""Server DRAM and RDMA memory regions.

Memory regions are sparse (page dict), so experiments can register the
multi-gigabyte regions the paper envisions (O(10 GB) remote packet buffers,
10^9 counters) without actually committing host RAM for untouched pages.

Access checks mirror RNIC behaviour: an operation outside the registered
range, with a stale rkey, or without the required access right must fail —
the RNIC turns that failure into a NAK.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Iterator, Optional

from .constants import ATOMIC_OPERAND_BYTES

#: Memory tiers a region can live in (DESIGN.md §13).  ``dram`` is the
#: paper's flat external memory; ``fast`` models an RDCA-style cache tier
#: on the same server (LLC / on-NIC SRAM) with its own service profile.
TIER_DRAM = "dram"
TIER_FAST = "fast"
TIERS = (TIER_FAST, TIER_DRAM)


class AccessFlags(enum.IntFlag):
    """Remote-access rights a memory region is registered with."""

    LOCAL_WRITE = 0x1
    REMOTE_WRITE = 0x2
    REMOTE_READ = 0x4
    REMOTE_ATOMIC = 0x8
    ALL_REMOTE = REMOTE_WRITE | REMOTE_READ | REMOTE_ATOMIC


class MemoryAccessError(Exception):
    """An access violated a region's bounds, rights, or alignment."""


class SparseBuffer:
    """A zero-initialised sparse byte buffer backed by fixed-size pages."""

    def __init__(self, length: int, page_size: int = 4096) -> None:
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        if page_size <= 0:
            raise ValueError(f"page size must be positive, got {page_size}")
        self.length = length
        self.page_size = page_size
        self._pages: Dict[int, bytearray] = {}

    @property
    def resident_bytes(self) -> int:
        """Bytes of actually-allocated (touched) pages."""
        return len(self._pages) * self.page_size

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self.length:
            raise MemoryAccessError(
                f"range [{offset}, {offset + size}) outside buffer of "
                f"{self.length} bytes"
            )

    def _page_spans(self, offset: int, size: int) -> Iterator[tuple]:
        """Yield (page_index, start_in_page, end_in_page) covering the range."""
        position = offset
        end = offset + size
        while position < end:
            page_index, start = divmod(position, self.page_size)
            chunk_end = min(self.page_size, start + (end - position))
            yield page_index, start, chunk_end
            position += chunk_end - start

    def read(self, offset: int, size: int) -> bytes:
        self._check_range(offset, size)
        parts = []
        for page_index, start, end in self._page_spans(offset, size):
            page = self._pages.get(page_index)
            if page is None:
                parts.append(bytes(end - start))
            else:
                parts.append(bytes(page[start:end]))
        return b"".join(parts)

    def write(self, offset: int, data: bytes) -> None:
        self._check_range(offset, len(data))
        cursor = 0
        for page_index, start, end in self._page_spans(offset, len(data)):
            page = self._pages.get(page_index)
            if page is None:
                page = bytearray(self.page_size)
                self._pages[page_index] = page
            chunk = end - start
            page[start:end] = data[cursor : cursor + chunk]
            cursor += chunk


_rkey_counter = itertools.count(0x1000)


class MemoryRegion:
    """A registered RDMA memory region: VA range + rkey + access rights."""

    def __init__(
        self,
        base_address: int,
        length: int,
        access: AccessFlags = AccessFlags.ALL_REMOTE,
        rkey: Optional[int] = None,
        page_size: int = 4096,
        tier: str = TIER_DRAM,
    ) -> None:
        if base_address < 0:
            raise ValueError(f"base address must be non-negative: {base_address}")
        if tier not in TIERS:
            raise ValueError(f"unknown memory tier {tier!r}; expected {TIERS}")
        self.base_address = base_address
        self.length = length
        self.access = access
        self.tier = tier
        self.rkey = next(_rkey_counter) if rkey is None else rkey
        self._buffer = SparseBuffer(length, page_size=page_size)
        self.valid = True
        # Operation counters, handy for asserting "zero CPU involvement"
        # experiments actually hit the region.
        self.reads = 0
        self.writes = 0
        self.atomics = 0

    @property
    def end_address(self) -> int:
        return self.base_address + self.length

    @property
    def resident_bytes(self) -> int:
        return self._buffer.resident_bytes

    def deregister(self) -> None:
        """Invalidate the region; subsequent remote access NAKs."""
        self.valid = False

    def _check(self, va: int, size: int, needed: AccessFlags) -> None:
        if not self.valid:
            raise MemoryAccessError(f"region rkey={self.rkey:#x} deregistered")
        if not (self.access & needed):
            raise MemoryAccessError(
                f"region rkey={self.rkey:#x} lacks {needed.name} access"
            )
        if va < self.base_address or va + size > self.end_address:
            raise MemoryAccessError(
                f"VA range [{va:#x}, {va + size:#x}) outside region "
                f"[{self.base_address:#x}, {self.end_address:#x})"
            )

    def read(self, va: int, size: int) -> bytes:
        """Remote READ of *size* bytes at virtual address *va*."""
        self._check(va, size, AccessFlags.REMOTE_READ)
        self.reads += 1
        return self._buffer.read(va - self.base_address, size)

    def write(self, va: int, data: bytes) -> None:
        """Remote WRITE of *data* at virtual address *va*."""
        self._check(va, len(data), AccessFlags.REMOTE_WRITE)
        self.writes += 1
        self._buffer.write(va - self.base_address, data)

    def fetch_add(self, va: int, value: int) -> int:
        """Atomic 64-bit Fetch-and-Add; returns the pre-add value."""
        self._check(va, ATOMIC_OPERAND_BYTES, AccessFlags.REMOTE_ATOMIC)
        if va % ATOMIC_OPERAND_BYTES:
            raise MemoryAccessError(f"atomic VA {va:#x} not 8-byte aligned")
        self.atomics += 1
        offset = va - self.base_address
        original = int.from_bytes(
            self._buffer.read(offset, ATOMIC_OPERAND_BYTES), "big"
        )
        updated = (original + value) % (1 << 64)
        self._buffer.write(offset, updated.to_bytes(ATOMIC_OPERAND_BYTES, "big"))
        return original

    def compare_swap(self, va: int, compare: int, swap: int) -> int:
        """Atomic 64-bit Compare-and-Swap; returns the pre-swap value."""
        self._check(va, ATOMIC_OPERAND_BYTES, AccessFlags.REMOTE_ATOMIC)
        if va % ATOMIC_OPERAND_BYTES:
            raise MemoryAccessError(f"atomic VA {va:#x} not 8-byte aligned")
        self.atomics += 1
        offset = va - self.base_address
        original = int.from_bytes(
            self._buffer.read(offset, ATOMIC_OPERAND_BYTES), "big"
        )
        if original == compare:
            self._buffer.write(offset, swap.to_bytes(ATOMIC_OPERAND_BYTES, "big"))
        return original

    def __repr__(self) -> str:
        return (
            f"<MemoryRegion rkey={self.rkey:#x} "
            f"[{self.base_address:#x}, {self.end_address:#x}) "
            f"{self.length} B>"
        )


class Dram:
    """A server's DRAM: a registry of memory regions with a capacity budget."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"DRAM capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.regions: Dict[int, MemoryRegion] = {}
        self._next_base = 0x1000_0000

    @property
    def registered_bytes(self) -> int:
        return sum(r.length for r in self.regions.values() if r.valid)

    def register(
        self,
        length: int,
        access: AccessFlags = AccessFlags.ALL_REMOTE,
        page_size: int = 4096,
        tier: str = TIER_DRAM,
    ) -> MemoryRegion:
        """Allocate and register a new region of *length* bytes."""
        if self.registered_bytes + length > self.capacity_bytes:
            raise MemoryError(
                f"cannot register {length} B: "
                f"{self.registered_bytes}/{self.capacity_bytes} B already in use"
            )
        region = MemoryRegion(
            self._next_base, length, access=access, page_size=page_size, tier=tier
        )
        # Keep VA spaces of successive regions disjoint and page-aligned.
        self._next_base += (length + page_size - 1) // page_size * page_size
        self.regions[region.rkey] = region
        return region

    def lookup(self, rkey: int) -> Optional[MemoryRegion]:
        """Find a valid region by rkey (None if unknown or deregistered)."""
        region = self.regions.get(rkey)
        if region is None or not region.valid:
            return None
        return region

    def release(self, region: MemoryRegion) -> None:
        """Deregister *region* and drop it from the registry entirely.

        After release the rkey dangles (remote access NAKs) and the DRAM
        budget is reusable, so a closed channel can be reopened with a
        fresh region of the same size on the same server.
        """
        region.deregister()
        self.regions.pop(region.rkey, None)
