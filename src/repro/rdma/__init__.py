"""RoCEv2 protocol stack: headers, memory regions, queue pairs, RNIC model."""

from .constants import (
    ATOMIC_OPERAND_BYTES,
    AethSyndrome,
    Opcode,
    PSN_MODULO,
    psn_add,
    psn_distance,
)
from .headers import (
    AethHeader,
    AtomicAckEthHeader,
    AtomicEthHeader,
    BthHeader,
    GrhHeader,
    IcrcTrailer,
    RethHeader,
    gid_from_ipv4,
    parse_roce,
    roce_packet_overhead,
)
from .memory import (
    AccessFlags,
    Dram,
    MemoryAccessError,
    MemoryRegion,
    SparseBuffer,
)
from .packets import (
    build_ack,
    convert_to_rocev1,
    build_atomic_ack,
    build_fetch_add_request,
    build_read_request,
    build_read_response,
    build_write_request,
)
from .qp import Completion, QpState, QueuePair, WorkRequest
from .rnic import Rnic, RnicConfig, RnicStats
from .verbs import RdmaClient, connect_qps

__all__ = [
    "ATOMIC_OPERAND_BYTES",
    "AccessFlags",
    "AethHeader",
    "AethSyndrome",
    "AtomicAckEthHeader",
    "AtomicEthHeader",
    "BthHeader",
    "Completion",
    "Dram",
    "GrhHeader",
    "IcrcTrailer",
    "MemoryAccessError",
    "MemoryRegion",
    "Opcode",
    "PSN_MODULO",
    "QpState",
    "QueuePair",
    "RdmaClient",
    "RethHeader",
    "Rnic",
    "RnicConfig",
    "RnicStats",
    "SparseBuffer",
    "WorkRequest",
    "build_ack",
    "build_atomic_ack",
    "build_fetch_add_request",
    "build_read_request",
    "build_read_response",
    "build_write_request",
    "convert_to_rocev1",
    "gid_from_ipv4",
    "connect_qps",
    "parse_roce",
    "psn_add",
    "psn_distance",
    "roce_packet_overhead",
]
