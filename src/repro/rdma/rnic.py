"""The RDMA NIC model.

This terminates RoCEv2 the way a commodity RNIC (the paper used Mellanox
CX-3 Pro) does, entirely without host CPU involvement:

* **Responder path** — validates the destination QP, the PSN sequence, the
  rkey and bounds; executes WRITE / READ / Fetch-and-Add against registered
  host DRAM; and generates ACK / READ-response / atomic-ACK packets.
* **Requester path** — a verbs-style ``post`` API used by the native
  host-to-host RDMA baseline (§5's comparison point) with PSN tracking,
  completion callbacks, optional go-back-N retransmission and a
  duplicate-atomic response cache.

Loss recovery (``enable_retransmit=True``) is real go-back-N, the RC
transport's scheme: one retransmission timer per QP guards the *oldest*
unacknowledged PSN; on expiry — or on a PSN-sequence NAK naming the
responder's expected PSN — every outstanding request is re-sent in PSN
order with its **original** PSN, so the responder either executes it
(the gap case) or answers it idempotently from its duplicate-handling
path (re-ACK for WRITEs, re-read for READs, replay cache for atomics).
Timeouts back off exponentially (``retransmit_timeout_ns`` doubled by
``retransmit_backoff`` per round); ``max_retries`` exhaustion completes
every outstanding WR with an error status, counts it in the registry
(``retries_exhausted``), and fires :attr:`Rnic.on_retry_exhausted` so
the cluster :class:`~repro.cluster.health.HealthMonitor` can turn silent
peers into down verdicts.  §5 only *observed* this failure class ("RDMA
requests were occasionally dropped at the NIC") without a recovery
story; the timer/NAK split here mirrors LinkGuardian's finding that
NAK-driven (loss-event-driven) recovery is what keeps goodput near the
lossless line, with timeouts only as the last resort for tail losses.
Inbound packets whose ICRC is present and wrong are dropped and counted
(``icrc_drops``) — corruption becomes loss, which this machinery then
repairs (see DESIGN.md §10).

Timing model (see DESIGN.md §5): a per-message processing cost, a DMA
engine with bounded payload bandwidth (PCIe-limited, the reason native
40 GbE RDMA tops out around 35–36 Gbps), an atomic engine with a bounded
operation rate and bounded depth (the reason the paper's switch must cap
outstanding Fetch-and-Adds), and a finite receive buffer (the reason
offered load beyond the NIC's ability is *dropped*, as §5 observes).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from ..net.addresses import Ipv4Address, MacAddress
from ..net.node import Interface
from ..net.packet import Packet
from ..obs.trace import KIND_FAULT, KIND_RETX
from ..sim.events import Event
from ..sim.simulator import Simulator
from ..sim.units import gbps, transmission_delay_ns, usec
from .constants import (
    ATOMIC_OPERAND_BYTES,
    AethSyndrome,
    Opcode,
    REQUEST_OPCODES,
    psn_distance,
)
from .headers import AethHeader, AtomicAckEthHeader, AtomicEthHeader, BthHeader, RethHeader
from .memory import Dram, MemoryAccessError
from .packets import (
    build_ack,
    build_atomic_ack,
    build_fetch_add_request,
    build_read_request,
    build_read_response,
    build_write_request,
    verify_icrc,
)
from .qp import Completion, QpState, QueuePair, WorkRequest


@dataclass
class _RetxState:
    """Per-QP go-back-N recovery state (requester side).

    One watchdog timer guards the QP's oldest unacknowledged PSN;
    ``retries`` counts consecutive fruitless rounds (reset on any
    progress) and drives the exponential backoff; ``last_nak_psn``
    deduplicates the NAK burst a single loss event produces, so one
    gap triggers one go-back-N resend, not one per trailing request.
    """

    retries: int = 0
    timer: Optional[Event] = None
    last_nak_psn: Optional[int] = None


@dataclass
class TierProfile:
    """Per-tier service overrides for regions tagged with a memory tier.

    The RDCA observation (PAPERS.md): serving the hot last mile from the
    server's cache hierarchy instead of DRAM removes the PCIe/DRAM round
    trip from READs and lets the atomic engine cycle much faster.  A
    region registered with ``tier="fast"`` is served with this profile;
    fields left ``None`` fall back to the NIC-wide :class:`RnicConfig`
    values, so a profile can override latency without touching rates.
    """

    #: Replaces ``dma_read_latency_ns`` for READs against this tier.
    read_latency_ns: Optional[float] = None
    #: Replaces ``atomic_rate_ops`` for Fetch-and-Adds against this tier.
    atomic_rate_ops: Optional[float] = None


@dataclass
class RnicConfig:
    """Timing and capacity parameters of the modelled RNIC."""

    #: Fixed per-message processing latency (parsing, QP lookup, PCIe doorbells).
    rx_processing_ns: float = 300.0
    #: Extra latency for a READ's DMA fetch from host DRAM over PCIe.
    dma_read_latency_ns: float = 500.0
    #: Inbound (WRITE) payload DMA bandwidth cap.  PCIe-posted writes on
    #: CX-3-class NICs sustain less than line rate — this is why the paper
    #: measures 34.1 Gbps lossless stores against a 40 GbE link.
    dma_write_bandwidth_bps: float = gbps(35.6)
    #: Outbound (READ-response) payload DMA bandwidth cap.  PCIe reads
    #: stream faster than posted writes, leaving the 40 GbE link as the
    #: binding constraint for loads (§5's 37.4 Gbps forward rate).
    dma_read_bandwidth_bps: float = gbps(43.5)
    #: Fixed DMA engine cost per message (descriptor fetch, completion);
    #: dominates small messages and sets the sustained-WRITE knee.
    dma_per_message_ns: float = 16.0
    #: Atomic (Fetch-and-Add) execution rate, operations per second
    #: (CX-3-class NICs sustain 2–3 Mops; 2.4 Mops reproduces the ~2.1 Gbps
    #: Fetch-and-Add request stream of Fig. 3b).
    atomic_rate_ops: float = 2.4e6
    #: Max atomics queued in the NIC's atomic engine before drops.
    max_outstanding_atomics: int = 16
    #: On-NIC receive buffer; offered load beyond service rate overflows it.
    rx_buffer_bytes: int = 512 * 1024
    #: Requester: max in-flight work requests before local queueing.
    max_outstanding_requests: int = 128
    #: Requester: base retransmission timeout for the per-QP go-back-N
    #: watchdog (used only when ``enable_retransmit``); backed off
    #: exponentially by ``retransmit_backoff`` per fruitless round.
    retransmit_timeout_ns: float = usec(500)
    #: Requester: recover lost requests/responses with go-back-N instead
    #: of surfacing failure completions on the first NAK or timeout.
    enable_retransmit: bool = False
    #: Consecutive timeout rounds without progress before the requester
    #: gives up: every outstanding WR completes with an error status and
    #: :attr:`Rnic.on_retry_exhausted` fires (health escalation).
    max_retries: int = 3
    #: Timeout multiplier per retry round (RC's exponential backoff —
    #: keeps a blacked-out peer from being hammered at the base RTO).
    retransmit_backoff: float = 2.0
    #: Per-tier service overrides, keyed by region tier name (``"fast"`` /
    #: ``"dram"``).  ``None`` means every region is served with the
    #: NIC-wide parameters above (the pre-tiering behaviour, bit-exact).
    tier_profiles: Optional[Dict[str, TierProfile]] = None


@dataclass
class RnicStats:
    """Counters exposed for experiments and assertions."""

    requests_received: int = 0
    writes_executed: int = 0
    reads_executed: int = 0
    atomics_executed: int = 0
    responses_sent: int = 0
    acks_sent: int = 0
    naks_sent: int = 0
    duplicates: int = 0
    rx_overflow_drops: int = 0
    atomic_overflow_drops: int = 0
    unknown_qp_drops: int = 0
    access_errors: int = 0
    sequence_errors: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    retransmissions: int = 0
    retries_exhausted: int = 0
    icrc_drops: int = 0


class Rnic:
    """An RDMA-capable NIC bound to one interface and one DRAM."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        interface: Interface,
        dram: Dram,
        config: Optional[RnicConfig] = None,
    ) -> None:
        # Per-instance, not class-level: QPNs are a per-NIC namespace on
        # real hardware, and a process-global counter would make QP
        # numbering (hence wire traces) depend on unrelated earlier runs.
        self._qpn_counter = itertools.count(0x11)
        self.sim = sim
        self.name = name
        self.interface = interface
        self.dram = dram
        self.config = config if config is not None else RnicConfig()
        obs = sim.obs
        #: This RNIC's scope in the simulation's metric registry
        #: ("rnic[<name>]"); per-QP gauges live under its qp[<qpn>] children.
        self.metrics = obs.registry.unique_scope(f"rnic[{name}]")
        self._trace = obs.trace
        self._trace_node = f"rnic:{name}"
        self._m_requests = self.metrics.counter("requests_received")
        self._m_writes = self.metrics.counter("writes_executed")
        self._m_reads = self.metrics.counter("reads_executed")
        self._m_atomics = self.metrics.counter("atomics_executed")
        self._m_responses = self.metrics.counter("responses_sent")
        self._m_acks = self.metrics.counter("acks_sent")
        self._m_naks = self.metrics.counter("naks_sent")
        self._m_duplicates = self.metrics.counter("duplicates")
        self._m_rx_overflow = self.metrics.counter("rx_overflow_drops")
        self._m_atomic_overflow = self.metrics.counter("atomic_overflow_drops")
        self._m_unknown_qp = self.metrics.counter("unknown_qp_drops")
        self._m_access_errors = self.metrics.counter("access_errors")
        self._m_sequence_errors = self.metrics.counter("sequence_errors")
        self._m_bytes_written = self.metrics.counter("bytes_written")
        self._m_bytes_read = self.metrics.counter("bytes_read")
        self._m_retransmissions = self.metrics.counter("retransmissions")
        self._m_retries_exhausted = self.metrics.counter("retries_exhausted")
        self._m_icrc_drops = self.metrics.counter("icrc_drops")
        #: Fired with the QueuePair when go-back-N gives up on it; the
        #: cluster HealthMonitor subscribes via ``watch_requester`` to
        #: turn requester-side silence into member down verdicts.
        self.on_retry_exhausted: Optional[Callable[[QueuePair], None]] = None
        self.qps: Dict[int, QueuePair] = {}
        # Responder pipeline.
        self._rx_queue: Deque[Packet] = deque()
        self._rx_backlog_bytes = 0
        self._rx_busy = False
        self._dma_free_at = 0.0
        self._atomic_free_at = 0.0
        self._atomic_inflight = 0
        # Per-QP replay cache of recent atomic responses (IB keeps one so a
        # retried Fetch-and-Add is not applied twice).
        self._atomic_replay: Dict[int, OrderedDict] = {}
        # Per-QP response-ordering floor (responses leave in request order).
        self._resp_floor: Dict[int, float] = {}
        # Requester state.
        self._outstanding: "OrderedDict[tuple, WorkRequest]" = OrderedDict()
        self._pending: Deque[WorkRequest] = deque()
        self._retx: Dict[int, _RetxState] = {}

    @property
    def stats(self) -> RnicStats:
        """Legacy stats shim: a snapshot of this RNIC's metrics."""
        return RnicStats(
            requests_received=self._m_requests.value,
            writes_executed=self._m_writes.value,
            reads_executed=self._m_reads.value,
            atomics_executed=self._m_atomics.value,
            responses_sent=self._m_responses.value,
            acks_sent=self._m_acks.value,
            naks_sent=self._m_naks.value,
            duplicates=self._m_duplicates.value,
            rx_overflow_drops=self._m_rx_overflow.value,
            atomic_overflow_drops=self._m_atomic_overflow.value,
            unknown_qp_drops=self._m_unknown_qp.value,
            access_errors=self._m_access_errors.value,
            sequence_errors=self._m_sequence_errors.value,
            bytes_written=self._m_bytes_written.value,
            bytes_read=self._m_bytes_read.value,
            retransmissions=self._m_retransmissions.value,
            retries_exhausted=self._m_retries_exhausted.value,
            icrc_drops=self._m_icrc_drops.value,
        )

    # ------------------------------------------------------------------ setup

    @property
    def ip(self) -> Ipv4Address:
        if self.interface.ip is None:
            raise RuntimeError(f"{self.name}: interface has no IP address")
        return self.interface.ip

    @property
    def mac(self) -> MacAddress:
        return self.interface.mac

    def create_qp(self, qpn: Optional[int] = None, initial_psn: int = 0) -> QueuePair:
        """Create a queue pair bound to this RNIC's interface identity."""
        if qpn is None:
            qpn = next(self._qpn_counter)
        if qpn in self.qps:
            raise ValueError(f"{self.name}: QPN {qpn} already exists")
        qp = QueuePair(qpn, self.ip, self.mac, initial_psn=initial_psn)
        self.qps[qpn] = qp
        self._atomic_replay[qpn] = OrderedDict()
        # Function gauges sample the QP's live counters at snapshot time;
        # the QP hot path stays a plain attribute increment.
        qp_scope = self.metrics.child(f"qp[{qpn}]")
        qp_scope.gauge(
            "requests_received", fn=lambda qp=qp: qp.requests_received
        )
        qp_scope.gauge("responses_sent", fn=lambda qp=qp: qp.responses_sent)
        qp_scope.gauge("naks_sent", fn=lambda qp=qp: qp.naks_sent)
        return qp

    def destroy_qp(self, qp: QueuePair) -> None:
        """Tear down *qp*: no RNIC state survives (verbs ``ibv_destroy_qp``).

        Late requests addressed to the destroyed QPN are dropped as
        unknown-QP, exactly what channel close→reopen needs — a reopened
        channel gets a fresh QPN and must never be answered from stale
        responder state (ePSN, atomic replay cache, response floor).
        """
        if self.qps.get(qp.qpn) is not qp:
            raise ValueError(f"{self.name}: QP {qp.qpn} is not mine")
        qp.to_error()
        del self.qps[qp.qpn]
        self._atomic_replay.pop(qp.qpn, None)
        self._resp_floor.pop(qp.qpn, None)
        retx = self._retx.pop(qp.qpn, None)
        if retx is not None and retx.timer is not None:
            retx.timer.cancel()
        self.metrics.registry.remove_scope(
            f"{self.metrics.name}.qp[{qp.qpn}]"
        )

    # ----------------------------------------------------------- packet entry

    def handle_packet(self, packet: Packet) -> None:
        """Entry point: the owning host delivers RoCE packets here.

        Packets carrying a computed ICRC are verified first; a mismatch
        means in-flight corruption, and the NIC drops silently (real
        RNICs do — no NAK, since nothing in the damaged packet can be
        trusted).  Recovery is the requester's go-back-N timeout.
        """
        bth = packet.find(BthHeader)
        if bth is None:
            return
        if not verify_icrc(packet):
            self._m_icrc_drops.inc()
            if self._trace is not None:
                self._trace.emit(
                    self.sim.now,
                    self._trace_node,
                    bth.dest_qp,
                    KIND_FAULT,
                    psn=bth.psn,
                    wire_bytes=packet.wire_len,
                    channel="icrc",
                )
            return
        if bth.opcode in REQUEST_OPCODES:
            self._accept_request(packet, bth)
        else:
            self._handle_response(packet, bth)

    # ---------------------------------------------------------- responder path

    def _accept_request(self, packet: Packet, bth: BthHeader) -> None:
        self._m_requests.inc()
        size = packet.buffer_len
        if self._rx_backlog_bytes + size > self.config.rx_buffer_bytes:
            self._m_rx_overflow.inc()
            return
        self._rx_queue.append(packet)
        self._rx_backlog_bytes += size
        if not self._rx_busy:
            self._serve_next()

    def _serve_next(self) -> None:
        if not self._rx_queue:
            self._rx_busy = False
            return
        self._rx_busy = True
        packet = self._rx_queue.popleft()
        self.sim.post(
            self.config.rx_processing_ns, self._process_request, packet
        )

    def _release_buffer(self, packet: Packet, at_ns: Optional[float] = None) -> None:
        """Free the packet's receive-buffer bytes, now or at *at_ns*.

        Buffer space is held until the operation's DMA completes — this is
        what makes sustained overload overflow the NIC, as §5 observes
        ("RDMA requests were occasionally dropped at the NIC").
        """
        if at_ns is None or at_ns <= self.sim.now:
            self._rx_backlog_bytes -= packet.buffer_len
        else:
            self.sim.post(
                at_ns - self.sim.now, self._release_buffer, packet
            )

    def _process_request(self, packet: Packet) -> None:
        # Pipelined: pull the next message in as soon as this one clears
        # header processing (the DMA/atomic engines serialize behind it).
        self._serve_next()
        bth = packet.require(BthHeader)
        qp = self.qps.get(bth.dest_qp)
        if qp is None or qp.state not in (QpState.RTR, QpState.RTS):
            self._m_unknown_qp.inc()
            self._release_buffer(packet)
            return
        qp.requests_received += 1
        distance = psn_distance(qp.expected_psn, bth.psn)
        if distance == 0:
            self._execute(packet, bth, qp)
        elif distance < (1 << 23):
            # Future PSN: at least one request was lost.  NAK with the
            # expected PSN so the requester can resynchronize.
            self._m_sequence_errors.inc()
            self._release_buffer(packet)
            self._send_nak(
                packet,
                qp,
                AethSyndrome.NAK_PSN_SEQUENCE_ERROR,
                psn_override=qp.expected_psn,
            )
        else:
            # Past PSN: a duplicate (requester retransmission).
            self._m_duplicates.inc()
            self._release_buffer(packet)
            self._replay(packet, bth, qp)

    def _execute(self, packet: Packet, bth: BthHeader, qp: QueuePair) -> None:
        opcode = Opcode(bth.opcode)
        try:
            if opcode == Opcode.RDMA_WRITE_ONLY:
                self._execute_write(packet, bth, qp)
            elif opcode == Opcode.RDMA_READ_REQUEST:
                self._execute_read(packet, bth, qp)
            elif opcode == Opcode.FETCH_ADD:
                self._execute_fetch_add(packet, bth, qp)
            else:
                self._m_naks.inc()
                self._release_buffer(packet)
                self._send_nak(packet, qp, AethSyndrome.NAK_INVALID_REQUEST)
        except MemoryAccessError:
            self._m_access_errors.inc()
            qp.advance_expected()
            self._release_buffer(packet)
            self._send_nak(packet, qp, AethSyndrome.NAK_REMOTE_ACCESS_ERROR)

    def _region(self, rkey: int):
        region = self.dram.lookup(rkey)
        if region is None:
            raise MemoryAccessError(f"unknown rkey {rkey:#x}")
        return region

    def _read_latency_ns(self, region) -> float:
        """The READ fetch latency for *region*'s tier (DESIGN.md §13)."""
        profiles = self.config.tier_profiles
        if profiles is not None:
            profile = profiles.get(region.tier)
            if profile is not None and profile.read_latency_ns is not None:
                return profile.read_latency_ns
        return self.config.dma_read_latency_ns

    def _atomic_rate_ops(self, region) -> float:
        """The Fetch-and-Add service rate for *region*'s tier."""
        profiles = self.config.tier_profiles
        if profiles is not None:
            profile = profiles.get(region.tier)
            if profile is not None and profile.atomic_rate_ops is not None:
                return profile.atomic_rate_ops
        return self.config.atomic_rate_ops

    def _execute_write(self, packet: Packet, bth: BthHeader, qp: QueuePair) -> None:
        reth = packet.require(RethHeader)
        region = self._region(reth.rkey)
        data = packet.payload[: reth.dma_length]
        region.write(reth.virtual_address, data)
        self._m_writes.inc()
        self._m_bytes_written.inc(len(data))
        qp.advance_expected()
        finish = self._reserve_dma(
            len(data), self.config.dma_write_bandwidth_bps
        )
        self._release_buffer(packet, at_ns=finish)
        if bth.ack_request:
            response = build_ack(packet, qp)
            self._send_response_at(finish, response, qp)

    def _execute_read(self, packet: Packet, bth: BthHeader, qp: QueuePair) -> None:
        reth = packet.require(RethHeader)
        region = self._region(reth.rkey)
        data = region.read(reth.virtual_address, reth.dma_length)
        self._m_reads.inc()
        self._m_bytes_read.inc(len(data))
        qp.advance_expected()
        finish = self._reserve_dma(
            len(data),
            self.config.dma_read_bandwidth_bps,
            extra_ns=self._read_latency_ns(region),
        )
        self._release_buffer(packet, at_ns=finish)
        response = build_read_response(packet, qp, data)
        self._send_response_at(finish, response, qp)

    def _execute_fetch_add(self, packet: Packet, bth: BthHeader, qp: QueuePair) -> None:
        if self._atomic_inflight >= self.config.max_outstanding_atomics:
            # The atomic engine is saturated; a real NIC drops or stalls the
            # wire.  The paper's switch-side primitive exists to avoid this.
            self._m_atomic_overflow.inc()
            self._release_buffer(packet)
            return
        atomic = packet.require(AtomicEthHeader)
        region = self._region(atomic.rkey)  # raises → NAK before queueing
        # The memory effect applies now, in request order (RC semantics);
        # the bounded atomic *engine* only determines when the response can
        # leave and when the request's buffer is retired.
        original = region.fetch_add(atomic.virtual_address, atomic.swap_add)
        self._m_atomics.inc()
        qp.advance_expected()
        cache = self._atomic_replay[qp.qpn]
        cache[bth.psn] = original
        while len(cache) > self.config.max_outstanding_atomics:
            cache.popitem(last=False)
        self._atomic_inflight += 1
        start = max(self.sim.now, self._atomic_free_at)
        service_ns = 1e9 / self._atomic_rate_ops(region)
        finish = start + service_ns
        self._atomic_free_at = finish
        self.sim.post(finish - self.sim.now, self._retire_atomic, packet)
        response = build_atomic_ack(packet, qp, original)
        self._send_response_at(finish, response, qp)

    def _retire_atomic(self, packet: Packet) -> None:
        self._atomic_inflight -= 1
        self._release_buffer(packet)

    def _replay(self, packet: Packet, bth: BthHeader, qp: QueuePair) -> None:
        """Serve a duplicate request idempotently (requester retried)."""
        opcode = Opcode(bth.opcode)
        if opcode == Opcode.RDMA_READ_REQUEST:
            # Reads are safe to re-execute.
            reth = packet.require(RethHeader)
            try:
                region = self._region(reth.rkey)
                data = region.read(reth.virtual_address, reth.dma_length)
            except MemoryAccessError:
                self._send_nak(packet, qp, AethSyndrome.NAK_REMOTE_ACCESS_ERROR)
                return
            finish = self._reserve_dma(
                len(data),
                self.config.dma_read_bandwidth_bps,
                extra_ns=self._read_latency_ns(region),
            )
            self._send_response_at(finish, build_read_response(packet, qp, data), qp)
        elif opcode == Opcode.FETCH_ADD:
            cached = self._atomic_replay[qp.qpn].get(bth.psn)
            if cached is not None:
                self._send_response_at(
                    self.sim.now, build_atomic_ack(packet, qp, cached), qp
                )
            # Not in the replay cache: silently drop; the requester errors out.
        else:
            # Duplicate WRITE: already applied; just re-ACK.
            if bth.ack_request:
                self._send_response_at(self.sim.now, build_ack(packet, qp), qp)

    def _reserve_dma(
        self, payload_bytes: int, bandwidth_bps: float, extra_ns: float = 0.0
    ) -> float:
        """Reserve the DMA engine for a payload; returns the finish time.

        The engine serializes per-message setup plus byte movement;
        ``extra_ns`` (e.g. the PCIe read round trip) is pure latency that
        pipelines across messages, so it is added *after* the engine is
        released — otherwise READ throughput would be latency-bound.
        """
        start = max(self.sim.now, self._dma_free_at)
        busy = self.config.dma_per_message_ns + transmission_delay_ns(
            payload_bytes, bandwidth_bps
        )
        self._dma_free_at = start + busy
        return start + busy + extra_ns

    def _send_response_at(self, when_ns: float, response: Packet, qp: QueuePair) -> None:
        """Emit *response* no earlier than ``when_ns``, in request order.

        RC responders answer strictly in request order per QP; without the
        ordering floor a WRITE's ACK could overtake a slower READ response
        or atomic ACK, and the requester's cumulative-ACK handling would
        complete the wrong work requests.  Requests are processed serially,
        so calls arrive here in request order; the floor makes the emission
        times non-decreasing and same-time events fire FIFO.
        """
        qp.responses_sent += 1
        self._m_responses.inc()
        bth = response.require(BthHeader)
        if bth.opcode == Opcode.ACKNOWLEDGE:
            self._m_acks.inc()
        when_ns = max(when_ns, self.sim.now, self._resp_floor.get(qp.qpn, 0.0))
        self._resp_floor[qp.qpn] = when_ns
        self.sim.post(when_ns - self.sim.now, self.interface.send, response)

    def _send_nak(
        self,
        packet: Packet,
        qp: QueuePair,
        syndrome: int,
        psn_override: Optional[int] = None,
    ) -> None:
        self._m_naks.inc()
        qp.naks_sent += 1
        if self._trace is not None:
            self._trace.emit(
                self.sim.now,
                self._trace_node,
                qp.qpn,
                "NAK",
                psn=psn_override
                if psn_override is not None
                else packet.require(BthHeader).psn,
                syndrome=syndrome,
            )
        self._send_response_at(
            self.sim.now,
            build_ack(packet, qp, syndrome=syndrome, psn_override=psn_override),
            qp,
        )

    # --------------------------------------------------------- requester path

    def post(self, qp: QueuePair, wr: WorkRequest) -> None:
        """Post a one-sided work request on *qp* (verbs ``ibv_post_send``)."""
        if not qp.is_connected:
            raise RuntimeError(f"QP {qp.qpn} is not connected")
        wr.post_time_ns = self.sim.now
        if len(self._outstanding) >= self.config.max_outstanding_requests:
            self._pending.append((qp, wr))
            return
        self._transmit(qp, wr)

    def _transmit(self, qp: QueuePair, wr: WorkRequest) -> None:
        wr.psn = qp.allocate_psn()
        packet = self._build_request(qp, wr)
        self._outstanding[(qp.qpn, wr.psn)] = wr
        self.interface.send(packet)
        if self.config.enable_retransmit:
            self._arm_retx(qp)

    def _build_request(self, qp: QueuePair, wr: WorkRequest) -> Packet:
        if wr.opcode == Opcode.RDMA_WRITE_ONLY:
            return build_write_request(
                qp, wr.remote_address, wr.rkey, wr.data, psn=wr.psn
            )
        if wr.opcode == Opcode.RDMA_READ_REQUEST:
            return build_read_request(
                qp, wr.remote_address, wr.rkey, wr.length, psn=wr.psn
            )
        if wr.opcode == Opcode.FETCH_ADD:
            return build_fetch_add_request(
                qp, wr.remote_address, wr.rkey, wr.length, psn=wr.psn
            )
        raise ValueError(f"unsupported requester opcode: {wr.opcode}")

    # ---- go-back-N recovery (DESIGN.md §10's WAITING/RECOVERING machine)

    def _qp_outstanding(self, qp: QueuePair) -> list:
        """This QP's in-flight WRs in transmit (= PSN) order."""
        return [
            wr for (qpn, _psn), wr in self._outstanding.items() if qpn == qp.qpn
        ]

    def _arm_retx(self, qp: QueuePair, rearm: bool = False) -> None:
        """Start (or with *rearm* restart) the QP's recovery watchdog.

        The timeout guards the oldest unacknowledged PSN and backs off
        exponentially with the consecutive-fruitless-round count.
        """
        state = self._retx.setdefault(qp.qpn, _RetxState())
        if state.timer is not None:
            if not rearm:
                return
            state.timer.cancel()
        timeout = self.config.retransmit_timeout_ns * (
            self.config.retransmit_backoff ** state.retries
        )
        state.timer = self.sim.schedule(timeout, self._retx_timeout, qp)

    def _retx_timeout(self, qp: QueuePair) -> None:
        state = self._retx.get(qp.qpn)
        if state is None:
            return
        state.timer = None
        if not any(key[0] == qp.qpn for key in self._outstanding):
            state.retries = 0
            return
        if state.retries >= self.config.max_retries:
            self._exhaust_retries(qp, state)
            return
        state.retries += 1
        self._retransmit_window(qp)
        self._arm_retx(qp, rearm=True)

    def _retransmit_window(self, qp: QueuePair) -> None:
        """Go-back-N: re-send every outstanding request, original PSNs.

        The responder executes the request that fills its PSN gap and
        absorbs the rest through its duplicate path (re-ACK / re-read /
        atomic replay cache), so over-retransmission costs bandwidth but
        never correctness.
        """
        for wr in self._qp_outstanding(qp):
            self._m_retransmissions.inc()
            packet = self._build_request(qp, wr)
            if self._trace is not None:
                self._trace.emit(
                    self.sim.now,
                    self._trace_node,
                    qp.qpn,
                    KIND_RETX,
                    psn=wr.psn,
                    wire_bytes=packet.wire_len,
                )
            self.interface.send(packet)

    def _exhaust_retries(self, qp: QueuePair, state: _RetxState) -> None:
        """Give up on the QP: error-complete all in-flight work, escalate.

        Every outstanding WR completes with ``success=False`` and is
        counted under ``retries_exhausted`` — callers always get a
        terminal verdict instead of a silently dropped completion — and
        ``on_retry_exhausted`` hands the evidence to the health layer.
        """
        state.retries = 0
        state.last_nak_psn = None
        keys = [key for key in self._outstanding if key[0] == qp.qpn]
        for key in keys:
            wr = self._outstanding.pop(key)
            self._m_retries_exhausted.inc()
            self._complete(
                wr,
                Completion(
                    wr.wr_id, wr.opcode, success=False,
                    completion_time_ns=self.sim.now, context=wr.context,
                ),
            )
        if self.on_retry_exhausted is not None:
            self.on_retry_exhausted(qp)

    def _note_progress(self, qp: QueuePair) -> None:
        """The responder spoke and work completed: reset recovery state."""
        state = self._retx.get(qp.qpn)
        if state is None:
            return
        state.retries = 0
        state.last_nak_psn = None
        if state.timer is not None:
            state.timer.cancel()
            state.timer = None
        if any(key[0] == qp.qpn for key in self._outstanding):
            self._arm_retx(qp)

    def _handle_response(self, packet: Packet, bth: BthHeader) -> None:
        opcode = Opcode(bth.opcode)
        # Responses address the requester QP; find which local QP they belong
        # to by QPN.
        qp = self.qps.get(bth.dest_qp)
        if qp is None:
            self._m_unknown_qp.inc()
            return
        aeth = packet.find(AethHeader)
        if aeth is not None and AethSyndrome.is_nak(aeth.syndrome):
            if aeth.syndrome == AethSyndrome.NAK_PSN_SEQUENCE_ERROR:
                if self.config.enable_retransmit:
                    # The NAK names the responder's expected PSN — recover
                    # immediately with go-back-N instead of waiting out the
                    # timer (the NAK-driven fast path; LinkGuardian's
                    # observation that loss-event-driven recovery, not
                    # timeouts, preserves goodput).  A single gap produces
                    # a NAK per trailing request; resend once per distinct
                    # expected PSN and let the watchdog cover a lost resend.
                    state = self._retx.setdefault(qp.qpn, _RetxState())
                    if state.last_nak_psn != bth.psn:
                        state.last_nak_psn = bth.psn
                        state.retries = 0
                        self._retransmit_window(qp)
                        self._arm_retx(qp, rearm=True)
                    return
                # The NAK carries the responder's expected PSN; everything
                # from there on was rejected (we fail rather than replay —
                # callers that want recovery enable retransmission).
                rejected = [
                    key
                    for key in self._outstanding
                    if key[0] == qp.qpn
                    and psn_distance(bth.psn, key[1]) < (1 << 23)
                ]
                for key in rejected:
                    wr = self._outstanding.pop(key)
                    self._complete(
                        wr,
                        Completion(
                            wr.wr_id, wr.opcode, success=False,
                            syndrome=aeth.syndrome,
                            completion_time_ns=self.sim.now,
                            context=wr.context,
                        ),
                    )
            else:
                self._complete_psn(
                    qp, bth.psn, success=False, syndrome=aeth.syndrome
                )
                self._note_progress(qp)
            return
        if opcode == Opcode.RDMA_READ_RESPONSE_ONLY:
            self._complete_psn(qp, bth.psn, data=packet.payload)
            self._note_progress(qp)
        elif opcode == Opcode.ATOMIC_ACKNOWLEDGE:
            atomic_ack = packet.require(AtomicAckEthHeader)
            self._complete_psn(
                qp, bth.psn, original_value=atomic_ack.original_data
            )
            self._note_progress(qp)
        elif opcode == Opcode.ACKNOWLEDGE:
            # Coalesced ACK: completes every outstanding WR up to this PSN.
            acked = [
                key
                for key in self._outstanding
                if key[0] == qp.qpn
                and psn_distance(key[1], bth.psn) < (1 << 23)
            ]
            for key in acked:
                wr = self._outstanding.pop(key)
                self._complete(
                    wr,
                    Completion(
                        wr.wr_id, wr.opcode, success=True,
                        completion_time_ns=self.sim.now, context=wr.context,
                    ),
                )
            self._note_progress(qp)

    def _complete_psn(
        self,
        qp: QueuePair,
        psn: int,
        success: bool = True,
        data: bytes = b"",
        original_value: int = 0,
        syndrome: Optional[int] = None,
    ) -> None:
        wr = self._outstanding.pop((qp.qpn, psn), None)
        if wr is None:
            return
        self._complete(
            wr,
            Completion(
                wr.wr_id,
                wr.opcode,
                success=success,
                data=data,
                original_value=original_value,
                syndrome=syndrome,
                completion_time_ns=self.sim.now,
                context=wr.context,
            ),
        )

    def _complete(self, wr: WorkRequest, completion: Completion) -> None:
        if self._pending and len(self._outstanding) < self.config.max_outstanding_requests:
            next_qp, next_wr = self._pending.popleft()
            self._transmit(next_qp, next_wr)
        if wr.callback is not None:
            wr.callback(completion)

    @property
    def outstanding_requests(self) -> int:
        return len(self._outstanding)

    def __repr__(self) -> str:
        return f"<Rnic {self.name} qps={len(self.qps)}>"
