"""Figure 3a: end-to-end latency overhead of the lookup table primitive.

Paper setup (§5): a P4 program fetches an action entry from the remote
table for *every* incoming packet, applies it (rewrite the IPv4 DSCP
field), and forwards to the destination port.  NPtcp measures median
end-to-end latency for packet sizes 64 B – 1 KB against a plain L2-switch
baseline.  Result: the primitive "only adds 1-2 µs latency".

The remote fetch happens per packet (no SRAM caching), matching the
prototype: ``cache_entries=0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.reporting import format_table
from ..api import (
    ACTION_SET_DSCP,
    FiveTuple,
    LookupTableConfig,
    RemoteAction,
    RemoteLookupTable,
    build_testbed,
)
from ..apps.programs import RemoteLookupProgram, StaticL2Program
from ..workloads.netpipe import PROBE_PORT, PingPong

PACKET_SIZES = (64, 128, 256, 512, 1024)


@dataclass
class Fig3aRow:
    """One x-axis point of Figure 3a."""

    packet_size: int
    baseline_us: float
    lookup_us: float

    @property
    def delta_us(self) -> float:
        return self.lookup_us - self.baseline_us


def _run_baseline(packet_size: int, probes: int) -> float:
    tb = build_testbed(n_hosts=2, with_memory_server=False)
    program = StaticL2Program()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    pingpong = PingPong(
        tb.sim, tb.hosts[0], tb.hosts[1], packet_size=packet_size, probes=probes
    )
    pingpong.start()
    tb.sim.run()
    return pingpong.median_oneway_ns() / 1000.0


def _run_lookup(packet_size: int, probes: int) -> float:
    tb = build_testbed(n_hosts=2)
    program = RemoteLookupProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    config = LookupTableConfig(entries=1 << 12, cache_entries=0)
    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, config.entries * config.entry_bytes
    )
    table = RemoteLookupTable(tb.switch, channel, config=config)
    program.use_lookup_table(table)
    # Install the DSCP-rewriting action for both directions of the probe
    # flow (the reply path fetches too — every packet does).
    client, server = tb.hosts
    forward = FiveTuple(
        src_ip=client.eth.ip.value,
        dst_ip=server.eth.ip.value,
        protocol=17,
        src_port=PROBE_PORT + 1,
        dst_port=PROBE_PORT,
    )
    reverse = FiveTuple(
        src_ip=server.eth.ip.value,
        dst_ip=client.eth.ip.value,
        protocol=17,
        src_port=PROBE_PORT,
        dst_port=PROBE_PORT + 1,
    )
    table.install(forward, RemoteAction(ACTION_SET_DSCP, 46))
    table.install(reverse, RemoteAction(ACTION_SET_DSCP, 46))
    pingpong = PingPong(
        tb.sim, client, server, packet_size=packet_size, probes=probes
    )
    pingpong.start()
    tb.sim.run()
    if table.stats.remote_lookups == 0:
        raise RuntimeError("fig3a: no remote lookups happened; setup broken")
    return pingpong.median_oneway_ns() / 1000.0


def run_fig3a(
    packet_sizes: Sequence[int] = PACKET_SIZES, probes: int = 30
) -> List[Fig3aRow]:
    """Regenerate Figure 3a's two series; returns one row per packet size."""
    rows = []
    for size in packet_sizes:
        rows.append(
            Fig3aRow(
                packet_size=size,
                baseline_us=_run_baseline(size, probes),
                lookup_us=_run_lookup(size, probes),
            )
        )
    return rows


def format_fig3a(rows: Sequence[Fig3aRow]) -> str:
    return format_table(
        ["pkt size (B)", "baseline (us)", "lookup primitive (us)", "delta (us)"],
        [
            [r.packet_size, f"{r.baseline_us:.2f}", f"{r.lookup_us:.2f}", f"{r.delta_us:.2f}"]
            for r in rows
        ],
        title="Figure 3a — median end-to-end latency (lookup table primitive)",
    )
