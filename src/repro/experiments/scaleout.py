"""Scale-out: pool many memory servers behind one switch (§7 / cluster).

Two claims from the cluster subsystem, measured end to end:

* **Sharded lookup throughput scales with the pool.**  The per-server
  bottleneck for lookup misses is the RNIC's message pipeline (two
  requests per miss through ~300 ns of header processing), far below the
  40 GbE link.  Sharding misses over N servers multiplies that ceiling by
  N.  Following §5's methodology the sweep drives every configuration at
  its maximum *lossless* rate (just under the busiest shard's RNIC
  capacity) and reports achieved miss throughput — same per-server region
  size everywhere, so a single server holds the same table as each pool
  member.

* **Replicated counters survive a server death.**  With K=2 replication
  every counter update lands on two ring-chosen servers.  Killing one
  server mid-run loses nothing: the health monitor turns the victim's
  retransmission timeouts into a down verdict, updates continue on the
  survivors, and reconciliation copies authoritative values onto the
  members that took over the dead arcs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..analysis.reporting import format_table
from ..apps.programs import CountingProgram, RemoteLookupProgram
from ..cluster import MemoryPool, ReplicatedStateStore, ShardedLookupTable
from ..core.lookup_table import (
    ACTION_SET_DSCP,
    LookupTableConfig,
    RemoteAction,
)
from ..core.state_store import StateStoreConfig
from ..net.headers import UdpHeader
from ..switches.hashing import FiveTuple
from ..switches.traffic_manager import TrafficManagerConfig
from ..workloads.factory import udp_between
from ..workloads.perftest import RawEthernetBw
from .topology import build_testbed

#: Ring salt for every scale-out run (placement, hence the load split, is
#: deterministic and reproducible — satellite of the cluster subsystem).
RING_SEED = 1
RING_VNODES = 128

#: Per-server offered miss load (million lookups/s).  The RNIC pipeline
#: absorbs ~1.67 M misses/s (two ~300 ns messages each); 1.25 M leaves
#: headroom so even the busiest shard of an imperfect ring split stays
#: lossless.
OFFERED_PER_SERVER_MLPS = 1.25

_BASE_SRC_PORT = 10_000
_DST_PORT = 20_000


@dataclass
class ScaleoutRow:
    """One point of the lookup-table scale-out sweep."""

    servers: int
    offered_mlps: float
    lookups_sent: int
    lookups_completed: int
    lookups_lost: int
    duration_ms: float
    health: Dict[str, dict] = field(default_factory=dict)

    @property
    def mlookups_per_sec(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return self.lookups_completed / (self.duration_ms * 1e3)


def _rotate_src_port(flows: int):
    """Sender stamp: spread packets over *flows* UDP source ports."""

    def stamp(packet, seq) -> None:
        packet.require(UdpHeader).src_port = _BASE_SRC_PORT + (seq % flows)

    return stamp


def run_scaleout_point(
    servers: int,
    hosts: int = 8,
    lookups_per_host: int = 1200,
    flows_per_host: int = 32,
    entries: int = 1 << 16,
    offered_per_server_mlps: float = OFFERED_PER_SERVER_MLPS,
) -> ScaleoutRow:
    """Measure aggregate lookup miss throughput with *servers* pool members.

    Every packet is a remote miss (``cache_entries=0``, §5's per-packet
    fetch), each host blasts minimum-size UDP toward its neighbour over
    ``flows_per_host`` flows, and the aggregate offered rate is
    ``offered_per_server_mlps x servers`` so each configuration runs at
    its own lossless ceiling.
    """
    tb = build_testbed(
        n_hosts=hosts,
        n_memory_servers=servers,
        tm_config=TrafficManagerConfig(),
    )
    pool = MemoryPool(tb.controller, vnodes=RING_VNODES, seed=RING_SEED)
    for server, port in zip(tb.memory_servers, tb.server_ports):
        pool.add_server(server, port)

    program = RemoteLookupProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)

    config = LookupTableConfig(entries=entries, cache_entries=0)
    table = ShardedLookupTable(tb.switch, pool, config=config)
    program.use_lookup_table(table)

    # Install the DSCP-rewrite action for every flow the senders emit.
    for i, src in enumerate(tb.hosts):
        dst = tb.hosts[(i + 1) % hosts]
        for f in range(flows_per_host):
            flow = FiveTuple(
                src_ip=src.eth.ip.value,
                dst_ip=dst.eth.ip.value,
                protocol=17,
                src_port=_BASE_SRC_PORT + f,
                dst_port=_DST_PORT,
            )
            table.install(flow, RemoteAction(ACTION_SET_DSCP, 46))

    offered_mlps = offered_per_server_mlps * servers
    wire_bits = udp_between(tb.hosts[0], tb.hosts[1], 64).wire_len * 8
    per_host_rate_bps = offered_mlps * 1e6 / hosts * wire_bits
    for i, src in enumerate(tb.hosts):
        sender = RawEthernetBw(
            tb.sim,
            src,
            tb.hosts[(i + 1) % hosts],
            packet_size=64,
            rate_bps=per_host_rate_bps,
            count=lookups_per_host,
            dst_port=_DST_PORT,
            stamp=_rotate_src_port(flows_per_host),
        )
        sender.start()
    tb.sim.run()

    stats = table.stats
    sent = hosts * lookups_per_host
    if stats.remote_lookups == 0:
        raise RuntimeError("scaleout: no remote lookups happened; setup broken")
    # A completed miss is a finished WRITE+READ round trip; flows whose
    # slot collided fall back to the default action but still complete.
    completed = (
        stats.remote_hits + stats.fingerprint_mismatches + stats.remote_invalid
    )
    return ScaleoutRow(
        servers=servers,
        offered_mlps=offered_mlps,
        lookups_sent=sent,
        lookups_completed=completed,
        lookups_lost=stats.lookups_lost,
        duration_ms=tb.sim.now / 1e6,
        health=pool.health.snapshot(),
    )


def run_scaleout(
    server_counts: Sequence[int] = (1, 2, 4),
    hosts: int = 8,
    lookups_per_host: int = 1200,
    flows_per_host: int = 32,
) -> List[ScaleoutRow]:
    """The scale-out sweep: one row per pool size, same total work."""
    return [
        run_scaleout_point(
            n,
            hosts=hosts,
            lookups_per_host=lookups_per_host,
            flows_per_host=flows_per_host,
        )
        for n in server_counts
    ]


def format_scaleout(rows: Sequence[ScaleoutRow]) -> str:
    base = rows[0].mlookups_per_sec if rows else 0.0
    return format_table(
        [
            "servers",
            "offered (M/s)",
            "completed",
            "lost",
            "time (ms)",
            "throughput (M/s)",
            "speedup",
        ],
        [
            [
                r.servers,
                f"{r.offered_mlps:.2f}",
                r.lookups_completed,
                r.lookups_lost,
                f"{r.duration_ms:.2f}",
                f"{r.mlookups_per_sec:.2f}",
                f"{r.mlookups_per_sec / base:.2f}x" if base > 0 else "-",
            ]
            for r in rows
        ],
        title=(
            "Scale-out — aggregate lookup miss throughput vs pool size "
            "(equal per-server region)"
        ),
    )


# -- replicated counters under server death -----------------------------------


@dataclass
class FailoverCountersResult:
    """Outcome of killing one replica server mid-count."""

    packets_sent: int
    #: Expected per-counter totals (index -> value) from the send schedule.
    expected: Dict[int, int]
    #: Recovered per-counter totals read back after the death.
    recovered: Dict[int, int]
    killed_member: str
    kill_at_ns: float
    detected: bool
    counters_repaired: int
    members_failed: int

    @property
    def expected_total(self) -> int:
        return sum(self.expected.values())

    @property
    def recovered_total(self) -> int:
        return sum(self.recovered.values())

    @property
    def lost_updates(self) -> int:
        return self.expected_total - self.recovered_total

    @property
    def all_counters_exact(self) -> bool:
        return self.expected == self.recovered


def run_failover_counters(
    packets: int = 4000,
    flows: int = 16,
    servers: int = 3,
    replication: int = 2,
    kill_at_ns: float = 1_500_000.0,
    counters: int = 1 << 12,
) -> FailoverCountersResult:
    """Kill one replica server mid-run; verify no counter update is lost.

    The victim's switch link goes fully lossy at ``kill_at_ns`` (a crash,
    as the switch sees it).  The reliable-mode watchdog's timeouts feed
    the pool's health monitor, which declares the member dead; updates
    continue on the surviving replicas and reconciliation re-establishes
    K-way redundancy on the members that took over the dead arcs.
    """
    tb = build_testbed(n_hosts=2, n_memory_servers=servers)
    pool = MemoryPool(tb.controller, vnodes=RING_VNODES, seed=RING_SEED)
    for server, port in zip(tb.memory_servers, tb.server_ports):
        pool.add_server(server, port)

    program = CountingProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)

    config = StateStoreConfig(
        counters=counters, reliable=True, retry_timeout_ns=50_000.0
    )
    store = ReplicatedStateStore(
        tb.switch, pool, config=config, replication=replication
    )
    program.use_state_store(store)

    src, dst = tb.hosts
    # The send schedule fixes the expected per-counter totals exactly.
    expected: Dict[int, int] = {}
    for seq in range(packets):
        flow = FiveTuple(
            src_ip=src.eth.ip.value,
            dst_ip=dst.eth.ip.value,
            protocol=17,
            src_port=_BASE_SRC_PORT + (seq % flows),
            dst_port=_DST_PORT,
        )
        index = flow.hash() % counters
        expected[index] = expected.get(index, 0) + 1

    # Kill the replica holding the most of the workload's counters — the
    # hardest case for the survivors.
    hosted: Dict[str, int] = {}
    for index in expected:
        for member in pool.replicas_for(index, replication):
            hosted[member.name] = hosted.get(member.name, 0) + 1
    victim = max(hosted, key=lambda name: (hosted[name], name))
    victim_index = tb.memory_servers.index(pool.member(victim).server)
    victim_link = tb.server_links[victim_index]

    def crash() -> None:
        victim_link.loss_probability = 1.0

    tb.sim.schedule_at(kill_at_ns, crash)

    sender = RawEthernetBw(
        tb.sim,
        src,
        dst,
        packet_size=128,
        rate_bps=1e9,
        count=packets,
        dst_port=_DST_PORT,
        stamp=_rotate_src_port(flows),
    )
    sender.start()
    tb.sim.run()

    # Quiesce: push out everything still accumulated switch-side.
    for _ in range(64):
        if store.pending_value == 0 and store.outstanding == 0:
            break
        store.flush_all()
        tb.sim.run()

    recovered = {index: store.read_counter(index) for index in expected}
    return FailoverCountersResult(
        packets_sent=packets,
        expected=expected,
        recovered=recovered,
        killed_member=victim,
        kill_at_ns=kill_at_ns,
        detected=not pool.health.is_alive(victim),
        counters_repaired=store.cluster_stats.counters_repaired,
        members_failed=store.cluster_stats.members_failed,
    )


def format_failover(result: FailoverCountersResult) -> str:
    rows = [
        ["packets counted", result.packets_sent],
        ["replica killed", result.killed_member],
        ["killed at (ms)", f"{result.kill_at_ns / 1e6:.2f}"],
        ["death detected by health monitor", "yes" if result.detected else "no"],
        ["counters repaired on takeover", result.counters_repaired],
        ["expected total", result.expected_total],
        ["recovered total", result.recovered_total],
        ["updates lost", result.lost_updates],
        [
            "all counters exact",
            "yes" if result.all_counters_exact else "NO",
        ],
    ]
    return format_table(
        ["metric", "value"],
        rows,
        title="Failover — replicated counters under server death (K=2)",
    )
