"""Figure 3b: bandwidth overhead of the state-store primitive.

Paper setup (§5): a P4 program counts packets between two end hosts in a
remote counter; ``raw_ethernet_bw`` drives traffic at line rate across
packet sizes.  Measured: the Fetch-and-Add request stream consumes
~2.1 Gbps of switch↔RNIC link bandwidth *regardless of packet size*
(capped by the RNIC's atomic throughput), the counter value is 100 %
accurate, and end-to-end throughput is not degraded versus the plain
L2 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.monitors import LinkBandwidthMonitor
from ..analysis.reporting import format_table
from ..api import RemoteStateStore, StateStoreConfig, build_testbed
from ..apps.programs import CountingProgram, StaticL2Program
from ..rdma.constants import ATOMIC_OPERAND_BYTES
from ..rdma.headers import BthHeader
from ..workloads.factory import udp_between
from ..workloads.perftest import PacketSink, RawEthernetBw

PACKET_SIZES = (64, 128, 256, 512, 1024)


@dataclass
class Fig3bRow:
    """One x-axis point of Figure 3b."""

    packet_size: int
    #: Fetch-and-Add request stream, switch → RNIC (the figure's metric).
    fa_request_gbps: float
    #: Request + atomic-ACK traffic both ways on the memory-server link.
    fa_total_gbps: float
    counter_value: int
    packets_sent: int
    goodput_gbps: float
    baseline_goodput_gbps: float

    @property
    def counter_accurate(self) -> bool:
        return self.counter_value == self.packets_sent


def _run_baseline_goodput(packet_size: int, packets: int) -> float:
    tb = build_testbed(n_hosts=2, with_memory_server=False)
    program = StaticL2Program()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    sink = PacketSink(tb.hosts[1], dst_port=20_000)
    gen = RawEthernetBw(
        tb.sim, tb.hosts[0], tb.hosts[1],
        packet_size=packet_size, rate_bps=40e9, count=packets,
    )
    gen.start()
    tb.sim.run()
    return sink.goodput_bps() / 1e9


def run_fig3b_point(packet_size: int, packets: int = 4000) -> Fig3bRow:
    tb = build_testbed(n_hosts=2)
    program = CountingProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    config = StateStoreConfig(counters=1 << 16, max_outstanding=16)
    channel = tb.controller.open_channel(
        tb.memory_server,
        tb.server_port,
        config.counters * ATOMIC_OPERAND_BYTES,
    )
    store = RemoteStateStore(tb.switch, channel, config=config)
    program.use_state_store(store)

    roce_only = lambda packet: packet.find(BthHeader) is not None
    monitor = LinkBandwidthMonitor(tb.sim, tb.server_link, accept=roce_only)

    sink = PacketSink(tb.hosts[1], dst_port=20_000)
    gen = RawEthernetBw(
        tb.sim, tb.hosts[0], tb.hosts[1],
        packet_size=packet_size, rate_bps=40e9, count=packets,
    )
    gen.start()
    tb.sim.run()

    # Link direction b2a is switch → memory server (requests).
    request_gbps = monitor.rate_bps("b2a") / 1e9
    response_gbps = monitor.rate_bps("a2b") / 1e9
    counter = store.read_counter_via_control_plane(
        store.index_of(store.key_of(udp_between(tb.hosts[0], tb.hosts[1], packet_size)))
    )
    return Fig3bRow(
        packet_size=packet_size,
        fa_request_gbps=request_gbps,
        fa_total_gbps=request_gbps + response_gbps,
        counter_value=counter,
        packets_sent=gen.report.packets_sent,
        goodput_gbps=sink.goodput_bps() / 1e9,
        baseline_goodput_gbps=_run_baseline_goodput(packet_size, packets),
    )


def run_fig3b(
    packet_sizes: Sequence[int] = PACKET_SIZES, packets: int = 4000
) -> List[Fig3bRow]:
    """Regenerate Figure 3b; returns one row per packet size."""
    return [run_fig3b_point(size, packets) for size in packet_sizes]


def format_fig3b(rows: Sequence[Fig3bRow]) -> str:
    return format_table(
        [
            "pkt size (B)",
            "F&A req (Gbps)",
            "F&A total (Gbps)",
            "counter accurate",
            "goodput (Gbps)",
            "baseline (Gbps)",
        ],
        [
            [
                r.packet_size,
                f"{r.fa_request_gbps:.2f}",
                f"{r.fa_total_gbps:.2f}",
                "100%" if r.counter_accurate else
                f"{r.counter_value}/{r.packets_sent}",
                f"{r.goodput_gbps:.2f}",
                f"{r.baseline_goodput_gbps:.2f}",
            ]
            for r in rows
        ],
        title="Figure 3b — state-store bandwidth overhead (per packet size)",
    )
