"""§2.3 / Fig. 1c: telemetry state-store scaling.

Two results the section argues for:

1. **Counter scaling** — remote DRAM holds orders of magnitude more
   counters than switch SRAM (the paper says 10^3x: 100 GB DRAM vs
   <100 MB SRAM), with exact per-flow counts at zero CPU.
2. **Sketch accuracy** — a sketch sized to an SRAM budget saturates and
   overestimates under many flows; the same sketch algorithm with a
   DRAM-resident (remote) backend is wide enough to stay accurate.
   Measured by mean relative error and heavy-hitter detection F1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.reporting import format_table
from ..apps.sketch import (
    CountMinSketch,
    CountSketch,
    LocalCounterBackend,
    RemoteCounterBackend,
    SketchGeometry,
)
from ..apps.telemetry import (
    HeavyHitterDetector,
    SketchTelemetryProgram,
    mean_relative_error,
)
from ..core.state_store import RemoteStateStore, StateStoreConfig
from ..rdma.constants import ATOMIC_OPERAND_BYTES
from ..sim.units import gbps, kib
from ..switches.hashing import FiveTuple
from ..workloads.flows import ZipfFlowWorkload
from .topology import build_testbed


@dataclass
class TelemetryResult:
    backend: str
    sketch_kind: str
    sketch_counters: int
    sketch_bytes: int
    packets: int
    distinct_flows: int
    mean_relative_error: float
    hh_precision: float
    hh_recall: float
    hh_f1: float
    fa_operations: int
    server_cpu_packets: int


def _run_backend(
    backend: str,
    flows: int,
    packets: int,
    sram_budget_bytes: int,
    remote_counters: int,
    alpha: float,
    hh_threshold: int,
    seed: int,
    sketch_kind: str = "countmin",
) -> TelemetryResult:
    if sketch_kind not in ("countmin", "countsketch"):
        raise ValueError(f"unknown sketch kind {sketch_kind!r}")
    tb = build_testbed(n_hosts=2, with_memory_server=backend == "remote")
    program = SketchTelemetryProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)

    depth = 4
    store: Optional[RemoteStateStore] = None
    if backend == "local":
        width = max(16, sram_budget_bytes // (depth * 8))
        geometry = SketchGeometry(depth=depth, width=width)
        counters = LocalCounterBackend(depth, width, sram_budget_bytes)
    else:
        width = remote_counters // depth
        geometry = SketchGeometry(depth=depth, width=width)
        config = StateStoreConfig(counters=depth * width, max_outstanding=16)
        channel = tb.controller.open_channel(
            tb.memory_server,
            tb.server_port,
            config.counters * ATOMIC_OPERAND_BYTES,
        )
        store = RemoteStateStore(tb.switch, channel, config=config)
        counters = RemoteCounterBackend(store, depth, width)
    sketch_cls = CountMinSketch if sketch_kind == "countmin" else CountSketch
    sketch = sketch_cls(geometry, counters)
    program.use_sketch(sketch, state_store=store)

    workload = ZipfFlowWorkload(
        tb.sim,
        tb.hosts[0],
        tb.hosts[1],
        flows=flows,
        alpha=alpha,
        packet_size=256,
        rate_bps=gbps(10),
        count=packets,
        seed=seed,
    )
    workload.start()
    tb.sim.run()
    if store is not None:
        store.flush_all()
        tb.sim.run()

    # Control-plane estimation pass over every flow the workload touched.
    keys: Dict[int, bytes] = {}
    estimates = []
    for rank in workload.sent_by_rank:
        key = workload.flow_key(rank)
        flow = FiveTuple(
            src_ip=tb.hosts[0].eth.ip.value,
            dst_ip=tb.hosts[1].eth.ip.value,
            protocol=17,
            src_port=key.src_port,
            dst_port=key.dst_port,
        )
        keys[rank] = flow.pack()
        estimates.append((sketch.estimate(keys[rank]), workload.sent_by_rank[rank]))

    detector = HeavyHitterDetector(sketch)
    report = detector.detect(keys, hh_threshold, workload.sent_by_rank)
    return TelemetryResult(
        backend=backend,
        sketch_kind=sketch_kind,
        sketch_counters=geometry.counters,
        sketch_bytes=geometry.bytes,
        packets=workload.packets_sent,
        distinct_flows=workload.distinct_flows_sent(),
        mean_relative_error=mean_relative_error(estimates),
        hh_precision=report.precision,
        hh_recall=report.recall,
        hh_f1=report.f1,
        fa_operations=(store.stats.operations_issued if store else 0),
        server_cpu_packets=(
            tb.memory_server.cpu_packets if tb.memory_server else 0
        ),
    )


def run_telemetry(
    flows: int = 20_000,
    packets: int = 20_000,
    sram_budget_bytes: int = kib(8),
    remote_counters: int = 1 << 20,
    alpha: float = 1.05,
    hh_threshold: int = 50,
    seed: int = 0,
    sketch_kind: str = "countmin",
) -> List[TelemetryResult]:
    """Local-SRAM sketch vs remote-DRAM sketch on the same Zipf stream.

    ``sketch_kind`` picks the algorithm: Count-Min, or the paper's cited
    Count Sketch [11] (whose signed ±1 updates ride Fetch-and-Add as
    two's-complement deltas).
    """
    return [
        _run_backend(
            backend, flows, packets, sram_budget_bytes, remote_counters,
            alpha, hh_threshold, seed, sketch_kind=sketch_kind,
        )
        for backend in ("local", "remote")
    ]


def format_telemetry(results: Sequence[TelemetryResult]) -> str:
    return format_table(
        [
            "backend",
            "counters",
            "memory",
            "flows",
            "mean rel err",
            "HH precision",
            "HH recall",
            "HH F1",
            "F&A ops",
            "server CPU pkts",
        ],
        [
            [
                r.backend,
                r.sketch_counters,
                f"{r.sketch_bytes / 1024:.0f} KiB",
                r.distinct_flows,
                f"{r.mean_relative_error:.3f}",
                f"{r.hh_precision:.2f}",
                f"{r.hh_recall:.2f}",
                f"{r.hh_f1:.2f}",
                r.fa_operations,
                r.server_cpu_packets,
            ]
            for r in results
        ],
        title=(
            "§2.3 / Fig. 1c — telemetry: SRAM sketch vs remote-memory "
            f"sketch ({results[0].sketch_kind})"
        ),
    )
