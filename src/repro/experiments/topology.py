"""Compatibility shim — the testbed builder moved to :mod:`repro.testbed`.

It moved up a level so the public facade (:mod:`repro.api`) can export it
without importing the experiment harnesses.  Import from ``repro.api``
(preferred) or ``repro.testbed``; this module keeps old deep imports
working.
"""

from __future__ import annotations

from ..testbed import (
    DEFAULT_LINK_RATE,
    DEFAULT_PROPAGATION_NS,
    Testbed,
    build_testbed,
)

__all__ = [
    "DEFAULT_LINK_RATE",
    "DEFAULT_PROPAGATION_NS",
    "Testbed",
    "build_testbed",
]
