"""§6 application study: in-network sequencing over a remote counter.

Measures the sequencing rate an off-switch counter sustains: the switch
stamps packets with values returned by RDMA Fetch-and-Add, so throughput
is capped by the RNIC atomic engine (2.4 Mops/s in this model) — the
price of a counter that survives switch failure and is shared across
switches, versus a local register's line-rate stamping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.reporting import format_table
from ..apps.sequencer import SEQUENCER_PORT, SeqHeader, SequencerProgram
from ..net.headers import UdpHeader
from ..sim.units import SEC, gbps
from ..workloads.perftest import RawEthernetBw
from .topology import build_testbed


@dataclass
class SequencerResult:
    offered_mpps: float
    sequenced: int
    dropped: int
    achieved_mops: float
    gap_free: bool
    arrival_ordered: bool
    server_cpu_packets: int


def run_sequencer_point(
    offered_mpps: float, packets: int = 3000, packet_size: int = 64
) -> SequencerResult:
    """One offered-rate point of the sequencing-throughput sweep."""
    tb = build_testbed(n_hosts=2)
    program = SequencerProgram(max_parked=1 << 16)
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    channel = tb.controller.open_channel(tb.memory_server, tb.server_port, 4096)
    program.use_channel(tb.switch, channel)

    stamped: List[tuple] = []

    def handler(packet, interface):
        udp = packet.find(UdpHeader)
        if udp is not None and udp.dst_port == SEQUENCER_PORT:
            stamped.append(
                (
                    tb.sim.now,
                    SeqHeader.unpack(packet.payload).sequence,
                    packet.meta.get("seq"),
                )
            )

    tb.hosts[1].packet_handlers.append(handler)

    wire_bits = (packet_size + 24) * 8  # + FCS/preamble/IFG
    rate_bps = offered_mpps * 1e6 * wire_bits
    gen = RawEthernetBw(
        tb.sim, tb.hosts[0], tb.hosts[1],
        packet_size=packet_size, rate_bps=min(rate_bps, gbps(40)),
        count=packets, dst_port=SEQUENCER_PORT,
    )
    gen.start()
    tb.sim.run()

    achieved = 0.0
    if len(stamped) > 1:
        window = stamped[-1][0] - stamped[0][0]
        if window > 0:
            achieved = (len(stamped) - 1) * SEC / window / 1e6
    numbers = [s for _, s, _ in stamped]
    sender_order = [m for _, _, m in stamped]
    return SequencerResult(
        offered_mpps=offered_mpps,
        sequenced=program.stats.sequenced,
        dropped=program.stats.dropped_window_full,
        achieved_mops=achieved,
        gap_free=sorted(numbers) == list(range(len(numbers))),
        arrival_ordered=sender_order == sorted(sender_order),
        server_cpu_packets=tb.memory_server.cpu_packets,
    )


def run_sequencer_throughput(
    offered_mpps: Sequence[float] = (0.5, 1.0, 2.0, 3.0, 5.0, 10.0),
    packets: int = 3000,
) -> List[SequencerResult]:
    return [run_sequencer_point(rate, packets) for rate in offered_mpps]


def format_sequencer(results: Sequence[SequencerResult]) -> str:
    return format_table(
        [
            "offered (Mpps)",
            "sequenced",
            "achieved (Mops)",
            "gap-free",
            "in order",
            "server CPU",
        ],
        [
            [
                f"{r.offered_mpps:.1f}",
                r.sequenced,
                f"{r.achieved_mops:.2f}",
                "yes" if r.gap_free else "NO",
                "yes" if r.arrival_ordered else "NO",
                r.server_cpu_packets,
            ]
            for r in results
        ],
        title="§6 — in-network sequencer over a remote Fetch-and-Add counter",
    )
