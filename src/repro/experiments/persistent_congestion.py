"""§2.1's division of labour: bursts → remote buffer, persistence → ECN.

"Before that >10 GB remote memory is all filled, any bursty incast
conditions should have passed, or (in the case of persistent congestion)
end-to-end congestion control based on ECN [36] or delay [28] should have
slowed traffic."

This experiment subjects a remote-buffered egress port to *persistent* 2:1
overload (two senders at line rate, forever) and compares:

* ``buffer_only`` — no congestion control: the ring grows until it is
  full, then packets drop; remote memory merely delays the loss.
* ``buffer+ecn``  — the co-designed signal: once ring occupancy crosses a
  threshold, diverted ECT packets are CE-marked; DCTCP-style senders slow
  to their fair share, the ring drains, and the system is loss-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.reporting import format_table
from ..apps.programs import RemoteBufferProgram
from ..core.packet_buffer import (
    ENTRY_SEQ_BYTES,
    PacketBufferConfig,
    RemotePacketBuffer,
)
from ..sim.units import gbps, kib, msec, to_msec
from ..switches.traffic_manager import TrafficManagerConfig
from ..workloads.dctcp import DctcpConfig, DctcpReceiver, DctcpSender
from .topology import build_testbed

MODES = ("buffer_only", "buffer+ecn")


@dataclass
class PersistentCongestionResult:
    mode: str
    duration_ms: float
    packets_sent: int
    packets_received: int
    ring_full_drops: int
    switch_drops: int
    peak_ring_entries: int
    final_ring_entries: int
    ce_marked: int
    final_rates_gbps: List[float]

    @property
    def loss_rate(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return 1.0 - self.packets_received / self.packets_sent

    @property
    def aggregate_final_rate_gbps(self) -> float:
        return sum(self.final_rates_gbps)


def run_persistent_congestion(
    mode: str,
    duration_ms: float = 8.0,
    ring_entries_per_server: int = 3000,
    ecn_threshold_entries: int = 256,
    n_memory_servers: int = 3,
    senders: int = 2,
) -> PersistentCongestionResult:
    """One mode of the persistent-congestion study.

    Sizing notes, each load-bearing:

    * ``n_memory_servers`` must absorb the *entire* diverted stream (the
      §4 ordering rule diverts everything while buffering): 2×40 Gbps of
      arrivals needs 3 servers, since each NIC ingests ~34 Gbps
      losslessly (§5's own result).
    * ``ecn_threshold_entries`` must be small relative to the ring:
      marked packets only reach the receiver after their ring sojourn, so
      a deep marking threshold bufferbloats the control loop into
      uselessness (DCTCP's shallow-K lesson, reproduced faithfully).
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; pick from {MODES}")
    # The paper's 12 MB shared buffer, plus one co-design necessity this
    # experiment uncovered: READ requests ride strict priority, so the
    # load path never queues behind megabytes of diverted WRITE traffic on
    # the saturated server ports (classic bufferbloat, inside the switch).
    def _read_request(packet) -> bool:
        from ..rdma.constants import Opcode
        from ..rdma.headers import BthHeader

        bth = packet.find(BthHeader)
        return bth is not None and bth.opcode == Opcode.RDMA_READ_REQUEST

    tb = build_testbed(
        n_hosts=senders + 1,
        n_memory_servers=n_memory_servers,
        tm_config=TrafficManagerConfig(
            rdma_priority=True,
            priority_classifier=_read_request,
        ),
    )
    receiver = tb.hosts[senders]
    program = RemoteBufferProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)

    entry_bytes = 1500 + ENTRY_SEQ_BYTES
    channels = tb.open_channels(ring_entries_per_server * entry_bytes)
    # Loads ride dedicated queue pairs onto the same regions: READ
    # prioritization reorders them past the WRITE stream inside the
    # switch, which RC only tolerates across QPs, never within one.
    read_channels = [
        tb.controller.open_channel(
            channel.server, channel.server_port, share_region_with=channel
        )
        for channel in channels
    ]
    primitive = RemotePacketBuffer(
        tb.switch,
        channels,
        read_channels=read_channels,
        protected_port=tb.host_ports[senders],
        config=PacketBufferConfig(
            entry_bytes=entry_bytes,
            high_watermark_bytes=kib(256),
            low_watermark_bytes=kib(32),
            ecn_ring_threshold_entries=(
                ecn_threshold_entries if mode == "buffer+ecn" else None
            ),
        ),
    )
    program.use_packet_buffer(primitive)

    dctcp_receiver = DctcpReceiver(receiver, dst_port=42_001)
    dctcp_senders: List[DctcpSender] = []
    for i in range(senders):
        # A faster alpha gain than host-stack DCTCP: the control loop's
        # effective RTT includes the ring sojourn, so it must adapt in few
        # intervals.
        config = DctcpConfig(gain=0.4)
        if mode == "buffer_only":
            # No reaction: neutralise the control loop (feedback arrives
            # but the rate never moves).
            config = DctcpConfig(
                gain=0.0, additive_increase_bps=0.0,
                min_rate_bps=gbps(40), max_rate_bps=gbps(40),
            )
        sender = DctcpSender(
            tb.sim,
            tb.hosts[i],
            receiver,
            packet_size=1500,
            rate_bps=gbps(40),
            duration_ns=msec(duration_ms),
            src_port=42_000 + i * 2,
            config=config,
        )
        sender.start()
        dctcp_senders.append(sender)

    # Track ring occupancy over time.
    peak = [0]

    def sample_ring() -> None:
        peak[0] = max(peak[0], primitive.stored_entries)
        if tb.sim.now < msec(duration_ms):
            tb.sim.schedule(10_000.0, sample_ring)

    tb.sim.schedule(0.0, sample_ring)
    tb.sim.run(max_events=30_000_000)

    ce_marked = primitive.stats.ecn_marked + sum(
        q.ecn_marked for q in tb.switch.tm.queues.values()
    )
    return PersistentCongestionResult(
        mode=mode,
        duration_ms=duration_ms,
        packets_sent=sum(s.packets_sent for s in dctcp_senders),
        packets_received=dctcp_receiver.packets,
        ring_full_drops=primitive.stats.ring_full_drops,
        switch_drops=tb.switch.tm.total_dropped_packets,
        peak_ring_entries=peak[0],
        final_ring_entries=primitive.stored_entries,
        ce_marked=ce_marked,
        final_rates_gbps=[s.rate_bps / 1e9 for s in dctcp_senders],
    )


def run_persistent_congestion_comparison(
    **kwargs,
) -> List[PersistentCongestionResult]:
    return [run_persistent_congestion(mode, **kwargs) for mode in MODES]


def format_persistent_congestion(
    results: Sequence[PersistentCongestionResult],
) -> str:
    return format_table(
        [
            "mode",
            "recv/sent",
            "loss",
            "ring-full drops",
            "peak ring",
            "CE marks",
            "final rates (Gbps)",
        ],
        [
            [
                r.mode,
                f"{r.packets_received}/{r.packets_sent}",
                f"{r.loss_rate * 100:.1f}%",
                r.ring_full_drops,
                r.peak_ring_entries,
                r.ce_marked,
                " + ".join(f"{rate:.1f}" for rate in r.final_rates_gbps),
            ]
            for r in results
        ],
        title="§2.1 — persistent congestion: remote buffer alone vs with ECN",
    )
