"""§2.1 / Fig. 1a: last-hop incast — drop-tail vs remote buffer vs PFC.

The paper's opening arithmetic: all links 40 Gbps, a ToR with 12 MB of
packet buffer, 50 MB of traffic arriving from eight uplinks at line rate
toward one server.  Receiving takes 50 MB / 40 Gbps = 10 ms, but the
12 MB buffer fills within 12 MB / (8-1) / 40 Gbps ≈ 0.34 ms and the switch
starts dropping.

Variants:

* ``droptail``      — plain shared-buffer ToR (drops).
* ``remote_buffer`` — the packet-buffer primitive striped over enough
  memory servers to absorb the overflow (the paper's "one or multiple
  servers"): lossless, zero sender stalls.
* ``pfc``           — Priority Flow Control: also lossless, but PAUSE
  frames freeze entire sender links, so an innocent victim flow sharing a
  sender is head-of-line blocked (the paper's argument against PFC).

The experiment runs at a configurable scale factor: ``scale=1.0`` is the
paper's exact scenario; smaller scales preserve every ratio (buffer :
burst : rates) while keeping unit-test runtimes sane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis.reporting import format_table
from ..apps.programs import RemoteBufferProgram, StaticL2Program
from ..baselines.pfc import PfcConfig, PfcManager
from ..core.packet_buffer import (
    ENTRY_SEQ_BYTES,
    PacketBufferConfig,
    RemotePacketBuffer,
)
from ..sim.units import gbps, mib, to_msec
from ..switches.traffic_manager import TrafficManagerConfig
from ..workloads.incast import IncastWorkload
from ..workloads.perftest import PacketSink, RawEthernetBw
from .topology import build_testbed

VARIANTS = ("droptail", "remote_buffer", "pfc")


@dataclass
class IncastResult:
    """Outcome of one incast variant."""

    variant: str
    senders: int
    packets_sent: int
    packets_received: int
    burst_bytes: int
    completion_ms: Optional[float]
    out_of_order: int
    switch_drops: int
    remote_stored: int
    pause_events: int
    victim_packets_sent: int
    victim_packets_received: int
    victim_completion_ms: Optional[float]

    @property
    def loss_rate(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return 1.0 - self.packets_received / self.packets_sent

    @property
    def lossless(self) -> bool:
        return self.packets_received == self.packets_sent


def run_incast(
    variant: str,
    senders: int = 8,
    total_burst_bytes: int = 50 * 1000 * 1000,
    switch_buffer_bytes: int = mib(12),
    packet_size: int = 1500,
    scale: float = 1.0,
    n_memory_servers: int = 8,
    with_victim: bool = True,
) -> IncastResult:
    """Run one incast variant; see module docstring for the scenario."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; pick from {VARIANTS}")
    burst = int(total_burst_bytes * scale)
    buffer_bytes = int(switch_buffer_bytes * scale)
    bytes_per_sender = burst // senders

    # Hosts: senders, the incast receiver, and a victim receiver.
    n_hosts = senders + 2
    tb = build_testbed(
        n_hosts=n_hosts,
        n_memory_servers=n_memory_servers if variant == "remote_buffer" else 1,
        with_memory_server=variant == "remote_buffer",
        tm_config=TrafficManagerConfig(buffer_bytes=buffer_bytes),
    )
    receiver = tb.hosts[senders]
    victim_receiver = tb.hosts[senders + 1]
    sender_hosts = tb.hosts[:senders]

    program = (
        RemoteBufferProgram() if variant == "remote_buffer" else StaticL2Program()
    )
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)

    primitive = None
    pfc = None
    if variant == "remote_buffer":
        entry_bytes = packet_size + ENTRY_SEQ_BYTES
        # O(1 GB) per server in the paper; here just comfortably more than
        # the overflow share each server may receive.
        per_server = max(1, burst // max(1, n_memory_servers)) + 64 * entry_bytes
        channels = tb.open_channels(per_server)
        primitive = RemotePacketBuffer(
            tb.switch,
            channels,
            protected_port=tb.host_ports[senders],
            config=PacketBufferConfig(
                entry_bytes=entry_bytes,
                high_watermark_bytes=int(buffer_bytes * 0.6),
                low_watermark_bytes=int(buffer_bytes * 0.05),
                max_outstanding_reads=4,
            ),
        )
        program.use_packet_buffer(primitive)
    elif variant == "pfc":
        pfc = PfcManager(
            tb.switch,
            upstream_ports=tb.host_ports[:senders],
            config=PfcConfig(
                pause_threshold_bytes=int(buffer_bytes * 0.75),
                resume_threshold_bytes=int(buffer_bytes * 0.5),
            ),
        )

    workload = IncastWorkload(
        tb.sim,
        sender_hosts,
        receiver,
        bytes_per_sender=bytes_per_sender,
        packet_size=packet_size,
        rate_bps=gbps(40),
    )
    workload.start()

    # Victim flow: sender 0 also talks to an *uncongested* receiver.  With
    # PFC, pausing sender 0's link stalls this flow too (HoL blocking).
    victim_sink = None
    victim_gen = None
    if with_victim:
        victim_packets = max(10, bytes_per_sender // packet_size // 4)
        victim_sink = PacketSink(victim_receiver, dst_port=30_000)
        victim_gen = RawEthernetBw(
            tb.sim,
            sender_hosts[0],
            victim_receiver,
            packet_size=packet_size,
            rate_bps=gbps(10),
            count=victim_packets,
            src_port=30_001,
            dst_port=30_000,
        )
        victim_gen.start()

    tb.sim.run()

    report = workload.report()
    remote_stored = primitive.stats.stored_packets if primitive else 0
    pause_events = pfc.stats.pause_events if pfc else 0
    return IncastResult(
        variant=variant,
        senders=senders,
        packets_sent=report.packets_sent,
        packets_received=report.packets_received,
        burst_bytes=burst,
        completion_ms=(
            to_msec(report.completion_ns) if report.completion_ns else None
        ),
        out_of_order=report.out_of_order,
        switch_drops=tb.switch.tm.total_dropped_packets,
        remote_stored=remote_stored,
        pause_events=pause_events,
        victim_packets_sent=victim_gen.report.packets_sent if victim_gen else 0,
        victim_packets_received=victim_sink.packets if victim_sink else 0,
        victim_completion_ms=(
            to_msec(victim_sink.last_arrival_ns)
            if victim_sink and victim_sink.packets
            else None
        ),
    )


def run_incast_comparison(
    variants: Sequence[str] = VARIANTS, scale: float = 0.1, **kwargs
) -> List[IncastResult]:
    """Run all variants of the §2.1 scenario at the given scale."""
    return [run_incast(variant, scale=scale, **kwargs) for variant in variants]


def format_incast(results: Sequence[IncastResult]) -> str:
    def fmt_ms(value: Optional[float]) -> str:
        return f"{value:.2f}" if value is not None else "-"

    return format_table(
        [
            "variant",
            "recv/sent",
            "loss",
            "drops",
            "reorder",
            "remote stored",
            "pauses",
            "incast done (ms)",
            "victim done (ms)",
        ],
        [
            [
                r.variant,
                f"{r.packets_received}/{r.packets_sent}",
                f"{r.loss_rate * 100:.1f}%",
                r.switch_drops,
                r.out_of_order,
                r.remote_stored,
                r.pause_events,
                fmt_ms(r.completion_ms),
                fmt_ms(r.victim_completion_ms),
            ]
            for r in results
        ],
        title="§2.1 / Fig. 1a — 8-to-1 line-rate incast at the last hop",
    )
