"""§4 overhead table: RoCE header bytes per operation.

"In an RDMA packet, RoCEv2 protocol adds 40 bytes (52 bytes in the case of
RoCEv1) of headers containing routing and transport information in
addition to an RDMA operation-specific header of 16 (WRITE/READ) or 28
bytes (Fetch-and-Add)."

The harness measures the numbers two ways: analytically from the header
codecs, and empirically by serializing real request packets built by the
data-plane generator — both must agree with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.reporting import format_table
from ..net.headers import EthernetHeader, Ipv4Header, UdpHeader
from ..net.addresses import Ipv4Address, MacAddress
from ..rdma.constants import Opcode
from ..rdma.headers import roce_packet_overhead
from ..rdma.packets import (
    build_fetch_add_request,
    build_read_request,
    build_write_request,
    convert_to_rocev1,
)
from ..rdma.qp import QueuePair
from ..rdma.verbs import connect_qps


@dataclass
class OverheadRow:
    operation: str
    opcode: Opcode
    transport_bytes: int          # IPv4 + UDP + BTH (40 B for RoCEv2)
    extension_bytes: int          # RETH / AtomicETH
    paper_total: int              # what §4 quotes
    measured_total: int           # from a serialized packet
    rocev1_total: int

    @property
    def matches_paper(self) -> bool:
        return self.measured_total == self.paper_total


def _build_request(opcode: Opcode, payload_bytes: int):
    qp_a = QueuePair(0x100, Ipv4Address("10.0.0.1"), MacAddress(1))
    qp_b = QueuePair(0x200, Ipv4Address("10.0.0.2"), MacAddress(2))
    connect_qps(qp_a, qp_b)
    if opcode == Opcode.RDMA_WRITE_ONLY:
        return build_write_request(qp_a, 0x1000, 0x42, b"x" * payload_bytes)
    if opcode == Opcode.RDMA_READ_REQUEST:
        return build_read_request(qp_a, 0x1000, 0x42, payload_bytes)
    return build_fetch_add_request(qp_a, 0x1000, 0x42, 1)


def _overhead_of(packet) -> int:
    """Overhead = serialized bytes beyond Ethernet + payload + ICRC."""
    raw = packet.pack()
    return len(raw) - EthernetHeader.LENGTH - len(packet.payload) - 4


def _measured_overhead(opcode: Opcode, payload_bytes: int) -> int:
    """Serialize a real RoCEv2 request and count its protocol bytes."""
    return _overhead_of(_build_request(opcode, payload_bytes))


def _measured_overhead_v1(opcode: Opcode, payload_bytes: int) -> int:
    """Same, but reframed as RoCEv1 (Ethernet / GRH / BTH ...)."""
    return _overhead_of(convert_to_rocev1(_build_request(opcode, payload_bytes)))


def run_overhead() -> List[OverheadRow]:
    """Regenerate the §4 overhead accounting."""
    rows = []
    cases = [
        ("RDMA WRITE", Opcode.RDMA_WRITE_ONLY, 16),
        ("RDMA READ", Opcode.RDMA_READ_REQUEST, 16),
        ("Fetch-and-Add", Opcode.FETCH_ADD, 28),
    ]
    transport = Ipv4Header.LENGTH + UdpHeader.LENGTH + 12  # IPv4+UDP+BTH
    for name, opcode, extension in cases:
        measured_v1 = _measured_overhead_v1(opcode, 64)
        if measured_v1 != roce_packet_overhead(opcode, rocev1=True):
            raise AssertionError(
                f"RoCEv1 framing of {name} measures {measured_v1} B, "
                f"expected {roce_packet_overhead(opcode, rocev1=True)} B"
            )
        rows.append(
            OverheadRow(
                operation=name,
                opcode=opcode,
                transport_bytes=transport,
                extension_bytes=extension,
                paper_total=40 + extension,
                measured_total=_measured_overhead(opcode, 64),
                rocev1_total=measured_v1,
            )
        )
    return rows


def format_overhead(rows: List[OverheadRow]) -> str:
    return format_table(
        [
            "operation",
            "routing+transport (B)",
            "op-specific (B)",
            "paper total (B)",
            "measured (B)",
            "RoCEv1 total (B)",
            "match",
        ],
        [
            [
                r.operation,
                r.transport_bytes,
                r.extension_bytes,
                r.paper_total,
                r.measured_total,
                r.rocev1_total,
                "yes" if r.matches_paper else "NO",
            ]
            for r in rows
        ],
        title="§4 — RoCE protocol overhead per operation",
    )
