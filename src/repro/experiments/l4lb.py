"""L4LB soak: live backend migration under kills, drains, and corruption.

The ROADMAP's production scenario, run end to end: a switch whose
million-connection L4 load-balancer table lives in remote memory
(:mod:`repro.apps.l4lb`), soaked with open-loop Zipf traffic while the
harness throws every failure PRs 4-9 built machinery for — at once:

* **10⁻³ link corruption** on the switch↔table-server link from t=0,
  masked by a §14 :class:`~repro.linkguard.LinkGuard` (a corrupted
  bounced lookup has no end-to-end retry; the guard is what saves it).
* **A hard backend kill** mid-run: the victim's link goes dark, the §11
  breaker trips, its replica store degrades, reconnect probes fail, and
  the controller escalates to pool failover — connections re-point, K=2
  replication keeps every counter update.
* **A graceful drain** of a *different* backend afterwards: journaled
  re-install of its connections, then quiesce + handoff reconcile under
  a drain hold before the member leaves.  Draining the co-replica of an
  earlier kill is the hard case: counter value whose only surviving
  copy sits on the leaver must be handed off before its channels close.
* **New connections** admitted after the churn, which must land only on
  backends that are still active.

The acceptance bar (:func:`assert_l4lb`): **zero lost counter updates**
— every per-backend connection/byte counter read back from the
replicated store equals the program's independent expected-counts
ledger, exactly — and **zero affinity breaks** — every packet delivered
to a backend was sanctioned by that connection's journal (original
placement or a controller-ordered migration target); new connections may
remap, established ones never silently do.

One seed pins the whole timeline: the Zipf schedules, the corruption
pattern, the breaker's probe jitter, and the rendezvous placement all
derive from ``seed``, so ``benchmarks/BENCH_l4lb.json`` regenerates
byte-for-byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.reporting import format_table
from ..apps.l4lb import (
    BACKEND_ACTIVE,
    Backend,
    L4LbController,
    L4LbProgram,
)
from ..cluster import MemoryPool, ReplicatedStateStore
from ..core.lookup_table import LookupTableConfig, RemoteLookupTable
from ..core.state_store import StateStoreConfig
from ..faults import Corrupt, FaultPlan
from ..hosts.server import MemoryServer
from ..linkguard import LinkGuard
from ..net.addresses import Ipv4Address
from ..net.headers import Ipv4Header, UdpHeader
from ..obs import Observability
from ..policies import BreakerPolicy
from ..rdma.packets import integrity_protected
from ..resilience import CircuitBreakerConfig
from ..sim.rng import SeedSequence
from ..sim.units import SEC, usec
from ..switches.hashing import FiveTuple
from ..workloads.zipf import OpenLoopZipfTraffic
from .scaleout import RING_SEED, RING_VNODES
from .topology import build_testbed

#: Root seed: one number pins every schedule in the soak.
L4LB_SEED = 42

#: Per-frame corruption probability on the table-server link.
L4LB_CORRUPT_RATE = 1e-3

#: The virtual IP clients address; backends live behind it.
L4LB_VIP = "10.9.9.9"


class _VipZipfTraffic(OpenLoopZipfTraffic):
    """Open-loop Zipf arrivals addressed to the VIP.

    The flow population (rank → port pair) is the stock Zipf mapping;
    only the destination IP changes, so every packet takes the
    load-balanced path and its connection identity is the VIP 5-tuple.
    """

    def __init__(self, vip: Ipv4Address, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.vip = vip

    def packet_for(self, rank: int):
        packet = super().packet_for(rank)
        packet.require(Ipv4Header).dst = self.vip
        return packet

    def connection(self, rank: int) -> FiveTuple:
        """The connection 5-tuple rank maps to (dst = the VIP)."""
        key = self.flow_key(rank)
        return FiveTuple(
            src_ip=self.src.eth.ip.value,
            dst_ip=self.vip.value,
            protocol=17,
            src_port=key.src_port,
            dst_port=key.dst_port,
        )


class _BackendSink:
    """Records deliveries at one backend, keyed by connection 5-tuple."""

    def __init__(
        self,
        program: L4LbProgram,
        backend: Backend,
        server: MemoryServer,
        deliveries: Dict[FiveTuple, Dict[str, int]],
    ) -> None:
        self.program = program
        self.backend = backend
        self.deliveries = deliveries
        self.packets = 0
        # RoCE is steered to the RNIC before packet_handlers run, so the
        # sink sees exactly the load-balanced data traffic.
        server.packet_handlers.append(self._handle)

    def _handle(self, packet, interface) -> None:
        if packet.find(Ipv4Header) is None or packet.find(UdpHeader) is None:
            return
        self.packets += 1
        flow = self.program.connection_key(packet)
        per_backend = self.deliveries.setdefault(flow, {})
        per_backend[self.backend.name] = per_backend.get(self.backend.name, 0) + 1


@dataclass
class L4LbSoakResult:
    """Everything the audit measured in one combined-failure soak."""

    seed: int
    connections: int
    new_connections: int
    backends: int
    corrupt_rate: float
    table_entries: int
    packets_offered: int
    duration_ms: float
    # -- data-plane accounting --
    vip_packets: int
    forwarded_packets: int
    delivered_total: int
    forwarded_by_backend: Dict[str, int]
    delivered_by_backend: Dict[str, int]
    lookups_lost: int
    no_backend_drops: int
    # -- counter audit (the zero-lost-updates bar) --
    expected: Dict[int, int]
    recovered: Dict[int, int]
    # -- affinity audit --
    affinity_breaks: int
    flows_delivered: int
    connections_migrated: int
    unsanctioned_migrations: int
    # -- the kill --
    killed_backend: str
    kill_at_ns: float
    kill_detected: bool
    kill_detect_ns: Optional[float]
    breaker_opens: int
    reconnect_attempts: int
    kill_escalations: int
    members_failed: int
    victim_wire_loss: int
    other_wire_loss: int
    # -- the drain --
    drained_backend: str
    drain_at_ns: float
    drains_completed: int
    drains_forced: int
    counters_repaired: int
    reconciliations: int
    # -- the corrupting link --
    corrupted_frames: int
    masked_losses: int
    guard_resent: int
    # -- post-churn admissions --
    new_placements: Dict[str, int] = field(default_factory=dict)
    new_on_inactive: int = 0

    @property
    def expected_total(self) -> int:
        return sum(self.expected.values())

    @property
    def recovered_total(self) -> int:
        return sum(self.recovered.values())

    @property
    def lost_updates(self) -> int:
        return self.expected_total - self.recovered_total

    @property
    def all_counters_exact(self) -> bool:
        return self.expected == self.recovered

    @property
    def kill_detect_latency_ns(self) -> Optional[float]:
        if self.kill_detect_ns is None:
            return None
        return self.kill_detect_ns - self.kill_at_ns


def _breaker_config() -> CircuitBreakerConfig:
    """Same pacing the chaos/linkguard scenarios tune for 50 µs watchdogs."""
    return CircuitBreakerConfig(
        fail_threshold=3,
        close_threshold=1,
        open_timeout_ns=usec(100),
        probe_timeout_ns=usec(60),
        probe_jitter_ns=usec(10),
        backoff=2.0,
    )


def table_entries_for(connections: int) -> int:
    """Cuckoo sizing: next power of two past ``connections / 0.75``.

    (2,4)-cuckoo insertion is reliable far beyond 75 % load; the
    headroom keeps the install phase kick-free at any seed.
    """
    need = max(1 << 12, int(connections / 0.75))
    return 1 << max(12, math.ceil(math.log2(need)))


def run_l4lb_soak(
    connections: int = 100_000,
    packets: int = 20_000,
    new_connections: int = 2_000,
    new_packets: int = 3_000,
    backends: int = 4,
    alpha: float = 1.0,
    rate_pps: float = 2e6,
    corrupt_rate: float = L4LB_CORRUPT_RATE,
    cache_entries: int = 4096,
    kill_backend: str = "backend1",
    drain_backend: str = "backend2",
    seed: int = L4LB_SEED,
) -> L4LbSoakResult:
    """One combined-failure soak; see the module docstring for the plot.

    Timeline: wave 1 of established traffic starts at t=0 with the
    corruption already running; the kill lands mid-wave (under full
    load — detection is the self-healing stack's problem); after wave 1
    ends the drain runs in the inter-wave gap (a graceful drain is a
    *scheduled* handoff — the controller picks a calm moment, which is
    precisely what distinguishes it from the kill); wave 2 plus the
    new-connection wave then run to completion.
    """
    if backends < 3:
        raise ValueError("need >= 3 backends to kill one and drain another")
    if kill_backend == drain_backend:
        raise ValueError("kill and drain targets must differ")
    seeds = SeedSequence(seed)
    vip = Ipv4Address(L4LB_VIP)

    # ICRC on: with a corrupting link in the plan, receivers must be able
    # to *detect* damage (corruption is detected loss, the guard's premise).
    with integrity_protected():
        # Topology: clients on ports 0..1; memory server 0 hosts the
        # connection table behind the corrupting (guarded) link; servers
        # 1..B are the backends — dual-role: traffic sinks *and* pool
        # members hosting the K=2 counter replicas.
        tb = build_testbed(n_hosts=2, n_memory_servers=backends + 1, seed=seed)
        table_server, table_port = tb.memory_servers[0], tb.server_ports[0]
        backend_servers = tb.memory_servers[1:]
        backend_ports = tb.server_ports[1:]

        # fail_after deliberately exceeds the breaker's fail_threshold:
        # kill detection is the §11 stack's job here (trip → degrade →
        # probes → escalation), not the bare health monitor's strike
        # counter — the monitor sees the same timeout events (it is
        # chained first) and would otherwise race the breaker to the
        # down verdict.
        pool = MemoryPool(
            tb.controller, vnodes=RING_VNODES, seed=RING_SEED, fail_after=8
        )
        for i, (server, port) in enumerate(zip(backend_servers, backend_ports)):
            pool.add_server(server, port, name=f"backend{i}")

        program = L4LbProgram(vip)
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)

        table_config = LookupTableConfig(
            entries=table_entries_for(connections + new_connections),
            packet_slot_bytes=256,
            cache_entries=cache_entries,
            layout="cuckoo",
            hash_seed=seed,
            policy="lru",
        )
        channel = tb.controller.open_channel(
            table_server,
            table_port,
            table_config.region_bytes,
            name="l4lb:connections",
        )
        table = RemoteLookupTable(tb.switch, channel, config=table_config)
        program.use_connection_table(table)

        store = ReplicatedStateStore(
            tb.switch,
            pool,
            config=StateStoreConfig(
                counters=2 * backends, reliable=True, retry_timeout_ns=50_000.0
            ),
            replication=2,
        )
        program.use_counter_store(store)

        controller = L4LbController(program, table, store, pool, seed=seed)
        for i, (server, port) in enumerate(zip(backend_servers, backend_ports)):
            controller.add_backend(
                f"backend{i}",
                server.eth.ip,
                server.eth.mac,
                port,
                member=pool.member(f"backend{i}"),
            )
        healers = controller.enable_self_healing(
            policy_for=lambda member: BreakerPolicy(
                config=_breaker_config(),
                rng=seeds.stream(f"breaker[{member.name}]"),
            ),
            give_up_probes=2,
        )

        # The corrupting table link, guarded from t=0.
        guard = LinkGuard(tb.server_links[0])
        wire = None
        if corrupt_rate > 0:
            plan = FaultPlan(seed=seed)
            wire = plan.on_link(tb.server_links[0], name="table-link")
            plan.at(0.0, wire, Corrupt(corrupt_rate))
            plan.install(tb.sim)

        deliveries: Dict[FiveTuple, Dict[str, int]] = {}
        for backend, server in zip(controller.backends.values(), backend_servers):
            _BackendSink(program, backend, server, deliveries)

        # -- traffic and the failure schedule -----------------------------------
        client, client2 = tb.hosts
        w1_count = max(1, int(packets * 0.6))
        w2_count = max(1, packets - w1_count)
        wave1 = _VipZipfTraffic(
            vip, tb.sim, client, client2, flows=connections, alpha=alpha,
            rate_pps=rate_pps, count=w1_count, seed=seeds.derive_seed("wave1"),
        )
        wave2 = _VipZipfTraffic(
            vip, tb.sim, client, client2, flows=connections, alpha=alpha,
            rate_pps=rate_pps, count=w2_count, seed=seeds.derive_seed("wave2"),
        )
        wave_new = _VipZipfTraffic(
            vip, tb.sim, client2, client, flows=new_connections, alpha=alpha,
            rate_pps=rate_pps, count=new_packets, seed=seeds.derive_seed("new"),
        )

        # Pre-admit the whole established population: this is the
        # ~``connections``-entry table the paper's external memory holds.
        for rank in range(connections):
            controller.admit(wave1.connection(rank))

        w1_duration = w1_count * (SEC / rate_pps)
        kill_at_ns = 0.5 * w1_duration
        drain_at_ns = w1_duration + usec(800)  # after the kill settles
        resume_at_ns = drain_at_ns + usec(500)

        victim_member = pool.member(kill_backend)
        victim_link = tb.server_links[
            1 + backend_servers.index(victim_member.server)
        ]

        def crash() -> None:
            victim_link.loss_probability = 1.0

        tb.sim.schedule_at(kill_at_ns, crash)
        tb.sim.schedule_at(drain_at_ns, controller.drain_backend, drain_backend)

        new_flows: List[FiveTuple] = []

        def admit_new() -> None:
            for rank in range(new_connections):
                flow = wave_new.connection(rank)
                if controller.admit(flow) is not None:
                    new_flows.append(flow)

        tb.sim.schedule_at(resume_at_ns, admit_new)
        wave1.start(0.0)
        wave2.start(resume_at_ns)
        wave_new.start(resume_at_ns)
        tb.sim.run()

        # Quiesce: push every switch-side accumulation out, let it land.
        for _ in range(64):
            if store.pending_value == 0 and store.outstanding == 0:
                break
            store.flush_all()
            tb.sim.run()

        # -- audits --------------------------------------------------------------
        expected = dict(program.expected_counts)
        recovered = {
            index: store.read_counter(index) for index in sorted(expected)
        }

    affinity_breaks = 0
    for flow, per_backend in deliveries.items():
        allowed = set(controller.assignment_history(flow))
        for name, count in per_backend.items():
            if name not in allowed:
                affinity_breaks += count
    # Every sanctioned migration originates at the kill or drain target
    # (a kill-migrated flow that hops again does so because its *new*
    # home is the drain target); any other source is the controller
    # moving a connection off a healthy backend.
    churned = {kill_backend, drain_backend}
    unsanctioned = sum(
        1 for record in controller.journal if record.source not in churned
    )

    delivered_by_backend: Dict[str, int] = {}
    for per_backend in deliveries.values():
        for name, count in per_backend.items():
            delivered_by_backend[name] = delivered_by_backend.get(name, 0) + count
    forwarded_by_backend = dict(program.forwarded_by_backend)
    victim_wire_loss = forwarded_by_backend.get(
        kill_backend, 0
    ) - delivered_by_backend.get(kill_backend, 0)
    other_wire_loss = sum(
        forwarded_by_backend.get(name, 0) - delivered_by_backend.get(name, 0)
        for name in controller.backends
        if name != kill_backend
    )

    new_placements: Dict[str, int] = {}
    new_on_inactive = 0
    active_names = {
        b.name for b in controller.backends.values() if b.state == BACKEND_ACTIVE
    }
    for flow in new_flows:
        name = controller.placement.get(flow, "?")
        new_placements[name] = new_placements.get(name, 0) + 1
        if name not in active_names:
            new_on_inactive += 1

    kill_times = [r.time_ns for r in controller.journal if r.reason == "kill"]
    victim_healer = healers[kill_backend]
    guard_counts = guard.counts

    result = L4LbSoakResult(
        seed=seed,
        connections=connections,
        new_connections=len(new_flows),
        backends=backends,
        corrupt_rate=corrupt_rate,
        table_entries=table_config.entries,
        packets_offered=w1_count + w2_count + new_packets,
        duration_ms=tb.sim.now / 1e6,
        vip_packets=program.vip_packets,
        forwarded_packets=program.forwarded_packets,
        delivered_total=sum(delivered_by_backend.values()),
        forwarded_by_backend=forwarded_by_backend,
        delivered_by_backend=delivered_by_backend,
        lookups_lost=table.stats.lookups_lost,
        no_backend_drops=program.no_backend_drops,
        expected=expected,
        recovered=recovered,
        affinity_breaks=affinity_breaks,
        flows_delivered=len(deliveries),
        connections_migrated=controller.stats.connections_migrated,
        unsanctioned_migrations=unsanctioned,
        killed_backend=kill_backend,
        kill_at_ns=kill_at_ns,
        kill_detected=controller.stats.kills_detected >= 1
        and not pool.health.is_alive(kill_backend),
        kill_detect_ns=min(kill_times) if kill_times else None,
        breaker_opens=victim_healer.breaker.opens,
        reconnect_attempts=victim_healer.reconnects,
        kill_escalations=controller.stats.kill_escalations,
        members_failed=store.cluster_stats.members_failed,
        victim_wire_loss=victim_wire_loss,
        other_wire_loss=other_wire_loss,
        drained_backend=drain_backend,
        drain_at_ns=drain_at_ns,
        drains_completed=controller.stats.drains_completed,
        drains_forced=controller.stats.drains_forced,
        counters_repaired=store.cluster_stats.counters_repaired,
        reconciliations=store.cluster_stats.reconciliations,
        corrupted_frames=(
            wire.effects.get("corrupted", 0) if wire is not None else 0
        ),
        masked_losses=guard_counts.get("masked_losses", 0),
        guard_resent=guard_counts.get("resent", 0),
        new_placements=new_placements,
        new_on_inactive=new_on_inactive,
    )
    publish_l4lb_metrics(Observability.adopt().registry, result)
    return result


def format_l4lb(result: L4LbSoakResult) -> str:
    rows = []
    for slot in range(result.backends):
        name = f"backend{slot}"
        rows.append(
            [
                name,
                "killed" if name == result.killed_backend
                else "drained" if name == result.drained_backend
                else "active",
                result.recovered.get(2 * slot, 0),
                result.recovered.get(2 * slot + 1, 0),
                result.forwarded_by_backend.get(name, 0),
                result.delivered_by_backend.get(name, 0),
                result.forwarded_by_backend.get(name, 0)
                - result.delivered_by_backend.get(name, 0),
                result.new_placements.get(name, 0),
            ]
        )
    table = format_table(
        [
            "backend",
            "fate",
            "conns",
            "bytes",
            "forwarded",
            "delivered",
            "wire lost",
            "new conns",
        ],
        rows,
        title=(
            f"L4LB soak — {result.connections:,} connections, "
            f"kill + drain + {result.corrupt_rate:g} corruption "
            f"(seed={result.seed})"
        ),
    )
    detect = result.kill_detect_latency_ns
    summary = [
        table,
        "",
        f"counter audit : {len(result.expected)} counters, "
        f"expected {result.expected_total:,} == recovered "
        f"{result.recovered_total:,} -> lost {result.lost_updates}",
        f"affinity      : {result.flows_delivered:,} connections delivered, "
        f"{result.connections_migrated:,} migrated, "
        f"{result.affinity_breaks} breaks",
        f"kill          : {result.killed_backend} at "
        f"{result.kill_at_ns / 1e6:.2f} ms, detected in "
        + (f"{detect / 1e3:.0f} us" if detect is not None else "-")
        + f" (breaker opens={result.breaker_opens}, "
        f"reconnects={result.reconnect_attempts}, "
        f"escalations={result.kill_escalations})",
        f"drain         : {result.drained_backend} at "
        f"{result.drain_at_ns / 1e6:.2f} ms, completed="
        f"{result.drains_completed} forced={result.drains_forced} "
        f"(repaired {result.counters_repaired} counters over "
        f"{result.reconciliations} reconciliations)",
        f"link          : {result.corrupted_frames} frames corrupted, "
        f"{result.masked_losses} masked by the guard, "
        f"{result.lookups_lost} lookups lost",
    ]
    return "\n".join(summary)


def l4lb_perf_record(result: L4LbSoakResult, label: str = "l4lb"):
    """The soak in ``repro-perf-record/v1`` shape (committed as BENCH)."""
    from ..analysis.profiling import PerfRecord, make_report

    record = PerfRecord(
        label="l4lb_soak",
        wall_s=result.duration_ms / 1e3,
        events=result.packets_offered,
    )
    record.extra.update(
        {
            "seed": result.seed,
            "connections": result.connections,
            "new_connections": result.new_connections,
            "backends": result.backends,
            "table_entries": result.table_entries,
            "corrupt_rate": result.corrupt_rate,
            "packets_offered": result.packets_offered,
            "vip_packets": result.vip_packets,
            "forwarded_packets": result.forwarded_packets,
            "delivered_total": result.delivered_total,
            "expected_total": result.expected_total,
            "recovered_total": result.recovered_total,
            "lost_updates": result.lost_updates,
            "all_counters_exact": result.all_counters_exact,
            "affinity_breaks": result.affinity_breaks,
            "flows_delivered": result.flows_delivered,
            "connections_migrated": result.connections_migrated,
            "unsanctioned_migrations": result.unsanctioned_migrations,
            "killed_backend": result.killed_backend,
            "kill_detect_latency_ns": result.kill_detect_latency_ns,
            "breaker_opens": result.breaker_opens,
            "reconnect_attempts": result.reconnect_attempts,
            "kill_escalations": result.kill_escalations,
            "members_failed": result.members_failed,
            "victim_wire_loss": result.victim_wire_loss,
            "other_wire_loss": result.other_wire_loss,
            "drained_backend": result.drained_backend,
            "drains_completed": result.drains_completed,
            "drains_forced": result.drains_forced,
            "counters_repaired": result.counters_repaired,
            "corrupted_frames": result.corrupted_frames,
            "masked_losses": result.masked_losses,
            "lookups_lost": result.lookups_lost,
            "new_on_inactive": result.new_on_inactive,
            "duration_ms": result.duration_ms,
        }
    )
    return make_report(label, {record.label: record})


def publish_l4lb_metrics(registry, result: L4LbSoakResult) -> None:
    """Surface the acceptance numbers under ``l4lb.soak`` so the CI
    metrics artifact can re-assert the bar without re-parsing stdout."""
    scope = registry.unique_scope("l4lb.soak")
    scope.counter("lost_updates").inc(result.lost_updates)
    scope.counter("affinity_breaks").inc(result.affinity_breaks)
    scope.counter("delivered").inc(result.delivered_total)
    scope.counter("connections_migrated").inc(result.connections_migrated)
    scope.counter("masked_losses").inc(result.masked_losses)
    scope.counter("corrupted_frames").inc(result.corrupted_frames)
    scope.counter("breaker_opens").inc(result.breaker_opens)
    scope.counter("kills_detected").inc(1 if result.kill_detected else 0)
    scope.counter("drains_completed").inc(result.drains_completed)
    scope.counter("new_on_inactive").inc(result.new_on_inactive)
    scope.gauge("expected_total").set(result.expected_total)
    scope.gauge("recovered_total").set(result.recovered_total)
    scope.gauge("connections").set(result.connections)
    scope.gauge("counters_exact").set(1 if result.all_counters_exact else 0)


def assert_l4lb(result: L4LbSoakResult) -> None:
    """The acceptance bar for the combined-failure soak.

    Zero lost counter updates (exact, per index), zero affinity breaks
    for established connections, the kill actually absorbed by the §11
    stack, the drain actually graceful, and the corruption actually
    masked — a soak where a failure leg silently failed to fire would
    pass a weaker bar while testing nothing.
    """
    if result.lost_updates != 0 or not result.all_counters_exact:
        diff = {
            index: (result.expected.get(index), result.recovered.get(index))
            for index in set(result.expected) | set(result.recovered)
            if result.expected.get(index) != result.recovered.get(index)
        }
        raise AssertionError(
            f"lost {result.lost_updates} counter updates; divergent: {diff}"
        )
    if result.affinity_breaks != 0:
        raise AssertionError(
            f"{result.affinity_breaks} packets broke connection affinity"
        )
    if result.unsanctioned_migrations != 0:
        raise AssertionError(
            f"{result.unsanctioned_migrations} connections migrated off "
            "healthy backends"
        )
    if not result.kill_detected:
        raise AssertionError("the killed backend was never declared dead")
    if result.breaker_opens < 1:
        raise AssertionError("the victim's breaker never tripped")
    if result.reconnect_attempts < 1:
        raise AssertionError("the self-healing stack never tried a reconnect")
    if result.kill_escalations < 1 or result.members_failed != 1:
        raise AssertionError(
            f"kill escalation path untraveled (escalations="
            f"{result.kill_escalations}, failed={result.members_failed})"
        )
    if result.drains_completed != 1:
        raise AssertionError("the graceful drain never completed")
    if result.drains_forced != 0:
        raise AssertionError("the drain hit its deadline instead of quiescing")
    if result.corrupted_frames == 0 or result.masked_losses == 0:
        raise AssertionError(
            f"the corruption leg never fired (corrupted="
            f"{result.corrupted_frames}, masked={result.masked_losses})"
        )
    if result.lookups_lost != 0:
        raise AssertionError(
            f"{result.lookups_lost} lookups lost despite the guard"
        )
    if result.other_wire_loss != 0:
        raise AssertionError(
            f"{result.other_wire_loss} packets lost on healthy backend links"
        )
    if result.new_on_inactive != 0:
        raise AssertionError(
            f"{result.new_on_inactive} new connections placed on "
            "killed/drained backends"
        )
    if result.delivered_total == 0 or result.flows_delivered == 0:
        raise AssertionError("no traffic was delivered — the soak ran empty")
    if result.connections_migrated == 0:
        raise AssertionError("no connections migrated — kill/drain were no-ops")
