"""Experiment harnesses regenerating the paper's tables and figures.

One module per result:

* :mod:`.fig3a`              — latency overhead of the lookup primitive
* :mod:`.fig3b`              — bandwidth overhead of the state store
* :mod:`.packet_buffer_rate` — §5 lossless store/forward rates
* :mod:`.incast`             — §2.1 / Fig. 1a incast comparison
* :mod:`.overhead`           — §4 RoCE header overhead table
* :mod:`.baremetal`          — §2.2 / Fig. 1b VIP→PIP translation
* :mod:`.telemetry`          — §2.3 / Fig. 1c sketch/counter scaling
* :mod:`.kv_cache`           — §2.2/§6 in-network KV cache study
* :mod:`.persistent_congestion` — §2.1 bursts-vs-persistence with ECN
* :mod:`.ablations`          — §7 design-choice ablations
* :mod:`.scaleout`           — cluster sharding / failover studies
* :mod:`.chaos`              — lossy-link soak (fault injection + recovery)
* :mod:`.linkguard`          — link protection: guard vs breaker goodput (§14)
* :mod:`.lookup_scale`       — EMOMA-scale cuckoo/cache/Zipf lookup study
* :mod:`.tiering`            — tiered-memory placement-policy study (§13)

Each ``run_*`` harness has a matching ``format_*`` text renderer; both
are exported here.  The library surface itself (primitives, testbed,
observability) lives in :mod:`repro.api`.
"""

from .ablations import (
    format_batching,
    format_cache,
    format_drops,
    format_mode,
    format_priority,
    format_window,
    run_batching_ablation,
    run_priority_ablation,
    run_cache_ablation,
    run_drop_ablation,
    run_mode_ablation,
    run_window_ablation,
)
from .baremetal import format_baremetal, run_baremetal, run_baremetal_comparison
from .chaos import (
    chaos_perf_record,
    format_chaos,
    run_chaos_point,
    run_chaos_sweep,
)
from .fig3a import format_fig3a, run_fig3a
from .fig3b import format_fig3b, run_fig3b
from .incast import format_incast, run_incast, run_incast_comparison
from .linkguard import (
    assert_linkguard,
    format_linkguard,
    linkguard_perf_record,
    run_linkguard_point,
    run_linkguard_sweep,
)
from .kv_cache import format_kv_cache, run_kv_cache, run_kv_cache_comparison
from .overhead import format_overhead, run_overhead
from .packet_buffer_rate import (
    format_packet_buffer_rate,
    run_packet_buffer_rate,
    run_store_load_point,
)
from .persistent_congestion import (
    format_persistent_congestion,
    run_persistent_congestion,
    run_persistent_congestion_comparison,
)
from .scaleout import (
    format_failover,
    format_scaleout,
    run_failover_counters,
    run_scaleout,
    run_scaleout_point,
)
from .sequencer import format_sequencer, run_sequencer_point, run_sequencer_throughput
from .telemetry import format_telemetry, run_telemetry
from .topology import Testbed, build_testbed

__all__ = [
    "Testbed",
    "assert_linkguard",
    "build_testbed",
    "chaos_perf_record",
    "format_baremetal",
    "format_batching",
    "format_cache",
    "format_chaos",
    "format_drops",
    "format_failover",
    "format_fig3a",
    "format_fig3b",
    "format_incast",
    "format_kv_cache",
    "format_linkguard",
    "linkguard_perf_record",
    "format_mode",
    "format_overhead",
    "format_packet_buffer_rate",
    "format_persistent_congestion",
    "format_priority",
    "format_scaleout",
    "format_sequencer",
    "format_telemetry",
    "format_window",
    "run_baremetal",
    "run_baremetal_comparison",
    "run_batching_ablation",
    "run_cache_ablation",
    "run_chaos_point",
    "run_chaos_sweep",
    "run_drop_ablation",
    "run_failover_counters",
    "run_fig3a",
    "run_fig3b",
    "run_incast",
    "run_incast_comparison",
    "run_kv_cache",
    "run_kv_cache_comparison",
    "run_linkguard_point",
    "run_linkguard_sweep",
    "run_mode_ablation",
    "run_overhead",
    "run_priority_ablation",
    "run_packet_buffer_rate",
    "run_persistent_congestion",
    "run_persistent_congestion_comparison",
    "run_scaleout",
    "run_scaleout_point",
    "run_store_load_point",
    "run_sequencer_point",
    "run_sequencer_throughput",
    "run_telemetry",
    "run_window_ablation",
]
