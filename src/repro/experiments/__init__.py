"""Experiment harnesses regenerating the paper's tables and figures.

One module per result:

* :mod:`.fig3a`              — latency overhead of the lookup primitive
* :mod:`.fig3b`              — bandwidth overhead of the state store
* :mod:`.packet_buffer_rate` — §5 lossless store/forward rates
* :mod:`.incast`             — §2.1 / Fig. 1a incast comparison
* :mod:`.overhead`           — §4 RoCE header overhead table
* :mod:`.baremetal`          — §2.2 / Fig. 1b VIP→PIP translation
* :mod:`.telemetry`          — §2.3 / Fig. 1c sketch/counter scaling
* :mod:`.kv_cache`           — §2.2/§6 in-network KV cache study
* :mod:`.persistent_congestion` — §2.1 bursts-vs-persistence with ECN
* :mod:`.ablations`          — §7 design-choice ablations
"""

from .ablations import (
    run_batching_ablation,
    run_priority_ablation,
    run_cache_ablation,
    run_drop_ablation,
    run_mode_ablation,
    run_window_ablation,
)
from .baremetal import run_baremetal, run_baremetal_comparison
from .fig3a import run_fig3a
from .fig3b import run_fig3b
from .incast import run_incast, run_incast_comparison
from .kv_cache import run_kv_cache, run_kv_cache_comparison
from .overhead import run_overhead
from .packet_buffer_rate import run_packet_buffer_rate, run_store_load_point
from .persistent_congestion import (
    run_persistent_congestion,
    run_persistent_congestion_comparison,
)
from .sequencer import run_sequencer_point, run_sequencer_throughput
from .telemetry import run_telemetry
from .topology import Testbed, build_testbed

__all__ = [
    "Testbed",
    "build_testbed",
    "run_baremetal",
    "run_baremetal_comparison",
    "run_batching_ablation",
    "run_cache_ablation",
    "run_drop_ablation",
    "run_fig3a",
    "run_fig3b",
    "run_incast",
    "run_incast_comparison",
    "run_kv_cache",
    "run_kv_cache_comparison",
    "run_mode_ablation",
    "run_overhead",
    "run_priority_ablation",
    "run_packet_buffer_rate",
    "run_persistent_congestion",
    "run_persistent_congestion_comparison",
    "run_store_load_point",
    "run_sequencer_point",
    "run_sequencer_throughput",
    "run_telemetry",
    "run_window_ablation",
]
