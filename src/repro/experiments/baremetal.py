"""§2.2 / Fig. 1b: bare-metal hosting — VIP→PIP translation at the ToR.

A customer's blackbox servers send to virtual IPs; the ToR must translate
to physical IPs.  The full mapping table (tens of thousands of VIPs in
production) dwarfs switch SRAM.  Compared systems:

* ``slowpath``   — SRAM holds what fits; misses take the switch-CPU
  software path (µs latency, pps ceiling, queue drops under load).
* ``remote``     — the complete table in server DRAM via the lookup-table
  primitive, with the same amount of SRAM acting as a cache.

Traffic follows a Zipf flow popularity over the VIPs, so a small cache
covers most packets — the case the paper's design banks on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.reporting import format_table
from ..analysis.stats import percentile
from ..apps.virtual_switch import VipMapping, VirtualSwitchProgram
from ..baselines.cpu_slowpath import CpuSlowPath, CpuSlowPathConfig
from ..core.lookup_table import LookupTableConfig, RemoteLookupTable
from ..net.addresses import Ipv4Address
from ..net.headers import Ipv4Header
from ..net.node import Interface
from ..net.packet import Packet
from ..sim.units import SEC, gbps, to_usec
from ..workloads.factory import udp_between
from ..workloads.flows import ZipfSampler
from .topology import build_testbed

MODES = ("slowpath", "remote")


@dataclass
class BaremetalResult:
    mode: str
    vips: int
    sram_entries: int
    packets_sent: int
    packets_received: int
    median_latency_us: float
    p99_latency_us: float
    fast_translations: int
    slow_path_translations: int
    slow_path_drops: int
    remote_lookups: int
    cache_hit_rate: float

    @property
    def delivery_rate(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return self.packets_received / self.packets_sent


def run_baremetal(
    mode: str,
    vips: int = 20_000,
    sram_entries: int = 256,
    packets: int = 5_000,
    alpha: float = 1.1,
    rate_bps: float = gbps(5),
    packet_size: int = 512,
    seed: int = 0,
) -> BaremetalResult:
    """One mode of the bare-metal translation experiment."""
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; pick from {MODES}")
    tb = build_testbed(n_hosts=2, with_memory_server=mode == "remote")
    blackbox, vm_host = tb.hosts

    program = VirtualSwitchProgram(sram_entries=sram_entries)
    program.install(blackbox.eth.mac, tb.host_ports[0])
    program.install(vm_host.eth.mac, tb.host_ports[1])
    tb.switch.bind_program(program)

    table = None
    if mode == "remote":
        config = LookupTableConfig(
            entries=1 << 16, cache_entries=sram_entries, cache_fill=True
        )
        channel = tb.controller.open_channel(
            tb.memory_server,
            tb.server_port,
            config.entries * config.entry_bytes,
        )
        table = RemoteLookupTable(tb.switch, channel, config=config)
        program.use_remote_table(table)
    else:
        program.use_slow_path(CpuSlowPath(tb.sim, CpuSlowPathConfig()))

    # Control plane installs every VIP -> PIP mapping.
    for rank in range(vips):
        vip = Ipv4Address((172 << 24) | (16 << 16) | rank + 1)
        pip = Ipv4Address((10 << 24) | (99 << 16) | rank + 1)
        program.add_mapping(
            VipMapping(
                vip=vip,
                pip=pip,
                pip_mac=vm_host.eth.mac,
                egress_port=tb.host_ports[1],
            )
        )

    # Zipf traffic from the blackbox toward the VIPs.
    sampler = ZipfSampler(vips, alpha, tb.seeds.stream(f"baremetal-{seed}"))
    latencies: List[float] = []
    received = [0]

    def on_receive(packet: Packet, interface: Interface) -> None:
        received[0] += 1
        sent_at = packet.meta.get("sent_at")
        if sent_at is not None:
            latencies.append(tb.sim.now - sent_at)

    vm_host.packet_handlers.append(on_receive)

    template = udp_between(blackbox, vm_host, packet_size)
    interval_ns = template.wire_len * 8 * SEC / rate_bps
    state = {"sent": 0}

    def send_next() -> None:
        if state["sent"] >= packets:
            return
        rank = sampler.sample()
        packet = udp_between(blackbox, vm_host, packet_size)
        packet.require(Ipv4Header).dst = Ipv4Address(
            (172 << 24) | (16 << 16) | rank + 1
        )
        packet.meta["sent_at"] = tb.sim.now
        blackbox.send(packet)
        state["sent"] += 1
        tb.sim.schedule(interval_ns, send_next)

    tb.sim.schedule(0.0, send_next)
    tb.sim.run()

    cache_hit_rate = 0.0
    remote_lookups = 0
    if table is not None:
        remote_lookups = table.stats.remote_lookups
        total = table.stats.local_hits + table.stats.remote_lookups
        cache_hit_rate = table.stats.local_hits / total if total else 0.0
    return BaremetalResult(
        mode=mode,
        vips=vips,
        sram_entries=sram_entries,
        packets_sent=state["sent"],
        packets_received=received[0],
        median_latency_us=(
            to_usec(percentile(latencies, 50)) if latencies else float("nan")
        ),
        p99_latency_us=(
            to_usec(percentile(latencies, 99)) if latencies else float("nan")
        ),
        fast_translations=program.fast_translations,
        slow_path_translations=program.slow_path_translations,
        slow_path_drops=program.slow_path_drops,
        remote_lookups=remote_lookups,
        cache_hit_rate=cache_hit_rate,
    )


def run_baremetal_comparison(**kwargs) -> List[BaremetalResult]:
    return [run_baremetal(mode, **kwargs) for mode in MODES]


def format_baremetal(results: Sequence[BaremetalResult]) -> str:
    return format_table(
        [
            "mode",
            "delivered",
            "median lat (us)",
            "p99 lat (us)",
            "fast xlate",
            "slow-path xlate",
            "slow-path drops",
            "remote lookups",
            "cache hit rate",
        ],
        [
            [
                r.mode,
                f"{r.packets_received}/{r.packets_sent}",
                f"{r.median_latency_us:.2f}",
                f"{r.p99_latency_us:.2f}",
                r.fast_translations,
                r.slow_path_translations,
                r.slow_path_drops,
                r.remote_lookups,
                f"{r.cache_hit_rate * 100:.1f}%",
            ]
            for r in results
        ],
        title="§2.2 / Fig. 1b — bare-metal VIP→PIP translation at the ToR",
    )
